// Estimation: the §IV waiting-function estimation algorithm on synthetic
// control-trial data — the ISP observes only aggregate usage under TIP and
// TDP and recovers patience indices and type proportions (Table III,
// Fig. 2), then re-estimates the TIP baseline from TDP data (eq. 9).
//
//	go run ./examples/estimation
package main

import (
	"fmt"
	"log"

	"tdp/internal/estimate"
)

func main() {
	// The paper's example: 3 periods, 2 session types.
	model := &estimate.Model{
		Periods:     3,
		Types:       2,
		BaselineTIP: []float64{22, 13, 8},
		MaxReward:   1,
	}
	actual := estimate.NewParams(3, 2)
	alpha1 := []float64{0.17, 0.5, 0.83}
	beta2 := []float64{2, 2.33, 2.67}
	for i := 0; i < 3; i++ {
		actual.Alpha[i][0] = alpha1[i]
		actual.Alpha[i][1] = 1 - alpha1[i]
		actual.Beta[i][0] = 1
		actual.Beta[i][1] = beta2[i]
	}

	// Control experiments: offer reward sets in [0,1], observe per-period
	// usage decreases T_i.
	var obs []estimate.Observation
	levels := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, a := range levels {
		for _, b := range levels {
			for _, c := range levels {
				if a == 0 && b == 0 && c == 0 {
					continue
				}
				p := []float64{a, b, c}
				t, err := model.NetFlows(actual, p)
				if err != nil {
					log.Fatal(err)
				}
				obs = append(obs, estimate.Observation{Rewards: p, T: t})
			}
		}
	}
	fit, err := model.Fit(obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Waiting-function estimation (paper §IV, Table III)")
	fmt.Println("period |  actual β1 β2 α1  | estimated β1 β2 α1 | max curve err")
	for i := 0; i < 3; i++ {
		pe, err := model.MaxPercentError(actual, fit.Params, i, []float64{0.25, 0.5, 0.75, 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d | %5.2f %5.2f %5.2f | %6.2f %5.2f %5.2f | %8.1f%%\n",
			i+1,
			actual.Beta[i][0], actual.Beta[i][1], actual.Alpha[i][0],
			fit.Params.Beta[i][0], fit.Params.Beta[i][1], fit.Params.Alpha[i][0], pe)
	}
	fmt.Println("(paper's max percent errors: 11.8, 9.0, 0.5 — note the α are only")
	fmt.Println(" weakly identifiable; the aggregate waiting curves are what matter)")

	// Fig. 2: the aggregate period-1 curve, actual vs estimated.
	act, err := model.WaitingCurve(actual, 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	est, err := model.WaitingCurve(fit.Params, 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFig. 2 — period-1 aggregate waiting curve at reward 0.5:")
	for dt := range act {
		fmt.Printf("  defer %d periods: actual %.4f, estimated %.4f\n", dt+1, act[dt], est[dt])
	}

	// Baseline re-estimation: recover X_i from TDP usage data (eq. 9).
	var usageObs []estimate.Observation
	for _, p := range [][]float64{{0.3, 0.6, 0.1}, {0.9, 0.2, 0.5}} {
		t, err := model.NetFlows(actual, p)
		if err != nil {
			log.Fatal(err)
		}
		usage := make([]float64, 3)
		for i := range usage {
			usage[i] = model.BaselineTIP[i] - t[i]
		}
		usageObs = append(usageObs, estimate.Observation{Rewards: p, T: usage})
	}
	x, err := model.EstimateBaseline(fit.Params, usageObs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTIP baseline re-estimated from TDP usage: %.2f (true: %v)\n",
		x, model.BaselineTIP)
}
