// Five-dollar plan: the paper's §VII closing idea — congestion-dependent
// pricing on 30-second slots plus a user-side autopilot with a hard
// monthly budget. Bulk traffic rides the off-peak discounts; a protected
// "never defer" class runs at any price; the bill stays under $5.
//
//	go run ./examples/five-dollar-plan
package main

import (
	"fmt"
	"log"
	"math"

	"tdp/internal/core"
	"tdp/internal/waiting"
)

func main() {
	pricer, err := core.NewCongestionPricer(0.8 /* target util */, 0.2 /* gain */, 0.9 /* max discount */)
	if err != nil {
		log.Fatal(err)
	}
	auto := core.NewAutopilot(core.AutopilotConfig{
		SpendBudget:  50, // $5.00 in $0.10 units
		NeverDefer:   map[int]bool{1: true},
		PriceCeiling: 0.3, // bulk traffic only runs when price ≤ $0.03/unit
	})

	const basePrice = 1.0
	// Network utilization over the day follows the paper's measured shape
	// (Table VII), resampled onto 30-second slots, peak ≈ 110%.
	totals := waiting.Totals(waiting.Demand48())
	peak := 0.0
	for _, x := range totals {
		peak = math.Max(peak, x)
	}

	const slots = 2880
	pending := 400 // queued bulk sessions of 0.25 volume units each
	var served, protectedRuns int
	var hourlySpend [24]float64
	for slot := 0; slot < slots; slot++ {
		util := totals[slot*48/slots] / peak * 1.1
		price := math.Max(basePrice-pricer.Update(util), 0)
		hour := slot * 24 / slots

		if slot%10 == 5 { // a call/live-video session every 5 minutes
			if auto.Decide(1, 0.1, price) == core.RunNow {
				auto.RecordSpend(0.1 * price)
				hourlySpend[hour] += 0.1 * price
				protectedRuns++
			}
		}
		if pending > 0 && slot%2 == 0 { // bulk backlog trickle
			if auto.Decide(0, 0.25, price) == core.RunNow {
				auto.RecordSpend(0.25 * price)
				hourlySpend[hour] += 0.25 * price
				pending--
				served++
			}
		}
	}

	fmt.Println("\"$5 a month\" autopilot day (30-second pricing slots)")
	fmt.Println("hour  spend($)")
	for h, s := range hourlySpend {
		bar := ""
		for i := 0; i < int(s*30); i++ {
			bar += "#"
		}
		fmt.Printf("%4d %9.3f  %s\n", h, s*0.10, bar)
	}
	fmt.Printf("\nbulk sessions served: %d/400 (remaining wait for tomorrow's valleys)\n", served)
	fmt.Printf("protected sessions (never defer): %d ran at market price\n", protectedRuns)
	fmt.Printf("total spend: $%.2f of the $5.00 budget (full price would be $%.2f)\n",
		auto.Spent()*0.10, (float64(served)*0.25+float64(protectedRuns)*0.1)*basePrice*0.10)
}
