// ISP day: the paper's §V-A headline experiment on the 48-period AT&T
// trace day — optimal rewards, the evened-out traffic profile, and the
// cost/evenness metrics of Figs. 4 and 5.
//
//	go run ./examples/isp-day
package main

import (
	"fmt"
	"log"
	"strings"

	"tdp/internal/core"
	"tdp/internal/experiments"
	"tdp/internal/traffic"
)

func main() {
	scn := experiments.Static48()
	model, err := core.NewStaticModel(scn)
	if err != nil {
		log.Fatal(err)
	}
	pricing, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("48-period ISP day (paper §V-A, Table VII demand)")
	fmt.Println("hour   TIP(MBps)  TDP(MBps)  reward($)")
	totals := scn.TotalDemand()
	for i := 0; i < 48; i += 2 {
		// Average the two half-hours for a compact hourly view.
		tip := 10 * (totals[i] + totals[i+1]) / 2
		tdp := 10 * (pricing.Usage[i] + pricing.Usage[i+1]) / 2
		rwd := 0.10 * (pricing.Rewards[i] + pricing.Rewards[i+1]) / 2
		bar := strings.Repeat("#", int(tdp/10))
		fmt.Printf("%02d:00 %9.0f %10.0f %10.3f  %s\n", i/2, tip, tdp, rwd, bar)
	}

	tipProfile := traffic.NewProfile(totals)
	tdpProfile := traffic.NewProfile(pricing.Usage)
	area, err := traffic.AreaBetween(tipProfile, tdpProfile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost per user-day:  TIP $%.2f → TDP $%.2f  (%.0f%% savings; paper: $4.26 → $3.26, 24%%)\n",
		experiments.PerUserDollars(pricing.TIPCost),
		experiments.PerUserDollars(pricing.Cost),
		100*pricing.Savings())
	fmt.Printf("peak-to-trough:     %.0f → %.0f MBps (paper: 200 → 119)\n",
		10*tipProfile.PeakToTrough(), 10*tdpProfile.PeakToTrough())
	fmt.Printf("residue spread:     %.0f → %.0f GB (ratio %.2f; paper ratio 0.51)\n",
		tipProfile.ResidueSpread(), tdpProfile.ResidueSpread(),
		tdpProfile.ResidueSpread()/tipProfile.ResidueSpread())
	fmt.Printf("redistributed:      %.0f GB moved across the day\n", area)
}
