// Quickstart: build a small time-dependent-pricing scenario, solve for the
// optimal per-period rewards, and print the savings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tdp/internal/core"
)

func main() {
	// A 6-period "day" with a single evening peak. Demand is split into
	// two session types: patient bulk transfers (β = 0.5) and impatient
	// interactive traffic (β = 4). Units: 10 MBps and $0.10, as in the
	// paper's simulations.
	scn := &core.Scenario{
		Periods: 6,
		Demand: [][]float64{
			{4, 2}, // night: mostly bulk
			{3, 2},
			{4, 4},
			{6, 8}, // evening peak
			{8, 12},
			{6, 6},
		},
		Betas:    []float64{0.5, 4},
		Capacity: []float64{14, 14, 14, 14, 14, 14},
		Cost:     core.LinearCost(3), // $0.30 per 10 MBps of excess
	}

	model, err := core.NewStaticModel(scn)
	if err != nil {
		log.Fatal(err)
	}
	pricing, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Time-dependent pricing quickstart")
	fmt.Println("period  TIP demand  reward($0.10)  TDP usage")
	totals := scn.TotalDemand()
	for i := 0; i < scn.Periods; i++ {
		fmt.Printf("%5d %10.1f %13.3f %10.2f\n",
			i+1, totals[i], pricing.Rewards[i], pricing.Usage[i])
	}
	fmt.Printf("\nISP cost: %.2f → %.2f ($0.10 units), savings %.1f%%\n",
		pricing.TIPCost, pricing.Cost, 100*pricing.Savings())
	fmt.Printf("reward outlay: %.2f; congestion cost avoided: %.2f\n",
		pricing.RewardOutlay, pricing.TIPCost-(pricing.Cost-pricing.RewardOutlay))
}
