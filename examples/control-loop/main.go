// Control loop: the paper's Fig. 1 end to end over several simulated
// days. The ISP starts with a flat (wrong) patience prior, publishes
// optimized rewards, measures the population's per-class reaction,
// re-profiles patience with the §IV machinery, and re-prices — watching
// its estimates converge to the population's true behavior.
//
//	go run ./examples/control-loop
package main

import (
	"fmt"
	"log"

	"tdp/internal/core"
	"tdp/internal/tube"
)

func main() {
	// The hidden truth: web is impatient, video is patient.
	trueBetas := []float64{4, 1.5, 0.5}
	base := []float64{22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26}
	demand := make([][]float64, 12)
	for i := range demand {
		demand[i] = []float64{base[i] * 0.2, base[i] * 0.3, base[i] * 0.5}
	}
	capacity := make([]float64, 12)
	for i := range capacity {
		capacity[i] = 18
	}
	cost := core.LinearCost(3)

	population, err := core.NewStaticModel(&core.Scenario{
		Periods: 12, Demand: demand, Betas: trueBetas,
		Capacity: capacity, Cost: cost,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := tube.NewController(tube.ControllerConfig{
		Demand:       demand,
		Classes:      []string{"web", "ftp", "video"},
		InitialBetas: []float64{2.5, 2.5, 2.5}, // the ISP knows nothing yet
		Capacity:     capacity,
		Cost:         cost,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tipCongestion float64
	for i, x := range base {
		tipCongestion += cost.Value(x - capacity[i])
	}
	fmt.Println("TUBE control loop — publish → react → profile → re-price")
	fmt.Printf("true patience (web ftp video): %.2f   TIP congestion: %.0f\n\n", trueBetas, tipCongestion)
	fmt.Println("day   beta estimates (web ftp video)   congestion   reprofiled")

	react := func(rewards []float64) ([][]float64, error) {
		return population.UsageByType(rewards), nil
	}
	for day := 1; day <= 5; day++ {
		rep, err := ctrl.RunDay(react)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %6.2f %6.2f %6.2f %18.1f   %v\n",
			rep.Day, rep.Betas[0], rep.Betas[1], rep.Betas[2],
			rep.CongestionCost, rep.Reestimated)
	}
	fmt.Println("\nthe flat 2.50 prior resolves into the true ordering (web > ftp > video),")
	fmt.Println("and every TDP day keeps congestion below the TIP baseline.")
}
