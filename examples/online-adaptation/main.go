// Online adaptation: the §III-B online algorithm reacting to real-time
// traffic. The ISP expects 230 MBps in period 1 but observes 200; the
// reward for deferring into period 1 rises, and the adapted schedule beats
// the nominal one on the day that actually happened (§V-B online).
//
//	go run ./examples/online-adaptation
package main

import (
	"fmt"
	"log"

	"tdp/internal/core"
	"tdp/internal/experiments"
	"tdp/internal/waiting"
)

func main() {
	online, err := core.NewOnlineOptimizer(experiments.Dynamic48(), core.OnlineConfig{
		UseDynamic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	nominal := online.Rewards()
	fmt.Println("Online price adaptation (dynamic model, 48 periods)")
	fmt.Printf("nominal p1 (defer to period 1): $%.4f\n", 0.10*nominal[0])

	// Period 1 actually arrives at 200 MBps instead of 230.
	actual := make([]float64, len(waiting.PatienceIndices))
	for j, v := range waiting.Dist48[0] {
		actual[j] = v * 20.0 / 23.0
	}
	if _, err := online.Advance(actual); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed 200 MBps in period 1 → adjusted p1: $%.4f (paper: 0.045 → 0.057)\n",
		0.10*online.Rewards()[0])

	// The rest of the day arrives as estimated; the optimizer re-tunes
	// one reward per elapsed period.
	for i := 1; i < 48; i++ {
		if _, err := online.Advance(waiting.Dist48[i/2][:]); err != nil {
			log.Fatal(err)
		}
	}
	adapted := online.Rewards()

	costNominal := online.CostAt(nominal)
	costAdapted := online.CostAt(adapted)
	fmt.Printf("\ndaily cost per user on the actual day:\n")
	fmt.Printf("  nominal schedule: $%.3f (paper: $0.66)\n", experiments.PerUserDollars(costNominal))
	fmt.Printf("  adapted schedule: $%.3f (paper: $0.63)\n", experiments.PerUserDollars(costAdapted))
	fmt.Printf("  improvement: %.1f%% (paper: ≈5%%)\n",
		100*(costNominal-costAdapted)/costNominal)

	var moved int
	for i := range nominal {
		if diff := adapted[i] - nominal[i]; diff > 0.005 || diff < -0.005 {
			moved++
		}
	}
	fmt.Printf("  rewards materially adjusted in %d of 48 periods\n", moved)
}
