// TUBE testbed: the §VI-C proof-of-concept experiment end to end — a
// 10 MBps bottleneck shared by an impatient user (group 1) and a patient
// user (group 2) with web/ftp/streaming-video traffic plus background
// fluctuation. TDP rewards move the patient user's heavy classes out of
// the busy start of the hour (Figs. 11 vs 12).
//
//	go run ./examples/tube-testbed
package main

import (
	"fmt"
	"log"
	"strings"

	"tdp/internal/emul"
)

func main() {
	cfg := emul.DefaultConfig()
	tip, tdp, err := emul.RunComparison(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TUBE testbed emulation — 10 MBps bottleneck, one hour (12×5 min)")
	fmt.Printf("published rewards ($0.10): %.2f\n\n", tdp.Rewards)

	for _, user := range []string{"user1", "user2"} {
		fmt.Printf("%s (%s)\n", user, patienceLabel(user))
		fmt.Println("  min   TIP MB  TDP MB")
		for i := 0; i < cfg.Periods; i++ {
			tipMB := tip.ServedByUserPeriod[user][i]
			tdpMB := tdp.ServedByUserPeriod[user][i]
			fmt.Printf("  %3d %8.0f %7.0f  %s\n",
				i*5, tipMB, tdpMB, strings.Repeat("#", int(tdpMB/100)))
		}
		mc := tdp.MovedByUserClass[user]
		fmt.Printf("  moved by TDP: web %.1f MB, ftp %.1f MB, video %.1f MB\n\n",
			mc["web"], mc["ftp"], mc["video"])
	}
	fmt.Println("(paper, user 2: web 143.2 MB, ftp 707.8 MB, video 8460.7 MB;")
	fmt.Println(" user 1 never defers — patience too low for the offered rewards)")
	fmt.Printf("background traffic delivered: %.0f MB\n", tdp.BackgroundServed)
}

func patienceLabel(user string) string {
	if user == "user1" {
		return "impatient group"
	}
	return "patient group"
}
