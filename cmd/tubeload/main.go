// Command tubeload is the load-generation harness for the TUBE usage
// ingestion path: it starts a TUBE Optimizer price server on a real TCP
// listener, drives M synthetic users × K usage reports at it over HTTP
// from a bounded worker pool, and reports sustained throughput plus
// p50/p95/p99 request latency. With -compare it pits the per-report
// POST /usage endpoint against the batched POST /usage/batch endpoint
// and the binary POST /usage/wire endpoint and prints the
// sustained-reports/s speedups.
//
// With -cluster N the harness instead brings up N clustered nodes on
// real listeners, drives the full load through a consistent-hash
// Router, and — mid-drive — joins a new node at 40% and decommissions
// one at 70%, verifying afterwards that every report was accounted
// exactly once across all engines despite the rebalances.
//
// Latencies are accumulated in a streaming obs.Histogram — the workers
// observe concurrently on the hot path, exactly like the instrumented
// server — and the percentiles are histogram quantiles. -metrics-out
// dumps the full Prometheus exposition (client, server, and process
// registries) after the run; -pprof mounts /debug/pprof on the server
// under load.
//
// After the drive, the harness verifies in-process that the sharded
// accounting engine saw every report exactly once (volumes are integral
// MB, so the check is exact).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/core"
	"tdp/internal/obs"
	"tdp/internal/parallel"
	"tdp/internal/scfg"
	"tdp/internal/tube"
	"tdp/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubeload:", err)
		os.Exit(1)
	}
}

type loadConfig struct {
	addr       string
	users      int
	reports    int
	batch      int
	jobs       int
	shards     int
	stream     bool
	pprof      bool
	metricsOut string
	// scenario and classes parameterize the optimizer under load; nil
	// falls back to the built-in 12-period deployment.
	scenario *core.Scenario
	classes  []string
}

// optScenario returns the deployment the optimizer runs under load.
func (c *loadConfig) optScenario() *core.Scenario {
	if c.scenario != nil {
		return c.scenario.Clone()
	}
	return loadScenario()
}

// optClasses returns the class names reports are tagged with.
func (c *loadConfig) optClasses() []string {
	if c.classes != nil {
		return c.classes
	}
	return loadClasses
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubeload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the price server under load")
	users := fs.Int("users", 256, "number of synthetic users")
	reports := fs.Int("reports", 64, "usage reports per user")
	batch := fs.Int("batch", 64, "reports per request in batch mode")
	jobs := fs.Int("jobs", 0, "concurrent load workers (0 = one per CPU)")
	shards := fs.Int("shards", 0, "measurement engine shards (0 = auto)")
	mode := fs.String("mode", "batch", `ingestion mode: "single", "batch" or "wire"`)
	compare := fs.Bool("compare", false, "run all modes and report the batch/single and wire/batch speedups")
	clusterN := fs.Int("cluster", 0, "drive N clustered nodes through the consistent-hash router, with a mid-run join and leave (0 = single-node modes)")
	stream := fs.Bool("stream", false, "attach a streaming delta subscriber to the ingest engine and verify conservation under load")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof on the server under load")
	metricsOut := fs.String("metrics-out", "", "write the final Prometheus metrics snapshot to this file (- for stdout)")
	cfgPath := fs.String("config", "", "scenario config file (scfg format): the optimizer under load runs this workload's scenario and classes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 || *reports < 1 || *batch < 1 {
		return fmt.Errorf("users, reports and batch must be ≥ 1")
	}
	cfg := loadConfig{
		addr: *addr, users: *users, reports: *reports,
		batch: *batch, jobs: *jobs, shards: *shards,
		stream: *stream, pprof: *pprofFlag, metricsOut: *metricsOut,
	}
	if *cfgPath != "" {
		sc, err := scfg.ParseFile(*cfgPath)
		if err != nil {
			return err
		}
		if cfg.scenario, err = sc.Compile(); err != nil {
			return err
		}
		cfg.classes = sc.ClassNames()
		fmt.Fprintf(out, "workload config: %s (%d periods, %d classes)\n",
			sc.Name, cfg.scenario.Periods, len(cfg.classes))
	}
	fmt.Fprintf(out, "tubeload: %d users × %d reports = %d reports, %d workers, shards=%d\n",
		cfg.users, cfg.reports, cfg.users*cfg.reports, parallel.Jobs(cfg.jobs), cfg.shards)

	if *clusterN > 0 {
		return runCluster(cfg, *clusterN, out)
	}

	var last *loadResult
	if *compare {
		single, err := runLoad(cfg, modeSingle)
		if err != nil {
			return err
		}
		single.print(out)
		batched, err := runLoad(cfg, modeBatch)
		if err != nil {
			return err
		}
		batched.print(out)
		wired, err := runLoad(cfg, modeWire)
		if err != nil {
			return err
		}
		wired.print(out)
		fmt.Fprintf(out, "batch/single speedup: %.1f× sustained reports/s\n",
			batched.throughput()/single.throughput())
		fmt.Fprintf(out, "wire/batch speedup:   %.2f× sustained reports/s\n",
			wired.throughput()/batched.throughput())
		last = wired
	} else {
		switch *mode {
		case modeSingle, modeBatch, modeWire:
		default:
			return fmt.Errorf("unknown mode %q (want single, batch or wire)", *mode)
		}
		res, err := runLoad(cfg, *mode)
		if err != nil {
			return err
		}
		res.print(out)
		last = res
	}
	if cfg.metricsOut != "" {
		// In -compare mode the snapshot covers the last (batched) run's
		// client and server registries plus the shared process registry.
		if err := dumpMetrics(cfg.metricsOut, out, last.registries...); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the merged exposition to path ("-" = the harness's
// own output writer).
func dumpMetrics(path string, out io.Writer, regs ...*obs.Registry) error {
	if path == "-" {
		return obs.WritePrometheusAll(out, regs...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := obs.WritePrometheusAll(f, regs...); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}

var loadClasses = []string{"web", "ftp", "video"}

// loadScenario is a 12-period, 3-class deployment for the optimizer
// under load; the ingestion path does not depend on its numbers.
func loadScenario() *core.Scenario {
	demand := make([][]float64, 12)
	base := []float64{22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26}
	capacity := make([]float64, 12)
	for i := range demand {
		demand[i] = []float64{base[i] * 0.2, base[i] * 0.3, base[i] * 0.5}
		capacity[i] = 18
	}
	return &core.Scenario{
		Periods:  12,
		Demand:   demand,
		Betas:    []float64{4, 1.5, 0.5},
		Capacity: capacity,
		Cost:     core.LinearCost(3),
	}
}

type loadResult struct {
	mode       string
	reports    int
	requests   int
	elapsed    time.Duration
	p50        time.Duration
	p95        time.Duration
	p99        time.Duration
	verified   string
	registries []*obs.Registry // client, server, and process registries for -metrics-out
}

func (r *loadResult) throughput() float64 {
	return float64(r.reports) / r.elapsed.Seconds()
}

func (r *loadResult) print(out io.Writer) {
	fmt.Fprintf(out, "%-10s %d reports / %d requests in %v → %.0f reports/s\n",
		r.mode+":", r.reports, r.requests, r.elapsed.Round(time.Millisecond), r.throughput())
	fmt.Fprintf(out, "           latency p50 %v  p95 %v  p99 %v\n",
		r.p50.Round(time.Microsecond), r.p95.Round(time.Microsecond), r.p99.Round(time.Microsecond))
	fmt.Fprintf(out, "           %s\n", r.verified)
}

// latencyBuckets resolves client-side request latency from 1µs to ~12s
// with ~±20% bucket resolution (factor-1.5 geometric spacing).
var latencyBuckets = obs.ExpBuckets(1e-6, 1.5, 40)

// Single-node ingestion modes.
const (
	modeSingle = "single"
	modeBatch  = "batch"
	modeWire   = "wire"
)

// runLoad starts a fresh optimizer+server, drives the full load, and
// verifies the accounted totals in-process before tearing down.
func runLoad(cfg loadConfig, loadMode string) (*loadResult, error) {
	classes := cfg.optClasses()
	opt, err := tube.NewOptimizer(tube.OptimizerConfig{
		Scenario: cfg.optScenario(),
		Classes:  classes,
		Shards:   cfg.shards,
	})
	if err != nil {
		return nil, err
	}
	srv, err := tube.NewServer(opt)
	if err != nil {
		return nil, err
	}
	if cfg.pprof {
		srv.EnablePprof()
	}
	mode := loadMode
	if loadMode != modeSingle {
		mode = fmt.Sprintf("%s=%d", loadMode, cfg.batch)
	}
	var tab *wire.ClassTable
	if loadMode == modeWire {
		// The wire endpoint exists on clustered servers; a one-member ring
		// makes this node own every user.
		tab, err = wire.NewClassTable(classes)
		if err != nil {
			return nil, err
		}
		if err := srv.EnableCluster(tube.ClusterOptions{
			SelfID:     "n0",
			Ring:       cluster.Config{Version: 1, Members: []cluster.Member{{ID: "n0", Addr: "http://self"}}},
			QueueDepth: 4096,
		}); err != nil {
			return nil, err
		}
	}
	// The harness's own registry: client-observed latency, striped so
	// the workers' concurrent Observes stay off each other's cache lines
	// — the same hot path the server's middleware runs.
	clientReg := obs.NewRegistry()
	lat := clientReg.Histogram("tubeload_request_seconds",
		"client-observed request latency", obs.Labels{"mode": mode}, latencyBuckets)
	// With -stream, a live delta subscriber folds every accepted report
	// into striped per-class adders on the recording goroutines — the
	// same hot path the streaming profiler's consistency sketch rides —
	// and the post-drive check verifies the folded totals match the
	// sharded engine's authoritative sums exactly.
	var streamed []*obs.FloatAdder
	if cfg.stream {
		eng := opt.Measurement().Engine()
		streamed = make([]*obs.FloatAdder, len(eng.Classes()))
		for j := range streamed {
			streamed[j] = obs.NewFloatAdder()
		}
		eng.Subscribe(func(byClass []float64) {
			for j, v := range byClass {
				if v != 0 {
					streamed[j].Add(v)
				}
			}
		})
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveErr
	}()
	base := "http://" + ln.Addr().String()

	workers := parallel.Jobs(cfg.jobs)
	start := time.Now()
	err = parallel.ForEach(context.Background(), workers, workers, func(w int) error {
		client := &http.Client{
			Timeout:   30 * time.Second,
			Transport: &http.Transport{MaxIdleConnsPerHost: 2},
		}
		defer client.CloseIdleConnections()
		var enc *wire.Encoder
		if loadMode == modeWire {
			enc = wire.NewEncoder(tab) // encoders are single-goroutine; one per worker
		}
		for u := w; u < cfg.users; u += workers {
			user := fmt.Sprintf("u%06d", u)
			switch loadMode {
			case modeBatch, modeWire:
				for lo := 0; lo < cfg.reports; lo += cfg.batch {
					hi := min(lo+cfg.batch, cfg.reports)
					reps := make([]tube.UsageReport, 0, hi-lo)
					for r := lo; r < hi; r++ {
						reps = append(reps, tube.UsageReport{
							User: user, Class: classes[r%len(classes)], VolumeMB: 1,
						})
					}
					var d time.Duration
					var err error
					if loadMode == modeWire {
						d, err = postWireTimed(client, base+"/usage/wire", enc, reps)
					} else {
						d, err = postTimed(client, base+"/usage/batch", reps, http.StatusOK)
					}
					if err != nil {
						return err
					}
					lat.Observe(d.Seconds())
				}
			default:
				for r := 0; r < cfg.reports; r++ {
					rep := tube.UsageReport{
						User: user, Class: classes[r%len(classes)], VolumeMB: 1,
					}
					d, err := postTimed(client, base+"/usage", rep, http.StatusNoContent)
					if err != nil {
						return err
					}
					lat.Observe(d.Seconds())
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if loadMode == modeWire {
		// Wire batches are acked on admission; flush the apply queue so
		// the engine totals below are final.
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.DrainCluster(dctx); err != nil {
			return nil, err
		}
		if shed := srv.ShedReports(); shed != 0 {
			return nil, fmt.Errorf("wire queue shed %d reports under load", shed)
		}
	}

	// Verify the sharded engine accounted every report exactly once.
	total := float64(cfg.users * cfg.reports)
	var accounted float64
	for _, v := range opt.Measurement().ClassTotals() {
		accounted += v
	}
	accepted := opt.Measurement().Engine().Accepted()
	// Every report carries exactly 1 MB, so the sums are integers well
	// below 2^53 and exact equality is the correct exactly-once check: a
	// tolerance would mask a lost or doubled report.
	//lint:allow floateq integral sums below 2^53 are exact; tolerance would mask lost reports
	if accounted != total || accepted != int64(cfg.users*cfg.reports) {
		return nil, fmt.Errorf("accounting mismatch: %.0f MB / %d reports accounted, want %.0f / %d",
			accounted, accepted, total, cfg.users*cfg.reports)
	}
	verified := fmt.Sprintf("verified: %d reports, %.0f MB accounted", accepted, accounted)
	if cfg.stream {
		var folded float64
		for _, a := range streamed {
			folded += a.Value()
		}
		// Same exactness argument as above: integral MB sums below 2^53.
		//lint:allow floateq integral sums below 2^53 are exact; tolerance would mask lost deltas
		if folded != accounted {
			return nil, fmt.Errorf("stream conservation mismatch: subscriber folded %.0f MB, engine accounted %.0f MB",
				folded, accounted)
		}
		verified += fmt.Sprintf("; stream subscriber folded %.0f MB (exact match)", folded)
	}

	// One merged snapshot serves all three quantiles (and the request
	// count) — no sorting, no per-request slice retention.
	snap := lat.Snapshot()
	return &loadResult{
		mode:       mode,
		reports:    cfg.users * cfg.reports,
		requests:   int(snap.Count),
		elapsed:    elapsed,
		p50:        secondsToDuration(snap.Quantile(0.50)),
		p95:        secondsToDuration(snap.Quantile(0.95)),
		p99:        secondsToDuration(snap.Quantile(0.99)),
		verified:   verified,
		registries: []*obs.Registry{clientReg, srv.Registry(), obs.Default()},
	}, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// postWireTimed encodes a batch with the worker's encoder and posts it
// to the binary ingest endpoint, requiring full acceptance.
func postWireTimed(client *http.Client, url string, enc *wire.Encoder, reps []tube.UsageReport) (time.Duration, error) {
	body, err := enc.Encode(reps)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(url, cluster.WireContentType, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	var ack cluster.WireAck
	decErr := json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	d := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	if decErr != nil {
		return 0, fmt.Errorf("POST %s: decode ack: %w", url, decErr)
	}
	if ack.Accepted != len(reps) || len(ack.Rejected) > 0 {
		return 0, fmt.Errorf("POST %s: accepted %d of %d (%d rejected)",
			url, ack.Accepted, len(reps), len(ack.Rejected))
	}
	return d, nil
}

func postTimed(client *http.Client, url string, payload any, wantStatus int) (time.Duration, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(t0)
	if resp.StatusCode != wantStatus {
		return 0, fmt.Errorf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	return d, nil
}
