package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/obs"
	"tdp/internal/parallel"
	"tdp/internal/tube"
	"tdp/internal/wire"
)

// loadNode is one clustered tube server under harness control.
type loadNode struct {
	id       string
	opt      *tube.Optimizer
	srv      *tube.Server
	ln       net.Listener
	addr     string
	serveErr chan error
}

func newLoadNode(cfg loadConfig, i int) (*loadNode, error) {
	opt, err := tube.NewOptimizer(tube.OptimizerConfig{
		Scenario: cfg.optScenario(),
		Classes:  cfg.optClasses(),
		Shards:   cfg.shards,
	})
	if err != nil {
		return nil, err
	}
	srv, err := tube.NewServer(opt)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &loadNode{
		id:   fmt.Sprintf("n%d", i),
		opt:  opt,
		srv:  srv,
		ln:   ln,
		addr: "http://" + ln.Addr().String(),
	}, nil
}

// enable joins the node to the ring (leader = the ring's first member)
// and starts serving.
func (nd *loadNode) enable(ring cluster.Config) error {
	opts := tube.ClusterOptions{SelfID: nd.id, Ring: ring, QueueDepth: 4096}
	if leader := ring.Members[0]; leader.ID != nd.id {
		opts.LeaderURL = leader.Addr
		opts.ReplicateEvery = 200 * time.Millisecond
		opts.ReplicateFanout = 2 // followers pull through the fan-out tree
	}
	if err := nd.srv.EnableCluster(opts); err != nil {
		return err
	}
	nd.serveErr = make(chan error, 1)
	go func() { nd.serveErr <- nd.srv.Serve(nd.ln) }()
	return nil
}

func (nd *loadNode) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = nd.srv.Shutdown(ctx)
	if nd.serveErr != nil {
		<-nd.serveErr
	}
}

// putRing pushes a ring config to one node's control endpoint.
func putRing(client *http.Client, addr string, cfg cluster.Config) error {
	body, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, addr+"/cluster/ring", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("PUT ring to %s: %w", addr, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT ring to %s: status %d", addr, resp.StatusCode)
	}
	return nil
}

// runCluster drives the full load through a consistent-hash Router over
// n real nodes, rebalancing twice mid-drive: a node joins at 40% of the
// stream and one leaves (ring removal; the process stays up to drain
// and be accounted) at 70%. The router is deliberately NOT told about
// either ring change — it discovers both through ownership rejections
// and heals itself from the acks' ring versions, which is exactly the
// control-plane race a real deployment sees. Afterwards the harness
// asserts every report was accounted exactly once across all engines.
func runCluster(cfg loadConfig, n int, out io.Writer) error {
	if n < 2 {
		return fmt.Errorf("cluster mode needs ≥ 2 nodes (got %d)", n)
	}
	nodes := make([]*loadNode, 0, n+1)
	ring1 := cluster.Config{Version: 1}
	for i := 0; i < n; i++ {
		nd, err := newLoadNode(cfg, i)
		if err != nil {
			return err
		}
		nodes = append(nodes, nd)
		ring1.Members = append(ring1.Members, cluster.Member{ID: nd.id, Addr: nd.addr})
	}
	for _, nd := range nodes {
		if err := nd.enable(ring1); err != nil {
			return err
		}
	}
	defer func() {
		for _, nd := range nodes {
			nd.shutdown()
		}
	}()

	// The report stream is user-interleaved so every wire batch spans
	// owners, and GENERATED, not pre-materialized: at a million users the
	// old [][]ingest.Report slice was the harness's own memory ceiling
	// (users × reports × 48 bytes before the first Send). Each worker
	// fills a pooled buffer per batch instead.
	classes := cfg.optClasses()
	total := cfg.users * cfg.reports
	gen := newBatchGen(cfg.users, cfg.reports, cfg.batch, classes)
	nBatches := gen.numBatches()

	tab, err := wire.NewClassTable(classes)
	if err != nil {
		return err
	}
	initialRing, err := cluster.Build(ring1)
	if err != nil {
		return err
	}
	sender := cluster.NewHTTPSender(30 * time.Second)
	client := sender.Client
	rt, err := cluster.NewRouter(tab, initialRing, sender)
	if err != nil {
		return err
	}
	clientReg := obs.NewRegistry()
	rt.Instrument(clientReg)
	lat := clientReg.Histogram("tubeload_request_seconds",
		"client-observed router Send latency", obs.Labels{"mode": "cluster"}, latencyBuckets)

	var mu sync.Mutex
	agg := cluster.RouteStats{PerNode: make(map[string]int)}
	drive := func(from, to int) error {
		workers := parallel.Jobs(cfg.jobs)
		return parallel.ForEach(context.Background(), workers, workers, func(w int) error {
			for b := from + w; b < to; b += workers {
				buf := gen.fill(b)
				t0 := time.Now()
				stats, err := rt.Send(context.Background(), *buf)
				gen.put(buf) // Send retains nothing: release on every path
				if err != nil {
					return err
				}
				lat.Observe(time.Since(t0).Seconds())
				mu.Lock()
				agg.Reports += stats.Reports
				agg.Rerouted += stats.Rerouted
				agg.Shed += stats.Shed
				for id, c := range stats.PerNode {
					agg.PerNode[id] += c
				}
				mu.Unlock()
			}
			return nil
		})
	}

	joinAt, leaveAt := nBatches*40/100, nBatches*70/100
	start := time.Now()
	if err := drive(0, joinAt); err != nil {
		return err
	}

	// Join: a new node comes up on ring v2; every NODE learns v2, the
	// router stays on v1 until rejections teach it otherwise.
	joiner, err := newLoadNode(cfg, n)
	if err != nil {
		return err
	}
	ring2 := cluster.Config{Version: 2, Members: append(append([]cluster.Member(nil), ring1.Members...),
		cluster.Member{ID: joiner.id, Addr: joiner.addr})}
	if err := joiner.enable(ring2); err != nil {
		return err
	}
	nodes = append(nodes, joiner)
	for _, nd := range nodes[:n] {
		if err := putRing(client, nd.addr, ring2); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "cluster: %s joined (ring v2) at batch %d/%d\n", joiner.id, joinAt, nBatches)
	if err := drive(joinAt, leaveAt); err != nil {
		return err
	}

	// Leave: n1 is removed from the ring but its process stays up — the
	// drain-before-decommission pattern — so its accounted reports still
	// count in the final exactly-once check.
	leaver := nodes[1]
	ring3 := cluster.Config{Version: 3}
	for _, m := range ring2.Members {
		if m.ID != leaver.id {
			ring3.Members = append(ring3.Members, m)
		}
	}
	for _, nd := range nodes {
		if err := putRing(client, nd.addr, ring3); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "cluster: %s left the ring (ring v3) at batch %d/%d\n", leaver.id, leaveAt, nBatches)
	if err := drive(leaveAt, nBatches); err != nil {
		return err
	}
	elapsed := time.Since(start)

	// Flush every apply queue, then verify exactly-once accounting
	// across all engines (including the joiner's and the leaver's).
	var accepted, shed int64
	var accountedMB float64
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, nd := range nodes {
		if err := nd.srv.DrainCluster(dctx); err != nil {
			return err
		}
		eng := nd.opt.Measurement().Engine()
		accepted += eng.Accepted()
		shed += nd.srv.ShedReports()
		for _, v := range eng.ClassTotals() {
			accountedMB += v
		}
	}
	// Volumes are integral MB well below 2^53, so exact equality is the
	// correct exactly-once check: a tolerance would mask a lost or
	// doubled report.
	//lint:allow floateq integral sums below 2^53 are exact; tolerance would mask lost reports
	if accepted != int64(total) || accountedMB != float64(total) {
		return fmt.Errorf("exactly-once violated: %d reports / %.0f MB accounted across %d engines, want %d / %d (shed %d)",
			accepted, accountedMB, len(nodes), total, total, shed)
	}
	if shed != 0 {
		return fmt.Errorf("cluster shed %d reports with an underloaded queue", shed)
	}
	if agg.Rerouted == 0 {
		return fmt.Errorf("no reports rerouted across two rebalances — the join/leave path was not exercised")
	}

	snap := lat.Snapshot()
	fmt.Fprintf(out, "cluster:   %d reports / %d batches over %d→%d→%d nodes in %v → %.0f reports/s\n",
		total, nBatches, n, n+1, n, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Fprintf(out, "           latency p50 %v  p95 %v  p99 %v\n",
		secondsToDuration(snap.Quantile(0.50)).Round(time.Microsecond),
		secondsToDuration(snap.Quantile(0.95)).Round(time.Microsecond),
		secondsToDuration(snap.Quantile(0.99)).Round(time.Microsecond))
	ids := make([]string, 0, len(agg.PerNode))
	for id := range agg.PerNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(out, "           per-node:")
	for _, id := range ids {
		fmt.Fprintf(out, " %s=%d", id, agg.PerNode[id])
	}
	fmt.Fprintf(out, "\n           rerouted %d reports across 2 rebalances; router healed to ring v%d\n",
		agg.Rerouted, rt.Ring().Version())
	fmt.Fprintf(out, "           drop rate %.2f%% (%d shed, cluster_shed_reports_total)\n",
		100*float64(shed)/float64(total), shed)
	fmt.Fprintf(out, "           verified: %d reports, %.0f MB accounted exactly once across %d engines\n",
		accepted, accountedMB, len(nodes))
	if cfg.metricsOut != "" {
		regs := []*obs.Registry{clientReg}
		for _, nd := range nodes {
			regs = append(regs, nd.srv.Registry())
		}
		if err := dumpMetrics(cfg.metricsOut, out, append(regs, obs.Default())...); err != nil {
			return err
		}
	}
	return nil
}
