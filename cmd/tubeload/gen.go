package main

import (
	"fmt"
	"sync"

	"tdp/internal/ingest"
)

// batchGen streams the cluster drive's report batches instead of
// pre-materializing them: batch b is regenerated on demand from its
// global report range, so the harness's footprint is O(users) for the
// shared name table plus one pooled buffer per in-flight worker —
// a 1M-user drive no longer holds users × reports Report structs
// before the first Send.
//
// The stream order is a pure function of the global report index g
// (round r = g/users, user u = g%users), identical to the old
// pre-sliced loop, so conservation checks and rebalance timing are
// unchanged.
type batchGen struct {
	names   []string // shared user-name table: one allocation per user, ever
	classes []string
	users   int
	batch   int
	total   int
	pool    sync.Pool // *[]ingest.Report, cap == batch
}

func newBatchGen(users, reports, batch int, classes []string) *batchGen {
	names := make([]string, users)
	for u := range names {
		names[u] = fmt.Sprintf("u%06d", u)
	}
	return &batchGen{
		names:   names,
		classes: classes,
		users:   users,
		batch:   batch,
		total:   users * reports,
	}
}

// numBatches returns how many batches the stream slices into.
func (g *batchGen) numBatches() int { return (g.total + g.batch - 1) / g.batch }

// buf borrows a batch buffer from the pool.
//
//tubelint:pooled
func (g *batchGen) buf() *[]ingest.Report {
	if v := g.pool.Get(); v != nil {
		return v.(*[]ingest.Report)
	}
	buf := make([]ingest.Report, 0, g.batch)
	return &buf
}

// fill regenerates batch b into a pooled buffer. Callers hand the
// buffer back with put once the send is done — on every path.
//
//tubelint:pooled
func (g *batchGen) fill(b int) *[]ingest.Report {
	buf := g.buf()
	reps := (*buf)[:0]
	lo := b * g.batch
	hi := lo + g.batch
	if hi > g.total {
		hi = g.total
	}
	for i := lo; i < hi; i++ {
		r, u := i/g.users, i%g.users
		reps = append(reps, ingest.Report{
			User:     g.names[u],
			Class:    g.classes[r%len(g.classes)],
			VolumeMB: 1,
		})
	}
	*buf = reps
	return buf
}

// put releases a buffer borrowed through fill.
func (g *batchGen) put(buf *[]ingest.Report) { g.pool.Put(buf) }
