package main

import (
	"strings"
	"testing"
	"time"
)

func TestTubeloadCompare(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-users", "8", "-reports", "10", "-batch", "4", "-jobs", "2", "-compare"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"8 users × 10 reports = 80 reports",
		"single:",
		"batch=4:",
		"reports/s",
		"latency p50",
		"verified: 80 reports, 80 MB accounted",
		"batch/single speedup:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubeloadSingleMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-users", "4", "-reports", "5", "-mode", "single", "-jobs", "2"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "single:    20 reports / 20 requests") {
		t.Errorf("single mode output:\n%s", out)
	}
}

func TestTubeloadBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-users", "0"},
		{"-reports", "0"},
		{"-batch", "0"},
		{"-mode", "turbo"},
		{"-addr", "256.0.0.1:99999"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
}
