package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTubeloadCompare(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-users", "8", "-reports", "10", "-batch", "4", "-jobs", "2", "-compare"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"8 users × 10 reports = 80 reports",
		"single:",
		"batch=4:",
		"reports/s",
		"latency p50",
		"verified: 80 reports, 80 MB accounted",
		"batch/single speedup:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubeloadSingleMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-users", "4", "-reports", "5", "-mode", "single", "-jobs", "2"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "single:    20 reports / 20 requests") {
		t.Errorf("single mode output:\n%s", out)
	}
}

func TestTubeloadWireMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-users", "8", "-reports", "8", "-batch", "4", "-mode", "wire", "-jobs", "2"}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "wire=4:    64 reports / 16 requests") ||
		!strings.Contains(out, "verified: 64 reports, 64 MB accounted") {
		t.Errorf("wire mode output:\n%s", out)
	}
}

// TestTubeloadCluster drives the clustered path end to end: 3 real
// nodes, a join and a leave mid-stream, exactly-once verified by run()
// itself (it returns an error on any accounting mismatch).
func TestTubeloadCluster(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-users", "32", "-reports", "12", "-batch", "16", "-cluster", "3", "-jobs", "2"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"n3 joined (ring v2)",
		"n1 left the ring (ring v3)",
		"over 3→4→3 nodes",
		"rerouted",
		"router healed to ring v3",
		"drop rate 0.00% (0 shed",
		"verified: 384 reports, 384 MB accounted exactly once across 4 engines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q\n%s", want, out)
		}
	}
}

func TestTubeloadBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-users", "0"},
		{"-reports", "0"},
		{"-batch", "0"},
		{"-mode", "turbo"},
		{"-addr", "256.0.0.1:99999"},
		{"-cluster", "1"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestTubeloadMetricsOut runs a small load with -metrics-out and checks
// the dump is a merged Prometheus exposition covering the harness's
// client histogram, the server's handler counters, and the ingest
// engine.
func TestTubeloadMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var sb strings.Builder
	if err := run([]string{"-users", "4", "-reports", "5", "-batch", "5", "-jobs", "2", "-metrics-out", path}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics dump: %v", err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE tubeload_request_seconds histogram\n",
		`tubeload_request_seconds_bucket{mode="batch=5",le="+Inf"} 4` + "\n",
		`tubeload_request_seconds_count{mode="batch=5"} 4` + "\n",
		`tube_http_requests_total{handler="usage_batch"} 4` + "\n",
		"ingest_reports_total 20\n",
		"ingest_batches_total 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q\n%s", want, out)
		}
	}
}

func TestSecondsToDuration(t *testing.T) {
	if got := secondsToDuration(0.0015); got != 1500*time.Microsecond {
		t.Errorf("secondsToDuration(0.0015) = %v", got)
	}
	if got := secondsToDuration(0); got != 0 {
		t.Errorf("secondsToDuration(0) = %v", got)
	}
}
