package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTubeloadConfig(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-config", "../../examples/scenarios/static12.json",
		"-users", "6", "-reports", "8", "-batch", "4", "-jobs", "2"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"workload config: static12 (12 periods, 10 classes)",
		"verified: 48 reports, 48 MB accounted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubeloadBadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name": "x", "scenario": {"periods": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}, &strings.Builder{}); err == nil {
		t.Error("invalid config accepted")
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "missing.json")}, &strings.Builder{}); err == nil {
		t.Error("missing config accepted")
	}
}
