package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallConfig is a fast 6-period workload for CLI tests.
const smallConfig = `{
  "name": "cli-test",
  "scenario": {
    "periods": 6,
    "classes": ["web", "bulk"],
    "betas": [3, 0.8],
    "demand": {"rows": [[30, 50], [20, 35], [8, 12], [5, 8], [10, 16], [24, 40]]},
    "capacity": {"constant": 60},
    "cost": {"slope": 3}
  },
  "sim": {"days": 1, "users": 3, "seed": 11},
  "mechanism": {"name": "rebate", "budgetFraction": 0.4}
}`

func writeConfig(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	return path
}

func TestTubesimCheck(t *testing.T) {
	path := writeConfig(t, smallConfig)
	var sb strings.Builder
	if err := run([]string{"-check", "-config", path}, &sb); err != nil {
		t.Fatalf("-check: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "ok "+path) || !strings.Contains(out, "mechanism rebate") {
		t.Errorf("-check output:\n%s", out)
	}
}

func TestTubesimCheckAllExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("globbing examples: %v (%d files)", err, len(paths))
	}
	var sb strings.Builder
	if err := run(append([]string{"-check"}, paths...), &sb); err != nil {
		t.Fatalf("-check over examples: %v\n%s", err, sb.String())
	}
	if got := strings.Count(sb.String(), "ok "); got != len(paths) {
		t.Errorf("%d ok lines for %d configs:\n%s", got, len(paths), sb.String())
	}
}

func TestTubesimCheckRejectsBadConfig(t *testing.T) {
	path := writeConfig(t, `{"name": "broken", "scenario": {"periods": 1}}`)
	if err := run([]string{"-check", "-config", path}, &strings.Builder{}); err == nil {
		t.Fatal("-check accepted an invalid config")
	}
}

func TestTubesimCheckNeedsPaths(t *testing.T) {
	if err := run([]string{"-check"}, &strings.Builder{}); err == nil {
		t.Fatal("-check with no configs accepted")
	}
}

func TestTubesimConfigRun(t *testing.T) {
	path := writeConfig(t, smallConfig)
	var sb strings.Builder
	if err := run([]string{"-config", path}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"testbed: 3 users, 6 periods", // sim block sized the population
		"GUI pulls: 7",
		"mechanism rebate outcome",
		"ISP cost",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubesimConfigMechanismOverride(t *testing.T) {
	path := writeConfig(t, smallConfig)
	var sb strings.Builder
	if err := run([]string{"-config", path, "-mechanism", "static-tod"}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "mechanism static-tod outcome") {
		t.Errorf("override not honored:\n%s", sb.String())
	}
	if err := run([]string{"-config", path, "-mechanism", "surge"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestTubesimConfigRejectsPeriodsFlag(t *testing.T) {
	path := writeConfig(t, smallConfig)
	if err := run([]string{"-config", path, "-periods", "8"}, &strings.Builder{}); err == nil {
		t.Fatal("-periods with -config accepted")
	}
}

func TestTubesimMechanismList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mechanism", "list"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"none", "rebate", "reverse", "static-tod", "tdp"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTubesimSyntheticWithMechanism(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seed", "5", "-mechanism", "reverse"}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "mechanism reverse outcome") {
		t.Errorf("no outcome line:\n%s", sb.String())
	}
}
