package main

import (
	"strings"
	"testing"
)

func TestTubesimEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seed", "7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"TUBE Optimizer serving prices",
		"published rewards",
		"user1 TIP traffic",
		"user2 moved by TDP",
		"GUI pulls: 13", // initial pull + one per closed period
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestTubesimScaled exercises the -users/-periods flags end to end: a
// five-user, six-period testbed reported through the batch ingestion
// path, with one GUI pull per period plus the initial pull.
func TestTubesimScaled(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seed", "3", "-users", "5", "-periods", "6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"testbed: 5 users, 6 periods",
		"aggregate TIP traffic",
		"GUI pulls: 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubesimBadAddr(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-addr", "256.0.0.1:99999"}, &sb); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestTubesimBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-users", "0"},
		{"-periods", "1"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
