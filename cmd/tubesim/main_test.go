package main

import (
	"strings"
	"testing"
)

func TestTubesimEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seed", "7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"TUBE Optimizer serving prices",
		"published rewards",
		"user1 TIP traffic",
		"user2 moved by TDP",
		"GUI pulls: 13", // initial pull + one per closed period
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestTubesimBadAddr(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-addr", "256.0.0.1:99999"}, &sb); err == nil {
		t.Error("bad listen address accepted")
	}
}
