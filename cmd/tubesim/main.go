// Command tubesim runs the end-to-end TUBE system against the emulated
// testbed: it starts the TUBE Optimizer's HTTP price server, drives the
// §VI-C experiment against it (GUI clients pull prices once per period
// and report usage through the batched ingestion endpoint), and prints
// the resulting traffic and price history. The -users and -periods
// flags scale the testbed beyond the paper's fixed two-user, one-hour
// configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"strings"

	"tdp/internal/cluster"
	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/mechanism"
	"tdp/internal/obs"
	"tdp/internal/scfg"
	"tdp/internal/tube"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubesim:", err)
		os.Exit(1)
	}
}

// synthUsers scales the testbed population: patience profiles alternate
// between the paper's impatient group-1 and patient group-2 specs.
func synthUsers(n int, defaults []emul.UserSpec) []emul.UserSpec {
	users := make([]emul.UserSpec, n)
	for i := range users {
		proto := defaults[i%len(defaults)]
		beta := make(map[string]float64, len(proto.Beta))
		for k, v := range proto.Beta {
			beta[k] = v
		}
		users[i] = emul.UserSpec{Name: fmt.Sprintf("user%d", i+1), Beta: beta}
	}
	return users
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubesim", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the price server")
	seed := fs.Int64("seed", 1, "experiment random seed")
	users := fs.Int("users", 2, "emulated users (patience alternates impatient/patient)")
	periods := fs.Int("periods", 12, "periods in the emulated day (≥ 2)")
	days := fs.Int("days", 1, "emulated days to run back-to-back (each under its freshly pulled schedule)")
	stream := fs.Bool("stream", false, "enable streaming profiling: per-period warm β re-estimation from the live ingest stream")
	wireFlag := fs.Bool("wire", false, "report usage over the binary wire format (POST /usage/wire) instead of JSON batches")
	streamWindow := fs.Int("stream-window", 0, "streaming profiler day window (0 = engine default)")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof on the price server")
	metricsOut := fs.String("metrics-out", "", "write the final Prometheus metrics snapshot to this file (- for stdout)")
	cfgPath := fs.String("config", "", "scenario config file (JSON, see examples/scenarios/); replaces the synthetic default testbed")
	check := fs.Bool("check", false, "parse + validate + compile the -config file and any positional config paths, then exit")
	mech := fs.String("mechanism", "", "pricing mechanism from the zoo ('list' to enumerate; default: the config's choice, else the online TDP engine)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mech == "list" {
		fmt.Fprintln(out, strings.Join(mechanism.Names(), "\n"))
		return nil
	}
	if *check {
		return checkConfigs(out, *cfgPath, fs.Args())
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var (
		cfg     emul.Config
		scn     *core.Scenario
		classes []string
		sc      *scfg.Config
		err     error
	)
	if *cfgPath != "" {
		// Config-driven testbed: the scenario, the population's patience,
		// the demand shape, the mechanism — all from the declared workload.
		if explicit["periods"] {
			return fmt.Errorf("-periods conflicts with -config: the scenario declares the day structure")
		}
		if sc, err = scfg.ParseFile(*cfgPath); err != nil {
			return err
		}
		if scn, err = sc.Compile(); err != nil {
			return err
		}
		if s := sc.Sim; s != nil {
			if !explicit["days"] && s.Days > 0 {
				*days = s.Days
			}
			if !explicit["users"] && s.Users > 0 {
				*users = s.Users
			}
			if !explicit["seed"] && s.Seed != 0 {
				*seed = s.Seed
			}
		}
		if *users < 1 {
			return fmt.Errorf("need at least 1 user, got %d", *users)
		}
		if *days < 1 {
			return fmt.Errorf("need at least 1 day, got %d", *days)
		}
		classes = sc.ClassNames()
		cfg = emulFromScenario(scn, classes, *users, *seed)
		scn.PeriodSeconds = cfg.PeriodSeconds
	} else {
		if *users < 1 {
			return fmt.Errorf("need at least 1 user, got %d", *users)
		}
		if *periods < 2 {
			return fmt.Errorf("need at least 2 periods, got %d", *periods)
		}
		if *days < 1 {
			return fmt.Errorf("need at least 1 day, got %d", *days)
		}
		// The optimizer's demand estimate: the emulation's expected demand
		// in MB per period, with per-class average patience.
		cfg = emul.DefaultConfig()
		cfg.Seed = *seed
		cfg.Periods = *periods
		if *users != len(cfg.Users) {
			cfg.Users = synthUsers(*users, cfg.Users)
		}
		classes = make([]string, len(cfg.Classes))
		betas := make([]float64, len(cfg.Classes))
		for j, cl := range cfg.Classes {
			classes[j] = cl.Name
			var s float64
			for _, u := range cfg.Users {
				s += u.Beta[cl.Name]
			}
			betas[j] = s / float64(len(cfg.Users))
		}
		capacity := make([]float64, cfg.Periods)
		for i := range capacity {
			capacity[i] = 0.8 * cfg.LinkMBps * cfg.PeriodSeconds
		}
		scn = &core.Scenario{
			Periods:       cfg.Periods,
			Demand:        cfg.ExpectedDemand(),
			Betas:         betas,
			Capacity:      capacity,
			Cost:          core.LinearCost(cfg.CostSlope),
			PeriodSeconds: cfg.PeriodSeconds,
		}
	}

	// Resolve the pricing mechanism: "tdp" runs the optimizer's online
	// per-period engine (the mechanism's live form); anything else from
	// the zoo plans whole days through the Pricer hook.
	mechName := *mech
	if mechName == "" {
		mechName = "tdp"
		if sc != nil {
			mechName = sc.MechanismName()
		}
	}
	var (
		pricer     mechanism.Pricer
		useDynamic bool
	)
	switch {
	case mechName == "tdp":
		if sc != nil {
			if sc.Mechanism != nil && sc.Mechanism.Dynamic {
				useDynamic = true
			}
			if sc.Sim != nil && sc.Sim.Model == "dynamic" {
				useDynamic = true
			}
		}
	case sc != nil:
		if pricer, err = sc.PricerNamed(mechName); err != nil {
			return err
		}
	default:
		if pricer, err = mechanism.New(mechName, mechanism.Params{}); err != nil {
			return err
		}
	}

	opt, err := tube.NewOptimizer(tube.OptimizerConfig{
		Scenario:     scn,
		Classes:      classes,
		UseDynamic:   useDynamic,
		Streaming:    *stream,
		StreamWindow: *streamWindow,
		Pricer:       pricer,
	})
	if err != nil {
		return err
	}
	srv, err := tube.NewServer(opt)
	if err != nil {
		return err
	}
	if *pprofFlag {
		srv.EnablePprof()
	}
	if *wireFlag {
		// The wire endpoint lives on clustered servers; a one-member ring
		// makes this node own every user.
		if err := srv.EnableCluster(tube.ClusterOptions{
			SelfID: "n0",
			Ring: cluster.Config{Version: 1, Members: []cluster.Member{
				{ID: "n0", Addr: "http://self"},
			}},
		}); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveErr
	}()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "TUBE Optimizer serving prices at %s\n", base)
	fmt.Fprintf(out, "testbed: %d users, %d periods\n\n", len(cfg.Users), cfg.Periods)

	// GUI clients pull the published schedule once per period; the
	// emulation then runs under that schedule.
	gui, err := tube.NewGUI(base)
	if err != nil {
		return err
	}
	if *wireFlag {
		if err := gui.EnableWire(classes); err != nil {
			return err
		}
	}
	ctx := context.Background()
	info, err := gui.PullPrice(ctx)
	if err != nil {
		return err
	}

	// The closed loop, one iteration per emulated day: pull the published
	// schedule, run the testbed day under it, then feed the TDP run's
	// measured per-class usage back through the wire — one batch per
	// period through the sharded ingestion endpoint, closing each period
	// at the optimizer. With -stream the optimizer re-estimates β at
	// every period close from that same rollover cut, so later days run
	// under prices informed by earlier days' live traffic.
	var tip, tdp *emul.Result
	for day := 0; day < *days; day++ {
		cfg.Rewards = info.Rewards
		cfg.Seed = *seed + int64(day)
		tip, tdp, err = emul.RunComparison(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Periods; i++ {
			var batch []tube.UsageReport
			for _, u := range cfg.Users {
				for _, cl := range cfg.Classes {
					vol := tdp.OfferedByUserClassPeriod[u.Name][cl.Name][i]
					if vol <= 0 {
						continue
					}
					batch = append(batch, tube.UsageReport{
						User: u.Name, Class: cl.Name, VolumeMB: vol,
					})
				}
			}
			if *wireFlag {
				if err := gui.ReportUsageWire(ctx, batch); err != nil {
					return err
				}
				// Wire batches are acked on admission and applied by the
				// queue worker; flush before the period rollover cut.
				if err := srv.DrainCluster(ctx); err != nil {
					return err
				}
			} else if err := gui.ReportUsageBatch(ctx, batch); err != nil {
				return err
			}
			if _, err := opt.ClosePeriod(); err != nil {
				return err
			}
			if info, err = gui.PullPrice(ctx); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(out, "published rewards ($0.10): %.3f\n\n", info.Rewards)
	if len(cfg.Users) <= 4 {
		for _, u := range cfg.Users {
			fmt.Fprintf(out, "%s TIP traffic (MB/period): %.0f\n", u.Name, tip.ServedByUserPeriod[u.Name])
			fmt.Fprintf(out, "%s TDP traffic (MB/period): %.0f\n", u.Name, tdp.ServedByUserPeriod[u.Name])
			if sc != nil { // config classes carry arbitrary names
				fmt.Fprintf(out, "%s moved by TDP: %.1f MB\n\n", u.Name, tdp.TotalMoved(u.Name))
			} else {
				mc := tdp.MovedByUserClass[u.Name]
				fmt.Fprintf(out, "%s moved by TDP: web %.1f MB, ftp %.1f MB, video %.1f MB\n\n",
					u.Name, mc["web"], mc["ftp"], mc["video"])
			}
		}
	} else {
		var tipTotal, tdpTotal, moved float64
		for _, u := range cfg.Users {
			for _, v := range tip.ServedByUserPeriod[u.Name] {
				tipTotal += v
			}
			for _, v := range tdp.ServedByUserPeriod[u.Name] {
				tdpTotal += v
			}
			moved += tdp.TotalMoved(u.Name)
		}
		fmt.Fprintf(out, "aggregate TIP traffic: %.0f MB, TDP traffic: %.0f MB, moved by TDP: %.1f MB\n\n",
			tipTotal, tdpTotal, moved)
	}
	hist, err := opt.PriceHistory()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "optimizer price history (%d periods closed), GUI pulls: %d\n",
		len(hist), gui.Pulls())
	if sc != nil || pricer != nil {
		// Score the final published schedule under the declared scenario's
		// reaction model, so config runs across -mechanism values are
		// directly comparable.
		outcome, oerr := mechanism.Evaluate(mechName, scn, info.Rewards)
		if oerr != nil {
			fmt.Fprintf(out, "\nmechanism %s outcome unavailable: %v\n", mechName, oerr)
		} else {
			fmt.Fprintf(out, "\nmechanism %s outcome (model units): ISP cost %.2f (TIP %.2f, savings %.1f%%), outlay %.2f, user welfare %.2f, overflow %.2f across %d periods\n",
				outcome.Mechanism, outcome.ISPCost, outcome.TIPCost, 100*outcome.Savings(),
				outcome.RewardOutlay, outcome.UserWelfare, outcome.Overflow, outcome.OverflowPeriods)
		}
	}
	if sp := opt.Stream(); sp != nil {
		betas, ok := sp.Betas()
		div, derr := sp.Divergence()
		fmt.Fprintf(out, "\nstreaming profiler: %d days folded (window %d, full=%v), stale periods: %d\n",
			sp.Days(), sp.WindowLen(), sp.WindowFull(), sp.StalePeriods())
		if ok {
			fmt.Fprintf(out, "streaming β estimate: %.4f\n", betas)
		}
		if derr == nil {
			fmt.Fprintf(out, "streaming vs cold-batch divergence: %.2e\n", div)
		}
	}
	if *metricsOut != "" {
		if err := dumpMetrics(*metricsOut, out, srv.Registry(), obs.Default()); err != nil {
			return err
		}
	}
	return nil
}

// checkConfigs validates config documents without running anything:
// strict parse, validation, and compilation — the `-check` gate CI runs
// over every checked-in scenario. The first failure is returned (it
// wraps scfg.ErrBadConfig), so the exit status is the verdict.
func checkConfigs(out io.Writer, cfgPath string, extra []string) error {
	paths := extra
	if cfgPath != "" {
		paths = append([]string{cfgPath}, extra...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("-check: no configs given (use -config or positional paths)")
	}
	for _, p := range paths {
		c, err := scfg.ParseFile(p)
		if err != nil {
			return err
		}
		scn, err := c.Compile()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		fmt.Fprintf(out, "ok %s: %q, %d periods, %d classes, mechanism %s\n",
			p, c.Name, scn.Periods, len(scn.Betas), c.MechanismName())
	}
	return nil
}

// emulFromScenario maps a compiled scenario onto the emulated testbed.
// The emulation's session model is separable (per-class mean × a common
// per-period shape), so the declared demand matrix is approximated at
// rank 1: the shape follows the per-period totals and each class keeps
// its day-average volume. Expected per-period *totals* match the
// scenario exactly; per-class cells match exactly when the matrix is
// itself separable (every generator-form config is). Demand values are
// read as MB per period, capacity as MB per period reachable at every
// period (link sized to the capacity peak), and the population shares
// the scenario's per-class patience under the §II normalized behavior,
// so the ISP-side profiling model is well-specified.
func emulFromScenario(scn *core.Scenario, classes []string, users int, seed int64) emul.Config {
	n := scn.Periods
	ps := scn.PeriodSeconds
	if ps <= 0 {
		ps = 300
	}
	totals := scn.TotalDemand()
	var avgTotal float64
	for _, x := range totals {
		avgTotal += x
	}
	avgTotal /= float64(n)
	shape := make([]float64, n)
	for i := range shape {
		shape[i] = 1
		if avgTotal > 0 {
			shape[i] = totals[i] / avgTotal
		}
	}
	const sessions = 8 // arrivals per user·period: enough for the Poisson mean to concentrate
	specs := make([]emul.ClassSpec, len(classes))
	for j, name := range classes {
		var dj float64
		for i := 0; i < n; i++ {
			dj += scn.Demand[i][j]
		}
		dj /= float64(n)
		spec := emul.ClassSpec{
			Name:                  name,
			MeanSessionsPerPeriod: sessions,
			MeanSizeMB:            dj / (sessions * float64(users)),
		}
		if spec.MeanSizeMB <= 0 { // a class with no demand anywhere
			spec.MeanSessionsPerPeriod = 0
			spec.MeanSizeMB = 1
		}
		specs[j] = spec
	}
	var peakCap float64
	for _, a := range scn.Capacity {
		if a > peakCap {
			peakCap = a
		}
	}
	link := peakCap / ps
	if link <= 0 {
		link = 1
	}
	us := make([]emul.UserSpec, users)
	for u := range us {
		beta := make(map[string]float64, len(classes))
		for j, name := range classes {
			beta[name] = scn.Betas[j]
		}
		us[u] = emul.UserSpec{Name: fmt.Sprintf("user%d", u+1), Beta: beta}
	}
	return emul.Config{
		Periods:       n,
		PeriodSeconds: ps,
		LinkMBps:      link,
		Classes:       specs,
		Users:         us,
		DemandShape:   shape,
		CostSlope:     scn.Cost.MaxSlope(),
		Behavior:      emul.Normalized,
		Seed:          seed,
	}
}

// dumpMetrics writes the merged Prometheus exposition to path ("-" =
// the command's own output writer).
func dumpMetrics(path string, out io.Writer, regs ...*obs.Registry) error {
	if path == "-" {
		return obs.WritePrometheusAll(out, regs...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := obs.WritePrometheusAll(f, regs...); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}
