// Command tubesim runs the end-to-end TUBE system against the emulated
// testbed: it starts the TUBE Optimizer's HTTP price server, drives the
// §VI-C experiment against it (GUI clients pull prices once per period
// and report usage through the batched ingestion endpoint), and prints
// the resulting traffic and price history. The -users and -periods
// flags scale the testbed beyond the paper's fixed two-user, one-hour
// configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/obs"
	"tdp/internal/tube"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubesim:", err)
		os.Exit(1)
	}
}

// synthUsers scales the testbed population: patience profiles alternate
// between the paper's impatient group-1 and patient group-2 specs.
func synthUsers(n int, defaults []emul.UserSpec) []emul.UserSpec {
	users := make([]emul.UserSpec, n)
	for i := range users {
		proto := defaults[i%len(defaults)]
		beta := make(map[string]float64, len(proto.Beta))
		for k, v := range proto.Beta {
			beta[k] = v
		}
		users[i] = emul.UserSpec{Name: fmt.Sprintf("user%d", i+1), Beta: beta}
	}
	return users
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubesim", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the price server")
	seed := fs.Int64("seed", 1, "experiment random seed")
	users := fs.Int("users", 2, "emulated users (patience alternates impatient/patient)")
	periods := fs.Int("periods", 12, "periods in the emulated day (≥ 2)")
	days := fs.Int("days", 1, "emulated days to run back-to-back (each under its freshly pulled schedule)")
	stream := fs.Bool("stream", false, "enable streaming profiling: per-period warm β re-estimation from the live ingest stream")
	wireFlag := fs.Bool("wire", false, "report usage over the binary wire format (POST /usage/wire) instead of JSON batches")
	streamWindow := fs.Int("stream-window", 0, "streaming profiler day window (0 = engine default)")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof on the price server")
	metricsOut := fs.String("metrics-out", "", "write the final Prometheus metrics snapshot to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 {
		return fmt.Errorf("need at least 1 user, got %d", *users)
	}
	if *periods < 2 {
		return fmt.Errorf("need at least 2 periods, got %d", *periods)
	}
	if *days < 1 {
		return fmt.Errorf("need at least 1 day, got %d", *days)
	}

	// The optimizer's demand estimate: the emulation's expected demand in
	// MB per period, with per-class average patience.
	cfg := emul.DefaultConfig()
	cfg.Seed = *seed
	cfg.Periods = *periods
	if *users != len(cfg.Users) {
		cfg.Users = synthUsers(*users, cfg.Users)
	}
	classes := make([]string, len(cfg.Classes))
	betas := make([]float64, len(cfg.Classes))
	for j, cl := range cfg.Classes {
		classes[j] = cl.Name
		var s float64
		for _, u := range cfg.Users {
			s += u.Beta[cl.Name]
		}
		betas[j] = s / float64(len(cfg.Users))
	}
	capacity := make([]float64, cfg.Periods)
	for i := range capacity {
		capacity[i] = 0.8 * cfg.LinkMBps * cfg.PeriodSeconds
	}
	scn := &core.Scenario{
		Periods:       cfg.Periods,
		Demand:        cfg.ExpectedDemand(),
		Betas:         betas,
		Capacity:      capacity,
		Cost:          core.LinearCost(cfg.CostSlope),
		PeriodSeconds: cfg.PeriodSeconds,
	}
	opt, err := tube.NewOptimizer(tube.OptimizerConfig{
		Scenario:     scn,
		Classes:      classes,
		Streaming:    *stream,
		StreamWindow: *streamWindow,
	})
	if err != nil {
		return err
	}
	srv, err := tube.NewServer(opt)
	if err != nil {
		return err
	}
	if *pprofFlag {
		srv.EnablePprof()
	}
	if *wireFlag {
		// The wire endpoint lives on clustered servers; a one-member ring
		// makes this node own every user.
		if err := srv.EnableCluster(tube.ClusterOptions{
			SelfID: "n0",
			Ring: cluster.Config{Version: 1, Members: []cluster.Member{
				{ID: "n0", Addr: "http://self"},
			}},
		}); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveErr
	}()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "TUBE Optimizer serving prices at %s\n", base)
	fmt.Fprintf(out, "testbed: %d users, %d periods\n\n", len(cfg.Users), cfg.Periods)

	// GUI clients pull the published schedule once per period; the
	// emulation then runs under that schedule.
	gui, err := tube.NewGUI(base)
	if err != nil {
		return err
	}
	if *wireFlag {
		if err := gui.EnableWire(classes); err != nil {
			return err
		}
	}
	ctx := context.Background()
	info, err := gui.PullPrice(ctx)
	if err != nil {
		return err
	}

	// The closed loop, one iteration per emulated day: pull the published
	// schedule, run the testbed day under it, then feed the TDP run's
	// measured per-class usage back through the wire — one batch per
	// period through the sharded ingestion endpoint, closing each period
	// at the optimizer. With -stream the optimizer re-estimates β at
	// every period close from that same rollover cut, so later days run
	// under prices informed by earlier days' live traffic.
	var tip, tdp *emul.Result
	for day := 0; day < *days; day++ {
		cfg.Rewards = info.Rewards
		cfg.Seed = *seed + int64(day)
		tip, tdp, err = emul.RunComparison(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Periods; i++ {
			var batch []tube.UsageReport
			for _, u := range cfg.Users {
				for _, cl := range cfg.Classes {
					vol := tdp.OfferedByUserClassPeriod[u.Name][cl.Name][i]
					if vol <= 0 {
						continue
					}
					batch = append(batch, tube.UsageReport{
						User: u.Name, Class: cl.Name, VolumeMB: vol,
					})
				}
			}
			if *wireFlag {
				if err := gui.ReportUsageWire(ctx, batch); err != nil {
					return err
				}
				// Wire batches are acked on admission and applied by the
				// queue worker; flush before the period rollover cut.
				if err := srv.DrainCluster(ctx); err != nil {
					return err
				}
			} else if err := gui.ReportUsageBatch(ctx, batch); err != nil {
				return err
			}
			if _, err := opt.ClosePeriod(); err != nil {
				return err
			}
			if info, err = gui.PullPrice(ctx); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(out, "published rewards ($0.10): %.3f\n\n", info.Rewards)
	if len(cfg.Users) <= 4 {
		for _, u := range cfg.Users {
			fmt.Fprintf(out, "%s TIP traffic (MB/period): %.0f\n", u.Name, tip.ServedByUserPeriod[u.Name])
			fmt.Fprintf(out, "%s TDP traffic (MB/period): %.0f\n", u.Name, tdp.ServedByUserPeriod[u.Name])
			mc := tdp.MovedByUserClass[u.Name]
			fmt.Fprintf(out, "%s moved by TDP: web %.1f MB, ftp %.1f MB, video %.1f MB\n\n",
				u.Name, mc["web"], mc["ftp"], mc["video"])
		}
	} else {
		var tipTotal, tdpTotal, moved float64
		for _, u := range cfg.Users {
			for _, v := range tip.ServedByUserPeriod[u.Name] {
				tipTotal += v
			}
			for _, v := range tdp.ServedByUserPeriod[u.Name] {
				tdpTotal += v
			}
			moved += tdp.TotalMoved(u.Name)
		}
		fmt.Fprintf(out, "aggregate TIP traffic: %.0f MB, TDP traffic: %.0f MB, moved by TDP: %.1f MB\n\n",
			tipTotal, tdpTotal, moved)
	}
	hist, err := opt.PriceHistory()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "optimizer price history (%d periods closed), GUI pulls: %d\n",
		len(hist), gui.Pulls())
	if sp := opt.Stream(); sp != nil {
		betas, ok := sp.Betas()
		div, derr := sp.Divergence()
		fmt.Fprintf(out, "\nstreaming profiler: %d days folded (window %d, full=%v), stale periods: %d\n",
			sp.Days(), sp.WindowLen(), sp.WindowFull(), sp.StalePeriods())
		if ok {
			fmt.Fprintf(out, "streaming β estimate: %.4f\n", betas)
		}
		if derr == nil {
			fmt.Fprintf(out, "streaming vs cold-batch divergence: %.2e\n", div)
		}
	}
	if *metricsOut != "" {
		if err := dumpMetrics(*metricsOut, out, srv.Registry(), obs.Default()); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the merged Prometheus exposition to path ("-" =
// the command's own output writer).
func dumpMetrics(path string, out io.Writer, regs ...*obs.Registry) error {
	if path == "-" {
		return obs.WritePrometheusAll(out, regs...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := obs.WritePrometheusAll(f, regs...); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}
