// Command tubesim runs the end-to-end TUBE system against the emulated
// testbed: it starts the TUBE Optimizer's HTTP price server, drives the
// §VI-C two-user experiment against it (GUI clients pull prices once per
// period and report usage), and prints the resulting traffic and price
// history.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/tube"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubesim", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the price server")
	seed := fs.Int64("seed", 1, "experiment random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The optimizer's demand estimate: the emulation's expected demand in
	// MB per period, with per-class average patience.
	cfg := emul.DefaultConfig()
	cfg.Seed = *seed
	classes := make([]string, len(cfg.Classes))
	betas := make([]float64, len(cfg.Classes))
	for j, cl := range cfg.Classes {
		classes[j] = cl.Name
		var s float64
		for _, u := range cfg.Users {
			s += u.Beta[cl.Name]
		}
		betas[j] = s / float64(len(cfg.Users))
	}
	capacity := make([]float64, cfg.Periods)
	for i := range capacity {
		capacity[i] = 0.8 * cfg.LinkMBps * cfg.PeriodSeconds
	}
	scn := &core.Scenario{
		Periods:       cfg.Periods,
		Demand:        cfg.ExpectedDemand(),
		Betas:         betas,
		Capacity:      capacity,
		Cost:          core.LinearCost(cfg.CostSlope),
		PeriodSeconds: cfg.PeriodSeconds,
	}
	opt, err := tube.NewOptimizer(tube.OptimizerConfig{Scenario: scn, Classes: classes})
	if err != nil {
		return err
	}
	srv, err := tube.NewServer(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() {
		// Serve returns ErrServerClosed on Shutdown; other errors are
		// surfaced through failed client pulls below.
		_ = httpSrv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "TUBE Optimizer serving prices at %s\n\n", base)

	// GUI clients pull the published schedule once per period; the
	// emulation then runs under that schedule.
	gui, err := tube.NewGUI(base)
	if err != nil {
		return err
	}
	ctx := context.Background()
	info, err := gui.PullPrice(ctx)
	if err != nil {
		return err
	}
	cfg.Rewards = info.Rewards

	tip, tdp, err := emul.RunComparison(cfg)
	if err != nil {
		return err
	}

	// Feed the TDP run's measured per-class usage back through the wire,
	// period by period, closing each period at the optimizer.
	for i := 0; i < cfg.Periods; i++ {
		for _, u := range cfg.Users {
			for _, cl := range cfg.Classes {
				vol := tdp.OfferedByUserClassPeriod[u.Name][cl.Name][i]
				if vol <= 0 {
					continue
				}
				if err := gui.ReportUsage(ctx, tube.UsageReport{
					User: u.Name, Class: cl.Name, VolumeMB: vol,
				}); err != nil {
					return err
				}
			}
		}
		if _, err := opt.ClosePeriod(); err != nil {
			return err
		}
		if _, err := gui.PullPrice(ctx); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "published rewards ($0.10): %.3f\n\n", info.Rewards)
	for _, u := range cfg.Users {
		fmt.Fprintf(out, "%s TIP traffic (MB/period): %.0f\n", u.Name, tip.ServedByUserPeriod[u.Name])
		fmt.Fprintf(out, "%s TDP traffic (MB/period): %.0f\n", u.Name, tdp.ServedByUserPeriod[u.Name])
		mc := tdp.MovedByUserClass[u.Name]
		fmt.Fprintf(out, "%s moved by TDP: web %.1f MB, ftp %.1f MB, video %.1f MB\n\n",
			u.Name, mc["web"], mc["ftp"], mc["video"])
	}
	hist, err := opt.PriceHistory()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "optimizer price history (%d periods closed), GUI pulls: %d\n",
		len(hist), gui.Pulls())
	return nil
}
