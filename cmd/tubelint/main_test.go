package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"regexp"
	"testing"

	"tdp/internal/lint"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatalf("reading pipe: %v", err)
	}
	return buf.String()
}

// TestFlagsHandshakeRegistersAllAnalyzers is the multichecker smoke
// test: the -flags probe go vet issues must list all five analyzers, or
// their enable/disable flags silently vanish from CI.
func TestFlagsHandshakeRegistersAllAnalyzers(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-flags"}) })
	if code != 0 {
		t.Fatalf("run(-flags) = %d, want 0", code)
	}
	var specs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &specs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	have := make(map[string]bool)
	for _, s := range specs {
		if !s.Bool {
			t.Errorf("flag %q not boolean", s.Name)
		}
		have[s.Name] = true
	}
	for _, a := range lint.Analyzers() {
		if !have[a.Name] {
			t.Errorf("analyzer %q missing from -flags handshake", a.Name)
		}
	}
	if len(specs) != len(lint.Analyzers()) {
		t.Errorf("-flags lists %d analyzers, want %d", len(specs), len(lint.Analyzers()))
	}
}

// TestVersionHandshake checks the -V=full line the go command parses
// into its action-cache tool ID.
func TestVersionHandshake(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-V=full"}) })
	if code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
	if !regexp.MustCompile(`^tubelint version devel buildID=[0-9a-f]+\n$`).MatchString(out) {
		t.Errorf("-V=full output %q does not match the go tool-ID grammar", out)
	}
}
