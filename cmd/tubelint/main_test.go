package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"regexp"
	"testing"

	"tdp/internal/lint"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatalf("reading pipe: %v", err)
	}
	return buf.String()
}

// TestFlagsHandshakeRegistersAllAnalyzers is the multichecker smoke
// test: the -flags probe go vet issues must list all five analyzers, or
// their enable/disable flags silently vanish from CI.
func TestFlagsHandshakeRegistersAllAnalyzers(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-flags"}) })
	if code != 0 {
		t.Fatalf("run(-flags) = %d, want 0", code)
	}
	var specs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &specs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	have := make(map[string]bool)
	for _, s := range specs {
		if !s.Bool {
			t.Errorf("flag %q not boolean", s.Name)
		}
		have[s.Name] = true
	}
	for _, a := range lint.Analyzers() {
		if !have[a.Name] {
			t.Errorf("analyzer %q missing from -flags handshake", a.Name)
		}
	}
	if len(specs) != len(lint.Analyzers()) {
		t.Errorf("-flags lists %d analyzers, want %d", len(specs), len(lint.Analyzers()))
	}
}

// captureStderr is captureStdout's twin for the pass-through stream.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatalf("reading pipe: %v", err)
	}
	return buf.String()
}

// TestEmitStructured checks the parent-side output rewriting: captured
// vettool stderr is split into structured findings (stdout) and
// pass-through driver noise (stderr).
func TestEmitStructured(t *testing.T) {
	captured := "# tdp/internal/core\n" +
		"/x/a.go:12:3: exact comparison of floats, use tolerance (floateq)\n" +
		"/x/b.go:7:1: message with 100% escaping needs (poolescape)\n" +
		"tubelint: some driver error\n"

	var stdout string
	stderr := captureStderr(t, func() {
		stdout = captureStdout(t, func() { emitStructured(captured, true, true) })
	})

	if !regexp.MustCompile(`(?m)^# tdp/internal/core$`).MatchString(stderr) ||
		!regexp.MustCompile(`(?m)^tubelint: some driver error$`).MatchString(stderr) {
		t.Errorf("non-finding lines not passed through to stderr:\n%s", stderr)
	}

	var jsonLines, ghaLines []string
	for _, line := range bytes.Split([]byte(stdout), []byte("\n")) {
		switch {
		case bytes.HasPrefix(line, []byte("::error ")):
			ghaLines = append(ghaLines, string(line))
		case len(line) > 0:
			jsonLines = append(jsonLines, string(line))
		}
	}
	if len(jsonLines) != 2 || len(ghaLines) != 2 {
		t.Fatalf("want 2 JSON + 2 ::error lines, got %d + %d:\n%s", len(jsonLines), len(ghaLines), stdout)
	}
	var f lint.Finding
	if err := json.Unmarshal([]byte(jsonLines[0]), &f); err != nil {
		t.Fatalf("JSON line does not decode: %v\n%s", err, jsonLines[0])
	}
	if f.File != "/x/a.go" || f.Line != 12 || f.Col != 3 || f.Analyzer != "floateq" {
		t.Errorf("decoded finding %+v, want floateq at /x/a.go:12:3", f)
	}
	want := "::error file=/x/a.go,line=12,col=3,title=tubelint floateq::exact comparison of floats, use tolerance"
	if ghaLines[0] != want {
		t.Errorf("annotation line:\n got %q\nwant %q", ghaLines[0], want)
	}
	// The workflow-command grammar requires % escaping in messages.
	if !regexp.MustCompile(`100%25 escaping`).MatchString(ghaLines[1]) {
		t.Errorf("%% not escaped in annotation: %q", ghaLines[1])
	}
}

// TestVersionHandshake checks the -V=full line the go command parses
// into its action-cache tool ID.
func TestVersionHandshake(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-V=full"}) })
	if code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
	if !regexp.MustCompile(`^tubelint version devel buildID=[0-9a-f]+\n$`).MatchString(out) {
		t.Errorf("-V=full output %q does not match the go tool-ID grammar", out)
	}
}
