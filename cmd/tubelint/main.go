// Command tubelint is the repository's static-analysis multichecker: it
// runs the internal/lint suite (structclone, locksplit, aliasret,
// globalrand, floateq — see DESIGN.md §8) over Go packages.
//
// It speaks the `go vet -vettool` driver protocol, so the canonical
// invocation — the one CI uses — is
//
//	go build -o bin/tubelint ./cmd/tubelint
//	go vet -vettool=$(pwd)/bin/tubelint ./...
//
// For convenience it also accepts package patterns directly
// (`tubelint ./...`), in which case it re-executes itself through
// `go vet -vettool` so both modes share one code path and one result.
//
// Individual analyzers can be disabled with -<name>=false, e.g.
// `go vet -vettool=bin/tubelint -floateq=false ./...`.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"tdp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tubelint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	versionFlag := fs.String("V", "", "print version and exit (go command tool-ID handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (go vet handshake)")
	jsonFlag := fs.Bool("json", false, "emit findings as newline-delimited JSON records on stdout")
	ghaFlag := fs.Bool("gha", false, "emit findings as GitHub Actions ::error annotations on stdout")
	enabled := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tubelint [flags] <vet.cfg | packages>\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The go command probes `tubelint -V=full` once to derive a tool ID
	// for its action cache; answer with a content hash of the executable
	// so rebuilding tubelint invalidates cached vet results.
	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}

	// `go vet` probes `tubelint -flags` for the analyzer flags it should
	// accept on its own command line, as a JSON array of flag specs.
	if *flagsFlag {
		type flagSpec struct {
			Name  string
			Bool  bool
			Usage string
		}
		var specs []flagSpec
		for _, a := range lint.Analyzers() {
			specs = append(specs, flagSpec{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		out, err := json.Marshal(specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tubelint: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}

	var active []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if *jsonFlag {
			return lint.RunUnitcheckerJSON(rest[0], active, os.Stderr)
		}
		return lint.RunUnitchecker(rest[0], active, os.Stderr)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return runStandalone(fs, rest, *jsonFlag, *ghaFlag)
}

// runStandalone handles `tubelint ./...`: it re-invokes the go command
// with itself as the vettool, so standalone runs get exactly the
// build-cache-driven, test-file-inclusive package view go vet has.
// With -json or -gha, the child processes' text findings are parsed
// back into structured records (JSON lines and/or ::error annotations
// on stdout); go vet's own -json flag would collide, so the output
// flags are handled here in the parent and never forwarded.
func runStandalone(fs *flag.FlagSet, patterns []string, jsonOut, ghaOut bool) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tubelint: cannot locate own executable: %v\n", err)
		return 1
	}
	args := []string{"vet", "-vettool=" + self}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "V", "json", "gha":
			return
		}
		args = append(args, "-"+f.Name+"="+f.Value.String())
	})
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stdin = os.Stdin
	if !jsonOut && !ghaOut {
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "tubelint: running go vet: %v\n", err)
			return 1
		}
		return 0
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	emitStructured(stderr.String(), jsonOut, ghaOut)
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "tubelint: running go vet: %v\n", runErr)
		return 1
	}
	return 0
}

// emitStructured re-emits captured vettool stderr: finding lines become
// JSON records and/or GitHub Actions annotations on stdout, everything
// else (package banners, driver errors) streams back to stderr.
func emitStructured(captured string, jsonOut, ghaOut bool) {
	for _, line := range strings.Split(captured, "\n") {
		if line == "" {
			continue
		}
		f, ok := lint.ParseFinding(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		if jsonOut {
			if rec, err := json.Marshal(f); err == nil {
				fmt.Println(string(rec))
			}
		}
		if ghaOut {
			// The workflow-command grammar: %, \r, \n escaped in the
			// message; the title carries the analyzer name.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(f.Message)
			fmt.Printf("::error file=%s,line=%d,col=%d,title=tubelint %s::%s\n", f.File, f.Line, f.Col, f.Analyzer, msg)
		}
	}
}

// printVersion implements the -V handshake. `-V=full` must print a line
// the go command can parse into a stable tool ID (see
// cmd/go/internal/work.(*Builder).toolID): name, the literal "version",
// and for unreleased tools "devel" plus a trailing buildID= content
// hash.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("tubelint version devel")
		return 0
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tubelint: %v\n", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tubelint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "tubelint: %v\n", err)
		return 1
	}
	fmt.Printf("tubelint version devel buildID=%02x\n", h.Sum(nil))
	return 0
}
