// Command tubebench regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured values. Select a subset with
// -only (comma-separated ids); list ids with -list.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"tdp/internal/experiments"
	"tdp/internal/obs"
	"tdp/internal/parallel"
)

// renderer is any experiment result that can print itself.
type renderer interface{ Render() string }

// experiment couples an id with its runner.
type experiment struct {
	id, desc string
	run      func() (renderer, error)
}

func catalogue() []experiment {
	return []experiment{
		{"fig3", "waiting-function shapes (β=0.5 vs 5)", func() (renderer, error) { return experiments.Fig3() }},
		{"table3", "waiting-function estimation accuracy + Fig. 2", func() (renderer, error) { return experiments.Table3() }},
		{"fig4fig5", "static 48-period rewards, traffic, costs", func() (renderer, error) { return experiments.Fig4Fig5() }},
		{"table6", "period-1 demand perturbation (price/cost change)", func() (renderer, error) { return experiments.Table6() }},
		{"fig6", "residue spread vs cost-of-exceeding-capacity sweep", func() (renderer, error) { return experiments.Fig6() }},
		{"fig7fig8", "offline dynamic rewards and traffic", func() (renderer, error) { return experiments.Fig7Fig8() }},
		{"tablex", "online adjustment after an arrival drop", func() (renderer, error) { return experiments.TableX() }},
		{"table12", "rewards under demand perturbation", func() (renderer, error) { return experiments.Table12() }},
		{"waitperturb", "waiting-function mis-estimation robustness", func() (renderer, error) { return experiments.WaitPerturb() }},
		{"timing", "TUBE engine runtimes vs paper budgets", func() (renderer, error) { return experiments.Timing() }},
		{"testbed", "TUBE testbed emulation (Figs. 11/12)", func() (renderer, error) { return experiments.Testbed() }},
		{"profiler", "profiling-engine cross-validation", func() (renderer, error) { return experiments.ProfilerCheck() }},
		{"prop5", "Monte-Carlo validation of the fluid dynamic model", func() (renderer, error) { return experiments.Prop5() }},
		{"droptail", "packet-level bottleneck loss/occupancy sweep", func() (renderer, error) { return experiments.DropTail() }},
		{"tcp", "TCP-Reno dynamics at the Fig. 10 bottleneck", func() (renderer, error) { return experiments.TCPAtBottleneck() }},
		{"fivedollar", "§VII congestion-dependent pricing autopilot", func() (renderer, error) { return experiments.FiveDollarPlan() }},
		{"twoperiod", "2-period vs n-period TDP (§I inadequacy claim)", func() (renderer, error) { return experiments.TwoPeriod() }},
		{"capadjust", "cap-adjusted time-varying capacity (§II)", func() (renderer, error) { return experiments.CapAdjusted() }},
		{"definite", "Appendix D definite-choice model (non-convex)", func() (renderer, error) { return experiments.Definite() }},
		{"fixedduration", "Appendix G fixed-duration (streaming) sessions", func() (renderer, error) { return experiments.FixedDuration() }},
		{"loop", "full Fig. 1 control loop with profiling feedback", func() (renderer, error) { return experiments.Loop() }},
		{"weeklong", "multi-day control loop over the emulated testbed", func() (renderer, error) { return experiments.WeekLong(5) }},
		{"mechzoo", "pricing-mechanism zoo head-to-head (static48)", func() (renderer, error) { return experiments.MechanismZoo() }},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubebench", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	format := fs.String("format", "text", "output format: text or json")
	jobs := fs.Int("jobs", runtime.NumCPU(), "number of experiments to run concurrently (≤ 0: one per CPU)")
	metricsOut := fs.String("metrics-out", "", "write the process metrics snapshot (solver counters/histograms) to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	exps := catalogue()
	if *list {
		for _, e := range exps {
			fmt.Fprintf(out, "%-12s %s\n", e.id, e.desc)
		}
		return nil
	}
	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
		known := make(map[string]bool, len(exps))
		for _, e := range exps {
			known[e.id] = true
		}
		var unknown []string
		for id := range selected {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return fmt.Errorf("unknown experiment ids: %s", strings.Join(unknown, ", "))
		}
	}
	var todo []experiment
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		todo = append(todo, e)
	}
	// Experiments are independent; run them across the worker pool and
	// buffer the results so rendering order stays the catalogue order
	// regardless of completion order or worker count.
	results, err := parallel.Map(context.Background(), *jobs, len(todo), func(i int) (renderer, error) {
		res, err := todo[i].run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", todo[i].id, err)
		}
		return res, nil
	})
	if err != nil {
		return err
	}
	if *format == "json" {
		jsonOut := make(map[string]renderer, len(todo))
		for i, e := range todo {
			jsonOut[e.id] = results[i]
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			return err
		}
	} else {
		for i, e := range todo {
			fmt.Fprintf(out, "==== %s — %s ====\n", e.id, e.desc)
			fmt.Fprintln(out, results[i].Render())
		}
	}
	if *metricsOut != "" {
		// After a full catalogue run the default registry holds the
		// per-solver iteration/eval/residual distributions — the solver
		// workload profile of the whole evaluation.
		if err := dumpMetrics(*metricsOut, out); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the process-wide exposition to path ("-" = the
// command's own output writer).
func dumpMetrics(path string, out io.Writer) error {
	if path == "-" {
		return obs.Default().WritePrometheus(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := obs.Default().WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}
