package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := sb.String()
	for _, id := range []string{"fig3", "fig4fig5", "table6", "tablex", "testbed"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "nope"}, &sb); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3"}, &sb); err != nil {
		t.Fatalf("run fig3: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 3") {
		t.Errorf("output missing figure header:\n%s", out)
	}
	if strings.Contains(out, "fig4fig5") {
		t.Error("unselected experiment ran")
	}
}

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3, table3"}, &sb); err != nil {
		t.Fatalf("run subset: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Table III") {
		t.Errorf("subset output incomplete:\n%s", out)
	}
}

func TestCatalogueIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range catalogue() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.id)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3", "-format", "json"}, &sb); err != nil {
		t.Fatalf("run json: %v", err)
	}
	var out map[string]map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	fig3, ok := out["fig3"]
	if !ok {
		t.Fatalf("missing fig3 key: %v", out)
	}
	if _, ok := fig3["Patient"]; !ok {
		t.Errorf("fig3 payload missing Patient series: %v", fig3)
	}
}

// TestJobsEquivalence asserts byte-identical output for serial and
// parallel experiment execution, in both text and JSON formats.
func TestJobsEquivalence(t *testing.T) {
	// table12 and waitperturb also exercise the in-experiment sweep
	// pools, nested under the cross-experiment pool.
	const subset = "fig3,table12,waitperturb"
	for _, format := range []string{"text", "json"} {
		var serial, parallel strings.Builder
		if err := run([]string{"-only", subset, "-format", format, "-jobs", "1"}, &serial); err != nil {
			t.Fatalf("%s jobs=1: %v", format, err)
		}
		if err := run([]string{"-only", subset, "-format", format, "-jobs", "8"}, &parallel); err != nil {
			t.Fatalf("%s jobs=8: %v", format, err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s output differs between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				format, serial.String(), parallel.String())
		}
	}
}

func TestJobsZeroMeansAllCPUs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3", "-jobs", "0"}, &sb); err != nil {
		t.Fatalf("run -jobs 0: %v", err)
	}
	if !strings.Contains(sb.String(), "Fig. 3") {
		t.Errorf("output missing figure header:\n%s", sb.String())
	}
}

func TestBadFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-format", "yaml"}, &sb); err == nil {
		t.Error("unknown format accepted")
	}
}

// BenchmarkRunJobs measures the experiment fan-out at several worker
// counts; the output is byte-identical across sub-benchmarks (see
// TestJobsEquivalence), only wall-clock changes.
func BenchmarkRunJobs(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sb strings.Builder
				args := []string{"-only", "fig3,table12,waitperturb", "-jobs", fmt.Sprint(jobs)}
				if err := run(args, &sb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
