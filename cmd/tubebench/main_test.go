package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := sb.String()
	for _, id := range []string{"fig3", "fig4fig5", "table6", "tablex", "testbed"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "nope"}, &sb); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3"}, &sb); err != nil {
		t.Fatalf("run fig3: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 3") {
		t.Errorf("output missing figure header:\n%s", out)
	}
	if strings.Contains(out, "fig4fig5") {
		t.Error("unselected experiment ran")
	}
}

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3, table3"}, &sb); err != nil {
		t.Fatalf("run subset: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Table III") {
		t.Errorf("subset output incomplete:\n%s", out)
	}
}

func TestCatalogueIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range catalogue() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.id)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "fig3", "-format", "json"}, &sb); err != nil {
		t.Fatalf("run json: %v", err)
	}
	var out map[string]map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	fig3, ok := out["fig3"]
	if !ok {
		t.Fatalf("missing fig3 key: %v", out)
	}
	if _, ok := fig3["Patient"]; !ok {
		t.Errorf("fig3 payload missing Patient series: %v", fig3)
	}
}

func TestBadFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-format", "yaml"}, &sb); err == nil {
		t.Error("unknown format accepted")
	}
}
