package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testConfig = `{
  "name": "opt-test",
  "scenario": {
    "periods": 4,
    "betas": [0.5, 3],
    "demand": {"rows": [[10, 5], [2, 1], [3, 1], [12, 6]]},
    "capacity": {"constant": 10},
    "cost": {"slope": 2}
  },
  "mechanism": {"name": "rebate", "budgetFraction": 0.4}
}`

func writeTestConfig(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigMechanism(t *testing.T) {
	path := writeTestConfig(t, testConfig)
	var sb strings.Builder
	if err := run([]string{"-config", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if res.Mechanism != "rebate" {
		t.Errorf("mechanism %q, want rebate", res.Mechanism)
	}
	if len(res.Rewards) != 4 || len(res.Usage) != 4 {
		t.Errorf("%d rewards / %d usage rows, want 4 / 4", len(res.Rewards), len(res.Usage))
	}
	if res.RewardOutlay <= 0 {
		t.Errorf("rebate paid no rewards (outlay %v)", res.RewardOutlay)
	}
	if res.TIPCost <= 0 {
		t.Errorf("TIP baseline %v not positive", res.TIPCost)
	}
}

func TestConfigMechanismOverride(t *testing.T) {
	path := writeTestConfig(t, testConfig)
	var sb strings.Builder
	if err := run([]string{"-config", path, "-mechanism", "reverse"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if res.Mechanism != "reverse" {
		t.Errorf("mechanism %q, want reverse", res.Mechanism)
	}
}

func TestConfigTDPMatchesScenarioSolve(t *testing.T) {
	// A config whose mechanism is the classic optimizer takes the normal
	// solve path: no mechanism tag, TIP baseline and savings as before.
	path := writeTestConfig(t, `{
	  "name": "opt-tdp",
	  "scenario": {
	    "periods": 4,
	    "betas": [0.5, 3],
	    "demand": {"rows": [[10, 5], [2, 1], [3, 1], [12, 6]]},
	    "capacity": {"constant": 10},
	    "cost": {"slope": 2}
	  }
	}`)
	var sb strings.Builder
	if err := run([]string{"-config", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if res.Mechanism != "" {
		t.Errorf("tdp run tagged with mechanism %q", res.Mechanism)
	}
	if res.Cost > res.TIPCost {
		t.Errorf("cost %v above TIP %v", res.Cost, res.TIPCost)
	}
}

func TestConfigFlagConflicts(t *testing.T) {
	path := writeTestConfig(t, testConfig)
	scnPath := writeTestConfig(t, `{}`)
	if err := run([]string{"-config", path, "-scenario", scnPath}, &strings.Builder{}); err == nil {
		t.Error("-config with -scenario accepted")
	}
	if err := run([]string{"-mechanism", "rebate"}, &strings.Builder{}); err == nil {
		t.Error("-mechanism without -config accepted")
	}
	if err := run([]string{"-config", path, "-mechanism", "surge"}, &strings.Builder{}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}
