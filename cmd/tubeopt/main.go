// Command tubeopt computes optimal time-dependent rewards for a pricing
// scenario described in JSON. With no -scenario flag it runs the paper's
// §V-A 48-period scenario.
//
// Scenario JSON:
//
//	{
//	  "periods": 12,
//	  "demand": [[4,4],[2,2], ...],   // per period, per session type (10 MBps)
//	  "betas": [1, 2.5],              // patience index per type
//	  "capacity": [18, 18, ...],      // per period (10 MBps)
//	  "costSlope": 3,                 // marginal over-capacity cost ($0.10)
//	  "dynamic": false                // carry-over dynamic model instead of static
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tdp/internal/core"
	"tdp/internal/experiments"
	"tdp/internal/mechanism"
	"tdp/internal/scfg"
)

type scenarioJSON struct {
	Periods   int         `json:"periods"`
	Demand    [][]float64 `json:"demand"`
	Betas     []float64   `json:"betas"`
	Capacity  []float64   `json:"capacity"`
	CostSlope float64     `json:"costSlope"`
	Dynamic   bool        `json:"dynamic"`
}

type resultJSON struct {
	Mechanism    string    `json:"mechanism,omitempty"`
	Rewards      []float64 `json:"rewards"`
	Usage        []float64 `json:"usage"`
	Cost         float64   `json:"cost"`
	TIPCost      float64   `json:"tipCost"`
	SavingsPct   float64   `json:"savingsPct"`
	RewardOutlay float64   `json:"rewardOutlay"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tubeopt:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tubeopt", flag.ContinueOnError)
	path := fs.String("scenario", "", "path to scenario JSON ('-' for stdin; default: paper §V-A)")
	dynamic := fs.Bool("dynamic", false, "force the dynamic model regardless of the scenario file")
	cfgPath := fs.String("config", "", "strict scenario config file (scfg format, see examples/scenarios/); richer than -scenario")
	mech := fs.String("mechanism", "", "with -config: pricing mechanism from the zoo (default: the config's choice)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath != "" && *path != "" {
		return fmt.Errorf("-scenario and -config are mutually exclusive")
	}
	if *mech != "" && *cfgPath == "" {
		return fmt.Errorf("-mechanism requires -config")
	}

	var (
		scn    *core.Scenario
		useDyn bool
	)
	if *cfgPath != "" {
		sc, err := scfg.ParseFile(*cfgPath)
		if err != nil {
			return err
		}
		if scn, err = sc.Compile(); err != nil {
			return err
		}
		if sc.Mechanism != nil && sc.Mechanism.Dynamic {
			useDyn = true
		}
		if sc.Sim != nil && sc.Sim.Model == "dynamic" {
			useDyn = true
		}
		name := *mech
		if name == "" {
			name = sc.MechanismName()
		}
		if name != "tdp" {
			// A zoo mechanism plans the day; score it under the common
			// reaction model so runs across -mechanism values compare.
			p, err := sc.PricerNamed(name)
			if err != nil {
				return err
			}
			outcome, err := mechanism.PlanAndEvaluate(p, scn, nil)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(resultJSON{
				Mechanism:    outcome.Mechanism,
				Rewards:      outcome.Rewards,
				Usage:        outcome.Usage,
				Cost:         outcome.ISPCost,
				TIPCost:      outcome.TIPCost,
				SavingsPct:   100 * outcome.Savings(),
				RewardOutlay: outcome.RewardOutlay,
			})
		}
	} else {
		switch *path {
		case "":
			scn = experiments.Static48()
		default:
			var r io.Reader
			if *path == "-" {
				r = os.Stdin
			} else {
				f, err := os.Open(*path)
				if err != nil {
					return err
				}
				defer f.Close()
				r = f
			}
			var sj scenarioJSON
			if err := json.NewDecoder(r).Decode(&sj); err != nil {
				return fmt.Errorf("decode scenario: %w", err)
			}
			if sj.CostSlope <= 0 {
				sj.CostSlope = 3
			}
			scn = &core.Scenario{
				Periods:  sj.Periods,
				Demand:   sj.Demand,
				Betas:    sj.Betas,
				Capacity: sj.Capacity,
				Cost:     core.LinearCost(sj.CostSlope),
			}
			useDyn = sj.Dynamic
		}
	}
	if *dynamic {
		useDyn = true
	}

	var pr *core.Pricing
	if useDyn {
		m, err := core.NewDynamicModel(scn)
		if err != nil {
			return err
		}
		if pr, err = m.Solve(); err != nil {
			return err
		}
	} else {
		m, err := core.NewStaticModel(scn)
		if err != nil {
			return err
		}
		if pr, err = m.Solve(); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(resultJSON{
		Rewards:      pr.Rewards,
		Usage:        pr.Usage,
		Cost:         pr.Cost,
		TIPCost:      pr.TIPCost,
		SavingsPct:   100 * pr.Savings(),
		RewardOutlay: pr.RewardOutlay,
	})
}
