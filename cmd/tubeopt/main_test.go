package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultScenario(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(res.Rewards) != 48 {
		t.Errorf("%d rewards, want 48", len(res.Rewards))
	}
	if res.Cost >= res.TIPCost {
		t.Errorf("cost %v not below TIP %v", res.Cost, res.TIPCost)
	}
	if res.SavingsPct < 10 {
		t.Errorf("savings %v%%, want ≥ 10", res.SavingsPct)
	}
}

func TestScenarioFromFile(t *testing.T) {
	scn := scenarioJSON{
		Periods:   4,
		Demand:    [][]float64{{10, 5}, {2, 1}, {3, 1}, {12, 6}},
		Betas:     []float64{0.5, 3},
		Capacity:  []float64{10, 10, 10, 10},
		CostSlope: 2,
	}
	data, err := json.Marshal(scn)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(res.Rewards) != 4 {
		t.Errorf("%d rewards, want 4", len(res.Rewards))
	}
}

func TestScenarioDynamicFlag(t *testing.T) {
	scn := scenarioJSON{
		Periods:   4,
		Demand:    [][]float64{{10, 5}, {2, 1}, {3, 1}, {12, 6}},
		Betas:     []float64{0.5, 3},
		Capacity:  []float64{10, 10, 10, 10},
		CostSlope: 2,
	}
	data, _ := json.Marshal(scn)
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", path, "-dynamic"}, &sb); err != nil {
		t.Fatalf("run -dynamic: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if res.Cost > res.TIPCost {
		t.Errorf("dynamic cost %v above TIP %v", res.Cost, res.TIPCost)
	}
}

func TestBadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", path}, &sb); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "missing.json")}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInvalidScenarioContents(t *testing.T) {
	scn := scenarioJSON{Periods: 1, Demand: [][]float64{{1}}, Betas: []float64{1}, Capacity: []float64{1}}
	data, _ := json.Marshal(scn)
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", path}, &sb); err == nil {
		t.Error("single-period scenario accepted")
	}
}
