// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish the repo's
// performance trajectory (BENCH_<n>.json artifacts) without external
// tooling. It reads benchmark output on stdin (or from files given as
// arguments) and writes one JSON object:
//
//	go test ./internal/obs ./internal/ingest -bench . -benchmem | benchjson -out BENCH_4.json
//
// Lines that are not benchmark results (test chatter, PASS/ok, build
// noise) are ignored; `pkg:` headers attribute subsequent benchmarks to
// their package.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flag"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "-", "output file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var doc Document
	if fs.NArg() == 0 {
		if err := parseInto(&doc, stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parseInto(&doc, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseInto scans r line by line, accumulating benchmark results and
// environment headers into doc.
func parseInto(doc *Document, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return sc.Err()
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...`
// result line. Returns ok=false for anything else.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest legal line: name + iteration count + one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		if unit == "ns/op" {
			b.NsPerOp = v
		}
	}
	return b, true
}
