// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish the repo's
// performance trajectory (BENCH_<n>.json artifacts) without external
// tooling. It reads benchmark output on stdin (or from files given as
// arguments) and writes one JSON object:
//
//	go test ./internal/obs ./internal/ingest -bench . -benchmem | benchjson -out BENCH_4.json
//
// Lines that are not benchmark results (test chatter, PASS/ok, build
// noise) are ignored; `pkg:` headers attribute subsequent benchmarks to
// their package.
//
// With -diff it becomes a regression gate instead of a converter:
//
//	benchjson -diff BENCH_4.json BENCH_5.json -track 'Ingest|Usage' -threshold 0.20
//
// Benchmarks present in both documents (matched by package and name,
// ignoring the -P GOMAXPROCS suffix) are compared on ns/op; the command
// fails if any benchmark matching -track regressed by more than
// -threshold. Entries that appear on only one side are listed but never
// fail the gate — renames and new benchmarks are not regressions.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"flag"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "-", "output file (- for stdout)")
	diffBase := fs.String("diff", "", "baseline JSON document; compare ns/op instead of emitting JSON")
	threshold := fs.Float64("threshold", 0.20, "allowed fractional ns/op regression in -diff mode")
	track := fs.String("track", "", "regexp of benchmark names the -diff gate enforces (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diffBase != "" {
		re, err := compileTrack(*track)
		if err != nil {
			return err
		}
		base, err := readDocument(*diffBase)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", *diffBase, err)
		}
		var cur Document
		if fs.NArg() == 0 {
			if err := loadInto(&cur, stdin); err != nil {
				return err
			}
		}
		for _, path := range fs.Args() {
			d, err := readDocument(path)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			cur.Benchmarks = append(cur.Benchmarks, d.Benchmarks...)
		}
		return diffDocuments(base, cur, re, *threshold, stdout)
	}

	var doc Document
	if fs.NArg() == 0 {
		if err := parseInto(&doc, stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parseInto(&doc, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// compileTrack compiles the -track expression; empty means "gate every
// common benchmark".
func compileTrack(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("-track %q: %w", expr, err)
	}
	return re, nil
}

// readDocument loads either a benchjson JSON document or raw `go test
// -bench` text from path, so the gate accepts both checked-in artifacts
// and fresh benchmark output.
func readDocument(path string) (Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return Document{}, err
	}
	defer f.Close()
	var doc Document
	if err := loadInto(&doc, f); err != nil {
		return Document{}, err
	}
	return doc, nil
}

// loadInto sniffs r: a leading '{' means a JSON document, anything else is
// parsed as benchmark text.
func loadInto(doc *Document, r io.Reader) error {
	br := bufio.NewReader(r)
	head, err := br.Peek(1)
	if err != nil && err != io.EOF {
		return err
	}
	if len(head) == 1 && head[0] == '{' {
		var d Document
		if err := json.NewDecoder(br).Decode(&d); err != nil {
			return err
		}
		if doc.Goos == "" {
			doc.Goos, doc.Goarch, doc.CPU = d.Goos, d.Goarch, d.CPU
		}
		doc.Benchmarks = append(doc.Benchmarks, d.Benchmarks...)
		return nil
	}
	return parseInto(doc, br)
}

// benchKey identifies a benchmark across documents: package plus name with
// the trailing -P GOMAXPROCS suffix stripped, so runs from machines with
// different core counts still match.
func benchKey(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Package + "\t" + name
}

// bestNs collapses repeated runs (-count N) of one benchmark to the
// minimum ns/op — the least-noise estimate of the true cost on a shared
// machine. Entries without an ns/op measurement are dropped.
func bestNs(doc Document) map[string]float64 {
	best := make(map[string]float64)
	for _, b := range doc.Benchmarks {
		if b.NsPerOp <= 0 {
			continue
		}
		k := benchKey(b)
		if v, ok := best[k]; !ok || b.NsPerOp < v {
			best[k] = b.NsPerOp
		}
	}
	return best
}

// diffDocuments compares ns/op for the benchmarks common to base and cur,
// prints the full comparison, and fails if any tracked benchmark regressed
// beyond the threshold.
func diffDocuments(base, cur Document, track *regexp.Regexp, threshold float64, w io.Writer) error {
	old := bestNs(base)
	now := bestNs(cur)
	keys := make([]string, 0, len(old))
	for k := range old {
		if _, ok := now[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var failed []string
	for _, k := range keys {
		o, n := old[k], now[k]
		delta := (n - o) / o
		name := strings.ReplaceAll(k, "\t", " ")
		status := "ok"
		tracked := track == nil || track.MatchString(k)
		if tracked && delta > threshold {
			status = "REGRESSED"
			failed = append(failed, fmt.Sprintf("%s: %.4g → %.4g ns/op (%+.1f%%)", name, o, n, 100*delta))
		} else if !tracked {
			status = "untracked"
		}
		fmt.Fprintf(w, "%-72s %12.4g %12.4g %+8.1f%%  %s\n", name, o, n, 100*delta, status)
	}
	var only []string
	for k := range old {
		if _, ok := now[k]; !ok {
			only = append(only, fmt.Sprintf("%-72s only in baseline", strings.ReplaceAll(k, "\t", " ")))
		}
	}
	for k := range now {
		if _, ok := old[k]; !ok {
			only = append(only, fmt.Sprintf("%-72s only in current", strings.ReplaceAll(k, "\t", " ")))
		}
	}
	sort.Strings(only)
	for _, line := range only {
		fmt.Fprintln(w, line)
	}
	if len(keys) == 0 {
		return fmt.Errorf("no common benchmarks between baseline and current")
	}
	if len(failed) > 0 {
		return fmt.Errorf("ns/op regression beyond %.0f%%:\n  %s",
			100*threshold, strings.Join(failed, "\n  "))
	}
	fmt.Fprintf(w, "%d common benchmarks within %.0f%%\n", len(keys), 100*threshold)
	return nil
}

// parseInto scans r line by line, accumulating benchmark results and
// environment headers into doc.
func parseInto(doc *Document, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return sc.Err()
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...`
// result line. Returns ok=false for anything else.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest legal line: name + iteration count + one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		if unit == "ns/op" {
			b.NsPerOp = v
		}
	}
	return b, true
}
