package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tdp/internal/obs
cpu: AMD EPYC 7B13
BenchmarkBareAtomicInc-1   	579030261	         2.072 ns/op	       0 B/op	       0 allocs/op
BenchmarkCounterInc-1      	538785920	         2.228 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-1	100000000	        10.41 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tdp/internal/obs	7.213s
pkg: tdp/internal/ingest
BenchmarkIngestRecord-1    	 5000000	       241.0 ns/op
PASS
ok  	tdp/internal/ingest	1.402s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkCounterInc-1  538785920  2.228 ns/op  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkCounterInc-1" || b.Iterations != 538785920 {
		t.Errorf("got %+v", b)
	}
	if b.NsPerOp != 2.228 {
		t.Errorf("ns/op = %v", b.NsPerOp)
	}
	if b.Metrics["B/op"] != 0 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	for _, bad := range []string{
		"",
		"PASS",
		"ok  	tdp/internal/obs	7.213s",
		"Benchmark",                       // no fields beyond the name
		"BenchmarkX-1 notanumber 1 ns/op", // bad iteration count
		"BenchmarkX-1 100 xyz ns/op",      // bad value
		"BenchmarkX-1 100 2.0",            // value without unit
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("line %q accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading output: %v", err)
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("env headers: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	if doc.Benchmarks[0].Package != "tdp/internal/obs" {
		t.Errorf("package attribution: %+v", doc.Benchmarks[0])
	}
	if doc.Benchmarks[3].Name != "BenchmarkIngestRecord-1" ||
		doc.Benchmarks[3].Package != "tdp/internal/ingest" {
		t.Errorf("last benchmark: %+v", doc.Benchmarks[3])
	}
}

func TestRunStdout(t *testing.T) {
	var stdout strings.Builder
	if err := run(nil, strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), `"name": "BenchmarkBareAtomicInc-1"`) {
		t.Errorf("stdout output:\n%s", stdout.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok\n"), &strings.Builder{}); err == nil {
		t.Error("empty benchmark input accepted")
	}
}

// writeDoc marshals a Document to a temp file and returns its path.
func writeDoc(t *testing.T, doc Document) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchDoc(ns map[string]float64) Document {
	var doc Document
	for name, v := range ns {
		doc.Benchmarks = append(doc.Benchmarks, Benchmark{
			Name: name, Package: "tdp/internal/x", Iterations: 100, NsPerOp: v,
		})
	}
	return doc
}

func TestBenchKeyStripsProcSuffix(t *testing.T) {
	a := Benchmark{Name: "BenchmarkX-16", Package: "p"}
	b := Benchmark{Name: "BenchmarkX-1", Package: "p"}
	if benchKey(a) != benchKey(b) {
		t.Errorf("keys differ: %q vs %q", benchKey(a), benchKey(b))
	}
	// A sub-benchmark suffix that is not numeric must survive.
	c := Benchmark{Name: "BenchmarkX/shards=8-16", Package: "p"}
	if got := benchKey(c); got != "p\tBenchmarkX/shards=8" {
		t.Errorf("key = %q", got)
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	base := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 100, "BenchmarkB-1": 200}))
	cur := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-2": 110, "BenchmarkB-2": 190}))
	var out strings.Builder
	if err := run([]string{"-diff", base, cur}, nil, &out); err != nil {
		t.Fatalf("diff within threshold failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 common benchmarks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	base := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 100}))
	cur := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 121}))
	var out strings.Builder
	err := run([]string{"-diff", base, cur}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("regression not reported: %v", err)
	}
}

func TestDiffTrackLimitsGate(t *testing.T) {
	base := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 100, "BenchmarkNoisy-1": 100}))
	cur := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 105, "BenchmarkNoisy-1": 400}))
	var out strings.Builder
	if err := run([]string{"-diff", base, "-track", "BenchmarkA", cur}, nil, &out); err != nil {
		t.Fatalf("untracked regression failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "untracked") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDiffMinOfRepeatedRuns(t *testing.T) {
	// -count N runs: the gate compares minima, so a noisy high sample in
	// the current run must not fail when a clean sample exists.
	var cur Document
	for _, v := range []float64{300, 104, 290} {
		cur.Benchmarks = append(cur.Benchmarks, Benchmark{
			Name: "BenchmarkA-1", Package: "tdp/internal/x", Iterations: 10, NsPerOp: v,
		})
	}
	base := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 100}))
	var out strings.Builder
	if err := run([]string{"-diff", base, writeDoc(t, cur)}, nil, &out); err != nil {
		t.Fatalf("min-of-runs not applied: %v\n%s", err, out.String())
	}
}

func TestDiffCurrentFromBenchText(t *testing.T) {
	// The current side may be raw `go test -bench` text on stdin.
	base := writeDoc(t, Document{Benchmarks: []Benchmark{{
		Name: "BenchmarkCounterInc-1", Package: "tdp/internal/obs", Iterations: 1, NsPerOp: 2.5,
	}}})
	var out strings.Builder
	err := run([]string{"-diff", base, "-track", "CounterInc"}, strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatalf("text input diff: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkCounterInc") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDiffNoCommonBenchmarks(t *testing.T) {
	base := writeDoc(t, benchDoc(map[string]float64{"BenchmarkA-1": 100}))
	cur := writeDoc(t, benchDoc(map[string]float64{"BenchmarkB-1": 100}))
	err := run([]string{"-diff", base, cur}, nil, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "no common benchmarks") {
		t.Fatalf("disjoint documents accepted: %v", err)
	}
}
