package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tdp/internal/obs
cpu: AMD EPYC 7B13
BenchmarkBareAtomicInc-1   	579030261	         2.072 ns/op	       0 B/op	       0 allocs/op
BenchmarkCounterInc-1      	538785920	         2.228 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-1	100000000	        10.41 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tdp/internal/obs	7.213s
pkg: tdp/internal/ingest
BenchmarkIngestRecord-1    	 5000000	       241.0 ns/op
PASS
ok  	tdp/internal/ingest	1.402s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkCounterInc-1  538785920  2.228 ns/op  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkCounterInc-1" || b.Iterations != 538785920 {
		t.Errorf("got %+v", b)
	}
	if b.NsPerOp != 2.228 {
		t.Errorf("ns/op = %v", b.NsPerOp)
	}
	if b.Metrics["B/op"] != 0 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	for _, bad := range []string{
		"",
		"PASS",
		"ok  	tdp/internal/obs	7.213s",
		"Benchmark",                       // no fields beyond the name
		"BenchmarkX-1 notanumber 1 ns/op", // bad iteration count
		"BenchmarkX-1 100 xyz ns/op",      // bad value
		"BenchmarkX-1 100 2.0",            // value without unit
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("line %q accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading output: %v", err)
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("env headers: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	if doc.Benchmarks[0].Package != "tdp/internal/obs" {
		t.Errorf("package attribution: %+v", doc.Benchmarks[0])
	}
	if doc.Benchmarks[3].Name != "BenchmarkIngestRecord-1" ||
		doc.Benchmarks[3].Package != "tdp/internal/ingest" {
		t.Errorf("last benchmark: %+v", doc.Benchmarks[3])
	}
}

func TestRunStdout(t *testing.T) {
	var stdout strings.Builder
	if err := run(nil, strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), `"name": "BenchmarkBareAtomicInc-1"`) {
		t.Errorf("stdout output:\n%s", stdout.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok\n"), &strings.Builder{}); err == nil {
		t.Error("empty benchmark input accepted")
	}
}
