package rrd

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile persists whatever write produces to path crash-safely:
// the content is written to a temporary file in the same directory,
// fsynced, and atomically renamed over path. A crash at any point leaves
// either the old complete file or the new complete file — never a
// truncated one. It is the shared persist machinery behind the RRD
// snapshots here and the cluster price-plane snapshots
// (internal/cluster), which have the same all-or-nothing durability
// contract.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("rrd: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("rrd: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("rrd: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rrd: rename %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself is durable. Some
	// filesystems refuse to sync directories; the data file is already
	// safe on disk either way.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// SaveFile persists the database to path crash-safely via
// AtomicWriteFile. A crash at any point leaves either the old complete
// snapshot or the new complete snapshot — never a truncated one (a
// truncated snapshot would brick the GUI's price history on restart;
// LoadFile rejects it, but rejecting is still losing the history).
func (db *DB) SaveFile(path string) error {
	return AtomicWriteFile(path, db.Save)
}

// LoadFile reconstructs a database from a snapshot file written by
// SaveFile. Partial or corrupt snapshots are rejected with an error
// wrapping ErrBadConfig (version/structure mismatch) or the decoder's
// error (truncation), never a silently wrong database.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rrd: load %s: %w", path, err)
	}
	defer f.Close()
	db, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("rrd: load %s: %w", path, err)
	}
	return db, nil
}
