package rrd

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, ArchiveSpec{Func: Average, Steps: 1, Rows: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero step: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no archives: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(1, ArchiveSpec{Func: Average, Steps: 0, Rows: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero steps: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(1, ArchiveSpec{Func: Consolidation(9), Steps: 1, Rows: 1}); !errors.Is(err, ErrUnknownFunc) {
		t.Errorf("bad func: err = %v, want ErrUnknownFunc", err)
	}
}

func TestUpdateFetchBasic(t *testing.T) {
	db, err := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := db.Update(i, float64(i)*10); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	pts, err := db.Fetch(0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points, want 5", len(pts))
	}
	for i, p := range pts {
		if p.Time != int64(i+1) || p.Value != float64(i+1)*10 {
			t.Errorf("point %d = %+v", i, p)
		}
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	db, _ := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 4})
	if err := db.Update(5, 1); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := db.Update(5, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("same time: err = %v, want ErrOutOfOrder", err)
	}
	if err := db.Update(3, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("earlier time: err = %v, want ErrOutOfOrder", err)
	}
}

func TestRingWrapAround(t *testing.T) {
	db, _ := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 3})
	for i := int64(1); i <= 7; i++ {
		if err := db.Update(i, float64(i)); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	pts, _ := db.Fetch(0)
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	want := []float64{5, 6, 7}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Errorf("point %d = %v, want %v (oldest-first after wrap)", i, p.Value, want[i])
		}
	}
}

func TestConsolidationFunctions(t *testing.T) {
	db, err := New(1,
		ArchiveSpec{Func: Average, Steps: 4, Rows: 4},
		ArchiveSpec{Func: Max, Steps: 4, Rows: 4},
		ArchiveSpec{Func: Min, Steps: 4, Rows: 4},
		ArchiveSpec{Func: Last, Steps: 4, Rows: 4},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	vals := []float64{3, 9, 1, 7}
	for i, v := range vals {
		if err := db.Update(int64(i+1), v); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	wants := []float64{5, 9, 1, 7} // avg, max, min, last
	for idx, want := range wants {
		p, ok, err := db.Latest(idx)
		if err != nil || !ok {
			t.Fatalf("Latest(%d): ok=%v err=%v", idx, ok, err)
		}
		if p.Value != want {
			t.Errorf("archive %d (%v): value %v, want %v", idx, db.archives[idx].spec.Func, p.Value, want)
		}
		if p.Time != 4 {
			t.Errorf("archive %d: time %d, want 4 (window end)", idx, p.Time)
		}
	}
}

func TestPartialWindowNotEmitted(t *testing.T) {
	db, _ := New(1, ArchiveSpec{Func: Average, Steps: 3, Rows: 5})
	db.Update(1, 1)
	db.Update(2, 2)
	if _, ok, _ := db.Latest(0); ok {
		t.Error("partial window emitted a point")
	}
	db.Update(3, 3)
	p, ok, _ := db.Latest(0)
	if !ok || p.Value != 2 {
		t.Errorf("Latest = (%+v, %v), want value 2", p, ok)
	}
}

func TestFetchBadIndex(t *testing.T) {
	db, _ := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 1})
	if _, err := db.Fetch(1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad index: err = %v, want ErrBadConfig", err)
	}
	if _, err := db.Fetch(-1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative index: err = %v, want ErrBadConfig", err)
	}
}

func TestStats(t *testing.T) {
	db, _ := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 10})
	count, _, _, _, err := db.Stats(0)
	if err != nil || count != 0 {
		t.Fatalf("empty stats: count %d err %v", count, err)
	}
	for i, v := range []float64{4, 8, 6} {
		db.Update(int64(i+1), v)
	}
	count, mean, minV, maxV, err := db.Stats(0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if count != 3 || math.Abs(mean-6) > 1e-12 || minV != 4 || maxV != 8 {
		t.Errorf("Stats = (%d, %v, %v, %v)", count, mean, minV, maxV)
	}
}

func TestConcurrentUpdatesAreSerialized(t *testing.T) {
	// Concurrent updates must not corrupt internal state (they may be
	// rejected as out-of-order; that is fine). Run with -race.
	db, _ := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = db.Update(int64(g*1000+i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	pts, err := db.Fetch(0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatal("archive times not strictly increasing")
		}
	}
}

func TestConsolidationString(t *testing.T) {
	if Average.String() != "AVERAGE" || Max.String() != "MAX" ||
		Min.String() != "MIN" || Last.String() != "LAST" {
		t.Error("String names wrong")
	}
	if Consolidation(42).String() == "" {
		t.Error("unknown consolidation must still render")
	}
}
