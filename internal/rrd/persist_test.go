package rrd

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db, err := New(1,
		ArchiveSpec{Func: Last, Steps: 1, Rows: 5},
		ArchiveSpec{Func: Average, Steps: 3, Rows: 4},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := int64(1); i <= 8; i++ {
		if err := db.Update(i, float64(i)*2); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for idx := 0; idx < 2; idx++ {
		want, err := db.Fetch(idx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Fetch(idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("archive %d: %d points, want %d", idx, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("archive %d point %d: %+v, want %+v", idx, i, got[i], want[i])
			}
		}
	}
	// The restored DB keeps the monotonic-time guard and the in-progress
	// accumulation (8 samples into a 3-step window leaves 2 pending).
	if err := restored.Update(8, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("restored DB lost time guard: err = %v", err)
	}
	if err := restored.Update(9, 18); err != nil {
		t.Fatalf("Update after restore: %v", err)
	}
	p, ok, err := restored.Latest(1)
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	// Window 7..9: values 14, 16, 18 → average 16.
	if p.Value != 16 || p.Time != 9 {
		t.Errorf("resumed consolidation = %+v, want avg 16 at t=9", p)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"step":1,"archives":[{"func":1,"steps":1,"rows":1,"ring":[{}],"head":0,"filled":0,"accCount":0}]}`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("future version: err = %v, want ErrBadConfig", err)
	}
	if _, err := Load(strings.NewReader(`{"version":1,"step":0,"archives":[]}`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad step: err = %v, want ErrBadConfig", err)
	}
	// Corrupt ring geometry.
	if _, err := Load(strings.NewReader(`{"version":1,"step":1,"archives":[{"func":1,"steps":1,"rows":2,"ring":[{}],"head":0,"filled":0,"accCount":0}]}`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ring mismatch: err = %v, want ErrBadConfig", err)
	}
	if _, err := Load(strings.NewReader(`{"version":1,"step":1,"archives":[{"func":1,"steps":1,"rows":1,"ring":[{}],"head":5,"filled":0,"accCount":0}]}`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad head: err = %v, want ErrBadConfig", err)
	}
}

func TestSaveEmptyDB(t *testing.T) {
	db, err := New(2, ArchiveSpec{Func: Max, Steps: 2, Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pts, err := restored.Fetch(0)
	if err != nil || len(pts) != 0 {
		t.Errorf("empty DB round trip: %v points, err %v", len(pts), err)
	}
	// Fresh DB accepts any first timestamp.
	if err := restored.Update(-5, 1); err != nil {
		t.Errorf("first update after empty restore: %v", err)
	}
}
