package rrd

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(1, ArchiveSpec{Func: Last, Steps: 1, Rows: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if err := db.Update(int64(i), float64(i)*1.5); err != nil {
			t.Fatalf("Update(%d): %v", i, err)
		}
	}
	return db
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "hist.rrd")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	want, _ := db.Fetch(0)
	pts, _ := got.Fetch(0)
	if len(pts) != len(want) {
		t.Fatalf("fetched %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestSaveFileOverwritesAtomically(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "hist.rrd")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("first SaveFile: %v", err)
	}
	if err := db.Update(6, 99); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("second SaveFile: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	pts, _ := got.Fetch(0)
	last := pts[len(pts)-1]
	if last.Value != 99.0 {
		t.Fatalf("last point = %+v, want value 99", last)
	}
}

// TestLoadFileRejectsTruncated simulates the crash SaveFile prevents:
// a snapshot cut off mid-write must be rejected with a clear error, not
// loaded as a silently wrong database.
func TestLoadFileRejectsTruncated(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.rrd")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.3, 0.9} {
		cut := filepath.Join(dir, "cut.rrd")
		if err := os.WriteFile(cut, raw[:int(float64(len(raw))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(cut); err == nil {
			t.Fatalf("truncated snapshot (%.0f%%) loaded without error", frac*100)
		} else if !strings.Contains(err.Error(), "load") {
			t.Fatalf("unhelpful error for truncated snapshot: %v", err)
		}
	}
}

func TestLoadFileRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.rrd":    "not json at all {{{",
		"bad_vers.rrd":   `{"version":99,"step":1,"archives":[{"func":0,"steps":1,"rows":8}]}`,
		"bad_ring.rrd":   `{"version":1,"step":1,"archives":[{"func":0,"steps":1,"rows":8,"ring":[],"head":0,"filled":0}]}`,
		"bad_fields.rrd": `{"version":1,"step":-5,"archives":[]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Errorf("%s loaded without error", name)
		}
	}
	// Structure errors specifically wrap ErrBadConfig.
	if _, err := LoadFile(filepath.Join(dir, "bad_vers.rrd")); !errors.Is(err, ErrBadConfig) {
		t.Errorf("version mismatch err = %v, want ErrBadConfig", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.rrd")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}
