package rrd

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file adds RRDtool-style persistence: the whole database (specs,
// rings, and in-progress accumulators) round-trips through a versioned
// JSON snapshot, so a TUBE GUI's price history survives restarts.

// snapshotVersion guards against loading snapshots from incompatible
// future layouts.
const snapshotVersion = 1

type dbSnapshot struct {
	Version  int               `json:"version"`
	Step     int64             `json:"step"`
	LastTime int64             `json:"lastTime"`
	Started  bool              `json:"started"`
	Archives []archiveSnapshot `json:"archives"`
}

type archiveSnapshot struct {
	Func     Consolidation `json:"func"`
	Steps    int           `json:"steps"`
	Rows     int           `json:"rows"`
	Ring     []Point       `json:"ring"`
	Head     int           `json:"head"`
	Filled   int           `json:"filled"`
	AccCount int           `json:"accCount"`
	AccValue float64       `json:"accValue"`
}

// Save writes a snapshot of the database to w.
func (db *DB) Save(w io.Writer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	snap := dbSnapshot{
		Version:  snapshotVersion,
		Step:     db.step,
		LastTime: db.lastTime,
		Started:  db.started,
	}
	for _, a := range db.archives {
		snap.Archives = append(snap.Archives, archiveSnapshot{
			Func:     a.spec.Func,
			Steps:    a.spec.Steps,
			Rows:     a.spec.Rows,
			Ring:     append([]Point(nil), a.ring...),
			Head:     a.head,
			Filled:   a.filled,
			AccCount: a.accCount,
			AccValue: a.accValue,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("rrd: save: %w", err)
	}
	return nil
}

// Load reconstructs a database from a snapshot written by Save.
func Load(r io.Reader) (*DB, error) {
	var snap dbSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rrd: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("rrd: snapshot version %d, want %d: %w",
			snap.Version, snapshotVersion, ErrBadConfig)
	}
	if snap.Step <= 0 || len(snap.Archives) == 0 {
		return nil, fmt.Errorf("rrd: malformed snapshot: %w", ErrBadConfig)
	}
	specs := make([]ArchiveSpec, len(snap.Archives))
	for i, a := range snap.Archives {
		specs[i] = ArchiveSpec{Func: a.Func, Steps: a.Steps, Rows: a.Rows}
	}
	db, err := New(snap.Step, specs...)
	if err != nil {
		return nil, err
	}
	db.lastTime = snap.LastTime
	db.started = snap.Started
	for i, a := range snap.Archives {
		arch := db.archives[i]
		if len(a.Ring) != a.Rows || a.Head < 0 || a.Head >= a.Rows ||
			a.Filled < 0 || a.Filled > a.Rows || a.AccCount < 0 || a.AccCount >= a.Steps {
			return nil, fmt.Errorf("rrd: archive %d state out of range: %w", i, ErrBadConfig)
		}
		copy(arch.ring, a.Ring)
		arch.head = a.Head
		arch.filled = a.Filled
		arch.accCount = a.AccCount
		arch.accValue = a.AccValue
	}
	return db, nil
}
