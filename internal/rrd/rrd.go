// Package rrd implements a round-robin database for time-series data,
// mirroring the RRDtool storage the TUBE GUI uses for its price and usage
// history (paper §VI-A): fixed-size circular archives at different
// resolutions, each consolidating primary samples with a configurable
// function, so storage never grows.
package rrd

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Errors returned by the database.
var (
	ErrBadConfig   = errors.New("rrd: invalid configuration")
	ErrOutOfOrder  = errors.New("rrd: sample not after last update")
	ErrUnknownFunc = errors.New("rrd: unknown consolidation function")
)

// Consolidation reduces a window of primary samples to one archived point.
type Consolidation int

// Supported consolidation functions.
const (
	Average Consolidation = iota + 1
	Max
	Min
	Last
)

func (c Consolidation) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Last:
		return "LAST"
	default:
		return fmt.Sprintf("Consolidation(%d)", int(c))
	}
}

// ArchiveSpec configures one round-robin archive.
type ArchiveSpec struct {
	// Func consolidates Steps primary samples into one row.
	Func Consolidation
	// Steps is how many primary samples make one archived row (≥ 1).
	Steps int
	// Rows is the circular capacity (≥ 1).
	Rows int
}

// Point is one archived sample.
type Point struct {
	// Time is the timestamp of the *end* of the consolidated window, in
	// the database's step units.
	Time int64
	// Value is the consolidated value.
	Value float64
}

// archive is one circular buffer plus its in-progress accumulation.
type archive struct {
	spec   ArchiveSpec
	ring   []Point
	head   int // next write position
	filled int // number of valid rows

	accCount int
	accValue float64
}

// DB is a fixed-size time-series store. A DB has a base step (the sampling
// interval); Update must be called with strictly increasing timestamps
// (multiples of the step are not required — each call is one primary
// sample).
type DB struct {
	mu       sync.Mutex
	step     int64      // immutable after New
	lastTime int64      // guarded by mu
	started  bool       // guarded by mu
	archives []*archive // guarded by mu (the archive structs too)
}

// New creates a database with the given primary step (in whatever time
// unit the caller uses, e.g. seconds) and archives.
func New(step int64, specs ...ArchiveSpec) (*DB, error) {
	if step <= 0 {
		return nil, fmt.Errorf("step %d: %w", step, ErrBadConfig)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no archives: %w", ErrBadConfig)
	}
	db := &DB{step: step}
	for i, s := range specs {
		if s.Steps < 1 || s.Rows < 1 {
			return nil, fmt.Errorf("archive %d (steps %d, rows %d): %w", i, s.Steps, s.Rows, ErrBadConfig)
		}
		switch s.Func {
		case Average, Max, Min, Last:
		default:
			return nil, fmt.Errorf("archive %d: %w", i, ErrUnknownFunc)
		}
		db.archives = append(db.archives, &archive{
			spec: s,
			ring: make([]Point, s.Rows),
		})
	}
	return db, nil
}

// Update records one primary sample at the given time.
func (db *DB) Update(t int64, value float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.started && t <= db.lastTime {
		return fmt.Errorf("t=%d after %d: %w", t, db.lastTime, ErrOutOfOrder)
	}
	db.started = true
	db.lastTime = t
	for _, a := range db.archives {
		a.accumulate(t, value)
	}
	return nil
}

func (a *archive) accumulate(t int64, value float64) {
	switch a.spec.Func {
	case Average:
		a.accValue += value
	case Max:
		if a.accCount == 0 || value > a.accValue {
			a.accValue = value
		}
	case Min:
		if a.accCount == 0 || value < a.accValue {
			a.accValue = value
		}
	case Last:
		a.accValue = value
	}
	a.accCount++
	if a.accCount < a.spec.Steps {
		return
	}
	v := a.accValue
	if a.spec.Func == Average {
		v /= float64(a.spec.Steps)
	}
	a.ring[a.head] = Point{Time: t, Value: v}
	a.head = (a.head + 1) % len(a.ring)
	if a.filled < len(a.ring) {
		a.filled++
	}
	a.accCount = 0
	a.accValue = 0
}

// Fetch returns the archived points of archive idx, oldest first.
func (db *DB) Fetch(idx int) ([]Point, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if idx < 0 || idx >= len(db.archives) {
		return nil, fmt.Errorf("archive %d of %d: %w", idx, len(db.archives), ErrBadConfig)
	}
	a := db.archives[idx]
	out := make([]Point, 0, a.filled)
	start := a.head - a.filled
	if start < 0 {
		start += len(a.ring)
	}
	for i := 0; i < a.filled; i++ {
		out = append(out, a.ring[(start+i)%len(a.ring)])
	}
	return out, nil
}

// Latest returns the newest consolidated point of archive idx, or false if
// the archive is still empty.
func (db *DB) Latest(idx int) (Point, bool, error) {
	pts, err := db.Fetch(idx)
	if err != nil {
		return Point{}, false, err
	}
	if len(pts) == 0 {
		return Point{}, false, nil
	}
	return pts[len(pts)-1], true, nil
}

// Stats summarizes an archive: count, mean, min, max of stored values.
func (db *DB) Stats(idx int) (count int, mean, minV, maxV float64, err error) {
	pts, err := db.Fetch(idx)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(pts) == 0 {
		return 0, 0, 0, 0, nil
	}
	minV, maxV = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, p := range pts {
		sum += p.Value
		minV = math.Min(minV, p.Value)
		maxV = math.Max(maxV, p.Value)
	}
	return len(pts), sum / float64(len(pts)), minV, maxV, nil
}
