package optimize

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestMultistartFindsGlobalMinimum(t *testing.T) {
	// Double well: f = (x²−1)² + 0.3x has local min near x≈1 but global
	// min near x≈−1. A descent from x0=0.9 lands in the wrong well;
	// multistart must escape.
	fn := FuncObjective{Fn: func(x []float64) float64 {
		a := x[0]*x[0] - 1
		return a*a + 0.3*x[0]
	}}
	b := UniformBounds(1, -2, 2)
	solve := func(x0 []float64) (Result, error) {
		return ProjectedGradient(fn, x0, b, WithMaxIterations(5000))
	}
	rng := rand.New(rand.NewSource(7))
	res, err := Multistart(solve, []float64{0.9}, b, 20, rng)
	if err != nil {
		t.Fatalf("Multistart: %v", err)
	}
	if res.X[0] > 0 {
		t.Errorf("x = %v, want the negative (global) well", res.X[0])
	}
	// Single start from 0.9 should find the local minimum instead,
	// demonstrating that multistart changed the outcome.
	single, err := solve([]float64{0.9})
	if err != nil {
		t.Fatalf("single solve: %v", err)
	}
	if single.X[0] < 0 {
		t.Skip("descent escaped the local well; landscape check not applicable")
	}
	if res.F >= single.F {
		t.Errorf("multistart f = %v not better than single-start f = %v", res.F, single.F)
	}
}

func TestMultistartSingleStart(t *testing.T) {
	fn := FuncObjective{Fn: func(x []float64) float64 { return x[0] * x[0] }}
	b := UniformBounds(1, -1, 1)
	solve := func(x0 []float64) (Result, error) {
		return ProjectedGradient(fn, x0, b)
	}
	res, err := Multistart(solve, []float64{0.5}, b, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Multistart: %v", err)
	}
	if math.Abs(res.X[0]) > 1e-6 {
		t.Errorf("x = %v, want 0", res.X[0])
	}
}

func TestMultistartAllFail(t *testing.T) {
	wantErr := errors.New("solver exploded")
	solve := func(x0 []float64) (Result, error) { return Result{}, wantErr }
	b := UniformBounds(1, 0, 1)
	_, err := Multistart(solve, []float64{0}, b, 3, rand.New(rand.NewSource(1)))
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want the solver error", err)
	}
}

func TestMultistartBadBounds(t *testing.T) {
	b := Bounds{Lower: []float64{1}, Upper: []float64{0}}
	solve := func(x0 []float64) (Result, error) { return Result{X: x0, F: 0}, nil }
	if _, err := Multistart(solve, []float64{0}, b, 2, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
}

// TestMultistartAliasedResultNotCorrupted is the regression test for the
// shared start-buffer bug: a solve whose Result.X aliases its input used
// to be corrupted when the next restart overwrote the shared slice.
func TestMultistartAliasedResultNotCorrupted(t *testing.T) {
	b := UniformBounds(2, -1, 1)
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	// The solve returns its input slice itself — no copy — as many
	// optimizers legitimately do.
	solve := func(x0 []float64) (Result, error) {
		return Result{X: x0, F: f(x0)}, nil
	}
	res, err := Multistart(solve, []float64{0, 0}, b, 16, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Multistart: %v", err)
	}
	// x0 = (0,0) is the global minimum, so it must win — and its X must
	// still hold the values F was computed from.
	if res.F != 0 {
		t.Fatalf("best F = %v, want 0 (the x0 start)", res.F)
	}
	if got := f(res.X); got != res.F {
		t.Errorf("best X re-evaluates to %v but F = %v — the winning start vector was overwritten", got, res.F)
	}
}

// TestMultistartJobsEquivalence asserts bit-identical results for every
// worker count, including the serial path.
func TestMultistartJobsEquivalence(t *testing.T) {
	fn := FuncObjective{Fn: func(x []float64) float64 {
		a := x[0]*x[0] - 1
		return a*a + 0.3*x[0] + 0.5*x[1]*x[1]
	}}
	b := UniformBounds(2, -2, 2)
	solve := func(x0 []float64) (Result, error) {
		return ProjectedGradient(fn, x0, b, WithMaxIterations(2000))
	}
	run := func(jobs int) Result {
		t.Helper()
		res, err := MultistartJobs(solve, []float64{0.9, 0.9}, b, 12, rand.New(rand.NewSource(7)), jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return res
	}
	serial := run(1)
	for _, jobs := range []int{2, 8, 0} {
		got := run(jobs)
		if got.F != serial.F || !reflect.DeepEqual(got.X, serial.X) ||
			got.Iterations != serial.Iterations || got.Evals != serial.Evals {
			t.Errorf("jobs=%d result %+v differs from serial %+v", jobs, got, serial)
		}
	}
}

func TestProjectedSubgradientNonSmooth(t *testing.T) {
	// f = |x−0.4| + |y+0.2|, convex and non-smooth everywhere that matters.
	obj := FuncObjective{
		Fn: func(x []float64) float64 {
			return math.Abs(x[0]-0.4) + math.Abs(x[1]+0.2)
		},
		GradFn: func(x, g []float64) {
			g[0] = sign(x[0] - 0.4)
			g[1] = sign(x[1] + 0.2)
		},
	}
	res, err := ProjectedSubgradient(obj, []float64{-1, 1}, UniformBounds(2, -2, 2),
		WithMaxIterations(20000), WithInitialStep(1))
	if err != nil {
		t.Fatalf("ProjectedSubgradient: %v", err)
	}
	if math.Abs(res.X[0]-0.4) > 0.01 || math.Abs(res.X[1]+0.2) > 0.01 {
		t.Errorf("x = %v, want ≈(0.4, -0.2)", res.X)
	}
}

func TestProjectedSubgradientBadBounds(t *testing.T) {
	obj := FuncObjective{Fn: func(x []float64) float64 { return x[0] }}
	b := Bounds{Lower: []float64{2}, Upper: []float64{1}}
	if _, err := ProjectedSubgradient(obj, []float64{0}, b); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
