package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmoothMaxLimits(t *testing.T) {
	if got := SmoothMax(5, 0); got != 5 {
		t.Errorf("SmoothMax(5, 0) = %v, want 5", got)
	}
	if got := SmoothMax(-5, 0); got != 0 {
		t.Errorf("SmoothMax(-5, 0) = %v, want 0", got)
	}
	// Deep in either tail the smooth and exact versions agree.
	if got := SmoothMax(100, 0.01); math.Abs(got-100) > 1e-9 {
		t.Errorf("SmoothMax(100, 0.01) = %v, want 100", got)
	}
	if got := SmoothMax(-100, 0.01); got != 0 {
		t.Errorf("SmoothMax(-100, 0.01) = %v, want 0", got)
	}
}

func TestSmoothMaxGap(t *testing.T) {
	// The softplus upper-bounds max(x,0) with gap at most μ·log2.
	for _, mu := range []float64{1, 0.1, 0.01} {
		for _, x := range []float64{-3, -0.5, 0, 0.5, 3} {
			s := SmoothMax(x, mu)
			exact := math.Max(x, 0)
			if s < exact-1e-12 {
				t.Errorf("SmoothMax(%v,%v) = %v below max", x, mu, s)
			}
			if s-exact > mu*math.Ln2+1e-12 {
				t.Errorf("SmoothMax(%v,%v) gap %v > μln2", x, mu, s-exact)
			}
		}
	}
}

func TestSmoothMaxDeriv(t *testing.T) {
	if d := SmoothMaxDeriv(0, 1); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("deriv at 0 = %v, want 0.5", d)
	}
	if d := SmoothMaxDeriv(100, 0.01); d != 1 {
		t.Errorf("deriv deep positive = %v, want 1", d)
	}
	if d := SmoothMaxDeriv(-100, 0.01); d != 0 {
		t.Errorf("deriv deep negative = %v, want 0", d)
	}
	if d := SmoothMaxDeriv(1, 0); d != 1 {
		t.Errorf("exact deriv positive = %v, want 1", d)
	}
	if d := SmoothMaxDeriv(-1, 0); d != 0 {
		t.Errorf("exact deriv negative = %v, want 0", d)
	}
}

// Property: SmoothMaxDeriv matches the finite-difference slope of SmoothMax.
func TestSmoothMaxDerivConsistencyProperty(t *testing.T) {
	f := func(xr float64) bool {
		x := math.Mod(clamp(xr), 10)
		const mu, h = 0.5, 1e-6
		num := (SmoothMax(x+h, mu) - SmoothMax(x-h, mu)) / (2 * h)
		return math.Abs(num-SmoothMaxDeriv(x, mu)) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

func TestHomotopyOnKinkedObjective(t *testing.T) {
	// min 3·max(x−2, 0) + (x−3)² over [0, 10].
	// For x>2: derivative 3+2(x−3)=0 → x=1.5 (infeasible for branch);
	// at the kink x=2 the subdifferential is [−2, 1] ∋ 0 → optimum x=2.
	mk := func(mu float64) Objective {
		return FuncObjective{Fn: func(x []float64) float64 {
			return 3*SmoothMax(x[0]-2, mu) + (x[0]-3)*(x[0]-3)
		}}
	}
	exact := func(x []float64) float64 {
		return 3*math.Max(x[0]-2, 0) + (x[0]-3)*(x[0]-3)
	}
	res, err := Homotopy(mk, exact, []float64{0}, UniformBounds(1, 0, 10),
		DefaultSchedule(), true)
	if err != nil {
		t.Fatalf("Homotopy: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Errorf("x = %v, want 2 (the kink)", res.X[0])
	}
	if math.Abs(res.F-1) > 1e-4 {
		t.Errorf("f = %v, want 1", res.F)
	}
}

func TestDefaultScheduleDecreasing(t *testing.T) {
	s := DefaultSchedule()
	if len(s) == 0 {
		t.Fatal("empty schedule")
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Errorf("schedule not decreasing at %d: %v ≥ %v", i, s[i], s[i-1])
		}
	}
	if s[len(s)-1] > 0.01 {
		t.Errorf("final temperature %v too coarse", s[len(s)-1])
	}
}
