package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	x, fx := GoldenSection(func(x float64) float64 { return (x - 2) * (x - 2) }, -10, 10, 1e-10)
	if math.Abs(x-2) > 1e-8 {
		t.Errorf("minimizer = %v, want 2", x)
	}
	if fx > 1e-15 {
		t.Errorf("value = %v, want ≈0", fx)
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	// Monotone increasing on [1, 5]: the minimum sits at the left edge.
	x, _ := GoldenSection(func(x float64) float64 { return x }, 1, 5, 1e-10)
	if math.Abs(x-1) > 1e-8 {
		t.Errorf("minimizer = %v, want 1", x)
	}
}

func TestGoldenSectionReversedInterval(t *testing.T) {
	x, _ := GoldenSection(func(x float64) float64 { return (x + 1) * (x + 1) }, 3, -3, 1e-10)
	if math.Abs(x+1) > 1e-8 {
		t.Errorf("minimizer = %v, want -1", x)
	}
}

func TestBrentQuadratic(t *testing.T) {
	x, fx := Brent(func(x float64) float64 { return 3*(x-0.7)*(x-0.7) + 5 }, -4, 4, 1e-12)
	if math.Abs(x-0.7) > 1e-7 {
		t.Errorf("minimizer = %v, want 0.7", x)
	}
	if math.Abs(fx-5) > 1e-10 {
		t.Errorf("value = %v, want 5", fx)
	}
}

func TestBrentNonPolynomial(t *testing.T) {
	// min of x - sin(x)·2 near x ≈ 1.0472 (cos x = 1/2) on [0, π].
	x, _ := Brent(func(x float64) float64 { return x - 2*math.Sin(x) }, 0, math.Pi, 1e-12)
	if math.Abs(x-math.Pi/3) > 1e-6 {
		t.Errorf("minimizer = %v, want %v", x, math.Pi/3)
	}
}

func TestBrentKink(t *testing.T) {
	// |x - 0.3| has a non-smooth minimum; Brent must still locate it.
	x, _ := Brent(func(x float64) float64 { return math.Abs(x - 0.3) }, -1, 1, 1e-12)
	if math.Abs(x-0.3) > 1e-6 {
		t.Errorf("minimizer = %v, want 0.3", x)
	}
}

// Property: for random parabolas with the vertex inside the interval both
// methods find the vertex.
func TestOneDimMinimizersProperty(t *testing.T) {
	f := func(center, width float64) bool {
		c := math.Mod(math.Abs(center), 5)      // vertex in [0,5)
		w := 0.5 + math.Mod(math.Abs(width), 4) // curvature in [0.5,4.5)
		if math.IsNaN(c) || math.IsNaN(w) {
			return true
		}
		fn := func(x float64) float64 { return w * (x - c) * (x - c) }
		xg, _ := GoldenSection(fn, -1, 6, 1e-10)
		xb, _ := Brent(fn, -1, 6, 1e-10)
		return math.Abs(xg-c) < 1e-6 && math.Abs(xb-c) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
