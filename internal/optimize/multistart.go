package optimize

import (
	"context"
	"math/rand"

	"tdp/internal/parallel"
)

// Multistart runs a local minimizer from several random starting points
// inside the box and keeps the best result. It is used for the paper's
// non-convex definite-choice model (Appendix D), where a single local
// solve can miss the global optimum.
//
// starts must be ≥ 1; the first start is always x0 itself. The RNG must be
// seeded by the caller for reproducibility.
//
// Restarts run concurrently on one worker per CPU; use MultistartJobs to
// control the worker count. solve must be safe for concurrent calls.
func Multistart(solve func(x0 []float64) (Result, error), x0 []float64, b Bounds,
	starts int, rng *rand.Rand) (Result, error) {
	return MultistartJobs(solve, x0, b, starts, rng, 0)
}

// MultistartJobs is Multistart with an explicit worker count (jobs ≤ 0
// means one per CPU). Results are bit-identical for every worker count:
// each restart draws its seed from rng up front in restart order, owns a
// fresh start vector (so a solve whose Result.X aliases its input cannot
// be corrupted by a later restart), and the best-result reduction walks
// restarts in index order.
func MultistartJobs(solve func(x0 []float64) (Result, error), x0 []float64, b Bounds,
	starts int, rng *rand.Rand, jobs int) (Result, error) {

	if starts < 1 {
		starts = 1
	}
	if err := b.Validate(len(x0)); err != nil {
		return Result{}, err
	}

	// One seed per restart, drawn serially so start points do not depend
	// on worker count or completion order.
	seeds := make([]int64, starts)
	for s := 1; s < starts; s++ {
		seeds[s] = rng.Int63()
	}

	type outcome struct {
		res Result
		err error
	}
	// Solver failures stay inside the outcome (a failed restart must not
	// cancel its siblings — the serial code kept going too), so Map's own
	// error can only come from a bounds bug and is impossible here.
	outs, _ := parallel.Map(context.Background(), jobs, starts, func(s int) (outcome, error) {
		start := append([]float64(nil), x0...)
		if s > 0 {
			r := rand.New(rand.NewSource(seeds[s]))
			for i := range start {
				lo, hi := b.Lower[i], b.Upper[i]
				start[i] = lo + r.Float64()*(hi-lo)
			}
		}
		res, err := solve(start)
		return outcome{res, err}, nil
	})

	var (
		best    Result
		bestErr error
		haveAny bool
	)
	for _, o := range outs {
		if o.res.X == nil {
			if !haveAny && bestErr == nil {
				bestErr = o.err
			}
			continue
		}
		if !haveAny || o.res.F < best.F {
			best, bestErr, haveAny = o.res, o.err, true
		}
	}
	if !haveAny {
		return Result{}, bestErr
	}
	return best, bestErr
}
