package optimize

import (
	"math/rand"
)

// Multistart runs a local minimizer from several random starting points
// inside the box and keeps the best result. It is used for the paper's
// non-convex definite-choice model (Appendix D), where a single local
// solve can miss the global optimum.
//
// starts must be ≥ 1; the first start is always x0 itself. The RNG must be
// seeded by the caller for reproducibility.
func Multistart(solve func(x0 []float64) (Result, error), x0 []float64, b Bounds,
	starts int, rng *rand.Rand) (Result, error) {

	if starts < 1 {
		starts = 1
	}
	if err := b.Validate(len(x0)); err != nil {
		return Result{}, err
	}

	var (
		best    Result
		bestErr error
		haveAny bool
	)
	start := append([]float64(nil), x0...)
	for s := 0; s < starts; s++ {
		if s > 0 {
			for i := range start {
				lo, hi := b.Lower[i], b.Upper[i]
				start[i] = lo + rng.Float64()*(hi-lo)
			}
		}
		res, err := solve(start)
		if res.X == nil {
			if !haveAny {
				bestErr = err
			}
			continue
		}
		if !haveAny || res.F < best.F {
			best, bestErr, haveAny = res, err, true
		}
	}
	if !haveAny {
		return Result{}, bestErr
	}
	return best, bestErr
}
