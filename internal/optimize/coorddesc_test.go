package optimize

import (
	"errors"
	"math"
	"testing"
)

func TestCoordinateDescentQuadratic(t *testing.T) {
	c := []float64{0.3, -1.2}
	fn := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - c[i]
			s += d * d
		}
		return s
	}
	res, err := CoordinateDescent(fn, []float64{0, 0}, UniformBounds(2, -5, 5))
	if err != nil {
		t.Fatalf("CoordinateDescent: %v", err)
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestCoordinateDescentNonSmooth(t *testing.T) {
	// Piecewise-linear convex: Σ|x_i − c_i| with separable structure —
	// exactly the kink type in the TDP cost. Coordinate descent handles
	// this where plain gradient descent chattering would stall.
	c := []float64{1, 0.25, -0.75}
	fn := func(x []float64) float64 {
		var s float64
		for i := range x {
			s += math.Abs(x[i] - c[i])
		}
		return s
	}
	res, err := CoordinateDescent(fn, []float64{0, 0, 0}, UniformBounds(3, -2, 2))
	if err != nil {
		t.Fatalf("CoordinateDescent: %v", err)
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestCoordinateDescentClampedOptimum(t *testing.T) {
	fn := func(x []float64) float64 { return (x[0] - 10) * (x[0] - 10) }
	res, err := CoordinateDescent(fn, []float64{0}, UniformBounds(1, -1, 1))
	if err != nil {
		t.Fatalf("CoordinateDescent: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Errorf("x = %v, want 1 (clamped)", res.X[0])
	}
}

func TestCoordinateDescentBadBounds(t *testing.T) {
	fn := func(x []float64) float64 { return x[0] * x[0] }
	b := Bounds{Lower: []float64{3}, Upper: []float64{-3}}
	if _, err := CoordinateDescent(fn, []float64{0}, b); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
}

func TestCoordinateDescentCoupledQuadratic(t *testing.T) {
	// Coupled but strictly convex: f = x² + y² + xy − 3x. Optimum solves
	// 2x + y = 3, 2y + x = 0 → x = 2, y = −1.
	fn := func(x []float64) float64 {
		return x[0]*x[0] + x[1]*x[1] + x[0]*x[1] - 3*x[0]
	}
	res, err := CoordinateDescent(fn, []float64{0, 0}, UniformBounds(2, -10, 10),
		WithMaxIterations(500))
	if err != nil {
		t.Fatalf("CoordinateDescent: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("x = %v, want (2,-1)", res.X)
	}
}
