package optimize

import (
	"math"

	"tdp/internal/obs"
)

// Per-solve metrics, recorded on the default obs registry by the
// exported solver entry points. Solves run once per period close (or
// per experiment), not per usage report, so the registry's get-or-create
// lookup per solve is cheap relative to the solve itself.
//
//	optimize_solves_total{solver=…}             solves started
//	optimize_solves_unconverged_total{solver=…} solves that hit an iteration/progress limit
//	optimize_solve_iterations{solver=…}         outer iterations per solve
//	optimize_solve_evals{solver=…}              objective/line-search evaluations per solve
//	optimize_solve_residual{solver=…}           final stationarity residual (projected-gradient
//	                                            ∞-norm; RSS for Levenberg–Marquardt)

var (
	iterBuckets     = obs.ExpBuckets(1, 2, 16)      // 1 … 32768 iterations
	evalBuckets     = obs.ExpBuckets(1, 2, 20)      // 1 … ~5e5 evaluations
	residualBuckets = obs.ExpBuckets(1e-14, 10, 18) // 1e-14 … ~1e3
)

// recordSolve publishes one solve's outcome. residual may be NaN when
// the solver has no meaningful stationarity measure (histograms drop
// NaN observations).
func recordSolve(solver string, iters, evals int, residual float64, converged bool) {
	reg := obs.Default()
	lbl := obs.Labels{"solver": solver}
	reg.Counter("optimize_solves_total", "solver invocations", lbl).Inc()
	if !converged {
		reg.Counter("optimize_solves_unconverged_total", "solves ending at an iteration or progress limit", lbl).Inc()
	}
	reg.Histogram("optimize_solve_iterations", "outer iterations per solve", lbl, iterBuckets).
		Observe(float64(iters))
	reg.Histogram("optimize_solve_evals", "objective evaluations per solve", lbl, evalBuckets).
		Observe(float64(evals))
	reg.Histogram("optimize_solve_residual", "final stationarity residual per solve", lbl, residualBuckets).
		Observe(residual)
}

// finalResidual computes the projected-gradient ∞-norm at x — the
// convergence measure the gradient-based solvers test against their
// tolerance. Costs one extra gradient evaluation per solve.
func finalResidual(obj Objective, x []float64, b Bounds) float64 {
	if x == nil {
		return math.NaN()
	}
	grad, put := getScratch(len(x))
	defer put()
	obj.Grad(x, grad)
	return projGradNormInf(x, grad, b)
}

// ProjectedGradient minimizes obj over the box b starting from x0, using
// steepest descent with Armijo backtracking and projection onto the box.
//
// For convex objectives (the static TDP model satisfies Prop. 3's
// conditions) the returned point is a global minimizer up to tolerance.
// A Result is returned even alongside ErrMaxIterations.
func ProjectedGradient(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	res, err := projectedGradient(obj, x0, b, opts...)
	recordSolve("projgrad", res.Iterations, res.Evals, finalResidual(obj, res.X, b), res.Converged)
	return res, err
}

// LBFGS minimizes a smooth objective over a box using the limited-memory
// BFGS two-loop recursion with projected backtracking line search — a
// light L-BFGS-B. For the smoothed TDP objectives it converges in far
// fewer iterations than plain projected gradient, which matters as the
// number of periods grows (see BenchmarkAblationSolvers).
func LBFGS(obj Objective, x0 []float64, b Bounds, memory int, opts ...Option) (Result, error) {
	res, err := lbfgs(obj, x0, b, memory, opts...)
	recordSolve("lbfgs", res.Iterations, res.Evals, finalResidual(obj, res.X, b), res.Converged)
	return res, err
}

// CoordinateDescent minimizes fn over the box b by cyclic exact
// minimization along each coordinate with golden-section search.
//
// It needs only function values (no gradient), which makes it robust on the
// piecewise-linear kinks of the un-smoothed TDP cost. The paper's Prop. 3
// shows the static model's Hessian is diagonal, which is exactly the regime
// where coordinate descent excels.
func CoordinateDescent(fn func([]float64) float64, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	res, err := coordinateDescent(fn, x0, b, opts...)
	// No gradient available: the residual has no meaning here.
	recordSolve("coorddesc", res.Iterations, res.Evals, math.NaN(), res.Converged)
	return res, err
}

// ProjectedSubgradient minimizes a convex (possibly non-smooth) objective
// over the box b using the classical projected subgradient method with a
// diminishing step size a/(1+k). It tracks and returns the best iterate.
//
// Subgradient methods converge slowly but need no smoothness; this is the
// baseline method in the solver ablation (DESIGN.md §5).
func ProjectedSubgradient(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	res, err := projectedSubgradient(obj, x0, b, opts...)
	// Subgradients are not stationarity certificates on non-smooth
	// objectives, so no residual is recorded.
	recordSolve("subgrad", res.Iterations, res.Evals, math.NaN(), res.Converged)
	return res, err
}

// LevenbergMarquardt minimizes ‖r(x)‖² with a damped Gauss–Newton
// iteration and a central-difference Jacobian. Optional box constraints
// are handled by projecting trial steps.
func LevenbergMarquardt(r Residualer, x0 []float64, cfg LMConfig) (LMResult, error) {
	res, err := levenbergMarquardt(r, x0, cfg)
	recordSolve("lm", res.Iterations, res.Iterations, res.RSS, res.Converged)
	return res, err
}
