package optimize

import (
	"fmt"
	"math"
)

// options holds tunables shared by the iterative minimizers.
type options struct {
	maxIter   int
	tol       float64
	initStep  float64
	callback  func(iter int, x []float64, f float64)
	maxBack   int
	stepDecay float64 // subgradient step decay mode toggle
}

func defaultOptions() options {
	return options{
		maxIter:  2000,
		tol:      1e-8,
		initStep: 1.0,
		maxBack:  60,
	}
}

// Option configures a minimizer.
type Option interface {
	apply(*options)
}

type maxIterOption int

func (o maxIterOption) apply(opts *options) { opts.maxIter = int(o) }

// WithMaxIterations caps the number of outer iterations.
func WithMaxIterations(n int) Option { return maxIterOption(n) }

type tolOption float64

func (o tolOption) apply(opts *options) { opts.tol = float64(o) }

// WithTolerance sets the projected-gradient (or step-size) convergence
// tolerance.
func WithTolerance(tol float64) Option { return tolOption(tol) }

type initStepOption float64

func (o initStepOption) apply(opts *options) { opts.initStep = float64(o) }

// WithInitialStep sets the first trial step length of each line search.
func WithInitialStep(s float64) Option { return initStepOption(s) }

type callbackOption struct {
	fn func(iter int, x []float64, f float64)
}

func (o callbackOption) apply(opts *options) { opts.callback = o.fn }

// WithCallback installs a per-iteration observer (e.g. for tracing).
func WithCallback(fn func(iter int, x []float64, f float64)) Option {
	return callbackOption{fn: fn}
}

// projectedGradient is the uninstrumented core of ProjectedGradient
// (metrics.go wraps it with per-solve recording).
func projectedGradient(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}

	x := append([]float64(nil), x0...)
	b.Project(x)
	f := obj.Value(x)
	evals := 1
	grad := make([]float64, n)
	trial := make([]float64, n)
	step := o.initStep

	const armijoC = 1e-4
	for iter := 0; iter < o.maxIter; iter++ {
		obj.Grad(x, grad)
		if o.callback != nil {
			o.callback(iter, x, f)
		}
		if projGradNormInf(x, grad, b) <= o.tol {
			return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
		}

		// Backtracking line search along the projected-gradient arc.
		accepted := false
		s := step
		for back := 0; back < o.maxBack; back++ {
			var decrease float64
			for i := range x {
				trial[i] = x[i] - s*grad[i]
			}
			b.Project(trial)
			for i := range x {
				decrease += grad[i] * (x[i] - trial[i])
			}
			ft := obj.Value(trial)
			evals++
			if ft <= f-armijoC*decrease {
				copy(x, trial)
				f = ft
				// Allow the step to grow again after a success.
				step = math.Min(s*2, o.initStep*1e4)
				accepted = true
				break
			}
			s /= 2
		}
		if !accepted {
			// The point is numerically stationary within the box.
			obj.Grad(x, grad)
			if projGradNormInf(x, grad, b) <= math.Sqrt(o.tol) {
				return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
			}
			return Result{X: x, F: f, Iterations: iter, Evals: evals},
				fmt.Errorf("iteration %d at f=%.6g: %w", iter, f, ErrNoProgress)
		}
	}
	return Result{X: x, F: f, Iterations: o.maxIter, Evals: evals}, ErrMaxIterations
}
