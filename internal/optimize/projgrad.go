package optimize

import (
	"fmt"
	"math"
)

// options holds tunables shared by the iterative minimizers.
type options struct {
	maxIter   int
	tol       float64
	initStep  float64
	callback  func(iter int, x []float64, f float64)
	maxBack   int
	stepDecay float64   // subgradient step decay mode toggle
	warmStart []float64 // overrides x0; truncates homotopy schedules
	warmMu    float64   // largest smoothing temperature kept when warm
}

func defaultOptions() options {
	return options{
		maxIter:  2000,
		tol:      1e-8,
		initStep: 1.0,
		maxBack:  60,
		warmMu:   0.03,
	}
}

// Option configures a minimizer.
type Option interface {
	apply(*options)
}

type maxIterOption int

func (o maxIterOption) apply(opts *options) { opts.maxIter = int(o) }

// WithMaxIterations caps the number of outer iterations.
func WithMaxIterations(n int) Option { return maxIterOption(n) }

type tolOption float64

func (o tolOption) apply(opts *options) { opts.tol = float64(o) }

// WithTolerance sets the projected-gradient (or step-size) convergence
// tolerance.
func WithTolerance(tol float64) Option { return tolOption(tol) }

type initStepOption float64

func (o initStepOption) apply(opts *options) { opts.initStep = float64(o) }

// WithInitialStep sets the first trial step length of each line search.
func WithInitialStep(s float64) Option { return initStepOption(s) }

type callbackOption struct {
	fn func(iter int, x []float64, f float64)
}

func (o callbackOption) apply(opts *options) { opts.callback = o.fn }

// WithCallback installs a per-iteration observer (e.g. for tracing).
func WithCallback(fn func(iter int, x []float64, f float64)) Option {
	return callbackOption{fn: fn}
}

type warmStartOption struct{ x0 []float64 }

func (o warmStartOption) apply(opts *options) { opts.warmStart = o.x0 }

// WithWarmStart seeds a solve from a previous solution instead of the
// caller's default start point. The slice is copied before use. Iterative
// solvers begin from it directly; Homotopy and HomotopyWith additionally
// truncate their smoothing schedule (see WithWarmMu), since a point near
// the optimum does not need the coarse high-temperature stages that exist
// only to guide a cold start across the kinks.
func WithWarmStart(x0 []float64) Option { return warmStartOption{x0: x0} }

// WarmStartOf extracts the WithWarmStart point from an option list, or nil
// if none is present. Solvers that manage their own start points (e.g. the
// definite-choice multistart, which must not let a warm point suppress its
// random restarts) use it to fold the warm point into their start set.
func WarmStartOf(opts []Option) []float64 {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	return o.warmStart
}

type warmMuOption float64

func (o warmMuOption) apply(opts *options) { opts.warmMu = float64(o) }

// WithWarmMu sets the largest smoothing temperature the homotopy keeps
// when warm-started (default 0.03). Schedule entries above it are skipped;
// if every entry is above it, the final (finest) entry is kept so the
// solve still refines at the target smoothness.
func WithWarmMu(mu float64) Option { return warmMuOption(mu) }

// projectedGradient is the uninstrumented core of ProjectedGradient
// (metrics.go wraps it with per-solve recording).
func projectedGradient(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	if o.warmStart != nil {
		x0 = o.warmStart
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}

	vg := asValueGrader(obj)
	x := append([]float64(nil), x0...)
	b.Project(x)
	grad := make([]float64, n)
	trial := make([]float64, n)
	gradNext := grad
	if vg != nil {
		gradNext = make([]float64, n)
	}

	// With a fused evaluator the initial value comes with the first
	// gradient for free (one usage computation instead of two).
	var f float64
	haveGrad := false
	if vg != nil {
		f = vg.ValueGrad(x, grad)
		haveGrad = true
	} else {
		f = obj.Value(x)
	}
	evals := 1
	step := o.initStep
	streak := 0 // consecutive first-trial acceptances since the last growth

	const armijoC = 1e-4
	for iter := 0; iter < o.maxIter; iter++ {
		if !haveGrad {
			obj.Grad(x, grad)
		}
		haveGrad = false
		if o.callback != nil {
			o.callback(iter, x, f)
		}
		if projGradNormInf(x, grad, b) <= o.tol {
			return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
		}

		// Backtracking line search along the projected-gradient arc. With a
		// fused evaluator every trial computes its gradient alongside the
		// value, so acceptance — at any backtracking depth — skips the Grad
		// call at the top of the next iteration entirely.
		accepted := false
		s := step
		for back := 0; back < o.maxBack; back++ {
			var decrease float64
			for i := range x {
				trial[i] = x[i] - s*grad[i]
			}
			b.Project(trial)
			for i := range x {
				decrease += grad[i] * (x[i] - trial[i])
			}
			var ft float64
			trialHasGrad := false
			if vg != nil {
				// Fused evaluation for every trial: ValueGrad costs far less
				// than Value plus a separate Grad, so even when a trial is
				// rejected the fused call beats paying a full gradient at the
				// top of the next iteration after a value-only acceptance.
				ft = vg.ValueGrad(trial, gradNext)
				trialHasGrad = true
			} else {
				ft = obj.Value(trial)
			}
			evals++
			if ft <= f-armijoC*decrease {
				copy(x, trial)
				f = ft
				if trialHasGrad {
					grad, gradNext = gradNext, grad
					haveGrad = true
				}
				// Grow the step only after two consecutive first-trial
				// successes; growing after every acceptance makes the steady
				// state oscillate (accept s, probe 2s, reject, accept s, …),
				// which rejects almost every iteration's first trial and
				// doubles the line-search evaluation count.
				step = s
				if back == 0 {
					streak++
					if streak >= 2 {
						step = math.Min(s*2, o.initStep*1e4)
						streak = 0
					}
				} else {
					streak = 0
				}
				accepted = true
				break
			}
			s /= 2
		}
		if !accepted {
			// The point is numerically stationary within the box (grad is
			// already the gradient at x; recomputing it cannot change the
			// residual).
			if projGradNormInf(x, grad, b) <= math.Sqrt(o.tol) {
				return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
			}
			return Result{X: x, F: f, Iterations: iter, Evals: evals},
				fmt.Errorf("iteration %d at f=%.6g: %w", iter, f, ErrNoProgress)
		}
	}
	return Result{X: x, F: f, Iterations: o.maxIter, Evals: evals}, ErrMaxIterations
}
