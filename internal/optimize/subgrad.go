package optimize

import "math"

// projectedSubgradient is the uninstrumented core of
// ProjectedSubgradient (metrics.go wraps it with per-solve recording).
func projectedSubgradient(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	if o.warmStart != nil {
		x0 = o.warmStart
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}

	x := append([]float64(nil), x0...)
	b.Project(x)
	best := append([]float64(nil), x...)
	fBest := obj.Value(x)
	evals := 1
	grad := make([]float64, n)

	for k := 0; k < o.maxIter; k++ {
		obj.Grad(x, grad)
		var gnorm float64
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm == 0 {
			return Result{X: x, F: fBest, Iterations: k, Evals: evals, Converged: true}, nil
		}
		step := o.initStep / ((1 + float64(k)) * gnorm)
		for i := range x {
			x[i] -= step * grad[i]
		}
		b.Project(x)
		f := obj.Value(x)
		evals++
		if f < fBest {
			fBest = f
			copy(best, x)
		}
		if o.callback != nil {
			o.callback(k, x, f)
		}
	}
	// Subgradient methods have no cheap stationarity test; report the best
	// point with Converged=false and no error so callers can inspect.
	return Result{X: best, F: fBest, Iterations: o.maxIter, Evals: evals}, nil
}
