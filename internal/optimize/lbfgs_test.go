package optimize

import (
	"errors"
	"math"
	"testing"
)

func TestLBFGSQuadratic(t *testing.T) {
	c := []float64{1, -2, 0.5, 3}
	res, err := LBFGS(quadratic(c), make([]float64, 4), UniformBounds(4, -10, 10), 8)
	if err != nil {
		t.Fatalf("LBFGS: %v", err)
	}
	if !res.Converged {
		t.Error("not converged")
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestLBFGSIllConditioned(t *testing.T) {
	// f = Σ κ_i·x_i² with condition number 1e4: projected gradient crawls,
	// L-BFGS should converge in a modest number of iterations.
	kappa := []float64{1, 10, 100, 10000}
	obj := FuncObjective{
		Fn: func(x []float64) float64 {
			var s float64
			for i := range x {
				s += kappa[i] * x[i] * x[i]
			}
			return s
		},
		GradFn: func(x, g []float64) {
			for i := range x {
				g[i] = 2 * kappa[i] * x[i]
			}
		},
	}
	start := []float64{1, 1, 1, 1}
	res, err := LBFGS(obj, start, UniformBounds(4, -5, 5), 8,
		WithMaxIterations(300), WithTolerance(1e-8))
	if err != nil {
		t.Fatalf("LBFGS: %v", err)
	}
	if res.F > 1e-10 {
		t.Errorf("f = %v, want ≈0", res.F)
	}
	if res.Iterations > 100 {
		t.Errorf("took %d iterations on a 4-D quadratic", res.Iterations)
	}
}

func TestLBFGSActiveBounds(t *testing.T) {
	res, err := LBFGS(quadratic([]float64{5, -5}), []float64{0, 0}, UniformBounds(2, -1, 1), 5)
	if err != nil {
		t.Fatalf("LBFGS: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]+1) > 1e-6 {
		t.Errorf("x = %v, want clamped (1,-1)", res.X)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	obj := FuncObjective{Fn: func(x []float64) float64 {
		a := x[1] - x[0]*x[0]
		b := 1 - x[0]
		return 100*a*a + b*b
	}}
	res, err := LBFGS(obj, []float64{-1.2, 1}, UniformBounds(2, -5, 5), 10,
		WithMaxIterations(2000), WithTolerance(1e-8))
	if err != nil && !errors.Is(err, ErrNoProgress) {
		t.Fatalf("LBFGS: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1,1)", res.X)
	}
}

func TestLBFGSBadBounds(t *testing.T) {
	b := Bounds{Lower: []float64{1}, Upper: []float64{0}}
	if _, err := LBFGS(quadratic([]float64{0}), []float64{0}, b, 5); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
}

func TestLBFGSDefaultMemory(t *testing.T) {
	res, err := LBFGS(quadratic([]float64{2}), []float64{0}, UniformBounds(1, -5, 5), 0)
	if err != nil {
		t.Fatalf("LBFGS: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x = %v, want 2", res.X[0])
	}
}

// TestLBFGSBeatsProjectedGradientOnTDP: on the smoothed 48-period static
// objective L-BFGS should need materially fewer evaluations than plain
// projected gradient at equal tolerance.
func TestLBFGSMatchesProjectedGradientOptimum(t *testing.T) {
	// Use an ill-conditioned separable quadratic as a stand-in (the TDP
	// cross-check lives in the core package's solver-agreement test).
	n := 20
	obj := FuncObjective{
		Fn: func(x []float64) float64 {
			var s float64
			for i := range x {
				k := float64(1 + i*i)
				d := x[i] - 0.3
				s += k * d * d
			}
			return s
		},
		GradFn: func(x, g []float64) {
			for i := range x {
				k := float64(1 + i*i)
				g[i] = 2 * k * (x[i] - 0.3)
			}
		},
	}
	b := UniformBounds(n, -1, 1)
	lb, err := LBFGS(obj, make([]float64, n), b, 10, WithTolerance(1e-7), WithMaxIterations(2000))
	if err != nil {
		t.Fatalf("LBFGS: %v", err)
	}
	pg, err := ProjectedGradient(obj, make([]float64, n), b, WithTolerance(1e-7), WithMaxIterations(50000))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if math.Abs(lb.F-pg.F) > 1e-6 {
		t.Errorf("optima differ: lbfgs %v, pg %v", lb.F, pg.F)
	}
	if lb.Evals >= pg.Evals {
		t.Errorf("L-BFGS used %d evals vs PG %d — no speedup", lb.Evals, pg.Evals)
	}
}
