package optimize

import "math"

// coordinateDescent is the uninstrumented core of CoordinateDescent
// (metrics.go wraps it with per-solve recording).
func coordinateDescent(fn func([]float64) float64, x0 []float64, b Bounds, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	if o.warmStart != nil {
		x0 = o.warmStart
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}

	x := append([]float64(nil), x0...)
	b.Project(x)
	f := fn(x)
	evals := 1

	lineTol := o.tol
	if lineTol <= 0 {
		lineTol = 1e-10
	}

	for iter := 0; iter < o.maxIter; iter++ {
		if o.callback != nil {
			o.callback(iter, x, f)
		}
		maxMove := 0.0
		for i := 0; i < n; i++ {
			lo, hi := b.Lower[i], b.Upper[i]
			if hi-lo <= lineTol {
				continue
			}
			old := x[i]
			xi, fi := GoldenSection(func(t float64) float64 {
				x[i] = t
				return fn(x)
			}, lo, hi, lineTol)
			evals += 40 // approximate golden-section budget, for reporting
			if fi < f {
				x[i], f = xi, fi
			} else {
				x[i] = old
			}
			if d := math.Abs(x[i] - old); d > maxMove {
				maxMove = d
			}
		}
		if maxMove <= 10*lineTol {
			return Result{X: x, F: f, Iterations: iter + 1, Evals: evals, Converged: true}, nil
		}
	}
	return Result{X: x, F: f, Iterations: o.maxIter, Evals: evals}, ErrMaxIterations
}
