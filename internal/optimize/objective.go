// Package optimize implements the numerical optimization stack the TDP
// price engine is built on: box-constrained first-order methods (projected
// gradient with Armijo backtracking, cyclic coordinate descent with exact
// golden-section line search, projected subgradient), one-dimensional
// minimization, Levenberg–Marquardt nonlinear least squares, softplus
// smoothing of piecewise-linear costs, and a multistart driver for
// non-convex models.
//
// Everything is stdlib-only; the sizes in this project (tens of variables)
// favor robustness over asymptotic speed.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBadBounds is returned when a box constraint has lower > upper or
// mismatched lengths.
var ErrBadBounds = errors.New("optimize: invalid bounds")

// ErrNoProgress is returned when a line search cannot decrease the
// objective (typically a sign of a wrong gradient or a non-smooth kink).
var ErrNoProgress = errors.New("optimize: line search made no progress")

// ErrMaxIterations is returned when an iteration budget is exhausted before
// the convergence tolerance is met. The best point found so far is still
// returned alongside this error.
var ErrMaxIterations = errors.New("optimize: maximum iterations reached")

// Objective is a scalar function of a vector with an available gradient.
type Objective interface {
	// Value evaluates the objective at x.
	Value(x []float64) float64
	// Grad writes the gradient at x into grad (len(grad) == len(x)).
	Grad(x, grad []float64)
}

// ValueGrader is the optional fused evaluation fast path: objectives whose
// value and gradient share an expensive intermediate (the TDP models
// recompute the full O(n²) usage profile for each) implement it so the
// solvers can obtain both from one computation. ValueGrad must be
// equivalent to calling Value and Grad at the same point.
//
// ProjectedGradient, LBFGS, and the homotopy driver detect the interface
// and use it on the line-search trial most likely to be accepted, halving
// the usage computations on the steady-state descent path.
type ValueGrader interface {
	// ValueGrad writes the gradient at x into grad and returns the
	// objective value at x.
	ValueGrad(x, grad []float64) float64
}

// FuncObjective adapts plain functions to the Objective interface. If
// GradFn is nil, a central-difference numerical gradient is used. If
// ValueGradFn is set, FuncObjective also satisfies ValueGrader.
type FuncObjective struct {
	Fn          func(x []float64) float64
	GradFn      func(x, grad []float64)
	ValueGradFn func(x, grad []float64) float64
}

// Value implements Objective.
func (f FuncObjective) Value(x []float64) float64 { return f.Fn(x) }

// Grad implements Objective.
func (f FuncObjective) Grad(x, grad []float64) {
	if f.GradFn != nil {
		f.GradFn(x, grad)
		return
	}
	NumGrad(f.Fn, x, grad)
}

// ValueGrad implements ValueGrader when ValueGradFn is set; otherwise it
// falls back to separate Value and Grad calls.
func (f FuncObjective) ValueGrad(x, grad []float64) float64 {
	if f.ValueGradFn != nil {
		return f.ValueGradFn(x, grad)
	}
	v := f.Value(x)
	f.Grad(x, grad)
	return v
}

// asValueGrader returns the fused evaluator for obj, or nil when obj has
// no genuine fused path. A FuncObjective without ValueGradFn is treated as
// unfused: its fallback ValueGrad would not save any work, and the solvers
// structure their line searches differently around a real fused path.
func asValueGrader(obj Objective) ValueGrader {
	if f, ok := obj.(FuncObjective); ok {
		if f.ValueGradFn == nil {
			return nil
		}
		return f
	}
	vg, ok := obj.(ValueGrader)
	if !ok {
		return nil
	}
	return vg
}

// scratchPool recycles float64 scratch slices across evaluations (NumGrad,
// final-residual probes) so the numerical-gradient fallback inside hot
// solve loops stops allocating per call.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// getScratch returns a length-n scratch slice (contents unspecified) and a
// put function returning it to the pool.
//
//tubelint:pooled
func getScratch(n int) ([]float64, func()) {
	sp := scratchPool.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	s := (*sp)[:n]
	return s, func() { scratchPool.Put(sp) }
}

// NumGrad writes a central-difference approximation of ∇fn(x) into grad.
// The perturbation scratch is drawn from a package pool, so repeated calls
// do not allocate.
func NumGrad(fn func([]float64) float64, x, grad []float64) {
	h, put := getScratch(len(x))
	defer put()
	copy(h, x)
	for i := range x {
		step := 1e-6 * (1 + math.Abs(x[i]))
		h[i] = x[i] + step
		fp := fn(h)
		h[i] = x[i] - step
		fm := fn(h)
		h[i] = x[i]
		grad[i] = (fp - fm) / (2 * step)
	}
}

// Bounds is a box constraint l ≤ x ≤ u, applied component-wise.
type Bounds struct {
	Lower, Upper []float64
}

// UniformBounds returns n-dimensional bounds [lo, hi]^n.
func UniformBounds(n int, lo, hi float64) Bounds {
	l := make([]float64, n)
	u := make([]float64, n)
	for i := range l {
		l[i], u[i] = lo, hi
	}
	return Bounds{Lower: l, Upper: u}
}

// Validate checks that the bounds describe a non-empty box of dimension n.
func (b Bounds) Validate(n int) error {
	if len(b.Lower) != n || len(b.Upper) != n {
		return fmt.Errorf("bounds dimension %d/%d, want %d: %w", len(b.Lower), len(b.Upper), n, ErrBadBounds)
	}
	for i := range b.Lower {
		if b.Lower[i] > b.Upper[i] {
			return fmt.Errorf("bounds[%d]: lower %v > upper %v: %w", i, b.Lower[i], b.Upper[i], ErrBadBounds)
		}
	}
	return nil
}

// Project clamps x into the box in place.
func (b Bounds) Project(x []float64) {
	for i := range x {
		if x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		} else if x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
}

// Result is the outcome of a minimization run.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective at X
	Iterations int       // outer iterations performed
	Evals      int       // objective evaluations
	Converged  bool      // tolerance met before iteration budget
}

// projGradNormInf computes the infinity norm of the projected gradient,
// the standard first-order stationarity measure for box constraints:
// component i contributes |min(max(x_i - g_i, l_i), u_i) - x_i|.
func projGradNormInf(x, grad []float64, b Bounds) float64 {
	var m float64
	for i := range x {
		t := x[i] - grad[i]
		if t < b.Lower[i] {
			t = b.Lower[i]
		} else if t > b.Upper[i] {
			t = b.Upper[i]
		}
		if d := math.Abs(t - x[i]); d > m {
			m = d
		}
	}
	return m
}
