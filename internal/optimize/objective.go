// Package optimize implements the numerical optimization stack the TDP
// price engine is built on: box-constrained first-order methods (projected
// gradient with Armijo backtracking, cyclic coordinate descent with exact
// golden-section line search, projected subgradient), one-dimensional
// minimization, Levenberg–Marquardt nonlinear least squares, softplus
// smoothing of piecewise-linear costs, and a multistart driver for
// non-convex models.
//
// Everything is stdlib-only; the sizes in this project (tens of variables)
// favor robustness over asymptotic speed.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadBounds is returned when a box constraint has lower > upper or
// mismatched lengths.
var ErrBadBounds = errors.New("optimize: invalid bounds")

// ErrNoProgress is returned when a line search cannot decrease the
// objective (typically a sign of a wrong gradient or a non-smooth kink).
var ErrNoProgress = errors.New("optimize: line search made no progress")

// ErrMaxIterations is returned when an iteration budget is exhausted before
// the convergence tolerance is met. The best point found so far is still
// returned alongside this error.
var ErrMaxIterations = errors.New("optimize: maximum iterations reached")

// Objective is a scalar function of a vector with an available gradient.
type Objective interface {
	// Value evaluates the objective at x.
	Value(x []float64) float64
	// Grad writes the gradient at x into grad (len(grad) == len(x)).
	Grad(x, grad []float64)
}

// FuncObjective adapts plain functions to the Objective interface. If
// GradFn is nil, a central-difference numerical gradient is used.
type FuncObjective struct {
	Fn     func(x []float64) float64
	GradFn func(x, grad []float64)
}

// Value implements Objective.
func (f FuncObjective) Value(x []float64) float64 { return f.Fn(x) }

// Grad implements Objective.
func (f FuncObjective) Grad(x, grad []float64) {
	if f.GradFn != nil {
		f.GradFn(x, grad)
		return
	}
	NumGrad(f.Fn, x, grad)
}

// NumGrad writes a central-difference approximation of ∇fn(x) into grad.
func NumGrad(fn func([]float64) float64, x, grad []float64) {
	h := make([]float64, len(x))
	copy(h, x)
	for i := range x {
		step := 1e-6 * (1 + math.Abs(x[i]))
		h[i] = x[i] + step
		fp := fn(h)
		h[i] = x[i] - step
		fm := fn(h)
		h[i] = x[i]
		grad[i] = (fp - fm) / (2 * step)
	}
}

// Bounds is a box constraint l ≤ x ≤ u, applied component-wise.
type Bounds struct {
	Lower, Upper []float64
}

// UniformBounds returns n-dimensional bounds [lo, hi]^n.
func UniformBounds(n int, lo, hi float64) Bounds {
	l := make([]float64, n)
	u := make([]float64, n)
	for i := range l {
		l[i], u[i] = lo, hi
	}
	return Bounds{Lower: l, Upper: u}
}

// Validate checks that the bounds describe a non-empty box of dimension n.
func (b Bounds) Validate(n int) error {
	if len(b.Lower) != n || len(b.Upper) != n {
		return fmt.Errorf("bounds dimension %d/%d, want %d: %w", len(b.Lower), len(b.Upper), n, ErrBadBounds)
	}
	for i := range b.Lower {
		if b.Lower[i] > b.Upper[i] {
			return fmt.Errorf("bounds[%d]: lower %v > upper %v: %w", i, b.Lower[i], b.Upper[i], ErrBadBounds)
		}
	}
	return nil
}

// Project clamps x into the box in place.
func (b Bounds) Project(x []float64) {
	for i := range x {
		if x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		} else if x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
}

// Result is the outcome of a minimization run.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective at X
	Iterations int       // outer iterations performed
	Evals      int       // objective evaluations
	Converged  bool      // tolerance met before iteration budget
}

// projGradNormInf computes the infinity norm of the projected gradient,
// the standard first-order stationarity measure for box constraints:
// component i contributes |min(max(x_i - g_i, l_i), u_i) - x_i|.
func projGradNormInf(x, grad []float64, b Bounds) float64 {
	var m float64
	for i := range x {
		t := x[i] - grad[i]
		if t < b.Lower[i] {
			t = b.Lower[i]
		} else if t > b.Upper[i] {
			t = b.Upper[i]
		}
		if d := math.Abs(t - x[i]); d > m {
			m = d
		}
	}
	return m
}
