package optimize

import "math"

// invPhi is 1/φ, the golden-section ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal scalar function on [a, b] to within
// tol. It returns the approximate minimizer and its value. For non-unimodal
// functions it returns a local minimum.
func GoldenSection(fn func(float64) float64, a, b, tol float64) (x, fx float64) {
	if a > b {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := fn(c), fn(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = fn(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = fn(d)
		}
	}
	x = (a + b) / 2
	return x, fn(x)
}

// Brent minimizes a scalar function on [a, b] using Brent's method
// (golden-section with parabolic interpolation acceleration).
func Brent(fn func(float64) float64, a, b, tol float64) (xmin, fmin float64) {
	const (
		cgold = 0.3819660112501051 // 2 - φ
		eps   = 1e-12
	)
	if a > b {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := a + cgold*(b-a)
	w, v := x, x
	fx := fn(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + eps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			break
		}
		usedParabola := false
		if math.Abs(e) > tol1 {
			// Try parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				usedParabola = true
			}
		}
		if !usedParabola {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := fn(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			// Brent bookkeeping: these equality tests ask whether the
			// bracketing points *are the same point* (w, v, x are assigned
			// from one another, never recomputed), not whether two computed
			// values happen to agree — exact comparison is the algorithm.
			//lint:allow floateq Brent point-identity bookkeeping, values assigned not computed
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
				//lint:allow floateq Brent point-identity bookkeeping, values assigned not computed
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}
