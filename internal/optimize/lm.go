package optimize

import (
	"errors"
	"fmt"
	"math"

	"tdp/internal/linalg"
)

// ErrLMStalled is returned when Levenberg–Marquardt cannot reduce the
// residual any further before reaching its tolerance.
var ErrLMStalled = errors.New("optimize: levenberg-marquardt stalled")

// Residualer produces the residual vector r(x) whose squared norm is
// minimized: min_x ‖r(x)‖².
type Residualer interface {
	// Residuals writes r(x) into out (len(out) == NumResiduals()).
	Residuals(x, out []float64)
	// NumResiduals reports the length of the residual vector.
	NumResiduals() int
}

// FuncResiduals adapts a plain function to the Residualer interface.
type FuncResiduals struct {
	N  int
	Fn func(x, out []float64)
}

// NumResiduals implements Residualer.
func (f FuncResiduals) NumResiduals() int { return f.N }

// Residuals implements Residualer.
func (f FuncResiduals) Residuals(x, out []float64) { f.Fn(x, out) }

// LMConfig tunes LevenbergMarquardt.
type LMConfig struct {
	MaxIter   int     // outer iterations (default 200)
	Tol       float64 // relative reduction tolerance (default 1e-10)
	InitialMu float64 // initial damping (default 1e-3)
	Bounds    *Bounds // optional box; steps are clamped into it
	// AbsTol, when > 0, declares convergence as soon as the residual sum
	// of squares drops to or below it — checked before every Jacobian
	// build, so a warm start already at the optimum returns after a
	// single residual evaluation instead of burning a full damping sweep.
	// Streaming re-fits that run every period rely on this fast path.
	AbsTol float64
}

// LMResult reports the outcome of a least-squares fit.
type LMResult struct {
	X          []float64 // fitted parameters
	RSS        float64   // residual sum of squares at X
	Iterations int
	Converged  bool
}

// levenbergMarquardt is the uninstrumented core of LevenbergMarquardt
// (metrics.go wraps it with per-solve recording).
func levenbergMarquardt(r Residualer, x0 []float64, cfg LMConfig) (LMResult, error) {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-10
	}
	if cfg.InitialMu <= 0 {
		cfg.InitialMu = 1e-3
	}
	n := len(x0)
	m := r.NumResiduals()
	if m == 0 || n == 0 {
		return LMResult{}, fmt.Errorf("lm with %d residuals, %d params: %w", m, n, ErrBadBounds)
	}
	if cfg.Bounds != nil {
		if err := cfg.Bounds.Validate(n); err != nil {
			return LMResult{}, err
		}
	}

	x := append([]float64(nil), x0...)
	if cfg.Bounds != nil {
		cfg.Bounds.Project(x)
	}
	res := make([]float64, m)
	r.Residuals(x, res)
	rss := sumSquares(res)

	mu := cfg.InitialMu
	jac := linalg.NewMatrix(m, n)
	trial := make([]float64, n)
	tres := make([]float64, m)

	if cfg.AbsTol > 0 && rss <= cfg.AbsTol {
		return LMResult{X: x, RSS: rss, Iterations: 0, Converged: true}, nil
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		numJacobian(r, x, res, jac)

		// Normal equations: (JᵀJ + μ·diag(JᵀJ))·δ = -Jᵀr.
		jtj, err := jac.Transpose().Mul(jac)
		if err != nil {
			return LMResult{X: x, RSS: rss, Iterations: iter}, err
		}
		jtr, err := jac.TransMulVec(linalg.Vector(res))
		if err != nil {
			return LMResult{X: x, RSS: rss, Iterations: iter}, err
		}

		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			a := jtj.Clone()
			for i := 0; i < n; i++ {
				d := a.At(i, i)
				if d == 0 {
					d = 1
				}
				a.Set(i, i, a.At(i, i)+mu*d)
			}
			// The damped normal matrix is SPD by construction; Cholesky is
			// the natural solve, with LU as a roundoff fallback.
			delta, err := linalg.SolveSPD(a, jtr.Scale(-1))
			if err != nil {
				delta, err = linalg.SolveLinear(a, jtr.Scale(-1))
			}
			if err != nil {
				mu *= 10
				continue
			}
			for i := range x {
				trial[i] = x[i] + delta[i]
			}
			if cfg.Bounds != nil {
				cfg.Bounds.Project(trial)
			}
			r.Residuals(trial, tres)
			trss := sumSquares(tres)
			if trss < rss {
				relDrop := (rss - trss) / math.Max(rss, 1e-300)
				copy(x, trial)
				copy(res, tres)
				rss = trss
				mu = math.Max(mu/3, 1e-12)
				improved = true
				if relDrop < cfg.Tol || rss < cfg.Tol || (cfg.AbsTol > 0 && rss <= cfg.AbsTol) {
					return LMResult{X: x, RSS: rss, Iterations: iter + 1, Converged: true}, nil
				}
				break
			}
			mu *= 10
		}
		if !improved {
			if rss < math.Sqrt(cfg.Tol) {
				return LMResult{X: x, RSS: rss, Iterations: iter, Converged: true}, nil
			}
			return LMResult{X: x, RSS: rss, Iterations: iter}, ErrLMStalled
		}
	}
	return LMResult{X: x, RSS: rss, Iterations: cfg.MaxIter}, ErrMaxIterations
}

// numJacobian fills jac with the forward-difference Jacobian of r at x,
// reusing the residual at x.
func numJacobian(r Residualer, x, res []float64, jac *linalg.Matrix) {
	m, n := jac.Rows(), jac.Cols()
	pert := make([]float64, m)
	xp := append([]float64(nil), x...)
	for j := 0; j < n; j++ {
		step := 1e-7 * (1 + math.Abs(x[j]))
		xp[j] = x[j] + step
		r.Residuals(xp, pert)
		xp[j] = x[j]
		for i := 0; i < m; i++ {
			jac.Set(i, j, (pert[i]-res[i])/step)
		}
	}
}

func sumSquares(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
