package optimize

import (
	"errors"
	"math"
	"testing"
)

// quadratic returns the objective ‖x−c‖² with analytic gradient.
func quadratic(c []float64) Objective {
	return FuncObjective{
		Fn: func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - c[i]
				s += d * d
			}
			return s
		},
		GradFn: func(x, g []float64) {
			for i := range x {
				g[i] = 2 * (x[i] - c[i])
			}
		},
	}
}

func TestProjectedGradientUnconstrainedInterior(t *testing.T) {
	c := []float64{1, -2, 0.5}
	res, err := ProjectedGradient(quadratic(c), []float64{0, 0, 0}, UniformBounds(3, -10, 10))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if !res.Converged {
		t.Error("not converged")
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestProjectedGradientActiveBound(t *testing.T) {
	// Unconstrained minimum at 5 lies outside the box [0, 2].
	res, err := ProjectedGradient(quadratic([]float64{5}), []float64{1}, UniformBounds(1, 0, 2))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x = %v, want 2 (clamped)", res.X[0])
	}
}

func TestProjectedGradientStartOutsideBox(t *testing.T) {
	res, err := ProjectedGradient(quadratic([]float64{0}), []float64{100}, UniformBounds(1, -1, 1))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if math.Abs(res.X[0]) > 1e-6 {
		t.Errorf("x = %v, want 0", res.X[0])
	}
}

func TestProjectedGradientBadBounds(t *testing.T) {
	b := Bounds{Lower: []float64{1}, Upper: []float64{0}}
	if _, err := ProjectedGradient(quadratic([]float64{0}), []float64{0}, b); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
	b = Bounds{Lower: []float64{0}, Upper: []float64{0, 1}}
	if _, err := ProjectedGradient(quadratic([]float64{0}), []float64{0}, b); !errors.Is(err, ErrBadBounds) {
		t.Errorf("mismatched lengths: err = %v, want ErrBadBounds", err)
	}
}

func TestProjectedGradientMaxIterations(t *testing.T) {
	res, err := ProjectedGradient(quadratic([]float64{3}), []float64{-3}, UniformBounds(1, -10, 10),
		WithMaxIterations(1), WithTolerance(1e-14), WithInitialStep(1e-6))
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	if res.X == nil {
		t.Error("Result.X must carry the best point even on ErrMaxIterations")
	}
}

func TestProjectedGradientCallback(t *testing.T) {
	var calls int
	_, err := ProjectedGradient(quadratic([]float64{1}), []float64{0}, UniformBounds(1, -5, 5),
		WithCallback(func(int, []float64, float64) { calls++ }))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if calls == 0 {
		t.Error("callback never invoked")
	}
}

func TestProjectedGradientRosenbrockLike(t *testing.T) {
	// Ill-conditioned smooth convex function: f = 100(x₂−x₁)² + (1−x₁)².
	obj := FuncObjective{Fn: func(x []float64) float64 {
		a := x[1] - x[0]
		b := 1 - x[0]
		return 100*a*a + b*b
	}}
	res, err := ProjectedGradient(obj, []float64{-1, 1}, UniformBounds(2, -5, 5),
		WithMaxIterations(20000), WithTolerance(1e-9))
	if err != nil {
		t.Fatalf("ProjectedGradient: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("x = %v, want ≈(1,1)", res.X)
	}
}

func TestNumGradMatchesAnalytic(t *testing.T) {
	fn := func(x []float64) float64 { return x[0]*x[0]*x[1] + math.Sin(x[1]) }
	x := []float64{1.3, -0.4}
	num := make([]float64, 2)
	NumGrad(fn, x, num)
	wantDx := 2 * x[0] * x[1]
	wantDy := x[0]*x[0] + math.Cos(x[1])
	if math.Abs(num[0]-wantDx) > 1e-5 || math.Abs(num[1]-wantDy) > 1e-5 {
		t.Errorf("NumGrad = %v, want (%v,%v)", num, wantDx, wantDy)
	}
}

func TestBoundsProject(t *testing.T) {
	b := UniformBounds(3, 0, 1)
	x := []float64{-5, 0.5, 7}
	b.Project(x)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("Project[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}
