package optimize

import (
	"errors"
	"math"
	"testing"
)

// expFit is the classic y = a·exp(b·t) fitting problem.
type expFit struct {
	ts, ys []float64
}

func (e expFit) NumResiduals() int { return len(e.ts) }

func (e expFit) Residuals(x, out []float64) {
	a, b := x[0], x[1]
	for i, t := range e.ts {
		out[i] = a*math.Exp(b*t) - e.ys[i]
	}
}

func TestLevenbergMarquardtExponentialFit(t *testing.T) {
	truthA, truthB := 2.0, -0.5
	fit := expFit{}
	for i := 0; i <= 10; i++ {
		tt := float64(i) / 2
		fit.ts = append(fit.ts, tt)
		fit.ys = append(fit.ys, truthA*math.Exp(truthB*tt))
	}
	res, err := LevenbergMarquardt(fit, []float64{1, -0.1}, LMConfig{})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if !res.Converged {
		t.Error("not converged")
	}
	if math.Abs(res.X[0]-truthA) > 1e-5 || math.Abs(res.X[1]-truthB) > 1e-5 {
		t.Errorf("fit = %v, want (%v, %v)", res.X, truthA, truthB)
	}
	if res.RSS > 1e-10 {
		t.Errorf("RSS = %v, want ≈0", res.RSS)
	}
}

func TestLevenbergMarquardtLinearProblem(t *testing.T) {
	// A linear residual should converge in very few iterations.
	lin := FuncResiduals{
		N: 3,
		Fn: func(x, out []float64) {
			out[0] = x[0] + 2*x[1] - 5
			out[1] = 3*x[0] - x[1] - 1
			out[2] = x[0] + x[1] - 3
		},
	}
	res, err := LevenbergMarquardt(lin, []float64{0, 0}, LMConfig{})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	// Least-squares solution of the consistent system x=1, y=2.
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Errorf("x = %v, want (1,2)", res.X)
	}
}

func TestLevenbergMarquardtBounds(t *testing.T) {
	// Unconstrained optimum at x=5; box caps it at 2.
	r := FuncResiduals{
		N:  1,
		Fn: func(x, out []float64) { out[0] = x[0] - 5 },
	}
	b := UniformBounds(1, 0, 2)
	res, err := LevenbergMarquardt(r, []float64{1}, LMConfig{Bounds: &b})
	// Stalling against an active bound is acceptable; the point matters.
	if err != nil && !errors.Is(err, ErrLMStalled) && !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("LM: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x = %v, want 2 (clamped)", res.X[0])
	}
}

func TestLevenbergMarquardtEmptyProblem(t *testing.T) {
	r := FuncResiduals{N: 0, Fn: func(x, out []float64) {}}
	if _, err := LevenbergMarquardt(r, []float64{1}, LMConfig{}); err == nil {
		t.Error("want error for zero residuals")
	}
}

func TestLevenbergMarquardtNoisyFit(t *testing.T) {
	// Data with deterministic "noise": LM must still land near the truth.
	fit := expFit{}
	for i := 0; i <= 20; i++ {
		tt := float64(i) / 4
		noise := 0.01 * math.Sin(float64(i)*1.7)
		fit.ts = append(fit.ts, tt)
		fit.ys = append(fit.ys, 3*math.Exp(-0.8*tt)+noise)
	}
	res, err := LevenbergMarquardt(fit, []float64{1, -0.1}, LMConfig{})
	if err != nil && !errors.Is(err, ErrLMStalled) {
		t.Fatalf("LM: %v", err)
	}
	if math.Abs(res.X[0]-3) > 0.05 || math.Abs(res.X[1]+0.8) > 0.05 {
		t.Errorf("fit = %v, want ≈(3, -0.8)", res.X)
	}
}
