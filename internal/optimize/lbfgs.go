package optimize

import (
	"fmt"
	"math"
)

// dotN is an unrolled inner product for the two-loop recursion; with the
// objective evaluations fused and row-paired, the recursion's dots are a
// visible slice of what remains of the per-iteration cost.
func dotN(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// lbfgs is the uninstrumented core of LBFGS (metrics.go wraps it with
// per-solve recording).
//
// History pairs that violate the curvature condition sᵀy > 0 (possible
// near box faces) are skipped, falling back toward steepest descent.
func lbfgs(obj Objective, x0 []float64, b Bounds, memory int, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	if o.warmStart != nil {
		x0 = o.warmStart
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}
	if memory <= 0 {
		memory = 8
	}

	vg := asValueGrader(obj)
	x := append([]float64(nil), x0...)
	b.Project(x)
	grad := make([]float64, n)
	var f float64
	if vg != nil {
		// Fused path: value and first gradient from one usage computation.
		f = vg.ValueGrad(x, grad)
	} else {
		f = obj.Value(x)
		obj.Grad(x, grad)
	}
	evals := 1

	type pair struct {
		s, y []float64
		rho  float64
	}
	// History buffers are recycled through spare: at most memory+1 pairs are
	// ever allocated, so the steady-state iteration allocates nothing.
	hist := make([]pair, 0, memory)
	spare := pair{s: make([]float64, n), y: make([]float64, n)}
	dir := make([]float64, n)
	trial := make([]float64, n)
	gradNew := make([]float64, n)
	alpha := make([]float64, memory)

	const armijoC = 1e-4
	for iter := 0; iter < o.maxIter; iter++ {
		if o.callback != nil {
			o.callback(iter, x, f)
		}
		if projGradNormInf(x, grad, b) <= o.tol {
			return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
		}

		// Two-loop recursion: dir = −H·grad.
		copy(dir, grad)
		if m := len(hist); m > 0 {
			// Each update pass fuses with the next pair's sᵀdir product so
			// dir makes one memory round-trip per history pair, not two.
			sd := dotN(hist[m-1].s, dir)
			for i := m - 1; i >= 0; i-- {
				p := hist[i]
				a := p.rho * sd
				alpha[i] = a
				if i > 0 {
					sn := hist[i-1].s
					sd = 0
					for j := range dir {
						d := dir[j] - a*p.y[j]
						dir[j] = d
						sd += sn[j] * d
					}
				} else {
					for j := range dir {
						dir[j] -= a * p.y[j]
					}
				}
			}
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			sy := dotN(last.s, last.y)
			yy := dotN(last.y, last.y)
			if yy > 0 {
				scale := sy / yy
				for j := range dir {
					dir[j] *= scale
				}
			}
		}
		if m := len(hist); m > 0 {
			yd := dotN(hist[0].y, dir)
			for i := 0; i < m; i++ {
				p := hist[i]
				c := alpha[i] - p.rho*yd
				if i+1 < m {
					yn := hist[i+1].y
					yd = 0
					for j := range dir {
						d := dir[j] + p.s[j]*c
						dir[j] = d
						yd += yn[j] * d
					}
				} else {
					for j := range dir {
						dir[j] += p.s[j] * c
					}
				}
			}
		}
		for j := range dir {
			dir[j] = -dir[j]
		}
		// Descent check; fall back to steepest descent if the recursion
		// produced an ascent direction (possible with skipped pairs).
		if dotN(dir, grad) >= 0 {
			for j := range dir {
				dir[j] = -grad[j]
			}
		}

		// Projected backtracking line search. With a fused evaluator every
		// trial computes its gradient alongside the value; acceptance then
		// skips the separate Grad call that used to recompute the usage
		// profile at the same point.
		accepted := false
		step := 1.0
		for back := 0; back < o.maxBack; back++ {
			for j := range x {
				trial[j] = x[j] + step*dir[j]
			}
			b.Project(trial)
			var decrease float64
			for j := range x {
				decrease += grad[j] * (x[j] - trial[j])
			}
			var ft float64
			trialHasGrad := false
			if vg != nil {
				// Fused evaluation for every trial (see projectedGradient):
				// ValueGrad is cheaper than Value plus the separate Grad a
				// value-only acceptance would owe.
				ft = vg.ValueGrad(trial, gradNew)
				trialHasGrad = true
			} else {
				ft = obj.Value(trial)
			}
			evals++
			if ft <= f-armijoC*decrease && decrease > 0 {
				if !trialHasGrad {
					obj.Grad(trial, gradNew)
				}
				// Curvature-safe history update into the recycled buffers.
				var sy float64
				for j := range x {
					spare.s[j] = trial[j] - x[j]
					spare.y[j] = gradNew[j] - grad[j]
					sy += spare.s[j] * spare.y[j]
				}
				if sy > 1e-12 {
					spare.rho = 1 / sy
					if len(hist) == memory {
						evicted := hist[0]
						copy(hist, hist[1:])
						hist[memory-1] = spare
						spare = evicted
					} else {
						hist = append(hist, spare)
						spare = pair{s: make([]float64, n), y: make([]float64, n)}
					}
				}
				copy(x, trial)
				copy(grad, gradNew)
				f = ft
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			if projGradNormInf(x, grad, b) <= math.Sqrt(o.tol) {
				return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
			}
			return Result{X: x, F: f, Iterations: iter, Evals: evals},
				fmt.Errorf("lbfgs iteration %d at f=%.6g: %w", iter, f, ErrNoProgress)
		}
	}
	return Result{X: x, F: f, Iterations: o.maxIter, Evals: evals}, ErrMaxIterations
}
