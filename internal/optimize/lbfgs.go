package optimize

import (
	"fmt"
	"math"
)

// lbfgs is the uninstrumented core of LBFGS (metrics.go wraps it with
// per-solve recording).
//
// History pairs that violate the curvature condition sᵀy > 0 (possible
// near box faces) are skipped, falling back toward steepest descent.
func lbfgs(obj Objective, x0 []float64, b Bounds, memory int, opts ...Option) (Result, error) {
	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	n := len(x0)
	if err := b.Validate(n); err != nil {
		return Result{}, err
	}
	if memory <= 0 {
		memory = 8
	}

	x := append([]float64(nil), x0...)
	b.Project(x)
	f := obj.Value(x)
	evals := 1
	grad := make([]float64, n)
	obj.Grad(x, grad)

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	dir := make([]float64, n)
	trial := make([]float64, n)
	gradNew := make([]float64, n)
	alpha := make([]float64, memory)

	const armijoC = 1e-4
	for iter := 0; iter < o.maxIter; iter++ {
		if o.callback != nil {
			o.callback(iter, x, f)
		}
		if projGradNormInf(x, grad, b) <= o.tol {
			return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
		}

		// Two-loop recursion: dir = −H·grad.
		copy(dir, grad)
		for i := len(hist) - 1; i >= 0; i-- {
			p := hist[i]
			var sd float64
			for j := range dir {
				sd += p.s[j] * dir[j]
			}
			a := p.rho * sd
			alpha[i] = a
			for j := range dir {
				dir[j] -= a * p.y[j]
			}
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			var sy, yy float64
			for j := range last.s {
				sy += last.s[j] * last.y[j]
				yy += last.y[j] * last.y[j]
			}
			if yy > 0 {
				scale := sy / yy
				for j := range dir {
					dir[j] *= scale
				}
			}
		}
		for i := 0; i < len(hist); i++ {
			p := hist[i]
			var yd float64
			for j := range dir {
				yd += p.y[j] * dir[j]
			}
			beta := p.rho * yd
			for j := range dir {
				dir[j] += p.s[j] * (alpha[i] - beta)
			}
		}
		for j := range dir {
			dir[j] = -dir[j]
		}
		// Descent check; fall back to steepest descent if the recursion
		// produced an ascent direction (possible with skipped pairs).
		var dg float64
		for j := range dir {
			dg += dir[j] * grad[j]
		}
		if dg >= 0 {
			for j := range dir {
				dir[j] = -grad[j]
			}
		}

		// Projected backtracking line search.
		accepted := false
		step := 1.0
		for back := 0; back < o.maxBack; back++ {
			for j := range x {
				trial[j] = x[j] + step*dir[j]
			}
			b.Project(trial)
			var decrease float64
			for j := range x {
				decrease += grad[j] * (x[j] - trial[j])
			}
			ft := obj.Value(trial)
			evals++
			if ft <= f-armijoC*decrease && decrease > 0 {
				obj.Grad(trial, gradNew)
				// Curvature-safe history update.
				s := make([]float64, n)
				y := make([]float64, n)
				var sy float64
				for j := range x {
					s[j] = trial[j] - x[j]
					y[j] = gradNew[j] - grad[j]
					sy += s[j] * y[j]
				}
				if sy > 1e-12 {
					hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
					if len(hist) > memory {
						hist = hist[1:]
					}
				}
				copy(x, trial)
				copy(grad, gradNew)
				f = ft
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			if projGradNormInf(x, grad, b) <= math.Sqrt(o.tol) {
				return Result{X: x, F: f, Iterations: iter, Evals: evals, Converged: true}, nil
			}
			return Result{X: x, F: f, Iterations: iter, Evals: evals},
				fmt.Errorf("lbfgs iteration %d at f=%.6g: %w", iter, f, ErrNoProgress)
		}
	}
	return Result{X: x, F: f, Iterations: o.maxIter, Evals: evals}, ErrMaxIterations
}
