package optimize

import "math"

// SmoothMax is the softplus approximation μ·log(1+exp(x/μ)) of max(x, 0).
// It is convex, infinitely differentiable, upper-bounds max(x,0), and
// converges to it uniformly as μ→0 (gap ≤ μ·log 2).
func SmoothMax(x, mu float64) float64 {
	if mu <= 0 {
		return math.Max(x, 0)
	}
	t := x / mu
	// Numerically stable softplus.
	switch {
	case t > 35:
		return x
	case t < -35:
		return 0
	default:
		return mu * math.Log1p(math.Exp(t))
	}
}

// SmoothMaxBoth returns SmoothMax(x, μ) and its derivative sigmoid(x/μ)
// from a single exponential. The fused value+gradient evaluation path uses
// it so one usage computation yields both the objective and its slope
// without doubling the transcendental work.
func SmoothMaxBoth(x, mu float64) (v, d float64) {
	if mu <= 0 {
		return math.Max(x, 0), SmoothMaxDeriv(x, mu)
	}
	t := x / mu
	switch {
	case t > 35:
		return x, 1
	case t < -35:
		return 0, 0
	case t <= 0:
		e := math.Exp(t)
		return mu * math.Log1p(e), e / (1 + e)
	default:
		// log1p(e^t) = t + log1p(e^{−t}); the e^{−t} form stays accurate
		// for large t and shares its exponential with the sigmoid.
		em := math.Exp(-t)
		return x + mu*math.Log1p(em), 1 / (1 + em)
	}
}

// SmoothMaxDeriv is d/dx SmoothMax(x, μ) = sigmoid(x/μ).
func SmoothMaxDeriv(x, mu float64) float64 {
	if mu <= 0 {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return 0
		}
		return 0.5 // subgradient choice at the kink
	}
	t := x / mu
	switch {
	case t > 35:
		return 1
	case t < -35:
		return 0
	default:
		return 1 / (1 + math.Exp(-t))
	}
}

// Homotopy minimizes a family of smoothed objectives obj(μ) for a
// decreasing temperature schedule, warm-starting each solve from the
// previous solution. This is the production path for the TDP cost, whose
// only non-smoothness is the piecewise-linear capacity-exceedance term.
//
// make must return the objective for a given smoothing temperature μ.
// schedule must be positive and decreasing; a final exact polish with
// coordinate descent on the μ=0 objective is performed when polish is true.
func Homotopy(make func(mu float64) Objective, exact func([]float64) float64,
	x0 []float64, b Bounds, schedule []float64, polish bool, opts ...Option) (Result, error) {
	return HomotopyWith(ProjectedGradient, make, exact, x0, b, schedule, polish, opts...)
}

// Inner is a box-constrained minimizer usable as a homotopy stage (e.g.
// ProjectedGradient, or LBFGS partially applied over its memory).
type Inner func(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error)

// HomotopyWith is Homotopy with a caller-chosen inner solver per stage.
//
// When WithWarmStart is supplied, the solve begins from the warm point and
// the schedule is truncated to its entries ≤ the WithWarmMu threshold
// (keeping at least the final, finest temperature): the coarse stages
// exist only to steer a cold start across the cost's kinks, and re-running
// them from a near-optimal point just smears it away from the optimum and
// burns evaluations re-converging.
func HomotopyWith(inner Inner, make func(mu float64) Objective, exact func([]float64) float64,
	x0 []float64, b Bounds, schedule []float64, polish bool, opts ...Option) (Result, error) {

	o := defaultOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	x := append([]float64(nil), x0...)
	if o.warmStart != nil {
		x = append(x[:0], o.warmStart...)
		// NB: the builtin make is shadowed by the objective factory here.
		kept := append([]float64(nil), schedule...)[:0]
		for _, mu := range schedule {
			if mu <= o.warmMu {
				kept = append(kept, mu)
			}
		}
		if len(kept) == 0 && len(schedule) > 0 {
			kept = append(kept, schedule[len(schedule)-1])
		}
		schedule = kept
		// The inner solves start from the homotopy's evolving x, not the
		// original warm point; strip the option so a stale warm start
		// cannot override stage-to-stage continuation.
		opts = filterWarmStart(opts)
	}
	var total Result
	for _, mu := range schedule {
		res, err := inner(make(mu), x, b, opts...)
		total.Iterations += res.Iterations
		total.Evals += res.Evals
		if err != nil && res.X == nil {
			return total, err
		}
		// ErrNoProgress / ErrMaxIterations still yield a usable point; the
		// next (or final) stage continues from it.
		x = res.X
		total.X, total.F, total.Converged = res.X, res.F, res.Converged
	}
	if polish && exact != nil {
		// 1e-11 in x: at a kink minimum the cost error is first-order in
		// the final coordinate moves (the sweep stops at 10× this tol), and
		// warm-started solves are pinned to cold ones at ≤1e-9 in cost.
		res, err := CoordinateDescent(exact, x, b, WithTolerance(1e-11), WithMaxIterations(80))
		total.Iterations += res.Iterations
		total.Evals += res.Evals
		if err == nil || res.X != nil {
			total.X, total.F, total.Converged = res.X, res.F, res.Converged
		}
	}
	if exact != nil {
		total.F = exact(total.X)
	}
	return total, nil
}

// DefaultSchedule is the smoothing temperature schedule used by the price
// engines: fast decrease, ending fine enough that the softplus gap is far
// below a cent.
func DefaultSchedule() []float64 {
	return []float64{1, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001}
}

// filterWarmStart returns opts without any WithWarmStart entries.
func filterWarmStart(opts []Option) []Option {
	out := make([]Option, 0, len(opts))
	for _, op := range opts {
		if _, ok := op.(warmStartOption); ok {
			continue
		}
		out = append(out, op)
	}
	return out
}
