package optimize

import "math"

// SmoothMax is the softplus approximation μ·log(1+exp(x/μ)) of max(x, 0).
// It is convex, infinitely differentiable, upper-bounds max(x,0), and
// converges to it uniformly as μ→0 (gap ≤ μ·log 2).
func SmoothMax(x, mu float64) float64 {
	if mu <= 0 {
		return math.Max(x, 0)
	}
	t := x / mu
	// Numerically stable softplus.
	switch {
	case t > 35:
		return x
	case t < -35:
		return 0
	default:
		return mu * math.Log1p(math.Exp(t))
	}
}

// SmoothMaxDeriv is d/dx SmoothMax(x, μ) = sigmoid(x/μ).
func SmoothMaxDeriv(x, mu float64) float64 {
	if mu <= 0 {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return 0
		}
		return 0.5 // subgradient choice at the kink
	}
	t := x / mu
	switch {
	case t > 35:
		return 1
	case t < -35:
		return 0
	default:
		return 1 / (1 + math.Exp(-t))
	}
}

// Homotopy minimizes a family of smoothed objectives obj(μ) for a
// decreasing temperature schedule, warm-starting each solve from the
// previous solution. This is the production path for the TDP cost, whose
// only non-smoothness is the piecewise-linear capacity-exceedance term.
//
// make must return the objective for a given smoothing temperature μ.
// schedule must be positive and decreasing; a final exact polish with
// coordinate descent on the μ=0 objective is performed when polish is true.
func Homotopy(make func(mu float64) Objective, exact func([]float64) float64,
	x0 []float64, b Bounds, schedule []float64, polish bool, opts ...Option) (Result, error) {
	return HomotopyWith(ProjectedGradient, make, exact, x0, b, schedule, polish, opts...)
}

// Inner is a box-constrained minimizer usable as a homotopy stage (e.g.
// ProjectedGradient, or LBFGS partially applied over its memory).
type Inner func(obj Objective, x0 []float64, b Bounds, opts ...Option) (Result, error)

// HomotopyWith is Homotopy with a caller-chosen inner solver per stage.
func HomotopyWith(inner Inner, make func(mu float64) Objective, exact func([]float64) float64,
	x0 []float64, b Bounds, schedule []float64, polish bool, opts ...Option) (Result, error) {

	x := append([]float64(nil), x0...)
	var total Result
	for _, mu := range schedule {
		res, err := inner(make(mu), x, b, opts...)
		total.Iterations += res.Iterations
		total.Evals += res.Evals
		if err != nil && res.X == nil {
			return total, err
		}
		// ErrNoProgress / ErrMaxIterations still yield a usable point; the
		// next (or final) stage continues from it.
		x = res.X
		total.X, total.F, total.Converged = res.X, res.F, res.Converged
	}
	if polish && exact != nil {
		res, err := CoordinateDescent(exact, x, b, WithTolerance(1e-9), WithMaxIterations(60))
		total.Iterations += res.Iterations
		total.Evals += res.Evals
		if err == nil || res.X != nil {
			total.X, total.F, total.Converged = res.X, res.F, res.Converged
		}
	}
	if exact != nil {
		total.F = exact(total.X)
	}
	return total, nil
}

// DefaultSchedule is the smoothing temperature schedule used by the price
// engines: fast decrease, ending fine enough that the softplus gap is far
// below a cent.
func DefaultSchedule() []float64 {
	return []float64{1, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001}
}
