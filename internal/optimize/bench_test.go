package optimize

import (
	"errors"
	"math"
	"testing"
)

// rosenbrockN is the classic n-dimensional Rosenbrock valley — a
// non-trivial smooth test problem so the solver benchmarks exercise the
// full line-search/curvature machinery rather than converging in a
// couple of steps.
func rosenbrockN(n int) Objective {
	return FuncObjective{
		Fn: func(x []float64) float64 {
			var s float64
			for i := 0; i+1 < len(x); i++ {
				a := x[i+1] - x[i]*x[i]
				b := 1 - x[i]
				s += 100*a*a + b*b
			}
			return s
		},
		GradFn: func(x, g []float64) {
			for i := range g {
				g[i] = 0
			}
			for i := 0; i+1 < len(x); i++ {
				a := x[i+1] - x[i]*x[i]
				g[i] += -400*a*x[i] - 2*(1-x[i])
				g[i+1] += 200 * a
			}
		},
	}
}

func benchStart(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = -1.2 + 0.1*float64(i%3)
	}
	return x
}

func BenchmarkSolverProjectedGradient(b *testing.B) {
	obj := rosenbrockN(16)
	bounds := UniformBounds(16, -5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fixed iteration budget: first-order descent crawls along the
		// Rosenbrock valley, so this benchmarks 200 iterations of work
		// (ErrMaxIterations is the expected outcome, not a failure).
		res, err := ProjectedGradient(obj, benchStart(16), bounds, WithMaxIterations(200))
		if err != nil && !errors.Is(err, ErrMaxIterations) {
			b.Fatal(err)
		}
		sinkFloat = res.F
	}
}

func BenchmarkSolverLBFGS(b *testing.B) {
	obj := rosenbrockN(16)
	bounds := UniformBounds(16, -5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := LBFGS(obj, benchStart(16), bounds, 8)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(res.F) {
			b.Fatal("NaN objective")
		}
		sinkFloat = res.F
	}
}

var sinkFloat float64
