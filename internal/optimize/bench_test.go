// Solver benchmarks live in an external test package so they can exercise
// the solvers on the actual TDP pricing objective from internal/core (core
// imports optimize, so an in-package benchmark cannot).
//
// Each solver runs three workloads as sub-benchmarks:
//
//   - rosenbrock16: the classic smooth valley — pure solver overhead,
//     comparable with the pre-PR-5 top-level BenchmarkSolver* entries.
//   - tdp96: the paper's static pricing objective at quarter-hour
//     resolution on the fused zero-allocation kernel path
//     (optimize.ValueGrader).
//   - tdp96-ref: the same solve on the pre-flattening reference objective
//     (per-call allocations, wrapped-index branches, unfused gradient) —
//     the before/after pair tdp96-ref : tdp96 quantifies the evaluation
//     engine's win at the solver level.
package optimize_test

import (
	"errors"
	"testing"

	"tdp/internal/core"
	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// rosenbrockN is the classic n-dimensional Rosenbrock valley — a
// non-trivial smooth test problem so the solver benchmarks exercise the
// full line-search/curvature machinery rather than converging in a
// couple of steps.
func rosenbrockN(n int) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(x []float64) float64 {
			var s float64
			for i := 0; i+1 < len(x); i++ {
				a := x[i+1] - x[i]*x[i]
				b := 1 - x[i]
				s += 100*a*a + b*b
			}
			return s
		},
		GradFn: func(x, g []float64) {
			for i := range g {
				g[i] = 0
			}
			for i := 0; i+1 < len(x); i++ {
				a := x[i+1] - x[i]*x[i]
				g[i] += -400*a*x[i] - 2*(1-x[i])
				g[i+1] += 200 * a
			}
		},
	}
}

func benchStart(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = -1.2 + 0.1*float64(i%3)
	}
	return x
}

// benchModel builds the §V-A static scenario at quarter-hour resolution:
// Table VII demand expanded to 96 periods, A = 180 MBps, f(x) = 3·max(x, 0)
// — the largest instance in the equivalence sweep, where the O(n²) kernel
// dominates the evaluation.
func benchModel(b *testing.B) *core.StaticModel {
	b.Helper()
	const n = 96
	capacity := make([]float64, n)
	for i := range capacity {
		capacity[i] = 18
	}
	half := waiting.Demand48()
	demand := make([][]float64, n)
	for i := range demand {
		demand[i] = append([]float64(nil), half[i/2]...)
	}
	sm, err := core.NewStaticModel(&core.Scenario{
		Periods:  n,
		Demand:   demand,
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: capacity,
		Cost:     core.LinearCost(3),
	})
	if err != nil {
		b.Fatal(err)
	}
	return sm
}

// The iteration budgets fix the amount of solver work so the tdp96 and
// tdp96-ref variants follow bit-for-bit identical trajectories (verified:
// both do the same evaluation count) and ns/op compares work-per-
// evaluation, not line-search luck. ErrMaxIterations is the expected
// outcome, not a failure. L-BFGS gets a smaller budget because its stall
// point on the kinked objective (~iteration 46) is where rounding-level
// differences between the two evaluation paths first flip a line-search
// decision.
const (
	pgBudget    = 200
	lbfgsBudget = 40
)

// benchMu is a mid-schedule homotopy temperature — fine enough that the
// objective is near its kinked limit, coarse enough that backtracking
// stays numerically stable for a fixed-work comparison.
const benchMu = 0.01

func runSolver(b *testing.B, solve func(obj optimize.Objective, x0 []float64, bounds optimize.Bounds) (optimize.Result, error), obj optimize.Objective, n int, lo, hi float64) {
	b.Helper()
	bounds := optimize.UniformBounds(n, lo, hi)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := solve(obj, benchStart(n), bounds)
		// ErrMaxIterations is the budgeted outcome; ErrNoProgress is the
		// line search bottoming out on the kinked TDP objective — both
		// still deliver the iterate, which is all a fixed-work benchmark
		// needs.
		if err != nil && !errors.Is(err, optimize.ErrMaxIterations) && !errors.Is(err, optimize.ErrNoProgress) {
			b.Fatal(err)
		}
		sinkFloat = res.F
	}
}

func BenchmarkSolverProjectedGradient(b *testing.B) {
	solve := func(obj optimize.Objective, x0 []float64, bounds optimize.Bounds) (optimize.Result, error) {
		return optimize.ProjectedGradient(obj, x0, bounds, optimize.WithMaxIterations(pgBudget))
	}
	b.Run("rosenbrock16", func(b *testing.B) {
		runSolver(b, solve, rosenbrockN(16), 16, -5, 5)
	})
	sm := benchModel(b)
	b.Run("tdp96", func(b *testing.B) {
		runSolver(b, solve, sm.SmoothedObjective(benchMu), 96, 0, sm.MaxReward())
	})
	b.Run("tdp96-ref", func(b *testing.B) {
		runSolver(b, solve, sm.ReferenceObjective(benchMu), 96, 0, sm.MaxReward())
	})
}

func BenchmarkSolverLBFGS(b *testing.B) {
	solve := func(obj optimize.Objective, x0 []float64, bounds optimize.Bounds) (optimize.Result, error) {
		return optimize.LBFGS(obj, x0, bounds, 8, optimize.WithMaxIterations(lbfgsBudget))
	}
	b.Run("rosenbrock16", func(b *testing.B) {
		runSolver(b, solve, rosenbrockN(16), 16, -5, 5)
	})
	sm := benchModel(b)
	b.Run("tdp96", func(b *testing.B) {
		runSolver(b, solve, sm.SmoothedObjective(benchMu), 96, 0, sm.MaxReward())
	})
	b.Run("tdp96-ref", func(b *testing.B) {
		runSolver(b, solve, sm.ReferenceObjective(benchMu), 96, 0, sm.MaxReward())
	})
}

var sinkFloat float64
