package wire

// The zero-copy apply path (DecodeRecords → Engine.ApplyWire) and the
// classic path (Decode → RecordBatchAdmitted) are twins: these property
// tests pin them bit-identical — same class totals, same per-user
// totals, same subscriber delta stream — across shard counts and both
// frame versions, and pin the fast path's zero-allocation steady state.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"tdp/internal/ingest"
)

var zcClasses = []string{"web", "ftp", "video", "p2p"}

// zcReports builds a deterministic stream with repeated users, multiple
// records per (user, class), and full-precision random volumes — if the
// two paths accumulated in different orders, these volumes would expose
// it bit-for-bit.
func zcReports(users, n int, seed uint64) []ingest.Report {
	rng := rand.New(rand.NewPCG(seed, 11))
	reps := make([]ingest.Report, n)
	for i := range reps {
		reps[i] = ingest.Report{
			User:     fmt.Sprintf("u%04d", rng.IntN(users)),
			Class:    zcClasses[rng.IntN(len(zcClasses))],
			VolumeMB: rng.Float64() * 1000,
		}
	}
	return reps
}

// applyFrames feeds every frame in body to eng via the requested path.
func applyFrames(t *testing.T, eng *ingest.Engine, dec *Decoder, body []byte, zerocopy bool) {
	t.Helper()
	for len(body) > 0 {
		var consumed int
		if zerocopy {
			users, hashes, recs, n, err := dec.DecodeRecords(body)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.ApplyWire(users, hashes, recs); err != nil {
				t.Fatal(err)
			}
			consumed = n
		} else {
			reps, n, err := dec.Decode(body, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RecordBatchAdmitted(reps); err != nil {
				t.Fatal(err)
			}
			consumed = n
		}
		body = body[consumed:]
	}
}

func TestApplyWireBitIdenticalTwin(t *testing.T) {
	tab, err := NewClassTable(zcClasses)
	if err != nil {
		t.Fatal(err)
	}
	reps := zcReports(200, 3000, 42)
	for _, version := range []byte{VersionCurrent, VersionLegacy} {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("v%d/shards=%d", version, shards), func(t *testing.T) {
				enc := NewEncoder(tab)
				if err := enc.SetVersion(version); err != nil {
					t.Fatal(err)
				}
				// Several frames per body, so the intern table crosses
				// frame boundaries like it does on a live connection.
				var body []byte
				for lo := 0; lo < len(reps); lo += 512 {
					hi := min(lo+512, len(reps))
					body, err = enc.AppendFrame(body, reps[lo:hi])
					if err != nil {
						t.Fatal(err)
					}
				}
				ref, err := ingest.NewEngine(zcClasses, shards)
				if err != nil {
					t.Fatal(err)
				}
				zc, err := ingest.NewEngine(zcClasses, shards)
				if err != nil {
					t.Fatal(err)
				}
				var refDeltas, zcDeltas [][]float64
				ref.Subscribe(func(d []float64) { refDeltas = append(refDeltas, append([]float64(nil), d...)) })
				zc.Subscribe(func(d []float64) { zcDeltas = append(zcDeltas, append([]float64(nil), d...)) })

				applyFrames(t, ref, NewDecoder(tab), body, false)
				applyFrames(t, zc, NewDecoder(tab), body, true)

				if got, want := zc.Accepted(), ref.Accepted(); got != want {
					t.Fatalf("accepted %d via ApplyWire, %d via RecordBatchAdmitted", got, want)
				}
				refClass, zcClass := ref.ClassTotals(), zc.ClassTotals()
				for j := range refClass {
					//lint:allow floateq bit-identity is the property under test
					if zcClass[j] != refClass[j] {
						t.Fatalf("class %d: zero-copy total %v, reference %v", j, zcClass[j], refClass[j])
					}
				}
				refUser, zcUser := ref.UserTotals(), zc.UserTotals()
				if len(refUser) != len(zcUser) {
					t.Fatalf("zero-copy accounted %d users, reference %d", len(zcUser), len(refUser))
				}
				for u, want := range refUser {
					//lint:allow floateq bit-identity is the property under test
					if zcUser[u] != want {
						t.Fatalf("user %s: zero-copy total %v, reference %v", u, zcUser[u], want)
					}
				}
				if len(refDeltas) != len(zcDeltas) {
					t.Fatalf("zero-copy published %d deltas, reference %d", len(zcDeltas), len(refDeltas))
				}
				for i := range refDeltas {
					for j := range refDeltas[i] {
						//lint:allow floateq bit-identity is the property under test
						if zcDeltas[i][j] != refDeltas[i][j] {
							t.Fatalf("delta %d class %d: zero-copy %v, reference %v",
								i, j, zcDeltas[i][j], refDeltas[i][j])
						}
					}
				}
			})
		}
	}
}

// TestDecodeRecordsHashesMatchUserHash pins the DecodeRecords hash
// contract ApplyWire relies on: hashes[i] == ingest.UserHash(users[i]).
func TestDecodeRecordsHashesMatchUserHash(t *testing.T) {
	tab, err := NewClassTable(zcClasses)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{VersionCurrent, VersionLegacy} {
		enc := NewEncoder(tab)
		if err := enc.SetVersion(version); err != nil {
			t.Fatal(err)
		}
		body, err := enc.Encode(zcReports(50, 400, 7))
		if err != nil {
			t.Fatal(err)
		}
		users, hashes, recs, consumed, err := NewDecoder(tab).DecodeRecords(body)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(body) {
			t.Fatalf("v%d: consumed %d of %d bytes", version, consumed, len(body))
		}
		if len(users) != len(hashes) {
			t.Fatalf("v%d: %d users, %d hashes", version, len(users), len(hashes))
		}
		if len(recs) != 400 {
			t.Fatalf("v%d: %d records, want 400", version, len(recs))
		}
		for i, u := range users {
			if hashes[i] != ingest.UserHash(u) {
				t.Fatalf("v%d: user %q hash %#x, UserHash says %#x", version, u, hashes[i], ingest.UserHash(u))
			}
		}
	}
}

// TestDecodeRecordsRejectsCorruption: the zero-copy entry point keeps
// the classic path's whole-frame rejection behavior.
func TestDecodeRecordsRejectsCorruption(t *testing.T) {
	tab, err := NewClassTable(zcClasses)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(tab)
	body, err := enc.Encode(zcReports(10, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), body...)
	flipped[len(flipped)/2] ^= 0x40
	if _, _, _, _, err := NewDecoder(tab).DecodeRecords(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip decoded: %v, want ErrCorrupt", err)
	}
	if _, _, _, _, err := NewDecoder(tab).DecodeRecords(body[:len(body)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated frame decoded: %v, want ErrTruncated", err)
	}
}

// TestZeroCopyApplySteadyStateAllocs pins the headline contract: a warm
// DecodeRecords + ApplyWire round trip allocates nothing.
func TestZeroCopyApplySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates during AllocsPerRun; the 0-alloc pin runs in the non-race pass")
	}
	tab, err := NewClassTable(zcClasses)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(tab)
	body, err := enc.Encode(zcReports(64, 256, 9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ingest.NewEngine(zcClasses, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(tab)
	apply := func() {
		users, hashes, recs, _, err := dec.DecodeRecords(body)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyWire(users, hashes, recs); err != nil {
			t.Fatal(err)
		}
	}
	apply() // warm-up: intern users, size the workspace, create the vectors
	if allocs := testing.AllocsPerRun(50, apply); allocs != 0 {
		t.Fatalf("warm zero-copy apply allocates %.1f times per frame, want 0", allocs)
	}
}
