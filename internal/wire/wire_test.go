package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"tdp/internal/ingest"
)

var testClasses = []string{"web", "ftp", "video"}

func mustTable(t testing.TB) *ClassTable {
	t.Helper()
	tab, err := NewClassTable(testClasses)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func sampleBatch(n int) []ingest.Report {
	reps := make([]ingest.Report, n)
	for i := range reps {
		reps[i] = ingest.Report{
			User:     "user" + string(rune('A'+i%7)),
			Class:    testClasses[i%len(testClasses)],
			VolumeMB: float64(i%13) + 0.5*float64(i%2),
		}
	}
	return reps
}

// sameReports compares batches with bit-exact volume equality (NaN
// payloads must survive the codec unchanged).
func sameReports(a, b []ingest.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].Class != b[i].Class ||
			math.Float64bits(a[i].VolumeMB) != math.Float64bits(b[i].VolumeMB) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	dec := NewDecoder(tab)
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		batch := sampleBatch(n)
		frame, err := enc.Encode(batch)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, consumed, err := dec.Decode(frame, nil)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if consumed != len(frame) {
			t.Fatalf("n=%d: consumed %d of %d", n, consumed, len(frame))
		}
		if !sameReports(batch, got) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestRoundTripOddVolumes(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	dec := NewDecoder(tab)
	vols := []float64{0, 1, -1, 0.1, 1e300, 1e-300, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8000000000123), // NaN with payload
		math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0}
	batch := make([]ingest.Report, len(vols))
	for i, v := range vols {
		batch[i] = ingest.Report{User: "u", Class: "web", VolumeMB: v}
	}
	frame, err := enc.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dec.Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameReports(batch, got) {
		t.Fatal("odd volumes did not survive bit-exactly")
	}
}

func TestCrossVersion(t *testing.T) {
	tab := mustTable(t)
	batch := sampleBatch(50)
	for _, v := range []byte{VersionLegacy, VersionCurrent} {
		enc := NewEncoder(tab)
		if err := enc.SetVersion(v); err != nil {
			t.Fatal(err)
		}
		frame, err := enc.Encode(batch)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		dec := NewDecoder(tab)
		got, consumed, err := dec.Decode(frame, nil)
		if err != nil {
			t.Fatalf("v%d decode: %v", v, err)
		}
		if consumed != len(frame) || !sameReports(batch, got) {
			t.Fatalf("v%d: round trip mismatch", v)
		}
		// Per-class counts must agree across versions.
		want := make([]int64, tab.Len())
		for _, r := range batch {
			i, _ := tab.Index(r.Class)
			want[i]++
		}
		for i, c := range dec.ClassCounts() {
			if c != want[i] {
				t.Fatalf("v%d: class %d count %d, want %d", v, i, c, want[i])
			}
		}
	}
	if err := NewEncoder(tab).SetVersion(9); !errors.Is(err, ErrVersion) {
		t.Fatalf("SetVersion(9) = %v, want ErrVersion", err)
	}
}

func TestV1SmallerThanV0(t *testing.T) {
	tab := mustTable(t)
	batch := sampleBatch(256)
	e1 := NewEncoder(tab)
	f1, err := e1.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	e0 := NewEncoder(tab)
	if err := e0.SetVersion(VersionLegacy); err != nil {
		t.Fatal(err)
	}
	f0, err := e0.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) >= len(f0) {
		t.Fatalf("v1 frame %d bytes not smaller than v0 %d bytes", len(f1), len(f0))
	}
}

func TestMultiFrameDecode(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	var body []byte
	var all []ingest.Report
	for _, n := range []int{3, 17, 5} {
		b := sampleBatch(n)
		all = append(all, b...)
		var err error
		body, err = enc.AppendFrame(body, b)
		if err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(tab)
	var got []ingest.Report
	for len(body) > 0 {
		var consumed int
		var err error
		got, consumed, err = dec.Decode(body, got)
		if err != nil {
			t.Fatal(err)
		}
		body = body[consumed:]
	}
	if !sameReports(all, got) {
		t.Fatal("multi-frame decode mismatch")
	}
}

func TestTruncatedFrames(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	frame, err := enc.Encode(sampleBatch(20))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(tab)
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := dec.Decode(frame[:cut], nil); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(frame))
		}
	}
}

func TestCorruptFrames(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	frame, err := enc.Encode(sampleBatch(20))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(tab)
	// Every single-byte flip must be rejected (the CRC covers header and
	// payload; trailer flips break the CRC comparison itself).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, _, err := dec.Decode(mut, nil); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestLengthPrefixGuards(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	frame, err := enc.Encode(sampleBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	// A hostile length prefix must trip the size limit, not an allocation.
	mut := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(mut[4:], 1<<30)
	dec := NewDecoder(tab)
	if _, _, err := dec.Decode(mut, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("giant length prefix: %v, want ErrTooLarge", err)
	}
	dec.SetMaxFrameBytes(8)
	if _, _, err := dec.Decode(frame, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit 8: %v, want ErrTooLarge", err)
	}
}

func TestClassTableMismatch(t *testing.T) {
	tab := mustTable(t)
	other, err := NewClassTable([]string{"web", "ftp", "voip"})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := NewEncoder(tab).Encode(sampleBatch(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewDecoder(other).Decode(frame, nil); !errors.Is(err, ErrClassTable) {
		t.Fatalf("mismatched table: %v, want ErrClassTable", err)
	}
	// The separator in the table hash must distinguish ["ab","c"] from
	// ["a","bc"].
	t1, _ := NewClassTable([]string{"ab", "c"})
	t2, _ := NewClassTable([]string{"a", "bc"})
	if t1.Hash() == t2.Hash() {
		t.Fatal("class table hash ignores name boundaries")
	}
}

func TestEncoderRejectsUnknownClass(t *testing.T) {
	tab := mustTable(t)
	_, err := NewEncoder(tab).Encode([]ingest.Report{{User: "u", Class: "voip", VolumeMB: 1}})
	if !errors.Is(err, ErrBadBatch) {
		t.Fatalf("unknown class: %v, want ErrBadBatch", err)
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	tab := mustTable(t)
	enc := NewEncoder(tab)
	batch := sampleBatch(256)
	frame, err := enc.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(tab)
	dst := make([]ingest.Report, 0, len(batch))
	// Warm up: intern the users, size the tables.
	if _, _, err := dec.Decode(frame, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := dec.Decode(frame, dst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f times per frame, want 0", allocs)
	}
	encAllocs := testing.AllocsPerRun(100, func() {
		if _, err := enc.Encode(batch); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs != 0 {
		t.Fatalf("steady-state encode allocates %.1f times per frame, want 0", encAllocs)
	}
}
