// Package wire is the compact binary batch format for usage reports on
// the cluster ingest path. JSON costs the hot path twice: encoding/json
// allocates per report on both ends, and the text form of a (user,
// class, volume) triple is ~60 bytes where the information content is
// ~10. This codec replaces it with length-prefixed, CRC-guarded frames:
//
//	offset  size  field
//	0       2     magic "TW"
//	2       1     version (0 or 1)
//	3       1     flags (reserved, must be 0)
//	4       4     payload length, uint32 LE
//	8       n     payload (version-specific, below)
//	8+n     4     CRC-32 (IEEE) over bytes [0, 8+n), uint32 LE
//
// Version 1 payload (the default):
//
//	classHash uint32 LE        FNV-1a over the class names (table check)
//	C         uvarint          class count, must match the table
//	counts    C × uvarint      reports per class (header summary: lets a
//	                           receiver account or shed a frame per class
//	                           without decoding the records)
//	U         uvarint          user-table size
//	users     U × (uvarint len, bytes)   in order of first appearance
//	N         uvarint          record count (== Σ counts)
//	records   N × (uvarint userIdx, uvarint classIdx, uvarint volBits)
//
// volBits is bits.ReverseBytes64(math.Float64bits(v)): byte-swapping
// moves a float's always-populated exponent bits to the low end and its
// usually-zero low mantissa bytes to the high end, so the uvarint of an
// integral or low-precision volume is 2–4 bytes instead of 8–10. The
// user table amortizes each user string once per frame instead of once
// per record — the dominant saving for per-user batches.
//
// Version 0 is the naive record-per-record layout (inline user string,
// fixed 8-byte float). It exists as the cross-version compatibility
// target: decoders accept both, encoders emit v1 unless pinned.
//
// Encode and decode are zero-allocation at steady state: the Encoder
// reuses its output buffer and user-index map, the Decoder reuses its
// user table and interns user strings across frames (the same client's
// next frame carries the same users, so after warm-up decoded reports
// alias interned strings instead of fresh copies).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"tdp/internal/ingest"
)

// Frame format errors. Decode errors always wrap one of these, so the
// serving layer can distinguish garbage (reject the request) from a
// class-table mismatch (configuration skew between nodes).
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrCorrupt    = errors.New("wire: corrupt frame")
	ErrVersion    = errors.New("wire: unsupported frame version")
	ErrClassTable = errors.New("wire: class table mismatch")
	ErrTooLarge   = errors.New("wire: frame exceeds size limit")
	ErrBadBatch   = errors.New("wire: batch not encodable")
)

const (
	magic0 = 'T'
	magic1 = 'W'

	// VersionLegacy is the v0 record-per-record layout; VersionCurrent
	// is the user-table + varint-packed v1 layout.
	VersionLegacy  = 0
	VersionCurrent = 1

	headerLen  = 8
	trailerLen = 4

	// DefaultMaxFrameBytes bounds a single frame's payload; a corrupt
	// length prefix must not make a decoder reserve gigabytes.
	DefaultMaxFrameBytes = 16 << 20
)

// ClassTable is the shared class-name ↔ index agreement between an
// encoder and a decoder. Frames carry an FNV-1a hash of the table so a
// node detects a peer built against a different class list instead of
// silently crediting the wrong class.
type ClassTable struct {
	names []string
	idx   map[string]int
	hash  uint32
}

// NewClassTable builds the agreement from the class names in index
// order (the same slice ingest.NewEngine was given).
func NewClassTable(classes []string) (*ClassTable, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadBatch)
	}
	t := &ClassTable{
		names: append([]string(nil), classes...),
		idx:   make(map[string]int, len(classes)),
	}
	h := uint32(2166136261)
	for i, c := range classes {
		if c == "" {
			return nil, fmt.Errorf("%w: class %d empty", ErrBadBatch, i)
		}
		if _, dup := t.idx[c]; dup {
			return nil, fmt.Errorf("%w: class %q duplicate", ErrBadBatch, c)
		}
		t.idx[c] = i
		for j := 0; j < len(c); j++ {
			h ^= uint32(c[j])
			h *= 16777619
		}
		h ^= 0 // separator byte
		h *= 16777619
	}
	t.hash = h
	return t, nil
}

// Len returns the number of classes.
func (t *ClassTable) Len() int { return len(t.names) }

// Names returns the class names in index order.
func (t *ClassTable) Names() []string { return append([]string(nil), t.names...) }

// Hash returns the table's FNV-1a identity carried in every frame.
func (t *ClassTable) Hash() uint32 { return t.hash }

// Name returns the class name at index i.
func (t *ClassTable) Name(i int) string { return t.names[i] }

// Index resolves a class name.
func (t *ClassTable) Index(name string) (int, bool) {
	i, ok := t.idx[name]
	return i, ok
}

// packVolume maps a float64 volume to its varint-friendly form: the
// byte-reversed bit pattern puts the low (usually zero) mantissa bytes
// in the varint's dropped high positions. Exact for every bit pattern,
// NaN payloads included.
func packVolume(v float64) uint64 { return bits.ReverseBytes64(math.Float64bits(v)) }

func unpackVolume(u uint64) float64 { return math.Float64frombits(bits.ReverseBytes64(u)) }

// Encoder turns report batches into frames. Not safe for concurrent
// use; pool one per sending goroutine (the Router does).
type Encoder struct {
	tab     *ClassTable
	version byte
	buf     []byte
	userIdx map[string]int
	users   []string
	counts  []uint64
}

// NewEncoder builds a v1 encoder over the class table.
func NewEncoder(tab *ClassTable) *Encoder {
	return &Encoder{
		tab:     tab,
		version: VersionCurrent,
		userIdx: make(map[string]int),
		counts:  make([]uint64, tab.Len()),
	}
}

// SetVersion pins the frame version emitted (VersionLegacy for peers
// that only speak v0).
func (e *Encoder) SetVersion(v byte) error {
	if v != VersionLegacy && v != VersionCurrent {
		return fmt.Errorf("%w: %d", ErrVersion, v)
	}
	e.version = v
	return nil
}

// Encode frames one batch, returning the encoder's internal buffer —
// valid only until the next Encode call.
func (e *Encoder) Encode(reports []ingest.Report) ([]byte, error) {
	out, err := e.AppendFrame(e.buf[:0], reports)
	if err != nil {
		return nil, err
	}
	e.buf = out
	return out, nil
}

// AppendFrame appends one frame holding the batch to dst and returns
// the extended slice. Every report's class must be in the table; the
// batch is otherwise taken as-is (engine-level validation — unknown
// users, negative volumes — happens at the receiving node).
func (e *Encoder) AppendFrame(dst []byte, reports []ingest.Report) ([]byte, error) {
	start := len(dst)
	dst = append(dst, magic0, magic1, e.version, 0, 0, 0, 0, 0)
	var err error
	switch e.version {
	case VersionCurrent:
		dst, err = e.appendPayloadV1(dst, reports)
	case VersionLegacy:
		dst, err = e.appendPayloadV0(dst, reports)
	}
	if err != nil {
		return nil, err
	}
	payloadLen := len(dst) - start - headerLen
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(payloadLen))
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

func (e *Encoder) appendPayloadV1(dst []byte, reports []ingest.Report) ([]byte, error) {
	// Pass 1: build the user table in first-appearance order and the
	// per-class counts.
	clear(e.userIdx)
	e.users = e.users[:0]
	for i := range e.counts {
		e.counts[i] = 0
	}
	type rec struct{ user, class int }
	for i := range reports {
		r := &reports[i]
		ci, ok := e.tab.idx[r.Class]
		if !ok {
			return nil, fmt.Errorf("%w: report %d class %q not in table", ErrBadBatch, i, r.Class)
		}
		e.counts[ci]++
		if _, seen := e.userIdx[r.User]; !seen {
			e.userIdx[r.User] = len(e.users)
			e.users = append(e.users, r.User)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, e.tab.hash)
	dst = binary.AppendUvarint(dst, uint64(e.tab.Len()))
	for _, c := range e.counts {
		dst = binary.AppendUvarint(dst, c)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.users)))
	for _, u := range e.users {
		dst = binary.AppendUvarint(dst, uint64(len(u)))
		dst = append(dst, u...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(reports)))
	for i := range reports {
		r := &reports[i]
		dst = binary.AppendUvarint(dst, uint64(e.userIdx[r.User]))
		dst = binary.AppendUvarint(dst, uint64(e.tab.idx[r.Class]))
		dst = binary.AppendUvarint(dst, packVolume(r.VolumeMB))
	}
	return dst, nil
}

func (e *Encoder) appendPayloadV0(dst []byte, reports []ingest.Report) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, e.tab.hash)
	dst = binary.AppendUvarint(dst, uint64(len(reports)))
	for i := range reports {
		r := &reports[i]
		ci, ok := e.tab.idx[r.Class]
		if !ok {
			return nil, fmt.Errorf("%w: report %d class %q not in table", ErrBadBatch, i, r.Class)
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.User)))
		dst = append(dst, r.User...)
		dst = binary.AppendUvarint(dst, uint64(ci))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.VolumeMB))
	}
	return dst, nil
}

// Decoder turns frames back into report batches. Not safe for
// concurrent use; pool one per connection-serving goroutine (the tube
// server does).
type Decoder struct {
	tab      *ClassTable
	maxFrame int
	userTab  []string
	hashTab  []uint32
	recs     []ingest.WireRecord
	intern   map[string]internedUser
	v0idx    map[string]int32 // per-frame user dedup for v0 DecodeRecords
	counts   []int64
}

// internedUser is one stable user entry: the string allocated the first
// time the user was seen plus its ingest.UserHash, computed once so the
// zero-copy apply path never re-hashes a warm user.
type internedUser struct {
	s string
	h uint32
}

// NewDecoder builds a decoder over the class table, accepting frames of
// any supported version.
func NewDecoder(tab *ClassTable) *Decoder {
	return &Decoder{
		tab:      tab,
		maxFrame: DefaultMaxFrameBytes,
		intern:   make(map[string]internedUser),
		counts:   make([]int64, tab.Len()),
	}
}

// SetMaxFrameBytes bounds the accepted payload length (guards against a
// corrupt or hostile length prefix).
func (d *Decoder) SetMaxFrameBytes(n int) {
	if n > 0 {
		d.maxFrame = n
	}
}

// ClassCounts returns the per-class report counts of the most recently
// decoded frame, ordered as the class table. For v1 frames this is the
// header summary (verified against the records during decode); for v0
// it is tallied while decoding. The slice is reused across Decode calls.
func (d *Decoder) ClassCounts() []int64 { return d.counts }

// Decode consumes one frame from the front of buf, appends its reports
// to dst and returns the extended slice plus the number of bytes
// consumed. Callers loop Decode over a request body holding several
// frames; io.EOF-style "no more frames" is len(buf) == 0 at the caller.
func (d *Decoder) Decode(buf []byte, dst []ingest.Report) (out []ingest.Report, consumed int, err error) {
	version, payload, total, err := d.checkFrame(buf)
	if err != nil {
		return dst, 0, err
	}
	switch version {
	case VersionCurrent:
		out, err = d.decodePayloadV1(payload, dst)
	case VersionLegacy:
		out, err = d.decodePayloadV0(payload, dst)
	}
	if err != nil {
		return dst, 0, err
	}
	return out, total, nil
}

// checkFrame validates one frame's envelope — magic, version, flags,
// length bound, CRC — and returns the payload in place.
func (d *Decoder) checkFrame(buf []byte) (version byte, payload []byte, total int, err error) {
	if len(buf) < headerLen+trailerLen {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(buf), headerLen+trailerLen)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %#x %#x", ErrCorrupt, buf[0], buf[1])
	}
	version = buf[2]
	if version != VersionLegacy && version != VersionCurrent {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	if buf[3] != 0 {
		return 0, nil, 0, fmt.Errorf("%w: nonzero flags %#x", ErrCorrupt, buf[3])
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[4:]))
	if payloadLen > d.maxFrame {
		return 0, nil, 0, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, payloadLen, d.maxFrame)
	}
	total = headerLen + payloadLen + trailerLen
	if len(buf) < total {
		return 0, nil, 0, fmt.Errorf("%w: frame claims %d bytes, have %d", ErrTruncated, total, len(buf))
	}
	wantCRC := binary.LittleEndian.Uint32(buf[headerLen+payloadLen:])
	if got := crc32.ChecksumIEEE(buf[:headerLen+payloadLen]); got != wantCRC {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch (got %#x, frame says %#x)", ErrCorrupt, got, wantCRC)
	}
	return version, buf[headerLen : headerLen+payloadLen], total, nil
}

// DecodeRecords consumes one frame from the front of buf zero-copy: no
// []ingest.Report is materialized. It returns the frame's interned user
// table, the cached ingest.UserHash of each entry, and the records in
// frame-index form (ingest.WireRecord.Class indexes the decoder's class
// table, which matches the engine's class order). All three slices are
// decoder-owned scratch, valid only until the next Decode/DecodeRecords
// call — callers that queue the frame must copy them.
//
// Feeding the result to Engine.ApplyWire is the cluster fast path; it
// produces counters bit-identical to Decode + RecordBatchAdmitted (the
// reference twin, pinned by the property tests).
func (d *Decoder) DecodeRecords(buf []byte) (users []string, hashes []uint32, recs []ingest.WireRecord, consumed int, err error) {
	version, payload, total, err := d.checkFrame(buf)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	switch version {
	case VersionCurrent:
		err = d.decodeRecordsV1(payload)
	case VersionLegacy:
		err = d.decodeRecordsV0(payload)
	}
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return d.userTab, d.hashTab, d.recs, total, nil
}

// uvarint reads one varint from p, returning the value and the rest.
func uvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, p[n:], nil
}

// internUser returns a stable string for the user bytes plus its cached
// ingest.UserHash, reusing the allocation (and the hash work) made the
// first time this user was seen.
func (d *Decoder) internUser(b []byte) (string, uint32) {
	if e, ok := d.intern[string(b)]; ok { // no alloc: map lookup by []byte key conversion
		return e.s, e.h
	}
	s := string(b)
	e := internedUser{s: s, h: ingest.UserHash(s)}
	d.intern[s] = e
	return e.s, e.h
}

func (d *Decoder) decodePayloadV1(p []byte, dst []ingest.Report) ([]ingest.Report, error) {
	if len(p) < 4 {
		return dst, fmt.Errorf("%w: payload too short for class hash", ErrCorrupt)
	}
	if h := binary.LittleEndian.Uint32(p); h != d.tab.hash {
		return dst, fmt.Errorf("%w: frame hash %#x, table hash %#x", ErrClassTable, h, d.tab.hash)
	}
	p = p[4:]
	nc, p, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if int(nc) != d.tab.Len() {
		return dst, fmt.Errorf("%w: frame has %d classes, table %d", ErrClassTable, nc, d.tab.Len())
	}
	var headerN uint64
	for i := range d.counts {
		c, rest, err := uvarint(p)
		if err != nil {
			return dst, err
		}
		d.counts[i] = int64(c)
		headerN += c
		p = rest
	}
	nu, p, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if nu > uint64(len(p)) { // each user needs ≥1 length byte
		return dst, fmt.Errorf("%w: user table claims %d entries in %d bytes", ErrCorrupt, nu, len(p))
	}
	d.userTab = d.userTab[:0]
	for i := uint64(0); i < nu; i++ {
		l, rest, err := uvarint(p)
		if err != nil {
			return dst, err
		}
		if l > uint64(len(rest)) {
			return dst, fmt.Errorf("%w: user %d length %d overruns payload", ErrCorrupt, i, l)
		}
		s, _ := d.internUser(rest[:l])
		d.userTab = append(d.userTab, s)
		p = rest[l:]
	}
	n, p, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if n != headerN {
		return dst, fmt.Errorf("%w: record count %d, class counts sum %d", ErrCorrupt, n, headerN)
	}
	if n > uint64(len(p)) { // each record is ≥3 bytes
		return dst, fmt.Errorf("%w: %d records claimed in %d bytes", ErrCorrupt, n, len(p))
	}
	for i := uint64(0); i < n; i++ {
		ui, rest, err := uvarint(p)
		if err != nil {
			return dst, err
		}
		if ui >= uint64(len(d.userTab)) {
			return dst, fmt.Errorf("%w: record %d user index %d of %d", ErrCorrupt, i, ui, len(d.userTab))
		}
		ci, rest, err := uvarint(rest)
		if err != nil {
			return dst, err
		}
		if ci >= uint64(d.tab.Len()) {
			return dst, fmt.Errorf("%w: record %d class index %d of %d", ErrCorrupt, i, ci, d.tab.Len())
		}
		vb, rest, err := uvarint(rest)
		if err != nil {
			return dst, err
		}
		dst = append(dst, ingest.Report{
			User:     d.userTab[ui],
			Class:    d.tab.names[ci],
			VolumeMB: unpackVolume(vb),
		})
		p = rest
	}
	if len(p) != 0 {
		return dst, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return dst, nil
}

func (d *Decoder) decodePayloadV0(p []byte, dst []ingest.Report) ([]ingest.Report, error) {
	if len(p) < 4 {
		return dst, fmt.Errorf("%w: payload too short for class hash", ErrCorrupt)
	}
	if h := binary.LittleEndian.Uint32(p); h != d.tab.hash {
		return dst, fmt.Errorf("%w: frame hash %#x, table hash %#x", ErrClassTable, h, d.tab.hash)
	}
	p = p[4:]
	n, p, err := uvarint(p)
	if err != nil {
		return dst, err
	}
	if n > uint64(len(p)) {
		return dst, fmt.Errorf("%w: %d records claimed in %d bytes", ErrCorrupt, n, len(p))
	}
	for i := range d.counts {
		d.counts[i] = 0
	}
	for i := uint64(0); i < n; i++ {
		l, rest, err := uvarint(p)
		if err != nil {
			return dst, err
		}
		if l > uint64(len(rest)) {
			return dst, fmt.Errorf("%w: record %d user length %d overruns payload", ErrCorrupt, i, l)
		}
		user, _ := d.internUser(rest[:l])
		rest = rest[l:]
		ci, rest, err := uvarint(rest)
		if err != nil {
			return dst, err
		}
		if ci >= uint64(d.tab.Len()) {
			return dst, fmt.Errorf("%w: record %d class index %d of %d", ErrCorrupt, i, ci, d.tab.Len())
		}
		if len(rest) < 8 {
			return dst, fmt.Errorf("%w: record %d truncated volume", ErrCorrupt, i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		dst = append(dst, ingest.Report{User: user, Class: d.tab.names[ci], VolumeMB: v})
		d.counts[ci]++
		p = rest[8:]
	}
	if len(p) != 0 {
		return dst, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return dst, nil
}

// decodeRecordsV1 fills d.userTab/d.hashTab/d.recs from a v1 payload —
// the same walk as decodePayloadV1, minus the per-record Report
// materialization (class stays an index; volumes unpack in place).
func (d *Decoder) decodeRecordsV1(p []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("%w: payload too short for class hash", ErrCorrupt)
	}
	if h := binary.LittleEndian.Uint32(p); h != d.tab.hash {
		return fmt.Errorf("%w: frame hash %#x, table hash %#x", ErrClassTable, h, d.tab.hash)
	}
	p = p[4:]
	nc, p, err := uvarint(p)
	if err != nil {
		return err
	}
	if int(nc) != d.tab.Len() {
		return fmt.Errorf("%w: frame has %d classes, table %d", ErrClassTable, nc, d.tab.Len())
	}
	var headerN uint64
	for i := range d.counts {
		c, rest, err := uvarint(p)
		if err != nil {
			return err
		}
		d.counts[i] = int64(c)
		headerN += c
		p = rest
	}
	nu, p, err := uvarint(p)
	if err != nil {
		return err
	}
	if nu > uint64(len(p)) { // each user needs ≥1 length byte
		return fmt.Errorf("%w: user table claims %d entries in %d bytes", ErrCorrupt, nu, len(p))
	}
	d.userTab = d.userTab[:0]
	d.hashTab = d.hashTab[:0]
	for i := uint64(0); i < nu; i++ {
		l, rest, err := uvarint(p)
		if err != nil {
			return err
		}
		if l > uint64(len(rest)) {
			return fmt.Errorf("%w: user %d length %d overruns payload", ErrCorrupt, i, l)
		}
		s, h := d.internUser(rest[:l])
		d.userTab = append(d.userTab, s)
		d.hashTab = append(d.hashTab, h)
		p = rest[l:]
	}
	n, p, err := uvarint(p)
	if err != nil {
		return err
	}
	if n != headerN {
		return fmt.Errorf("%w: record count %d, class counts sum %d", ErrCorrupt, n, headerN)
	}
	if n > uint64(len(p)) { // each record is ≥3 bytes
		return fmt.Errorf("%w: %d records claimed in %d bytes", ErrCorrupt, n, len(p))
	}
	d.recs = d.recs[:0]
	for i := uint64(0); i < n; i++ {
		ui, rest, err := uvarint(p)
		if err != nil {
			return err
		}
		if ui >= uint64(len(d.userTab)) {
			return fmt.Errorf("%w: record %d user index %d of %d", ErrCorrupt, i, ui, len(d.userTab))
		}
		ci, rest, err := uvarint(rest)
		if err != nil {
			return err
		}
		if ci >= uint64(d.tab.Len()) {
			return fmt.Errorf("%w: record %d class index %d of %d", ErrCorrupt, i, ci, d.tab.Len())
		}
		vb, rest, err := uvarint(rest)
		if err != nil {
			return err
		}
		d.recs = append(d.recs, ingest.WireRecord{
			User:     int32(ui),
			Class:    int32(ci),
			VolumeMB: unpackVolume(vb),
		})
		p = rest
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return nil
}

// decodeRecordsV0 fills d.userTab/d.hashTab/d.recs from a v0 payload,
// building the user table on the fly (v0 has none on the wire): each
// inline user string is deduplicated through d.v0idx so the record form
// matches what a v1 encoder would have produced for the same batch.
func (d *Decoder) decodeRecordsV0(p []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("%w: payload too short for class hash", ErrCorrupt)
	}
	if h := binary.LittleEndian.Uint32(p); h != d.tab.hash {
		return fmt.Errorf("%w: frame hash %#x, table hash %#x", ErrClassTable, h, d.tab.hash)
	}
	p = p[4:]
	n, p, err := uvarint(p)
	if err != nil {
		return err
	}
	if n > uint64(len(p)) {
		return fmt.Errorf("%w: %d records claimed in %d bytes", ErrCorrupt, n, len(p))
	}
	for i := range d.counts {
		d.counts[i] = 0
	}
	if d.v0idx == nil {
		d.v0idx = make(map[string]int32)
	}
	clear(d.v0idx)
	d.userTab = d.userTab[:0]
	d.hashTab = d.hashTab[:0]
	d.recs = d.recs[:0]
	for i := uint64(0); i < n; i++ {
		l, rest, err := uvarint(p)
		if err != nil {
			return err
		}
		if l > uint64(len(rest)) {
			return fmt.Errorf("%w: record %d user length %d overruns payload", ErrCorrupt, i, l)
		}
		ui, ok := d.v0idx[string(rest[:l])] // no alloc: []byte-key lookup
		if !ok {
			s, h := d.internUser(rest[:l])
			ui = int32(len(d.userTab))
			d.userTab = append(d.userTab, s)
			d.hashTab = append(d.hashTab, h)
			d.v0idx[s] = ui
		}
		rest = rest[l:]
		ci, rest, err := uvarint(rest)
		if err != nil {
			return err
		}
		if ci >= uint64(d.tab.Len()) {
			return fmt.Errorf("%w: record %d class index %d of %d", ErrCorrupt, i, ci, d.tab.Len())
		}
		if len(rest) < 8 {
			return fmt.Errorf("%w: record %d truncated volume", ErrCorrupt, i)
		}
		d.recs = append(d.recs, ingest.WireRecord{
			User:     ui,
			Class:    int32(ci),
			VolumeMB: math.Float64frombits(binary.LittleEndian.Uint64(rest)),
		})
		d.counts[ci]++
		p = rest[8:]
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return nil
}
