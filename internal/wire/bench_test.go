package wire

import (
	"encoding/json"
	"fmt"
	"testing"

	"tdp/internal/ingest"
)

// benchBatch mirrors the per-user batches the load harness sends: one
// user, volume-1 reports rotating through the classes.
func benchBatch(n int) []ingest.Report {
	reps := make([]ingest.Report, n)
	for i := range reps {
		reps[i] = ingest.Report{
			User:     fmt.Sprintf("u%06d", i/8),
			Class:    testClasses[i%len(testClasses)],
			VolumeMB: 1,
		}
	}
	return reps
}

// BenchmarkWireEncode frames a batch with the binary codec vs
// encoding/json — same []Report in, bytes out. The bytes/report metric
// is the wire-size saving; ns/op the CPU saving.
func BenchmarkWireEncode(b *testing.B) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 256} {
		batch := benchBatch(n)
		b.Run(fmt.Sprintf("wire/batch=%d", n), func(b *testing.B) {
			enc := NewEncoder(tab)
			var size int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame, err := enc.Encode(batch)
				if err != nil {
					b.Fatal(err)
				}
				size = len(frame)
			}
			b.ReportMetric(float64(size)/float64(n), "bytes/report")
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
		b.Run(fmt.Sprintf("json/batch=%d", n), func(b *testing.B) {
			var size int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body, err := json.Marshal(batch)
				if err != nil {
					b.Fatal(err)
				}
				size = len(body)
			}
			b.ReportMetric(float64(size)/float64(n), "bytes/report")
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkWireDecode parses a frame back into reports vs
// encoding/json Unmarshal of the same batch.
func BenchmarkWireDecode(b *testing.B) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 256} {
		batch := benchBatch(n)
		b.Run(fmt.Sprintf("wire/batch=%d", n), func(b *testing.B) {
			frame, err := NewEncoder(tab).Encode(batch)
			if err != nil {
				b.Fatal(err)
			}
			dec := NewDecoder(tab)
			dst := make([]ingest.Report, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := dec.Decode(frame, dst[:0])
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != n {
					b.Fatal("short decode")
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
		b.Run(fmt.Sprintf("json/batch=%d", n), func(b *testing.B) {
			body, err := json.Marshal(batch)
			if err != nil {
				b.Fatal(err)
			}
			var out []ingest.Report
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = out[:0]
				if err := json.Unmarshal(body, &out); err != nil {
					b.Fatal(err)
				}
				if len(out) != n {
					b.Fatal("short decode")
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkWireRoundTrip is the full codec path both directions — the
// number the ≥2× wire-vs-JSON acceptance criterion reads.
func BenchmarkWireRoundTrip(b *testing.B) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	batch := benchBatch(n)
	b.Run("wire", func(b *testing.B) {
		enc := NewEncoder(tab)
		dec := NewDecoder(tab)
		dst := make([]ingest.Report, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame, err := enc.Encode(batch)
			if err != nil {
				b.Fatal(err)
			}
			out, _, err := dec.Decode(frame, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatal("short decode")
			}
		}
		b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
	})
	b.Run("json", func(b *testing.B) {
		var out []ingest.Report
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(batch)
			if err != nil {
				b.Fatal(err)
			}
			out = out[:0]
			if err := json.Unmarshal(body, &out); err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatal("short decode")
			}
		}
		b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
	})
}

// BenchmarkApplyWire is the tentpole comparison: the zero-copy path
// (DecodeRecords → Engine.ApplyWire, no []Report materialized) against
// the classic twin (Decode → RecordBatchAdmitted) on the same frame and
// shard count. The acceptance bar is ≥2× at batch=256 with 0 allocs/op
// on the warm zero-copy path.
func BenchmarkApplyWire(b *testing.B) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		b.Fatal(err)
	}
	const shards = 8 // pinned: DefaultShards scales with GOMAXPROCS
	for _, n := range []int{16, 256} {
		batch := benchBatch(n)
		frame, err := NewEncoder(tab).Encode(batch)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("zerocopy/batch=%d", n), func(b *testing.B) {
			eng, err := ingest.NewEngine(testClasses, shards)
			if err != nil {
				b.Fatal(err)
			}
			dec := NewDecoder(tab)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				users, hashes, recs, _, err := dec.DecodeRecords(frame)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.ApplyWire(users, hashes, recs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
		b.Run(fmt.Sprintf("decode/batch=%d", n), func(b *testing.B) {
			eng, err := ingest.NewEngine(testClasses, shards)
			if err != nil {
				b.Fatal(err)
			}
			dec := NewDecoder(tab)
			dst := make([]ingest.Report, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reps, _, err := dec.Decode(frame, dst[:0])
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.RecordBatchAdmitted(reps); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
