package wire

import (
	"math"
	"testing"

	"tdp/internal/ingest"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must reject or
// accept without panicking, and anything it accepts must re-encode to a
// batch that decodes identically (decode is a retraction of encode).
func FuzzDecode(f *testing.F) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(tab)
	seed, err := enc.Encode(sampleBatch(9))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'T', 'W', 1, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(tab)
		got, consumed, err := dec.Decode(data, nil)
		if err != nil {
			return
		}
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("accepted frame consumed %d of %d bytes", consumed, len(data))
		}
		frame, err := NewEncoder(tab).Encode(got)
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		again, _, err := NewDecoder(tab).Decode(frame, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !sameReports(got, again) {
			t.Fatal("decode∘encode not idempotent on accepted input")
		}
	})
}

// FuzzRoundTrip builds a batch from fuzzed fields and asserts
// decode(encode(x)) == x bit-for-bit, across both frame versions.
func FuzzRoundTrip(f *testing.F) {
	tab, err := NewClassTable(testClasses)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("alice", "bob", uint8(3), uint64(0x3ff0000000000000), uint64(42))
	f.Add("", "u", uint8(0), uint64(0x7ff8000000000123), uint64(0))
	f.Fuzz(func(t *testing.T, userA, userB string, n uint8, volBitsA, volBitsB uint64) {
		batch := make([]ingest.Report, int(n)%33)
		for i := range batch {
			u, vb := userA, volBitsA
			if i%2 == 1 {
				u, vb = userB, volBitsB
			}
			batch[i] = ingest.Report{
				User:     u,
				Class:    testClasses[(i+int(n))%len(testClasses)],
				VolumeMB: math.Float64frombits(vb + uint64(i)),
			}
		}
		for _, v := range []byte{VersionLegacy, VersionCurrent} {
			enc := NewEncoder(tab)
			if err := enc.SetVersion(v); err != nil {
				t.Fatal(err)
			}
			frame, err := enc.Encode(batch)
			if err != nil {
				t.Fatalf("v%d encode: %v", v, err)
			}
			got, consumed, err := NewDecoder(tab).Decode(frame, nil)
			if err != nil {
				t.Fatalf("v%d decode: %v", v, err)
			}
			if consumed != len(frame) {
				t.Fatalf("v%d: consumed %d of %d", v, consumed, len(frame))
			}
			if !sameReports(batch, got) {
				t.Fatalf("v%d round trip mismatch", v)
			}
		}
	})
}
