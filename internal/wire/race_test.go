//go:build race

package wire

// raceEnabled mirrors the -race flag for tests whose property (exact
// allocation counts) the race runtime's own bookkeeping invalidates.
const raceEnabled = true
