package cluster

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/obs"
)

func sampleSnapshot() PriceSnapshot {
	return PriceSnapshot{
		Format:        snapshotVersion,
		Period:        5,
		Rewards:       []float64{0, 0.1, 0.25, 0.4},
		RingVersion:   3,
		TakenUnixNano: 1_700_000_000_000_000_000,
	}
}

func TestSnapshotValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*PriceSnapshot)
	}{
		{"bad format", func(s *PriceSnapshot) { s.Format = 99 }},
		{"negative period", func(s *PriceSnapshot) { s.Period = -1 }},
		{"empty rewards", func(s *PriceSnapshot) { s.Rewards = nil }},
		{"NaN reward", func(s *PriceSnapshot) { s.Rewards[1] = math.NaN() }},
		{"Inf reward", func(s *PriceSnapshot) { s.Rewards[0] = math.Inf(1) }},
	}
	for _, tc := range cases {
		s := sampleSnapshot()
		tc.mut(&s)
		if err := s.Validate(); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: %v, want ErrBadSnapshot", tc.name, err)
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: Encode accepted an invalid snapshot", tc.name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prices.snap")
	want := sampleSnapshot()
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != want.Period || got.RingVersion != want.RingVersion ||
		got.TakenUnixNano != want.TakenUnixNano || len(got.Rewards) != len(want.Rewards) {
		t.Fatalf("round trip: %+v, want %+v", got, want)
	}
	for i := range got.Rewards {
		//lint:allow floateq JSON round-trips float64 exactly via shortest-form encoding
		if got.Rewards[i] != want.Rewards[i] {
			t.Fatalf("reward %d: %v, want %v", i, got.Rewards[i], want.Rewards[i])
		}
	}
}

func TestSnapshotFileCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prices.snap")
	if err := SaveSnapshotFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated file.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated: %v, want ErrBadSnapshot", err)
	}
	// Valid JSON, invalid contents.
	if err := os.WriteFile(path, []byte(`{"format":1,"period":-3,"rewards":[1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("invalid contents: %v, want ErrBadSnapshot", err)
	}
	// Missing file surfaces the underlying error, not a zero snapshot.
	if _, err := LoadSnapshotFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file loaded successfully")
	}
}

func TestReplicatorPullApplyAndReplay(t *testing.T) {
	var served atomic.Int64
	snap := sampleSnapshot()
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/cluster/snapshot" {
			http.NotFound(w, req)
			return
		}
		served.Add(1)
		_ = snap.Encode(w)
	}))
	defer leader.Close()

	var applies atomic.Int64
	var got atomic.Pointer[PriceSnapshot]
	rep, err := NewReplicator(leader.URL, time.Hour, func(s PriceSnapshot) error {
		applies.Add(1)
		got.Store(&s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep.Instrument(reg)

	if rep.StalenessSeconds() >= 0 {
		t.Fatalf("staleness %v before first pull, want -1", rep.StalenessSeconds())
	}
	ctx := context.Background()
	if err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if applies.Load() != 1 || got.Load().Period != snap.Period {
		t.Fatalf("first pull: applies=%d snap=%+v", applies.Load(), got.Load())
	}
	// Replaying the same snapshot is a no-op.
	if err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if applies.Load() != 1 {
		t.Fatalf("replay re-applied: applies=%d", applies.Load())
	}
	// A newer snapshot is applied; staleness now tracks its timestamp.
	snap.Period++
	snap.TakenUnixNano = time.Now().UnixNano()
	if err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if applies.Load() != 2 || got.Load().Period != snap.Period {
		t.Fatalf("newer snapshot: applies=%d snap=%+v", applies.Load(), got.Load())
	}
	if s := rep.StalenessSeconds(); s < 0 || s > 60 {
		t.Fatalf("staleness %v after fresh snapshot", s)
	}
	if pulls := reg.Counter("cluster_replication_pulls_total", "", nil).Value(); pulls != 3 {
		t.Fatalf("pull counter %d, want 3", pulls)
	}
	if fails := reg.Counter("cluster_replication_failures_total", "", nil).Value(); fails != 0 {
		t.Fatalf("failure counter %d, want 0", fails)
	}
}

func TestReplicatorFailuresCounted(t *testing.T) {
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer leader.Close()
	rep, err := NewReplicator(leader.URL, time.Hour, func(PriceSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep.Instrument(reg)
	if err := rep.PullOnce(context.Background()); err == nil {
		t.Fatal("pull from a 503 leader succeeded")
	}
	if fails := reg.Counter("cluster_replication_failures_total", "", nil).Value(); fails != 1 {
		t.Fatalf("failure counter %d, want 1", fails)
	}
}

func TestReplicatorStartStop(t *testing.T) {
	snap := sampleSnapshot()
	snap.TakenUnixNano = time.Now().UnixNano()
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_ = snap.Encode(w)
	}))
	defer leader.Close()
	applied := make(chan struct{}, 1)
	rep, err := NewReplicator(leader.URL, 10*time.Millisecond, func(PriceSnapshot) error {
		select {
		case applied <- struct{}{}:
		default:
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	rep.Start() // idempotent
	select {
	case <-applied:
	case <-time.After(5 * time.Second):
		t.Fatal("replicator never applied a snapshot")
	}
	rep.Stop()
	rep.Stop() // idempotent
}

func TestNewReplicatorValidation(t *testing.T) {
	if _, err := NewReplicator("", time.Second, func(PriceSnapshot) error { return nil }); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty leader: %v, want ErrBadConfig", err)
	}
	if _, err := NewReplicator("http://x", time.Second, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil apply: %v, want ErrBadConfig", err)
	}
}
