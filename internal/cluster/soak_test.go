package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdp/internal/ingest"
)

// TestShedQueueSustainedOverloadConservation soaks the queue with many
// concurrent producers pushing far past the drain rate, mixing both
// admission forms, and pins the conservation invariant that makes shed
// accounting trustworthy: every report pushed is either applied or
// counted shed — applied + shed == pushed, with the per-class split
// summing to the shed total.
func TestShedQueueSustainedOverloadConservation(t *testing.T) {
	classes := []string{"web", "ftp", "video"}
	q, err := NewShedQueue(classes, 4)
	if err != nil {
		t.Fatal(err)
	}
	var applied atomic.Int64
	appliedByClass := make([]int64, len(classes))
	var abcMu sync.Mutex
	q.Start(func(b Batch) {
		// A slow consumer: the producers outrun this by construction.
		time.Sleep(200 * time.Microsecond)
		applied.Add(int64(b.Len()))
		abcMu.Lock()
		for i := range b.Reports {
			appliedByClass[q.classIdx[b.Reports[i].Class]]++
		}
		for i := range b.Recs {
			appliedByClass[b.Recs[i].Class]++
		}
		abcMu.Unlock()
	})

	const producers, batchesPer, perBatch = 8, 50, 16
	var pushed, shedAtPush atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				if p%2 == 0 {
					reps := make([]ingest.Report, perBatch)
					for i := range reps {
						reps[i] = ingest.Report{
							User:     fmt.Sprintf("u%d-%d", p, i),
							Class:    classes[(p+b+i)%len(classes)],
							VolumeMB: 1,
						}
					}
					shedAtPush.Add(int64(q.Push(reps)))
				} else {
					users := make([]string, perBatch)
					hashes := make([]uint32, perBatch)
					recs := make([]ingest.WireRecord, perBatch)
					for i := range recs {
						users[i] = fmt.Sprintf("w%d-%d", p, i)
						hashes[i] = ingest.UserHash(users[i])
						recs[i] = ingest.WireRecord{
							User:     int32(i),
							Class:    int32((p + b + i) % len(classes)),
							VolumeMB: 1,
						}
					}
					shedAtPush.Add(int64(q.PushWire(users, hashes, recs)))
				}
				pushed.Add(perBatch)
			}
		}(p)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	q.Close()

	shedTot, byClass := q.ShedTotals()
	if shedTot == 0 {
		t.Fatal("soak never overloaded the queue — the test proves nothing")
	}
	if got := shedAtPush.Load(); got != shedTot {
		t.Fatalf("Push return values counted %d shed, ShedTotals says %d", got, shedTot)
	}
	var classSum int64
	for _, n := range byClass {
		classSum += n
	}
	if classSum != shedTot {
		t.Fatalf("per-class shed %v sums to %d, total says %d", byClass, classSum, shedTot)
	}
	if got, want := applied.Load()+shedTot, pushed.Load(); got != want {
		t.Fatalf("conservation broken: applied %d + shed %d = %d, pushed %d",
			applied.Load(), shedTot, got, want)
	}
	// Cross-check the applied per-class tally too: applied + shed per
	// class must equal what the producers generated per class.
	abcMu.Lock()
	defer abcMu.Unlock()
	for ci := range classes {
		if got := appliedByClass[ci] + byClass[ci]; got == 0 {
			t.Fatalf("class %s never saw traffic", classes[ci])
		}
	}
}

// TestShedQueueShedsOldestNeverNewest: under overload the queue drops
// from the head, so the most recent batch always survives to be
// applied — the freshest usage is never the victim.
func TestShedQueueShedsOldestNeverNewest(t *testing.T) {
	classes := []string{"web"}
	q, err := NewShedQueue(classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var appliedSeq []string
	var mu sync.Mutex
	q.Start(func(b Batch) {
		<-gate // hold the worker so pushes pile up deterministically
		mu.Lock()
		appliedSeq = append(appliedSeq, b.Reports[0].User)
		mu.Unlock()
	})

	batch := func(tag string) []ingest.Report {
		return []ingest.Report{{User: tag, Class: "web", VolumeMB: 1}}
	}
	// b0 is grabbed by the (blocked) worker; b1, b2 fill the queue.
	if shed := q.Push(batch("b0")); shed != 0 {
		t.Fatalf("push b0 shed %d", shed)
	}
	// Wait for the worker to take b0 off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for q.Depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, tag := range []string{"b1", "b2"} {
		if shed := q.Push(batch(tag)); shed != 0 {
			t.Fatalf("push %s shed %d with queue not yet full", tag, shed)
		}
	}
	// Queue full: each further push sheds exactly the current oldest.
	for _, tag := range []string{"b3", "b4", "b5"} {
		if shed := q.Push(batch(tag)); shed != 1 {
			t.Fatalf("push %s on a full queue shed %d reports, want 1", tag, shed)
		}
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	q.Close()

	mu.Lock()
	defer mu.Unlock()
	// b0 was in flight; b1/b2/b3 were shed oldest-first; b4/b5 survive.
	want := []string{"b0", "b4", "b5"}
	if len(appliedSeq) != len(want) {
		t.Fatalf("applied %v, want %v", appliedSeq, want)
	}
	for i := range want {
		if appliedSeq[i] != want[i] {
			t.Fatalf("applied %v, want %v — shed-oldest starved the newest", appliedSeq, want)
		}
	}
	shedTot, _ := q.ShedTotals()
	if shedTot != 3 {
		t.Fatalf("shed %d reports, want 3 (b1, b2, b3)", shedTot)
	}
}
