package cluster

import (
	"context"
	"fmt"
	"sync"

	"tdp/internal/ingest"
	"tdp/internal/obs"
)

// ShedQueue is the node-side overload valve between frame admission and
// the accounting engine: a bounded FIFO of admitted batches drained by
// one worker. When a batch arrives on a full queue the OLDEST queued
// batch is shed — under sustained overload the node keeps serving the
// freshest traffic and degrades by forgetting the most stale usage, the
// same bias TARDIS-style traffic shifting wants (recent behavior prices
// the next period; ancient unaccounted usage is the least valuable
// thing in the building). Every shed report is counted per class, so
// the drop rate is a first-class metric, not an invisible lie in the
// totals.
//
// Shedding is deliberate data loss and only happens past the configured
// depth; a deployment that must never shed sizes the queue (or applies
// synchronously with QueueDepth 0 at the serving layer) and watches the
// counters stay zero.
type ShedQueue struct {
	classIdx map[string]int

	mu       sync.Mutex
	cond     *sync.Cond
	q        []Batch // guarded by mu: FIFO, q[0] oldest
	depth    int     // guarded by mu: max queued batches
	queued   int64   // guarded by mu: reports across q
	applying bool    // guarded by mu: worker mid-apply
	closed   bool    // guarded by mu
	shed     []int64 // guarded by mu: per-class shed reports
	shedTot  int64   // guarded by mu

	shedCounters []*obs.Counter // set by Instrument, written under mu
	wg           sync.WaitGroup
}

// Batch is one queued unit of admitted work in either of the two
// admission forms: the classic decoded form (Reports non-nil) or the
// zero-copy wire form (Users/Hashes/Recs, fed to Engine.ApplyWire).
// Exactly one form is populated per batch.
type Batch struct {
	Reports []ingest.Report

	Users  []string
	Hashes []uint32
	Recs   []ingest.WireRecord
}

// Len returns the number of usage reports the batch carries.
func (b *Batch) Len() int {
	if b.Reports != nil {
		return len(b.Reports)
	}
	return len(b.Recs)
}

// NewShedQueue builds a queue bounded to depth batches over the given
// class set (the per-class drop accounting needs the class index).
func NewShedQueue(classes []string, depth int) (*ShedQueue, error) {
	if depth < 1 {
		return nil, fmt.Errorf("%w: queue depth %d < 1", ErrBadConfig, depth)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadConfig)
	}
	q := &ShedQueue{
		classIdx: make(map[string]int, len(classes)),
		depth:    depth,
		shed:     make([]int64, len(classes)),
	}
	for i, c := range classes {
		q.classIdx[c] = i
	}
	q.cond = sync.NewCond(&q.mu)
	return q, nil
}

// Start launches the drain worker: apply is called once per queued
// batch, in FIFO order, on a single goroutine.
func (q *ShedQueue) Start(apply func(Batch)) {
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		for {
			q.mu.Lock()
			for len(q.q) == 0 && !q.closed {
				q.cond.Wait()
			}
			if len(q.q) == 0 && q.closed {
				q.mu.Unlock()
				return
			}
			b := q.q[0]
			q.q = q.q[1:]
			q.queued -= int64(b.Len())
			q.applying = true
			q.mu.Unlock()

			apply(b)

			q.mu.Lock()
			q.applying = false
			q.cond.Broadcast()
			q.mu.Unlock()
		}
	}()
}

// Push enqueues an admitted batch, shedding the oldest queued batch if
// the queue is full. It returns the number of reports shed to make
// room (0 in the common case). Pushing to a closed queue sheds the
// whole incoming batch.
func (q *ShedQueue) Push(batch []ingest.Report) (shed int) {
	return q.push(Batch{Reports: batch})
}

// PushWire enqueues an admitted frame in zero-copy wire form. The
// slices are retained until the batch is applied or shed, so callers
// handing over decoder scratch must pass copies.
func (q *ShedQueue) PushWire(users []string, hashes []uint32, recs []ingest.WireRecord) (shed int) {
	return q.push(Batch{Users: users, Hashes: hashes, Recs: recs})
}

func (q *ShedQueue) push(batch Batch) (shed int) {
	n := batch.Len()
	if n == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.countShedLocked(&batch)
		return n
	}
	if len(q.q) >= q.depth {
		old := q.q[0]
		q.q = q.q[1:]
		q.queued -= int64(old.Len())
		q.countShedLocked(&old)
		shed = old.Len()
	}
	q.q = append(q.q, batch)
	q.queued += int64(n)
	q.cond.Broadcast()
	return shed
}

// countShedLocked tallies a dropped batch per class. Guarded by mu.
func (q *ShedQueue) countShedLocked(batch *Batch) {
	if batch.Reports != nil {
		for i := range batch.Reports {
			ci, ok := q.classIdx[batch.Reports[i].Class]
			if !ok {
				continue // unknown class would be rejected by the engine anyway
			}
			q.shed[ci]++
			if q.shedCounters != nil {
				q.shedCounters[ci].Inc()
			}
		}
		q.shedTot += int64(len(batch.Reports))
		return
	}
	for i := range batch.Recs {
		ci := int(batch.Recs[i].Class) // wire class indexes match the constructor's class order
		if ci < 0 || ci >= len(q.shed) {
			continue
		}
		q.shed[ci]++
		if q.shedCounters != nil {
			q.shedCounters[ci].Inc()
		}
	}
	q.shedTot += int64(len(batch.Recs))
}

// Drain blocks until the queue is empty and no apply is in flight (or
// ctx expires). The harness calls it before exactly-once verification.
func (q *ShedQueue) Drain(ctx context.Context) error {
	done := make(chan struct{})
	cancelled := false // guarded by mu
	go func() {
		q.mu.Lock()
		for (len(q.q) > 0 || q.applying) && !q.closed && !cancelled {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		cancelled = true
		q.cond.Broadcast()
		q.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close drains nothing: it marks the queue closed, lets the worker
// finish the batches already queued, and waits for it to exit.
func (q *ShedQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
}

// Depth returns the number of queued batches.
func (q *ShedQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q)
}

// QueuedReports returns the number of reports sitting in the queue.
func (q *ShedQueue) QueuedReports() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// ShedTotals returns the total reports shed and the per-class split
// (ordered as the constructor's class slice).
func (q *ShedQueue) ShedTotals() (total int64, byClass []int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shedTot, append([]int64(nil), q.shed...)
}

// Instrument registers the queue's drop counters and depth gauges on
// reg: cluster_shed_reports_total{class=...}, cluster_queue_batches,
// cluster_queue_reports.
func (q *ShedQueue) Instrument(reg *obs.Registry, classes []string) {
	counters := make([]*obs.Counter, len(classes))
	for i, c := range classes {
		counters[i] = reg.Counter("cluster_shed_reports_total",
			"usage reports dropped by shed-oldest overload protection, by class",
			obs.Labels{"class": c})
	}
	q.mu.Lock()
	q.shedCounters = counters
	// Back-fill sheds that happened before instrumentation.
	for i, n := range q.shed {
		if n > 0 {
			counters[i].Add(n)
		}
	}
	q.mu.Unlock()
	reg.GaugeFunc("cluster_queue_batches", "admitted batches waiting for the accounting engine", nil,
		func() float64 { return float64(q.Depth()) })
	reg.GaugeFunc("cluster_queue_reports", "usage reports waiting for the accounting engine", nil,
		func() float64 { return float64(q.QueuedReports()) })
}
