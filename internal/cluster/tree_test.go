package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func treeRing(t *testing.T, n int, version uint64) *Ring {
	t.Helper()
	cfg := Config{Version: version}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%02d", i)
		cfg.Members = append(cfg.Members, Member{ID: id, Addr: "http://" + id})
	}
	ring, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

// TestTreeParentStructure: every follower has a parent, every parent
// chain terminates at the leader within log_fanout(N) + 1 hops, and no
// parent feeds more than fanout children.
func TestTreeParentStructure(t *testing.T) {
	const n, fanout = 13, 3
	ring := treeRing(t, n, 1)
	leaderID := "n05" // any member can lead; the tree excludes it from the follower order
	children := make(map[string]int)
	for _, m := range ring.Members() {
		if m.ID == leaderID {
			if _, ok := TreeParent(ring, leaderID, m.ID, fanout); ok {
				t.Fatal("leader was assigned a parent")
			}
			continue
		}
		hops := 0
		for id := m.ID; id != leaderID; hops++ {
			parent, ok := TreeParent(ring, leaderID, id, fanout)
			if !ok {
				t.Fatalf("follower %s has no parent", id)
			}
			if parent.ID == id {
				t.Fatalf("follower %s is its own parent", id)
			}
			if hops == 0 {
				children[parent.ID]++
			}
			id = parent.ID
			if hops > n {
				t.Fatalf("parent chain from %s never reaches the leader", m.ID)
			}
		}
		// Complete fanout-ary tree depth: ceil(log_fanout) bound with slack 1.
		if hops > 4 {
			t.Fatalf("follower %s is %d hops from the leader (n=%d fanout=%d)", m.ID, hops, n, fanout)
		}
	}
	for id, c := range children {
		if c > fanout {
			t.Fatalf("parent %s feeds %d children, fanout bound %d", id, c, fanout)
		}
	}
	// The leader itself serves at most fanout direct pulls — the whole
	// point of the tree.
	if children[leaderID] > fanout {
		t.Fatalf("leader serves %d direct children, want ≤ %d", children[leaderID], fanout)
	}
}

// TestTreeParentSelfHeals: the tree is a pure function of the ring, so
// dropping a member reshapes it with every surviving follower still
// rooted at the leader — no repair protocol, just recomputation.
func TestTreeParentSelfHeals(t *testing.T) {
	const fanout = 2
	before := treeRing(t, 8, 1)
	// n03 dies; ring v2 excludes it.
	cfg := before.Config()
	cfg.Version = 2
	survivors := cfg.Members[:0]
	for _, m := range cfg.Members {
		if m.ID != "n03" {
			survivors = append(survivors, m)
		}
	}
	cfg.Members = survivors
	after, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range after.Members() {
		if m.ID == "n00" {
			continue
		}
		hops := 0
		for id := m.ID; id != "n00"; hops++ {
			parent, ok := TreeParent(after, "n00", id, fanout)
			if !ok {
				t.Fatalf("post-heal follower %s has no parent", id)
			}
			if parent.ID == "n03" {
				t.Fatalf("follower %s still pulls from the departed member", id)
			}
			id = parent.ID
			if hops > 8 {
				t.Fatalf("post-heal chain from %s never reaches the leader", m.ID)
			}
		}
	}
}

func TestTreeParentDegenerateInputs(t *testing.T) {
	ring := treeRing(t, 4, 1)
	if _, ok := TreeParent(ring, "n00", "n00", 2); ok {
		t.Fatal("leader got a parent")
	}
	if _, ok := TreeParent(ring, "n00", "ghost", 2); ok {
		t.Fatal("unknown self got a parent")
	}
	if _, ok := TreeParent(ring, "ghost", "n01", 2); ok {
		t.Fatal("unknown leader produced a parent")
	}
	if _, ok := TreeParent(ring, "n00", "n01", 0); ok {
		t.Fatal("zero fanout produced a parent")
	}
	if _, ok := TreeParent(nil, "n00", "n01", 2); ok {
		t.Fatal("nil ring produced a parent")
	}
}

// TestReplicatorTreeSourceAndFallback: a follower pulls from its tree
// parent while the parent is healthy, and falls back to the leader
// after treeFallbackAfter consecutive failures — then returns to the
// parent once a pull succeeds.
func TestReplicatorTreeSourceAndFallback(t *testing.T) {
	snap := sampleSnapshot()
	var leaderPulls, parentPulls atomic.Int64
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		leaderPulls.Add(1)
		_ = snap.Encode(w)
	}))
	defer leader.Close()
	var parentDown atomic.Bool
	parent := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if parentDown.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		parentPulls.Add(1)
		_ = snap.Encode(w)
	}))
	defer parent.Close()

	rep, err := NewReplicator(leader.URL, time.Hour, func(PriceSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	rep.SetSource(func() (string, bool) { return parent.URL, true })
	ctx := context.Background()

	if err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if parentPulls.Load() != 1 || leaderPulls.Load() != 0 {
		t.Fatalf("healthy parent: parent=%d leader=%d pulls", parentPulls.Load(), leaderPulls.Load())
	}

	// Parent dies: the first treeFallbackAfter pulls fail against it,
	// then the replicator routes around it to the leader.
	parentDown.Store(true)
	for i := 0; i < treeFallbackAfter; i++ {
		if err := rep.PullOnce(ctx); err == nil {
			t.Fatalf("pull %d against a dead parent succeeded", i)
		}
	}
	if err := rep.PullOnce(ctx); err != nil {
		t.Fatalf("leader fallback pull failed: %v", err)
	}
	if leaderPulls.Load() != 1 {
		t.Fatalf("leader served %d pulls after fallback, want 1", leaderPulls.Load())
	}

	// Parent recovers: the successful fallback pull reset the streak, so
	// the next pull goes to the parent again — the tree self-heals.
	parentDown.Store(false)
	if err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if parentPulls.Load() != 2 {
		t.Fatalf("recovered parent served %d pulls, want 2", parentPulls.Load())
	}
}

// TestReplicatorJitterBounds pins the staleness contract: every
// jittered delay is in (interval×(1−jitter), interval] — early only,
// never late — and the delays actually spread (no thundering herd).
func TestReplicatorJitterBounds(t *testing.T) {
	rep, err := NewReplicator("http://leader", time.Second, func(PriceSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetJitter(0.5); err != nil {
		t.Fatal(err)
	}
	lo, hi := time.Second, time.Duration(0)
	for i := 0; i < 1000; i++ {
		d := rep.jitteredDelay()
		if d > time.Second {
			t.Fatalf("jittered delay %v exceeds the interval — staleness contract broken", d)
		}
		if d <= 500*time.Millisecond {
			t.Fatalf("jittered delay %v below interval×(1−jitter)", d)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	// 1000 uniform draws over a 500ms window: the observed range covers
	// most of it with overwhelming probability.
	if spread := hi - lo; spread < 250*time.Millisecond {
		t.Fatalf("1000 jittered delays spread only %v — pulls would still herd", spread)
	}
}

func TestReplicatorJitterDisabled(t *testing.T) {
	rep, err := NewReplicator("http://leader", time.Second, func(PriceSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetJitter(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d := rep.jitteredDelay(); d != time.Second {
			t.Fatalf("jitter 0 produced delay %v, want exactly the interval", d)
		}
	}
}

func TestSetJitterValidation(t *testing.T) {
	rep, err := NewReplicator("http://leader", time.Second, func(PriceSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetJitter(-0.1); err == nil {
		t.Fatal("negative jitter accepted")
	}
	if err := rep.SetJitter(1); err == nil {
		t.Fatal("jitter 1 accepted (a full-interval stagger can collapse two pulls)")
	}
}
