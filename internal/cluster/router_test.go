package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"tdp/internal/ingest"
	"tdp/internal/obs"
	"tdp/internal/wire"
)

var routerClasses = []string{"web", "ftp", "video"}

// memNode is an in-process stand-in for a clustered tube server: it
// enforces ownership against its own ring view and accounts admitted
// reports exactly once — the same admission contract the HTTP handler
// implements, minus the transport.
type memNode struct {
	id   string
	eng  *ingest.Engine
	ring atomic.Pointer[Ring]

	mu  sync.Mutex
	dec *wire.Decoder
}

// memSender routes wire bodies to memNodes. It implements RingFetcher,
// so a stale router self-heals from the acks' ring versions.
type memSender struct {
	nodes map[string]*memNode
}

func (s *memSender) SendWire(_ context.Context, node Member, body []byte) (WireAck, error) {
	n, ok := s.nodes[node.ID]
	if !ok {
		return WireAck{}, fmt.Errorf("no such node %q", node.ID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var reports []ingest.Report
	for len(body) > 0 {
		var consumed int
		var err error
		reports, consumed, err = n.dec.Decode(body, reports)
		if err != nil {
			return WireAck{}, err
		}
		body = body[consumed:]
	}
	ring := n.ring.Load()
	owned := make([]ingest.Report, 0, len(reports))
	var rejected []int
	for i := range reports {
		if ring.Owns(n.id, reports[i].User) {
			owned = append(owned, reports[i])
		} else {
			rejected = append(rejected, i)
		}
	}
	if err := n.eng.RecordBatchAdmitted(owned); err != nil {
		return WireAck{}, err
	}
	return WireAck{Accepted: len(owned), Rejected: rejected, RingVersion: ring.Version()}, nil
}

func (s *memSender) FetchRing(_ context.Context, node Member) (Config, error) {
	n, ok := s.nodes[node.ID]
	if !ok {
		return Config{}, fmt.Errorf("no such node %q", node.ID)
	}
	return n.ring.Load().Config(), nil
}

func newMemNode(t testing.TB, id string, ring *Ring, tab *wire.ClassTable) *memNode {
	t.Helper()
	eng, err := ingest.NewEngine(routerClasses, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := &memNode{id: id, eng: eng, dec: wire.NewDecoder(tab)}
	n.ring.Store(ring)
	return n
}

// routerReports builds a deterministic shuffled stream of dyadic-volume
// reports — sums of multiples of 0.5 are exact in float64, so totals
// must match BIT-identically across any delivery split.
func routerReports(users, perUser int) []ingest.Report {
	var reps []ingest.Report
	for u := 0; u < users; u++ {
		for k := 0; k < perUser; k++ {
			reps = append(reps, ingest.Report{
				User:     fmt.Sprintf("u%05d", u),
				Class:    routerClasses[(u+k)%len(routerClasses)],
				VolumeMB: 1 + 0.5*float64((u*perUser+k)%4),
			})
		}
	}
	rng := rand.New(rand.NewPCG(42, 7))
	rng.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
	return reps
}

// TestRouterExactlyOnceProperty: at 1, 3 and 5 nodes, every report
// lands on exactly one owner and the cluster-wide totals are
// bit-identical to a single-node engine fed the same stream.
func TestRouterExactlyOnceProperty(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	reps := routerReports(400, 6)
	ref, err := ingest.NewEngine(routerClasses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RecordBatch(append([]ingest.Report(nil), reps...)); err != nil {
		t.Fatal(err)
	}
	refClass := ref.ClassTotals()
	refUser := ref.UserTotals()

	for _, nNodes := range []int{1, 3, 5} {
		t.Run(fmt.Sprintf("nodes=%d", nNodes), func(t *testing.T) {
			ring, err := Build(Config{Version: 1, Members: testMembers(nNodes)})
			if err != nil {
				t.Fatal(err)
			}
			sender := &memSender{nodes: make(map[string]*memNode)}
			for _, m := range ring.Members() {
				sender.nodes[m.ID] = newMemNode(t, m.ID, ring, tab)
			}
			rt, err := NewRouter(tab, ring, sender)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			var delivered int
			for lo := 0; lo < len(reps); lo += 64 {
				hi := min(lo+64, len(reps))
				stats, err := rt.Send(ctx, reps[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				if stats.Rerouted != 0 || stats.Rounds != 1 {
					t.Fatalf("stable ring rerouted %d in %d rounds", stats.Rerouted, stats.Rounds)
				}
				delivered += stats.Reports
			}
			if delivered != len(reps) {
				t.Fatalf("delivered %d of %d", delivered, len(reps))
			}
			// Cluster-wide class totals must match the single engine
			// bit-for-bit.
			sum := make([]float64, len(routerClasses))
			for _, n := range sender.nodes {
				for j, v := range n.eng.ClassTotals() {
					sum[j] += v
				}
			}
			for j := range sum {
				//lint:allow floateq dyadic sums are exact; bit-identity is the property under test
				if sum[j] != refClass[j] {
					t.Fatalf("class %d: cluster total %v, single-node %v", j, sum[j], refClass[j])
				}
			}
			// Exactly one owner per user, holding exactly the reference
			// total.
			for user, want := range refUser {
				holders := 0
				for _, n := range sender.nodes {
					if got, ok := n.eng.UserTotals()[user]; ok {
						holders++
						//lint:allow floateq dyadic sums are exact
						if got != want {
							t.Fatalf("user %s: node total %v, want %v", user, got, want)
						}
					}
				}
				if holders != 1 {
					t.Fatalf("user %s accounted on %d nodes, want exactly 1", user, holders)
				}
			}
		})
	}
}

// TestRouterRebalanceExactlyOnce drives a join with a STALE router (the
// nodes learn the new ring first): rejected reports must be rerouted —
// after a ring refetch — to the joining node, with nothing lost or
// double-counted.
func TestRouterRebalanceExactlyOnce(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	reps := routerReports(300, 4)
	half := len(reps) / 2

	ringV1, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	ringV2, err := Build(Config{Version: 2, Members: testMembers(4)})
	if err != nil {
		t.Fatal(err)
	}
	sender := &memSender{nodes: make(map[string]*memNode)}
	for _, m := range ringV1.Members() {
		sender.nodes[m.ID] = newMemNode(t, m.ID, ringV1, tab)
	}
	rt, err := NewRouter(tab, ringV1, sender)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rt.Send(ctx, reps[:half]); err != nil {
		t.Fatal(err)
	}

	// Join: n3 comes up on v2, existing nodes move to v2 — but the
	// router keeps its v1 view, simulating the control-plane update
	// racing the data path.
	sender.nodes["n3"] = newMemNode(t, "n3", ringV2, tab)
	for _, m := range ringV1.Members() {
		sender.nodes[m.ID].ring.Store(ringV2)
	}

	var rerouted int
	for lo := half; lo < len(reps); lo += 64 {
		hi := min(lo+64, len(reps))
		stats, err := rt.Send(ctx, reps[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		rerouted += stats.Rerouted
	}
	if rerouted == 0 {
		t.Fatal("stale-router join produced no reroutes — the rebalance path was not exercised")
	}
	if rt.Ring().Version() != 2 {
		t.Fatalf("router still on ring v%d after reroutes, want self-healed to 2", rt.Ring().Version())
	}

	// Conservation + exactly-once across the rebalance.
	ref, err := ingest.NewEngine(routerClasses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RecordBatch(append([]ingest.Report(nil), reps...)); err != nil {
		t.Fatal(err)
	}
	refClass := ref.ClassTotals()
	sum := make([]float64, len(routerClasses))
	var accepted int64
	for _, n := range sender.nodes {
		for j, v := range n.eng.ClassTotals() {
			sum[j] += v
		}
		accepted += n.eng.Accepted()
	}
	if accepted != int64(len(reps)) {
		t.Fatalf("cluster accounted %d reports, sent %d", accepted, len(reps))
	}
	for j := range sum {
		//lint:allow floateq dyadic sums are exact; bit-identity is the property under test
		if sum[j] != refClass[j] {
			t.Fatalf("class %d: cluster total %v, single-node %v", j, sum[j], refClass[j])
		}
	}
	if n3 := sender.nodes["n3"].eng.Accepted(); n3 == 0 {
		t.Fatal("joining node accounted nothing")
	}
}

// TestRouterLeaveExactlyOnce removes a member: its keys must flow to
// the survivors with nothing lost.
func TestRouterLeaveExactlyOnce(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	reps := routerReports(200, 4)
	half := len(reps) / 2
	ringV1, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	// v2 removes n1.
	ringV2, err := Build(Config{Version: 2, Members: []Member{
		testMembers(3)[0], testMembers(3)[2],
	}})
	if err != nil {
		t.Fatal(err)
	}
	sender := &memSender{nodes: make(map[string]*memNode)}
	for _, m := range ringV1.Members() {
		sender.nodes[m.ID] = newMemNode(t, m.ID, ringV1, tab)
	}
	rt, err := NewRouter(tab, ringV1, sender)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rt.Send(ctx, reps[:half]); err != nil {
		t.Fatal(err)
	}
	beforeLeave := sender.nodes["n1"].eng.Accepted()

	// Decommission n1: every view moves to v2 (n1 keeps serving reads
	// for the drain, but owns nothing).
	for _, n := range sender.nodes {
		n.ring.Store(ringV2)
	}
	rt.UpdateRing(ringV2)
	if _, err := rt.Send(ctx, reps[half:]); err != nil {
		t.Fatal(err)
	}
	if got := sender.nodes["n1"].eng.Accepted(); got != beforeLeave {
		t.Fatalf("decommissioned node accepted %d new reports", got-beforeLeave)
	}
	var accepted int64
	for _, n := range sender.nodes {
		accepted += n.eng.Accepted()
	}
	if accepted != int64(len(reps)) {
		t.Fatalf("cluster accounted %d reports, sent %d", accepted, len(reps))
	}
}

// errSender rejects everything, never updating its story: the router
// must give up with ErrRouting instead of spinning.
type errSender struct{ ring *Ring }

func (s *errSender) SendWire(_ context.Context, _ Member, body []byte) (WireAck, error) {
	tab, _ := wire.NewClassTable(routerClasses)
	dec := wire.NewDecoder(tab)
	reps, _, err := dec.Decode(body, nil)
	if err != nil {
		return WireAck{}, err
	}
	rej := make([]int, len(reps))
	for i := range rej {
		rej[i] = i
	}
	return WireAck{Accepted: 0, Rejected: rej, RingVersion: s.ring.Version()}, nil
}

func TestRouterGivesUpAfterMaxRounds(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build(Config{Version: 1, Members: testMembers(2)})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(tab, ring, &errSender{ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	rt.Instrument(obs.NewRegistry())
	_, err = rt.Send(context.Background(), routerReports(10, 1))
	if !errors.Is(err, ErrRouting) {
		t.Fatalf("endless rejection: %v, want ErrRouting", err)
	}
}
