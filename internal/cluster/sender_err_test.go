package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHTTPSenderStatusErrorsWrapSentinel pins the transport half of the
// cluster error contract: a peer answering with a non-success status is
// classified under ErrUnavailable, so the router (and operators' retry
// logic) dispatch on errors.Is rather than status-string matching.
func TestHTTPSenderStatusErrorsWrapSentinel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	s := &HTTPSender{}
	node := Member{ID: "n1", Addr: srv.URL}
	ctx := context.Background()

	if _, err := s.SendWire(ctx, node, []byte("body")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("SendWire on 503: %v, want cluster.ErrUnavailable", err)
	}
	if _, err := s.FetchRing(ctx, node); !errors.Is(err, ErrUnavailable) {
		t.Errorf("FetchRing on 503: %v, want cluster.ErrUnavailable", err)
	}
}
