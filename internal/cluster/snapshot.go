package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"tdp/internal/rrd"
)

// ErrBadSnapshot is returned for malformed or corrupt price snapshots.
var ErrBadSnapshot = errors.New("cluster: bad snapshot")

// snapshotVersion is the serialization format version.
const snapshotVersion = 1

// PriceSnapshot is the replicated price plane: everything a follower
// needs to serve GET /price for the period in progress. The leader (the
// node running the optimizer control loop) produces one per period
// close; followers pull it over GET /cluster/snapshot and serve prices
// from their copy, so the whole cluster publishes one schedule while
// only one node solves for it.
type PriceSnapshot struct {
	Format  int `json:"format"` // serialization version (snapshotVersion)
	Period  int `json:"period"` // period index in progress at the leader
	Rewards []float64 `json:"rewards"`
	// RingVersion is the leader's ring view when the snapshot was cut —
	// a follower on a newer ring knows the schedule predates the move.
	RingVersion uint64 `json:"ringVersion,omitempty"`
	// TakenUnixNano timestamps the cut; replication staleness (healthz,
	// metrics) is measured against it.
	TakenUnixNano int64 `json:"takenUnixNano"`
}

// NewPriceSnapshot stamps a snapshot of the current price plane: the
// period in progress, its reward schedule, and the leader's ring view.
func NewPriceSnapshot(period int, rewards []float64, ringVersion uint64) PriceSnapshot {
	return PriceSnapshot{
		Format:        snapshotVersion,
		Period:        period,
		Rewards:       append([]float64(nil), rewards...),
		RingVersion:   ringVersion,
		TakenUnixNano: time.Now().UnixNano(),
	}
}

// Validate rejects snapshots that could not have come from a healthy
// leader.
func (s *PriceSnapshot) Validate() error {
	if s.Format != snapshotVersion {
		return fmt.Errorf("%w: format %d, want %d", ErrBadSnapshot, s.Format, snapshotVersion)
	}
	if s.Period < 0 {
		return fmt.Errorf("%w: negative period %d", ErrBadSnapshot, s.Period)
	}
	if len(s.Rewards) == 0 {
		return fmt.Errorf("%w: empty reward schedule", ErrBadSnapshot)
	}
	for i, r := range s.Rewards {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w: reward %d is %v", ErrBadSnapshot, i, r)
		}
	}
	return nil
}

// Encode writes the snapshot.
func (s *PriceSnapshot) Encode(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads and validates one snapshot.
func DecodeSnapshot(r io.Reader) (PriceSnapshot, error) {
	var s PriceSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return PriceSnapshot{}, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := s.Validate(); err != nil {
		return PriceSnapshot{}, err
	}
	return s, nil
}

// SaveSnapshotFile persists a snapshot crash-safely through the same
// atomic write-temp+fsync+rename machinery the RRD histories use
// (rrd.AtomicWriteFile): a node restarting mid-replication finds either
// the previous complete snapshot or the new complete one, never a torn
// file.
func SaveSnapshotFile(path string, s PriceSnapshot) error {
	return rrd.AtomicWriteFile(path, s.Encode)
}

// LoadSnapshotFile reads back a snapshot written by SaveSnapshotFile,
// rejecting truncated or corrupt files with ErrBadSnapshot.
func LoadSnapshotFile(path string) (PriceSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return PriceSnapshot{}, fmt.Errorf("cluster: load %s: %w", path, err)
	}
	defer f.Close()
	s, err := DecodeSnapshot(f)
	if err != nil {
		return PriceSnapshot{}, fmt.Errorf("cluster: load %s: %w", path, err)
	}
	return s, nil
}
