// Replication fan-out tree: who pulls price snapshots from whom.
//
// With N followers all pulling from the leader, the leader serves N
// snapshot requests per interval — fine at 3 nodes, a thundering herd
// at 3000. Followers already re-serve GET /cluster/snapshot from their
// applied copy (see Replicator), so the pulls can fan out as a tree:
// the leader feeds `fanout` followers, each of those feeds `fanout`
// more, and the leader's load drops from O(N) to O(fanout) while depth
// — and therefore worst-case staleness — grows only as log_fanout(N)
// intervals.
//
// The tree is DERIVED, not coordinated: every node computes its own
// parent from the current ring membership with TreeParent, so there is
// no tree state to replicate and no repair protocol. A membership
// change reshapes the tree on every node at its next pull (Replicator
// re-resolves its source each time), and a dead parent is routed
// around by the Replicator's leader fallback after two failed pulls —
// self-healing by recomputation rather than by repair messages.
package cluster

import "sort"

// TreeParent returns the member that selfID should pull snapshots from
// in a fan-out tree rooted at leaderID, derived from the ring's current
// membership. The followers are ordered by ID (deterministic on every
// node regardless of config order) and laid out as a complete
// fanout-ary heap with the leader at the root:
//
//	position 0          leader
//	positions 1..fanout leader's children (pull from the leader)
//	position p > 0      pulls from position (p-1)/fanout
//
// ok is false when selfID is the leader, selfID or leaderID is not in
// the ring, or fanout < 1 — callers fall back to pulling from the
// leader directly.
func TreeParent(ring *Ring, leaderID, selfID string, fanout int) (Member, bool) {
	if ring == nil || fanout < 1 || selfID == leaderID {
		return Member{}, false
	}
	leader, ok := ring.Member(leaderID)
	if !ok {
		return Member{}, false
	}
	if _, ok := ring.Member(selfID); !ok {
		return Member{}, false
	}
	// Followers sorted by ID: position p = sorted index + 1 (leader is 0).
	ids := make([]string, 0, len(ring.members))
	for i := range ring.members {
		if ring.members[i].ID != leaderID {
			ids = append(ids, ring.members[i].ID)
		}
	}
	sort.Strings(ids)
	p := 0
	for i, id := range ids {
		if id == selfID {
			p = i + 1
			break
		}
	}
	parent := (p - 1) / fanout
	if parent == 0 {
		return leader, true
	}
	m, ok := ring.Member(ids[parent-1])
	return m, ok
}
