// Package cluster is the horizontal-scale serving plane for TUBE: a
// consistent-hash ring assigning user keys to nodes, a Router client
// that batches usage reports per owner and fans them out in the binary
// wire format, bounded-queue load shedding for overloaded nodes, and
// snapshot-based replication of the price plane.
//
// The paper's prototype is one server fronting a testbed (§VI); the
// ROADMAP's next factor of 100 needs several tube.Server nodes owning
// disjoint user ranges. The design mirrors the in-process sharding one
// level up: ingest hashes a user to a lock stripe with FNV-1a, the ring
// hashes the same user with the same FNV-1a to a node, so a user's
// reports always land on one shard of one node and per-user
// accumulation order survives the distribution.
//
// Membership is static-with-versions rather than gossiped: a ring
// Config carries a monotonically increasing version, the operator (or
// the load harness) pushes it to every node, and nodes enforce
// ownership per their current view — a misrouted report is rejected
// with a redirect hint, never silently accepted, so a rebalance can
// only delay a report, not double- or zero-count it.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"tdp/internal/ingest"
)

// ErrBadConfig is returned for invalid ring configurations.
var ErrBadConfig = errors.New("cluster: bad config")

// DefaultVNodes is the virtual-node count per member when a Config
// leaves it zero: enough points that a 3–5 node ring balances within a
// few percent, few enough that Build stays trivially cheap.
const DefaultVNodes = 64

// Member is one serving node: a stable ID (the hash identity — moving a
// node to a new address must not move its users) and its base URL.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Config is the serialized ring: what PUT /cluster/ring carries between
// nodes and what Build consumes.
type Config struct {
	Version uint64   `json:"version"`
	VNodes  int      `json:"vnodes,omitempty"`
	Members []Member `json:"members"`
}

// mix32 is a finalizing bit mixer (lowbias32). FNV-1a's high bits
// avalanche poorly on short inputs like "n1#17", leaving whole arcs of
// the circle empty of virtual points; mixing the VNODE hashes (never
// the user-key hashes, which must keep matching ingest's shard mapping)
// restores uniform point placement.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// point is one virtual node on the 32-bit circle.
type point struct {
	h      uint32
	member int32
}

// Ring is an immutable consistent-hash ring; rebuild (Build) and swap
// to change membership. Lookups are lock-free.
type Ring struct {
	version uint64
	vnodes  int
	members []Member
	byID    map[string]int
	points  []point
}

// Build constructs a ring from a config. Each member contributes
// cfg.VNodes virtual points at FNV-1a("id#i"); a user key is owned by
// the member of the first point clockwise of ingest.UserHash(user).
func Build(cfg Config) (*Ring, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("%w: no members", ErrBadConfig)
	}
	vn := cfg.VNodes
	if vn == 0 {
		vn = DefaultVNodes
	}
	if vn < 1 || vn > 4096 {
		return nil, fmt.Errorf("%w: vnodes %d out of range [1, 4096]", ErrBadConfig, vn)
	}
	r := &Ring{
		version: cfg.Version,
		vnodes:  vn,
		members: append([]Member(nil), cfg.Members...),
		byID:    make(map[string]int, len(cfg.Members)),
		points:  make([]point, 0, vn*len(cfg.Members)),
	}
	for i, m := range r.members {
		if m.ID == "" {
			return nil, fmt.Errorf("%w: member %d has empty ID", ErrBadConfig, i)
		}
		if _, dup := r.byID[m.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate member ID %q", ErrBadConfig, m.ID)
		}
		r.byID[m.ID] = i
		for v := 0; v < vn; v++ {
			h := mix32(ingest.UserHash(m.ID + "#" + strconv.Itoa(v)))
			r.points = append(r.points, point{h: h, member: int32(i)})
		}
	}
	// Sort by hash; ties broken by member ID so a hash collision between
	// two members' virtual points resolves identically on every node.
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.h != pb.h {
			return pa.h < pb.h
		}
		return r.members[pa.member].ID < r.members[pb.member].ID
	})
	return r, nil
}

// Version returns the config version the ring was built from.
func (r *Ring) Version() uint64 { return r.version }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Members returns the ring membership in config order.
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Member resolves a member by ID.
func (r *Ring) Member(id string) (Member, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Member{}, false
	}
	return r.members[i], true
}

// Config serializes the ring back to its wire form.
func (r *Ring) Config() Config {
	return Config{Version: r.version, VNodes: r.vnodes, Members: r.Members()}
}

// ownerIdx finds the member index owning hash h: the first point at or
// clockwise of h, wrapping past the top of the circle.
func (r *Ring) ownerIdx(h uint32) int32 {
	pts := r.points
	// Binary search for the first point with point.h >= h.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0 // wrap
	}
	return pts[lo].member
}

// Owner returns the member owning a user key. Placement uses the exact
// FNV-1a hash ingest uses for its shard mapping.
func (r *Ring) Owner(user string) Member {
	return r.members[r.ownerIdx(ingest.UserHash(user))]
}

// OwnerID returns the owning member's ID.
func (r *Ring) OwnerID(user string) string {
	return r.members[r.ownerIdx(ingest.UserHash(user))].ID
}

// Owns reports whether member id owns the user key.
func (r *Ring) Owns(id, user string) bool {
	i, ok := r.byID[id]
	return ok && int32(i) == r.ownerIdx(ingest.UserHash(user))
}

// OwnsHash reports whether member id owns a user key given its
// precomputed ingest.UserHash — the zero-copy admission path checks
// ownership once per frame user-table entry with the decoder's cached
// hashes instead of re-hashing every record's user string.
func (r *Ring) OwnsHash(id string, h uint32) bool {
	i, ok := r.byID[id]
	return ok && int32(i) == r.ownerIdx(h)
}

// OwnerIndex returns the member index (into Members() order) owning a
// user key. The Router uses it to partition a batch with per-owner
// index chains instead of a map of slices.
func (r *Ring) OwnerIndex(user string) int {
	return int(r.ownerIdx(ingest.UserHash(user)))
}

// Range is one owned arc of the hash circle: keys hashing into
// (Start, End] belong to the range's owner. A wrapping arc is reported
// as End < Start.
type Range struct {
	Start uint32 `json:"start"` // exclusive
	End   uint32 `json:"end"`   // inclusive
}

// OwnedRanges returns the arcs of the circle owned by member id,
// merged where consecutive points share the owner. Used by the healthz
// probe so an operator (or a test) can see exactly which key space a
// node answers for.
func (r *Ring) OwnedRanges(id string) []Range {
	i, ok := r.byID[id]
	if !ok {
		return nil
	}
	want := int32(i)
	var out []Range
	n := len(r.points)
	for j := 0; j < n; j++ {
		if r.points[j].member != want {
			continue
		}
		// The arc owned by point j starts after the previous point.
		prev := r.points[(j-1+n)%n].h
		// Extend through consecutive points with the same owner.
		k := j
		for k+1 < n && r.points[k+1].member == want {
			k++
		}
		out = append(out, Range{Start: prev, End: r.points[k].h})
		j = k
	}
	// A single-member ring owns everything; normalize to one full arc.
	if len(out) == 1 && out[0].Start == out[0].End {
		return []Range{{Start: 0, End: ^uint32(0)}}
	}
	return out
}

// OwnedFraction returns the fraction of the hash circle member id owns
// (≈ its share of users under a uniform key distribution).
func (r *Ring) OwnedFraction(id string) float64 {
	var owned uint64
	for _, rg := range r.OwnedRanges(id) {
		if rg.End >= rg.Start {
			owned += uint64(rg.End - rg.Start)
		} else { // wrapping arc
			owned += uint64(rg.End) + (1<<32 - uint64(rg.Start))
		}
	}
	return float64(owned) / float64(uint64(1)<<32)
}
