package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tdp/internal/ingest"
	"tdp/internal/obs"
)

var queueClasses = []string{"web", "ftp", "video"}

func qBatch(user string, class string, n int) []ingest.Report {
	b := make([]ingest.Report, n)
	for i := range b {
		b[i] = ingest.Report{User: user, Class: class, VolumeMB: 1}
	}
	return b
}

func TestShedQueueValidation(t *testing.T) {
	if _, err := NewShedQueue(queueClasses, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("depth 0: %v, want ErrBadConfig", err)
	}
	if _, err := NewShedQueue(nil, 4); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("no classes: %v, want ErrBadConfig", err)
	}
}

func TestShedQueueFIFOAndDrain(t *testing.T) {
	q, err := NewShedQueue(queueClasses, 16)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var applied []string
	q.Start(func(b Batch) {
		mu.Lock()
		applied = append(applied, b.Reports[0].User)
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		if shed := q.Push(qBatch(fmt.Sprintf("u%02d", i), "web", 3)); shed != 0 {
			t.Fatalf("push %d shed %d reports below capacity", i, shed)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(applied) != 10 {
		t.Fatalf("applied %d batches, want 10", len(applied))
	}
	for i, u := range applied {
		if want := fmt.Sprintf("u%02d", i); u != want {
			t.Fatalf("batch %d applied out of order: %s, want %s", i, u, want)
		}
	}
	total, _ := q.ShedTotals()
	if total != 0 {
		t.Fatalf("shed %d reports in an underloaded run", total)
	}
	q.Close()
}

func TestShedOldest(t *testing.T) {
	q, err := NewShedQueue(queueClasses, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No worker started: pushes pile up and the third must shed the first.
	if shed := q.Push(qBatch("old", "web", 5)); shed != 0 {
		t.Fatalf("first push shed %d", shed)
	}
	if shed := q.Push(qBatch("mid", "ftp", 3)); shed != 0 {
		t.Fatalf("second push shed %d", shed)
	}
	if shed := q.Push(qBatch("new", "video", 2)); shed != 5 {
		t.Fatalf("overflow push shed %d reports, want the oldest batch's 5", shed)
	}
	total, byClass := q.ShedTotals()
	if total != 5 || byClass[0] != 5 || byClass[1] != 0 || byClass[2] != 0 {
		t.Fatalf("shed accounting: total %d, byClass %v", total, byClass)
	}
	if q.Depth() != 2 || q.QueuedReports() != 5 {
		t.Fatalf("queue holds %d batches / %d reports, want 2 / 5", q.Depth(), q.QueuedReports())
	}
	// The survivors drain in order: mid then new.
	var mu sync.Mutex
	var order []string
	q.Start(func(b Batch) {
		mu.Lock()
		order = append(order, b.Reports[0].User)
		mu.Unlock()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "mid" || order[1] != "new" {
		t.Fatalf("drained %v, want [mid new]", order)
	}
}

func TestShedQueueInstrument(t *testing.T) {
	q, err := NewShedQueue(queueClasses, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Push(qBatch("a", "ftp", 4))
	q.Push(qBatch("b", "web", 1)) // sheds the ftp batch pre-instrumentation
	reg := obs.NewRegistry()
	q.Instrument(reg, queueClasses)
	q.Push(qBatch("c", "web", 1)) // sheds the web batch post-instrumentation
	if got := reg.Counter("cluster_shed_reports_total", "", obs.Labels{"class": "ftp"}).Value(); got != 4 {
		t.Fatalf("ftp shed counter %d, want 4 (back-filled)", got)
	}
	if got := reg.Counter("cluster_shed_reports_total", "", obs.Labels{"class": "web"}).Value(); got != 1 {
		t.Fatalf("web shed counter %d, want 1", got)
	}
}

func TestShedQueueCloseShedsLatePushes(t *testing.T) {
	q, err := NewShedQueue(queueClasses, 4)
	if err != nil {
		t.Fatal(err)
	}
	q.Start(func(Batch) {})
	q.Close()
	if shed := q.Push(qBatch("late", "web", 3)); shed != 3 {
		t.Fatalf("push after close shed %d, want 3", shed)
	}
}

func TestShedQueueConcurrentPush(t *testing.T) {
	q, err := NewShedQueue(queueClasses, 64)
	if err != nil {
		t.Fatal(err)
	}
	applied := obs.NewFloatAdder()
	q.Start(func(b Batch) {
		for range b.Reports {
			applied.Add(1)
		}
	})
	var wg sync.WaitGroup
	shedTotal := obs.NewFloatAdder()
	const workers, pushes, per = 8, 50, 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				shed := q.Push(qBatch(fmt.Sprintf("w%d-%d", w, i), queueClasses[i%3], per))
				shedTotal.Add(float64(shed))
			}
		}(w)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// Conservation: everything pushed was either applied or shed.
	want := float64(workers * pushes * per)
	counted, _ := q.ShedTotals()
	//lint:allow floateq integral counts below 2^53 are exact
	if applied.Value()+float64(counted) != want {
		t.Fatalf("applied %.0f + shed %d != pushed %.0f", applied.Value(), counted, want)
	}
	//lint:allow floateq integral counts below 2^53 are exact
	if shedTotal.Value() != float64(counted) {
		t.Fatalf("Push-returned sheds %.0f, counters say %d", shedTotal.Value(), counted)
	}
}
