package cluster

import (
	"errors"
	"fmt"
	"testing"

	"tdp/internal/ingest"
)

func testMembers(n int) []Member {
	m := make([]Member, n)
	for i := range m {
		m[i] = Member{ID: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return m
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("u%06d", i)
	}
	return keys
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Version: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty members: %v, want ErrBadConfig", err)
	}
	if _, err := Build(Config{Version: 1, Members: []Member{{ID: ""}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty ID: %v, want ErrBadConfig", err)
	}
	if _, err := Build(Config{Version: 1, Members: []Member{{ID: "a"}, {ID: "a"}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate ID: %v, want ErrBadConfig", err)
	}
	if _, err := Build(Config{Version: 1, VNodes: 1 << 20, Members: testMembers(2)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("huge vnodes: %v, want ErrBadConfig", err)
	}
}

func TestOwnerDeterministic(t *testing.T) {
	cfg := Config{Version: 3, Members: testMembers(5)}
	r1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		if r1.OwnerID(k) != r2.OwnerID(k) {
			t.Fatalf("key %q owned by %s and %s from identical configs", k, r1.OwnerID(k), r2.OwnerID(k))
		}
	}
}

func TestPlacementMatchesIngestHash(t *testing.T) {
	// The ring and the ingest shard mapping must hash a user the same
	// way: one user → one shard of one node under every topology.
	r, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		if got := r.members[r.ownerIdx(ingest.UserHash(k))].ID; got != r.OwnerID(k) {
			t.Fatalf("key %q: Owner path disagrees with UserHash path (%s vs %s)", k, r.OwnerID(k), got)
		}
	}
}

func TestBalance(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		r, err := Build(Config{Version: 1, Members: testMembers(n)})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		keys := testKeys(30000)
		for _, k := range keys {
			counts[r.OwnerID(k)]++
		}
		var fracSum float64
		for _, m := range r.Members() {
			f := r.OwnedFraction(m.ID)
			fracSum += f
			share := float64(counts[m.ID]) / float64(len(keys))
			// 64 vnodes balances to a few percent; allow a wide margin —
			// the test guards against broken placement, not variance.
			if share < 0.4/float64(n) || share > 2.5/float64(n) {
				t.Fatalf("n=%d: member %s owns %.1f%% of keys", n, m.ID, 100*share)
			}
			if f < 0.4/float64(n) || f > 2.5/float64(n) {
				t.Fatalf("n=%d: member %s owns %.1f%% of the circle", n, m.ID, 100*f)
			}
		}
		if fracSum < 0.999 || fracSum > 1.001 {
			t.Fatalf("n=%d: owned fractions sum to %f", n, fracSum)
		}
	}
}

func TestMinimalMovementOnJoin(t *testing.T) {
	// Consistent hashing's defining property: adding a member only moves
	// keys TO the new member, never between old ones.
	old, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Build(Config{Version: 2, Members: testMembers(4)})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	keys := testKeys(20000)
	for _, k := range keys {
		a, b := old.OwnerID(k), grown.OwnerID(k)
		if a != b {
			moved++
			if b != "n3" {
				t.Fatalf("key %q moved %s → %s, not to the joining member", k, a, b)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining member")
	}
	if frac := float64(moved) / float64(len(keys)); frac > 0.5 {
		t.Fatalf("join moved %.0f%% of keys, expected ≈ 1/4", 100*frac)
	}
}

func TestOwnedRangesCoverCircle(t *testing.T) {
	r, err := Build(Config{Version: 1, Members: testMembers(4)})
	if err != nil {
		t.Fatal(err)
	}
	// Every probe hash must fall in exactly one member's owned ranges,
	// and that member must be the Owner lookup's answer.
	inRange := func(h uint32, rg Range) bool {
		if rg.Start == 0 && rg.End == ^uint32(0) {
			return true
		}
		if rg.End >= rg.Start {
			return h > rg.Start && h <= rg.End
		}
		return h > rg.Start || h <= rg.End // wrapping arc
	}
	for _, k := range testKeys(5000) {
		h := ingest.UserHash(k)
		owner := r.OwnerID(k)
		holders := 0
		for _, m := range r.Members() {
			for _, rg := range r.OwnedRanges(m.ID) {
				if inRange(h, rg) {
					holders++
					if m.ID != owner {
						t.Fatalf("key %q (h=%#x) in %s's range but owned by %s", k, h, m.ID, owner)
					}
				}
			}
		}
		if holders != 1 {
			t.Fatalf("key %q (h=%#x) falls in %d ranges, want 1", k, h, holders)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{Version: 7, VNodes: 32, Members: testMembers(3)}
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Config()
	if got.Version != cfg.Version || got.VNodes != cfg.VNodes || len(got.Members) != len(cfg.Members) {
		t.Fatalf("config round trip: %+v", got)
	}
	if _, ok := r.Member("n1"); !ok {
		t.Fatal("Member lookup failed")
	}
	if !r.Owns(r.OwnerID("alice"), "alice") {
		t.Fatal("Owns disagrees with OwnerID")
	}
	if r.Owns("n-missing", "alice") {
		t.Fatal("unknown member owns a key")
	}
}
