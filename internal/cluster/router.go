package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"tdp/internal/ingest"
	"tdp/internal/obs"
	"tdp/internal/wire"
)

// ErrRouting is returned when reports remain undeliverable after the
// router's retry rounds (every candidate owner keeps disowning them).
var ErrRouting = errors.New("cluster: reports undeliverable")

// ErrUnavailable classifies remote-node failures: a peer answered with a
// non-success status (or not at all) on a cluster RPC. Callers decide
// between retry and reroute with errors.Is(err, ErrUnavailable).
var ErrUnavailable = errors.New("cluster: node unavailable")

// WireAck is the response of POST /usage/wire: how many reports the
// node accounted (or admitted to its queue) and which it disowned.
// Rejected indices are in the request's report order, spanning all
// frames in the body. RingVersion is the node's current ring view, so
// a router holding a stale ring learns it is behind and can refetch.
type WireAck struct {
	Accepted    int    `json:"accepted"`
	Rejected    []int  `json:"rejected,omitempty"`
	RingVersion uint64 `json:"ringVersion"`
	// Queued means the batch was admitted to the node's shed queue
	// rather than applied synchronously; Shed counts reports the
	// admission displaced (shed-oldest overload protection).
	Queued bool `json:"queued,omitempty"`
	Shed   int  `json:"shed,omitempty"`
}

// Sender delivers one encoded wire body to a node. Implementations:
// HTTPSender for real deployments, in-process fakes for the property
// tests.
type Sender interface {
	SendWire(ctx context.Context, node Member, body []byte) (WireAck, error)
}

// RingFetcher is an optional Sender capability: fetch a node's current
// ring config, used to self-heal a router whose ring is older than the
// cluster's (the acks carry the node's version).
type RingFetcher interface {
	FetchRing(ctx context.Context, node Member) (Config, error)
}

// WireContentType is the media type of wire-framed request bodies.
const WireContentType = "application/x-tube-wire"

// HTTPSender posts wire bodies to node.Addr + /usage/wire.
type HTTPSender struct {
	Client *http.Client
}

func (s *HTTPSender) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// SendWire implements Sender over HTTP. Any 2xx with a parseable ack is
// a protocol-level success (the ack may still reject reports).
func (s *HTTPSender) SendWire(ctx context.Context, node Member, body []byte) (WireAck, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.Addr+"/usage/wire",
		bytes.NewReader(body))
	if err != nil {
		return WireAck{}, fmt.Errorf("build request for %s: %w", node.ID, err)
	}
	req.Header.Set("Content-Type", WireContentType)
	resp, err := s.client().Do(req)
	if err != nil {
		return WireAck{}, fmt.Errorf("send wire to %s: %w", node.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return WireAck{}, fmt.Errorf("%w: send wire to %s: status %d: %s", ErrUnavailable, node.ID, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var ack WireAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return WireAck{}, fmt.Errorf("decode ack from %s: %w", node.ID, err)
	}
	return ack, nil
}

// FetchRing implements RingFetcher over GET /cluster/ring.
func (s *HTTPSender) FetchRing(ctx context.Context, node Member) (Config, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.Addr+"/cluster/ring", nil)
	if err != nil {
		return Config{}, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return Config{}, fmt.Errorf("fetch ring from %s: %w", node.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Config{}, fmt.Errorf("%w: fetch ring from %s: status %d", ErrUnavailable, node.ID, resp.StatusCode)
	}
	var cfg Config
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("decode ring from %s: %w", node.ID, err)
	}
	return cfg, nil
}

// RouteStats summarizes one Send: how many reports went where and how
// much ownership churn the rounds absorbed.
type RouteStats struct {
	Reports  int            // reports delivered
	Rerouted int            // reports resent after an ownership rejection
	Rounds   int            // partition→fan-out rounds taken
	Shed     int            // reports the receiving nodes shed on admission
	PerNode  map[string]int // accepted (or queued) reports per node ID
}

// routerMetrics is the optional obs hookup.
type routerMetrics struct {
	reports  *obs.Counter
	batches  *obs.Counter
	rerouted *obs.Counter
	rounds   *obs.Histogram
}

// Router is the cluster-aware ingest client: it partitions a batch by
// ring owner, encodes one wire body per owner, fans out, and resends
// anything a node disowns (rebalance in flight) to the new owner.
// Safe for concurrent Send calls.
type Router struct {
	tab       *wire.ClassTable
	sender    Sender
	ring      atomic.Pointer[Ring]
	maxRounds int
	encPool   sync.Pool // *wire.Encoder
	met       atomic.Pointer[routerMetrics]
}

// NewRouter builds a router over a class table, an initial ring, and a
// sender.
func NewRouter(tab *wire.ClassTable, ring *Ring, sender Sender) (*Router, error) {
	if tab == nil || ring == nil || sender == nil {
		return nil, fmt.Errorf("%w: router needs table, ring and sender", ErrBadConfig)
	}
	rt := &Router{tab: tab, sender: sender, maxRounds: 8}
	rt.ring.Store(ring)
	return rt, nil
}

// Ring returns the router's current ring view.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// UpdateRing swaps the ring view if cfg is strictly newer; it returns
// whether the swap happened.
func (rt *Router) UpdateRing(ring *Ring) bool {
	for {
		cur := rt.ring.Load()
		if ring.Version() <= cur.Version() {
			return false
		}
		if rt.ring.CompareAndSwap(cur, ring) {
			return true
		}
	}
}

// Instrument registers the router's counters on reg.
func (rt *Router) Instrument(reg *obs.Registry) {
	rt.met.Store(&routerMetrics{
		reports:  reg.Counter("cluster_router_reports_total", "usage reports delivered through the router", nil),
		batches:  reg.Counter("cluster_router_batches_total", "wire bodies sent to nodes", nil),
		rerouted: reg.Counter("cluster_router_rerouted_total", "reports resent after an ownership rejection", nil),
		rounds:   reg.Histogram("cluster_router_rounds", "partition→fan-out rounds per Send", nil, obs.ExpBuckets(1, 2, 5)),
	})
}

//tubelint:pooled
func (rt *Router) encoder() *wire.Encoder {
	if v := rt.encPool.Get(); v != nil {
		return v.(*wire.Encoder)
	}
	return wire.NewEncoder(rt.tab)
}

// Send routes every report to its ring owner, retrying disowned
// reports against refreshed ownership for up to maxRounds rounds. On
// success every report was accepted by exactly one node: a node only
// acks reports it owns under its current view and applies them exactly
// once, and the router resends only explicitly rejected indices.
func (rt *Router) Send(ctx context.Context, reports []ingest.Report) (RouteStats, error) {
	stats := RouteStats{PerNode: make(map[string]int)}
	if len(reports) == 0 {
		return stats, nil
	}
	enc := rt.encoder()
	defer rt.encPool.Put(enc)

	pending := reports
	var next []ingest.Report
	for round := 0; len(pending) > 0; round++ {
		if round >= rt.maxRounds {
			return stats, fmt.Errorf("%w: %d reports still disowned after %d rounds",
				ErrRouting, len(pending), round)
		}
		stats.Rounds = round + 1
		ring := rt.ring.Load()
		// Partition by owner, preserving submission order per owner (a
		// user's reports keep their relative order: one user → one owner).
		byOwner := make(map[string][]ingest.Report)
		for i := range pending {
			id := ring.OwnerID(pending[i].User)
			byOwner[id] = append(byOwner[id], pending[i])
		}
		next = next[:0]
		var newestSeen uint64
		var newestNode Member
		for id, part := range byOwner {
			node, ok := ring.Member(id)
			if !ok { // cannot happen: OwnerID comes from ring membership
				return stats, fmt.Errorf("%w: owner %q not in ring", ErrRouting, id)
			}
			body, err := enc.Encode(part)
			if err != nil {
				return stats, err
			}
			ack, err := rt.sender.SendWire(ctx, node, body)
			if err != nil {
				return stats, err
			}
			if m := rt.met.Load(); m != nil {
				m.batches.Inc()
			}
			accepted := len(part) - len(ack.Rejected)
			if ack.Accepted != accepted {
				return stats, fmt.Errorf("%w: node %s acked %d of %d with %d rejections",
					ErrRouting, id, ack.Accepted, len(part), len(ack.Rejected))
			}
			stats.PerNode[id] += accepted
			stats.Reports += accepted
			stats.Shed += ack.Shed
			for _, ri := range ack.Rejected {
				if ri < 0 || ri >= len(part) {
					return stats, fmt.Errorf("%w: node %s rejected index %d of %d",
						ErrRouting, id, ri, len(part))
				}
				next = append(next, part[ri])
			}
			if ack.RingVersion > newestSeen {
				newestSeen, newestNode = ack.RingVersion, node
			}
		}
		if len(next) > 0 {
			if m := rt.met.Load(); m != nil {
				m.rerouted.Add(int64(len(next)))
			}
			stats.Rerouted += len(next)
			// If a node is on a newer ring than ours, refetch before the
			// next round — otherwise we would resend to the same owner.
			if newestSeen > ring.Version() {
				if rf, ok := rt.sender.(RingFetcher); ok {
					if cfg, err := rf.FetchRing(ctx, newestNode); err == nil {
						if fresh, err := Build(cfg); err == nil {
							rt.UpdateRing(fresh)
						}
					}
				}
			}
		}
		// Fresh copy for the next round: the partition map holds copies,
		// so nothing aliases next's backing array afterwards.
		pending = append([]ingest.Report(nil), next...)
	}
	if m := rt.met.Load(); m != nil {
		m.reports.Add(int64(stats.Reports))
		m.rounds.Observe(float64(stats.Rounds))
	}
	return stats, nil
}
