package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/ingest"
	"tdp/internal/obs"
	"tdp/internal/wire"
)

// ErrRouting is returned when reports remain undeliverable after the
// router's retry rounds (every candidate owner keeps disowning them).
var ErrRouting = errors.New("cluster: reports undeliverable")

// ErrUnavailable classifies remote-node failures: a peer answered with a
// non-success status (or not at all) on a cluster RPC. Callers decide
// between retry and reroute with errors.Is(err, ErrUnavailable).
var ErrUnavailable = errors.New("cluster: node unavailable")

// WireAck is the response of POST /usage/wire: how many reports the
// node accounted (or admitted to its queue) and which it disowned.
// Rejected indices are in the request's report order, spanning all
// frames in the body. RingVersion is the node's current ring view, so
// a router holding a stale ring learns it is behind and can refetch.
type WireAck struct {
	Accepted    int    `json:"accepted"`
	Rejected    []int  `json:"rejected,omitempty"`
	RingVersion uint64 `json:"ringVersion"`
	// Queued means the batch was admitted to the node's shed queue
	// rather than applied synchronously; Shed counts reports the
	// admission displaced (shed-oldest overload protection).
	Queued bool `json:"queued,omitempty"`
	Shed   int  `json:"shed,omitempty"`
}

// Sender delivers one encoded wire body to a node. Implementations:
// HTTPSender for real deployments, in-process fakes for the property
// tests.
type Sender interface {
	SendWire(ctx context.Context, node Member, body []byte) (WireAck, error)
}

// RingFetcher is an optional Sender capability: fetch a node's current
// ring config, used to self-heal a router whose ring is older than the
// cluster's (the acks carry the node's version).
type RingFetcher interface {
	FetchRing(ctx context.Context, node Member) (Config, error)
}

// WireContentType is the media type of wire-framed request bodies.
const WireContentType = "application/x-tube-wire"

// HTTPSender posts wire bodies to node.Addr + /usage/wire.
type HTTPSender struct {
	Client *http.Client
}

// TunedTransport returns an http.Transport sized for the router's
// fan-in shape: a handful of nodes each receiving many concurrent
// frames on reused keep-alive connections. The defaults cap idle
// connections per host at 2, which makes a pipelined sender reopen a
// TCP connection (and pay slow-start) for nearly every in-flight frame.
func TunedTransport() *http.Transport {
	return &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		ForceAttemptHTTP2:   false, // one node : many streams is served fine by N tcp conns
	}
}

// NewHTTPSender builds an HTTPSender over TunedTransport with the given
// per-request timeout (0 means no timeout).
func NewHTTPSender(timeout time.Duration) *HTTPSender {
	return &HTTPSender{Client: &http.Client{Transport: TunedTransport(), Timeout: timeout}}
}

func (s *HTTPSender) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// SendWire implements Sender over HTTP. Any 2xx with a parseable ack is
// a protocol-level success (the ack may still reject reports).
func (s *HTTPSender) SendWire(ctx context.Context, node Member, body []byte) (WireAck, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.Addr+"/usage/wire",
		bytes.NewReader(body))
	if err != nil {
		return WireAck{}, fmt.Errorf("build request for %s: %w", node.ID, err)
	}
	req.Header.Set("Content-Type", WireContentType)
	resp, err := s.client().Do(req)
	if err != nil {
		return WireAck{}, fmt.Errorf("send wire to %s: %w", node.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return WireAck{}, fmt.Errorf("%w: send wire to %s: status %d: %s", ErrUnavailable, node.ID, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var ack WireAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return WireAck{}, fmt.Errorf("decode ack from %s: %w", node.ID, err)
	}
	return ack, nil
}

// FetchRing implements RingFetcher over GET /cluster/ring.
func (s *HTTPSender) FetchRing(ctx context.Context, node Member) (Config, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.Addr+"/cluster/ring", nil)
	if err != nil {
		return Config{}, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return Config{}, fmt.Errorf("fetch ring from %s: %w", node.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Config{}, fmt.Errorf("%w: fetch ring from %s: status %d", ErrUnavailable, node.ID, resp.StatusCode)
	}
	var cfg Config
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("decode ring from %s: %w", node.ID, err)
	}
	return cfg, nil
}

// RouteStats summarizes one Send: how many reports went where and how
// much ownership churn the rounds absorbed.
type RouteStats struct {
	Reports  int            // reports delivered
	Rerouted int            // reports resent after an ownership rejection
	Rounds   int            // partition→fan-out rounds taken
	Shed     int            // reports the receiving nodes shed on admission
	PerNode  map[string]int // accepted (or queued) reports per node ID
}

// routerMetrics is the optional obs hookup.
type routerMetrics struct {
	reports  *obs.Counter
	batches  *obs.Counter
	rerouted *obs.Counter
	rounds   *obs.Histogram
}

// Router is the cluster-aware ingest client: it partitions a batch by
// ring owner, chunks each owner's share into wire frames, and fans the
// frames out with bounded in-flight pipelining — up to SetInflight
// frames outstanding at once over the sender — then resends anything a
// node disowns (rebalance in flight) to the new owner.
// Safe for concurrent Send calls.
//
// Pipelining trades cross-frame ordering for throughput: two frames of
// the same Send may be applied by a node in either order. Reports of
// one user WITHIN a frame keep their order (one user → one shard of one
// node), so per-user accumulation stays deterministic up to the
// commutativity of float addition across frame boundaries — exact for
// the integral-MB volumes the conservation checks use. Callers needing
// strict cross-frame order set inflight to 1.
type Router struct {
	tab        *wire.ClassTable
	sender     Sender
	ring       atomic.Pointer[Ring]
	maxRounds  int
	inflight   int       // max frames in flight per Send
	frameLimit int       // max reports per frame
	encPool    sync.Pool // *wire.Encoder
	met        atomic.Pointer[routerMetrics]
}

// DefaultInflight is the frames-in-flight bound per Send and
// DefaultFrameReports the chunk size the router slices an owner's
// partition into.
const (
	DefaultInflight     = 4
	DefaultFrameReports = 1024
)

// NewRouter builds a router over a class table, an initial ring, and a
// sender.
func NewRouter(tab *wire.ClassTable, ring *Ring, sender Sender) (*Router, error) {
	if tab == nil || ring == nil || sender == nil {
		return nil, fmt.Errorf("%w: router needs table, ring and sender", ErrBadConfig)
	}
	rt := &Router{tab: tab, sender: sender, maxRounds: 8,
		inflight: DefaultInflight, frameLimit: DefaultFrameReports}
	rt.ring.Store(ring)
	return rt, nil
}

// SetInflight bounds the frames in flight per Send call (1 serializes,
// restoring strict cross-frame order). Not safe concurrently with Send.
func (rt *Router) SetInflight(n int) error {
	if n < 1 || n > 1024 {
		return fmt.Errorf("%w: inflight %d out of range [1, 1024]", ErrBadConfig, n)
	}
	rt.inflight = n
	return nil
}

// SetMaxFrameReports bounds the reports per wire frame. Not safe
// concurrently with Send.
func (rt *Router) SetMaxFrameReports(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: frame reports %d < 1", ErrBadConfig, n)
	}
	rt.frameLimit = n
	return nil
}

// Ring returns the router's current ring view.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// UpdateRing swaps the ring view if cfg is strictly newer; it returns
// whether the swap happened.
func (rt *Router) UpdateRing(ring *Ring) bool {
	for {
		cur := rt.ring.Load()
		if ring.Version() <= cur.Version() {
			return false
		}
		if rt.ring.CompareAndSwap(cur, ring) {
			return true
		}
	}
}

// Instrument registers the router's counters on reg.
func (rt *Router) Instrument(reg *obs.Registry) {
	rt.met.Store(&routerMetrics{
		reports:  reg.Counter("cluster_router_reports_total", "usage reports delivered through the router", nil),
		batches:  reg.Counter("cluster_router_batches_total", "wire bodies sent to nodes", nil),
		rerouted: reg.Counter("cluster_router_rerouted_total", "reports resent after an ownership rejection", nil),
		rounds:   reg.Histogram("cluster_router_rounds", "partition→fan-out rounds per Send", nil, obs.ExpBuckets(1, 2, 5)),
	})
}

//tubelint:pooled
func (rt *Router) encoder() *wire.Encoder {
	if v := rt.encPool.Get(); v != nil {
		return v.(*wire.Encoder)
	}
	return wire.NewEncoder(rt.tab)
}

// sendJob is one frame's worth of a round: a contiguous (in submission
// order) chunk of one owner's partition plus the pending indices it was
// drawn from, so a rejection maps back to the original report. Job
// buffers are freshly allocated per round — they cross into worker
// goroutines, so they must not come from a pool.
type sendJob struct {
	node Member
	reps []ingest.Report
	idxs []int32
}

// roundAgg collects one fan-out round's results across the worker
// goroutines under a single mutex.
type roundAgg struct {
	mu         sync.Mutex
	rejected   []int32 // pending indices, guarded by mu
	newestSeen uint64  // guarded by mu
	newestNode Member  // guarded by mu
	firstErr   error   // guarded by mu
	failed     atomic.Bool
}

// sendWorker drains one pipelining slot: it borrows a frame encoder for
// the slot's lifetime and folds every ack into ag (stats shares ag.mu).
// The first hard error flips ag.failed, so the slots finish the queue
// without sending.
func (rt *Router) sendWorker(ctx context.Context, jobCh <-chan sendJob, stats *RouteStats, ag *roundAgg, wg *sync.WaitGroup) {
	defer wg.Done()
	enc := rt.encoder()
	defer rt.encPool.Put(enc)
	for job := range jobCh {
		if ag.failed.Load() {
			continue
		}
		ack, err := rt.sendFrame(ctx, enc, job)
		ag.mu.Lock()
		if err != nil {
			if ag.firstErr == nil {
				ag.firstErr = err
				ag.failed.Store(true)
			}
			ag.mu.Unlock()
			continue
		}
		accepted := len(job.reps) - len(ack.Rejected)
		stats.PerNode[job.node.ID] += accepted
		stats.Reports += accepted
		stats.Shed += ack.Shed
		for _, ri := range ack.Rejected {
			ag.rejected = append(ag.rejected, job.idxs[ri])
		}
		if ack.RingVersion > ag.newestSeen {
			ag.newestSeen, ag.newestNode = ack.RingVersion, job.node
		}
		ag.mu.Unlock()
	}
}

// Send routes every report to its ring owner, retrying disowned
// reports against refreshed ownership for up to maxRounds rounds. On
// success every report was accepted by exactly one node: a node only
// acks reports it owns under its current view and applies them exactly
// once, and the router resends only explicitly rejected indices. Within
// a round, frames are pipelined: up to SetInflight frames are in flight
// concurrently across owners.
func (rt *Router) Send(ctx context.Context, reports []ingest.Report) (RouteStats, error) {
	stats := RouteStats{PerNode: make(map[string]int)}
	if len(reports) == 0 {
		return stats, nil
	}
	pending := reports
	for round := 0; len(pending) > 0; round++ {
		if round >= rt.maxRounds {
			return stats, fmt.Errorf("%w: %d reports still disowned after %d rounds",
				ErrRouting, len(pending), round)
		}
		stats.Rounds = round + 1
		ring := rt.ring.Load()
		jobs := rt.partition(ring, pending)

		// Fan out with bounded pipelining. Aggregation is mutex-guarded;
		// the first error flips ag.failed and the remaining jobs are
		// drained unsent (their reports stay unaccounted, which the
		// caller sees in the returned error).
		ag := &roundAgg{}
		workers := rt.inflight
		if len(jobs) < workers {
			workers = len(jobs)
		}
		jobCh := make(chan sendJob)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go rt.sendWorker(ctx, jobCh, &stats, ag, &wg)
		}
		for _, job := range jobs {
			jobCh <- job
		}
		close(jobCh)
		wg.Wait()
		if ag.firstErr != nil {
			return stats, ag.firstErr
		}

		rejected := ag.rejected
		newestSeen, newestNode := ag.newestSeen, ag.newestNode
		if len(rejected) == 0 {
			break
		}
		if m := rt.met.Load(); m != nil {
			m.rerouted.Add(int64(len(rejected)))
		}
		stats.Rerouted += len(rejected)
		// If a node is on a newer ring than ours, refetch before the
		// next round — otherwise we would resend to the same owner.
		if newestSeen > ring.Version() {
			if rf, ok := rt.sender.(RingFetcher); ok {
				if cfg, err := rf.FetchRing(ctx, newestNode); err == nil {
					if fresh, err := Build(cfg); err == nil {
						rt.UpdateRing(fresh)
					}
				}
			}
		}
		// Sort the rejected pending indices so the retry keeps submission
		// order (worker completion order scrambled them).
		sort.Slice(rejected, func(a, b int) bool { return rejected[a] < rejected[b] })
		next := make([]ingest.Report, len(rejected))
		for i, pi := range rejected {
			next[i] = pending[pi]
		}
		pending = next
	}
	if m := rt.met.Load(); m != nil {
		m.reports.Add(int64(stats.Reports))
		m.rounds.Observe(float64(stats.Rounds))
	}
	return stats, nil
}

// partition splits pending into per-owner frame jobs of at most
// frameLimit reports, preserving submission order within each owner
// (per-owner index chains built in reverse, walked forward).
func (rt *Router) partition(ring *Ring, pending []ingest.Report) []sendJob {
	nm := len(ring.members)
	heads := make([]int32, nm)
	for o := range heads {
		heads[o] = -1
	}
	nexts := make([]int32, len(pending))
	for i := len(pending) - 1; i >= 0; i-- {
		o := ring.ownerIdx(ingest.UserHash(pending[i].User))
		nexts[i] = heads[o]
		heads[o] = int32(i)
	}
	var jobs []sendJob
	for o := 0; o < nm; o++ {
		if heads[o] < 0 {
			continue
		}
		node := ring.members[o]
		var reps []ingest.Report
		var idxs []int32
		for i := heads[o]; i >= 0; i = nexts[i] {
			if len(reps) == rt.frameLimit {
				jobs = append(jobs, sendJob{node: node, reps: reps, idxs: idxs})
				reps, idxs = nil, nil
			}
			reps = append(reps, pending[i])
			idxs = append(idxs, i)
		}
		jobs = append(jobs, sendJob{node: node, reps: reps, idxs: idxs})
	}
	return jobs
}

// sendFrame encodes and delivers one job, validating the ack's shape
// (accounting and rejection indices must be consistent before they are
// folded into the shared stats).
func (rt *Router) sendFrame(ctx context.Context, enc *wire.Encoder, job sendJob) (WireAck, error) {
	body, err := enc.Encode(job.reps)
	if err != nil {
		return WireAck{}, err
	}
	ack, err := rt.sender.SendWire(ctx, job.node, body)
	if err != nil {
		return WireAck{}, err
	}
	if m := rt.met.Load(); m != nil {
		m.batches.Inc()
	}
	if ack.Accepted != len(job.reps)-len(ack.Rejected) {
		return WireAck{}, fmt.Errorf("%w: node %s acked %d of %d with %d rejections",
			ErrRouting, job.node.ID, ack.Accepted, len(job.reps), len(ack.Rejected))
	}
	for _, ri := range ack.Rejected {
		if ri < 0 || ri >= len(job.reps) {
			return WireAck{}, fmt.Errorf("%w: node %s rejected index %d of %d",
				ErrRouting, job.node.ID, ri, len(job.reps))
		}
	}
	return ack, nil
}
