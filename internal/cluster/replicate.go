package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/obs"
)

// Replicator pulls price snapshots from a leader node and applies them
// locally: pull-based chain replication with at-most-one in-flight
// pull, the simplest protocol that keeps every follower within one
// interval of the leader without a consensus dependency. Followers can
// themselves serve GET /cluster/snapshot from their applied copy, so a
// large cluster can fan the pulls out in a tree instead of thundering
// the leader.
type Replicator struct {
	leader   string // base URL of the node to pull from
	client   *http.Client
	apply    func(PriceSnapshot) error
	interval time.Duration
	jitter   float64 // early-only pull stagger, set before Start

	lastTaken  atomic.Int64 // TakenUnixNano of the newest applied snapshot
	failStreak atomic.Int32 // consecutive failed pulls (tree fallback trigger)

	mu       sync.Mutex
	source   func() (string, bool) // guarded by mu: optional tree-parent resolver
	stop     chan struct{}         // guarded by mu: non-nil while running
	wg       sync.WaitGroup
	pulls    *obs.Counter // optional, set by Instrument before Start
	failures *obs.Counter
}

// DefaultJitter is the pull-stagger fraction: each wait is shortened by
// up to half an interval, so a fleet of followers started together
// spreads its pulls across the cadence instead of thundering the source
// every tick.
const DefaultJitter = 0.5

// NewReplicator builds a replicator pulling from leaderURL every
// interval (default 1s), applying each newer snapshot via apply.
func NewReplicator(leaderURL string, interval time.Duration, apply func(PriceSnapshot) error) (*Replicator, error) {
	if leaderURL == "" || apply == nil {
		return nil, fmt.Errorf("%w: replicator needs a leader URL and an apply func", ErrBadConfig)
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Replicator{
		leader:   leaderURL,
		client:   &http.Client{Timeout: 10 * time.Second},
		apply:    apply,
		interval: interval,
		jitter:   DefaultJitter,
	}, nil
}

// SetJitter sets the pull-stagger fraction in [0, 1): each inter-pull
// wait becomes interval × (1 − jitter × U) for uniform U in [0, 1).
// Jitter is EARLY-only — a wait is never longer than the interval — so
// the one-interval staleness contract survives any jitter setting.
// Call before Start.
func (r *Replicator) SetJitter(f float64) error {
	if f < 0 || f >= 1 {
		return fmt.Errorf("%w: jitter %v out of range [0, 1)", ErrBadConfig, f)
	}
	r.jitter = f
	return nil
}

// SetSource installs a resolver for the URL to pull from — the
// replication tree hands each follower its current tree parent here,
// re-resolved before every pull so the topology self-heals on
// membership change. A nil return (ok == false) or two consecutive
// failed pulls fall back to the leader until a pull succeeds again.
func (r *Replicator) SetSource(fn func() (string, bool)) {
	r.mu.Lock()
	r.source = fn
	r.mu.Unlock()
}

// treeFallbackAfter is the failure streak at which a follower abandons
// its tree parent for the leader (the parent may itself be partitioned
// or stale; the leader is the replication root of truth).
const treeFallbackAfter = 2

// pullURL resolves where the next pull goes.
func (r *Replicator) pullURL() string {
	r.mu.Lock()
	src := r.source
	r.mu.Unlock()
	if src == nil {
		return r.leader
	}
	if r.failStreak.Load() >= treeFallbackAfter {
		return r.leader
	}
	if u, ok := src(); ok && u != "" {
		return u
	}
	return r.leader
}

// jitteredDelay returns the next inter-pull wait: the interval shortened
// by up to jitter of itself, never lengthened.
func (r *Replicator) jitteredDelay() time.Duration {
	if r.jitter == 0 {
		return r.interval
	}
	scale := 1 - r.jitter*rand.Float64()
	return time.Duration(float64(r.interval) * scale)
}

// Instrument registers pull counters and the staleness gauge on reg.
func (r *Replicator) Instrument(reg *obs.Registry) {
	r.mu.Lock()
	r.pulls = reg.Counter("cluster_replication_pulls_total", "snapshot pulls attempted", nil)
	r.failures = reg.Counter("cluster_replication_failures_total", "snapshot pulls failed", nil)
	r.mu.Unlock()
	reg.GaugeFunc("cluster_replication_staleness_seconds",
		"age of the newest applied price snapshot (-1 before the first)", nil,
		func() float64 { return r.StalenessSeconds() })
}

// StalenessSeconds returns the age of the newest applied snapshot, or
// -1 if none has been applied yet.
func (r *Replicator) StalenessSeconds() float64 {
	t := r.lastTaken.Load()
	if t == 0 {
		return -1
	}
	return time.Since(time.Unix(0, t)).Seconds()
}

// PullOnce fetches the leader's snapshot and applies it if newer than
// the last applied one (replays and reorderings are no-ops).
func (r *Replicator) PullOnce(ctx context.Context) error {
	r.mu.Lock()
	pulls, failures := r.pulls, r.failures
	r.mu.Unlock()
	if pulls != nil {
		pulls.Inc()
	}
	err := r.pullOnce(ctx)
	if err != nil && failures != nil {
		failures.Inc()
	}
	return err
}

func (r *Replicator) pullOnce(ctx context.Context) error {
	err := r.pullFrom(ctx, r.pullURL())
	if err != nil {
		r.failStreak.Add(1)
	} else {
		r.failStreak.Store(0)
	}
	return err
}

func (r *Replicator) pullFrom(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cluster/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("pull snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pull snapshot: status %d", resp.StatusCode)
	}
	snap, err := DecodeSnapshot(resp.Body)
	if err != nil {
		return err
	}
	if snap.TakenUnixNano <= r.lastTaken.Load() {
		return nil // already have this one (or newer)
	}
	if err := r.apply(snap); err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	r.lastTaken.Store(snap.TakenUnixNano)
	return nil
}

// Start launches the pull loop: one immediate pull, then one per
// jittered interval (each wait is interval shortened by up to the
// jitter fraction, never lengthened, so followers de-synchronize
// without ever exceeding one interval between pulls). Errors are
// counted, not fatal: replication is best-effort between period closes
// and the staleness gauge is the alarm.
func (r *Replicator) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return // already running
	}
	stop := make(chan struct{})
	r.stop = stop
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		timer := time.NewTimer(r.jitteredDelay())
		defer timer.Stop()
		ctx := context.Background()
		_ = r.PullOnce(ctx)
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
				_ = r.PullOnce(ctx)
				timer.Reset(r.jitteredDelay())
			}
		}
	}()
}

// Stop halts the pull loop and waits for it to exit.
func (r *Replicator) Stop() {
	r.mu.Lock()
	stop := r.stop
	r.stop = nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	r.wg.Wait()
}
