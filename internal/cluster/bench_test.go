package cluster

import (
	"context"
	"fmt"
	"testing"

	"tdp/internal/ingest"
	"tdp/internal/wire"
)

// BenchmarkRingOwner measures the hot placement lookup the router and
// every node's admission filter run once per report.
func BenchmarkRingOwner(b *testing.B) {
	for _, n := range []int{3, 16} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			ring, err := Build(Config{Version: 1, Members: testMembers(n)})
			if err != nil {
				b.Fatal(err)
			}
			keys := testKeys(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.OwnerID(keys[i&1023])
			}
		})
	}
}

// BenchmarkRouterSend drives the full data path minus the network:
// partition by owner, encode per-owner wire frames, decode and admit on
// in-process nodes. This is the per-batch cluster overhead on top of
// the raw engine.
func BenchmarkRouterSend(b *testing.B) {
	for _, nNodes := range []int{1, 3} {
		for _, batch := range []int{256} {
			b.Run(fmt.Sprintf("nodes=%d/batch=%d", nNodes, batch), func(b *testing.B) {
				tab, err := wire.NewClassTable(routerClasses)
				if err != nil {
					b.Fatal(err)
				}
				ring, err := Build(Config{Version: 1, Members: testMembers(nNodes)})
				if err != nil {
					b.Fatal(err)
				}
				sender := &memSender{nodes: make(map[string]*memNode)}
				for _, m := range ring.Members() {
					sender.nodes[m.ID] = newMemNode(b, m.ID, ring, tab)
				}
				rt, err := NewRouter(tab, ring, sender)
				if err != nil {
					b.Fatal(err)
				}
				reps := routerReports(batch/4, 4)[:batch]
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rt.Send(ctx, reps); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}

// BenchmarkShedQueuePush measures the admission-side cost of the
// bounded queue under a running drain worker.
func BenchmarkShedQueuePush(b *testing.B) {
	q, err := NewShedQueue(routerClasses, 1024)
	if err != nil {
		b.Fatal(err)
	}
	q.Start(func([]ingest.Report) {})
	defer q.Close()
	batch := routerReports(16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(batch)
	}
}
