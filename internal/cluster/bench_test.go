package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tdp/internal/wire"
)

// BenchmarkRingOwner measures the hot placement lookup the router and
// every node's admission filter run once per report.
func BenchmarkRingOwner(b *testing.B) {
	for _, n := range []int{3, 16} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			ring, err := Build(Config{Version: 1, Members: testMembers(n)})
			if err != nil {
				b.Fatal(err)
			}
			keys := testKeys(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.OwnerID(keys[i&1023])
			}
		})
	}
}

// BenchmarkRouterSend drives the full data path minus the network:
// partition by owner, encode per-owner wire frames, decode and admit on
// in-process nodes. This is the per-batch cluster overhead on top of
// the raw engine.
func BenchmarkRouterSend(b *testing.B) {
	for _, nNodes := range []int{1, 3} {
		for _, batch := range []int{256} {
			b.Run(fmt.Sprintf("nodes=%d/batch=%d", nNodes, batch), func(b *testing.B) {
				tab, err := wire.NewClassTable(routerClasses)
				if err != nil {
					b.Fatal(err)
				}
				ring, err := Build(Config{Version: 1, Members: testMembers(nNodes)})
				if err != nil {
					b.Fatal(err)
				}
				sender := &memSender{nodes: make(map[string]*memNode)}
				for _, m := range ring.Members() {
					sender.nodes[m.ID] = newMemNode(b, m.ID, ring, tab)
				}
				rt, err := NewRouter(tab, ring, sender)
				if err != nil {
					b.Fatal(err)
				}
				reps := routerReports(batch/4, 4)[:batch]
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rt.Send(ctx, reps); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}

// BenchmarkShedQueuePush measures the admission-side cost of the
// bounded queue under a running drain worker.
func BenchmarkShedQueuePush(b *testing.B) {
	q, err := NewShedQueue(routerClasses, 1024)
	if err != nil {
		b.Fatal(err)
	}
	q.Start(func(Batch) {})
	defer q.Close()
	batch := routerReports(16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(batch)
	}
}

// latencySender models a real network hop: each frame costs ~1ms of
// wire time before the in-process node applies it. Pipelining overlaps
// those hops; this is the number the inflight knob exists for.
type latencySender struct {
	inner Sender
	delay time.Duration
}

func (s *latencySender) SendWire(ctx context.Context, node Member, body []byte) (WireAck, error) {
	time.Sleep(s.delay)
	return s.inner.SendWire(ctx, node, body)
}

// BenchmarkRouterPipeline measures Send over a simulated 1ms-RTT
// network at inflight 1 (strictly serial frames) vs the pipelined
// default: same partition, same frames, overlapped wire time.
func BenchmarkRouterPipeline(b *testing.B) {
	const nNodes, batch, frameLimit = 3, 512, 64
	for _, inflight := range []int{1, 4} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			tab, err := wire.NewClassTable(routerClasses)
			if err != nil {
				b.Fatal(err)
			}
			ring, err := Build(Config{Version: 1, Members: testMembers(nNodes)})
			if err != nil {
				b.Fatal(err)
			}
			mem := &memSender{nodes: make(map[string]*memNode)}
			for _, m := range ring.Members() {
				mem.nodes[m.ID] = newMemNode(b, m.ID, ring, tab)
			}
			rt, err := NewRouter(tab, ring, &latencySender{inner: mem, delay: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.SetInflight(inflight); err != nil {
				b.Fatal(err)
			}
			if err := rt.SetMaxFrameReports(frameLimit); err != nil {
				b.Fatal(err)
			}
			reps := routerReports(batch/4, 4)[:batch]
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Send(ctx, reps); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkReplicateTree measures the per-pull cost of deriving a
// follower's fan-out parent from the ring — it runs on every pull, so
// it has to stay trivial next to the HTTP round trip it steers.
func BenchmarkReplicateTree(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			ring, err := Build(Config{Version: 1, Members: testMembers(n)})
			if err != nil {
				b.Fatal(err)
			}
			members := ring.Members()
			leaderID := members[0].ID
			selfID := members[n-1].ID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := TreeParent(ring, leaderID, selfID, 2); !ok {
					b.Fatal("no parent")
				}
			}
		})
	}
}
