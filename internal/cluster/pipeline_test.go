package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tdp/internal/ingest"
	"tdp/internal/wire"
)

// gaugedSender wraps a Sender, counting frames and the peak number of
// concurrent SendWire calls — the observable the pipelining contract is
// about.
type gaugedSender struct {
	inner  Sender
	frames atomic.Int64
	cur    atomic.Int64
	peak   atomic.Int64

	mu       sync.Mutex
	perFrame []int // reports per frame, in completion order
}

func (s *gaugedSender) SendWire(ctx context.Context, node Member, body []byte) (WireAck, error) {
	n := s.cur.Add(1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer s.cur.Add(-1)
	s.frames.Add(1)
	ack, err := s.inner.SendWire(ctx, node, body)
	if err == nil {
		s.mu.Lock()
		s.perFrame = append(s.perFrame, ack.Accepted+len(ack.Rejected))
		s.mu.Unlock()
	}
	return ack, err
}

func (s *gaugedSender) FetchRing(ctx context.Context, node Member) (Config, error) {
	return s.inner.(RingFetcher).FetchRing(ctx, node)
}

// TestRouterPipelineChunkingExactness: with a small frame limit the
// router must slice each owner's partition into ceil(part/limit)
// frames, stay within the inflight bound, and still deliver every
// report to exactly one owner with bit-identical totals.
func TestRouterPipelineChunkingExactness(t *testing.T) {
	const frameLimit, inflight = 32, 4
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	reps := routerReports(300, 4)
	ring, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	mem := &memSender{nodes: make(map[string]*memNode)}
	for _, m := range ring.Members() {
		mem.nodes[m.ID] = newMemNode(t, m.ID, ring, tab)
	}
	sender := &gaugedSender{inner: mem}
	rt, err := NewRouter(tab, ring, sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetMaxFrameReports(frameLimit); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInflight(inflight); err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Send(context.Background(), reps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != len(reps) || stats.Rerouted != 0 {
		t.Fatalf("delivered %d of %d (rerouted %d)", stats.Reports, len(reps), stats.Rerouted)
	}
	if peak := sender.peak.Load(); peak > inflight {
		t.Fatalf("%d frames in flight, bound %d", peak, inflight)
	}
	// Frame count: each owner's partition slices into ceil(part/limit).
	wantFrames := int64(0)
	perOwner := make(map[string]int)
	for i := range reps {
		perOwner[ring.OwnerID(reps[i].User)]++
	}
	for _, part := range perOwner {
		wantFrames += int64((part + frameLimit - 1) / frameLimit)
	}
	if got := sender.frames.Load(); got != wantFrames {
		t.Fatalf("sent %d frames, want %d (owners %v)", got, wantFrames, perOwner)
	}
	sender.mu.Lock()
	for _, n := range sender.perFrame {
		if n > frameLimit {
			t.Fatalf("frame carried %d reports, limit %d", n, frameLimit)
		}
	}
	sender.mu.Unlock()
	// Bit-identical totals against a single-node reference.
	ref, err := ingest.NewEngine(routerClasses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RecordBatch(append([]ingest.Report(nil), reps...)); err != nil {
		t.Fatal(err)
	}
	refClass := ref.ClassTotals()
	sum := make([]float64, len(routerClasses))
	for _, n := range mem.nodes {
		for j, v := range n.eng.ClassTotals() {
			sum[j] += v
		}
	}
	for j := range sum {
		//lint:allow floateq dyadic sums are exact; bit-identity is the property under test
		if sum[j] != refClass[j] {
			t.Fatalf("class %d: pipelined total %v, reference %v", j, sum[j], refClass[j])
		}
	}
}

// TestRouterInflightOneSerializes: inflight 1 restores strictly serial
// frame delivery.
func TestRouterInflightOneSerializes(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	mem := &memSender{nodes: make(map[string]*memNode)}
	for _, m := range ring.Members() {
		mem.nodes[m.ID] = newMemNode(t, m.ID, ring, tab)
	}
	sender := &gaugedSender{inner: mem}
	rt, err := NewRouter(tab, ring, sender)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInflight(1); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetMaxFrameReports(16); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Send(context.Background(), routerReports(100, 2)); err != nil {
		t.Fatal(err)
	}
	if peak := sender.peak.Load(); peak != 1 {
		t.Fatalf("inflight=1 reached %d concurrent frames", peak)
	}
}

// TestRouterExhaustionReportsRounds: the give-up error after maxRounds
// names the round count and wraps ErrRouting (the resend exhaustion
// path of the ≤8-round contract).
func TestRouterExhaustionReportsRounds(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build(Config{Version: 1, Members: testMembers(2)})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(tab, ring, &errSender{ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Send(context.Background(), routerReports(20, 2))
	if !errors.Is(err, ErrRouting) {
		t.Fatalf("endless rejection: %v, want ErrRouting", err)
	}
	if stats.Rounds != 8 {
		t.Fatalf("gave up after %d rounds, want exactly 8", stats.Rounds)
	}
	if stats.Reports != 0 {
		t.Fatalf("%d reports counted accepted while every frame was rejected", stats.Reports)
	}
}

// TestRouterSetterValidation: the pipelining knobs reject nonsense.
func TestRouterSetterValidation(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build(Config{Version: 1, Members: testMembers(2)})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(tab, ring, &errSender{ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInflight(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("inflight 0: %v, want ErrBadConfig", err)
	}
	if err := rt.SetMaxFrameReports(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("frame limit 0: %v, want ErrBadConfig", err)
	}
}

// failingSender fails one specific node; the rest succeed.
type failingSender struct {
	inner  Sender
	victim string
}

func (s *failingSender) SendWire(ctx context.Context, node Member, body []byte) (WireAck, error) {
	if node.ID == s.victim {
		return WireAck{}, fmt.Errorf("%w: %s is on fire", ErrUnavailable, node.ID)
	}
	return s.inner.SendWire(ctx, node, body)
}

// TestRouterFirstErrorAborts: a node failure surfaces as the Send error
// (wrapped ErrUnavailable) instead of being silently swallowed by the
// pipeline.
func TestRouterFirstErrorAborts(t *testing.T) {
	tab, err := wire.NewClassTable(routerClasses)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build(Config{Version: 1, Members: testMembers(3)})
	if err != nil {
		t.Fatal(err)
	}
	mem := &memSender{nodes: make(map[string]*memNode)}
	for _, m := range ring.Members() {
		mem.nodes[m.ID] = newMemNode(t, m.ID, ring, tab)
	}
	rt, err := NewRouter(tab, ring, &failingSender{inner: mem, victim: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetMaxFrameReports(16); err != nil {
		t.Fatal(err)
	}
	_, err = rt.Send(context.Background(), routerReports(200, 2))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("victim node failure: %v, want ErrUnavailable", err)
	}
}
