// Package waiting models users' willingness to defer application sessions:
// the paper's waiting functions w(p, t), which give the probability that a
// session is deferred by t periods when the ISP offers reward p.
//
// The workhorse family is the power law of §IV,
//
//	w_β(p, t) = C_β · p / (t+1)^β,
//
// where β ≥ 0 is the "patience index" (larger β = less patient) and C_β is
// the normalization constant that makes Σ_{t=1..n−1} w(P, t) = 1 at the
// maximum reward P (paper §II), so the usage deferred out of a period can
// never exceed the demand in it.
package waiting

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid is returned for waiting-function parameters that violate the
// model's preconditions (negative patience, non-positive max reward, or
// fewer than two periods).
var ErrInvalid = errors.New("waiting: invalid parameters")

// Func is a waiting function: the fraction of a session's volume deferred
// by t periods at reward p. Prop. 3 requires implementations to be
// increasing and concave in p; all implementations here are.
type Func interface {
	// Value returns w(p, t) for reward p ≥ 0 and deferral time t ≥ 1
	// measured in periods.
	Value(p float64, t int) float64
	// DerivP returns ∂w/∂p at (p, t).
	DerivP(p float64, t int) float64
}

// PowerLaw is the paper's normalized power-law waiting function
// w_β(p,t) = C_β·p/(t+1)^β. It is linear (hence concave) in p.
type PowerLaw struct {
	Beta float64 // patience index (≥ 0); larger = less patient
	c    float64 // normalization constant C_β
}

var _ Func = PowerLaw{}

// NewPowerLaw builds a power-law waiting function normalized for a model
// with n periods and maximum reward maxReward (the maximum marginal cost of
// exceeding capacity, paper §II).
func NewPowerLaw(beta float64, n int, maxReward float64) (PowerLaw, error) {
	if beta < 0 || math.IsNaN(beta) {
		return PowerLaw{}, fmt.Errorf("patience index %v: %w", beta, ErrInvalid)
	}
	if n < 2 {
		return PowerLaw{}, fmt.Errorf("%d periods: %w", n, ErrInvalid)
	}
	if maxReward <= 0 || math.IsNaN(maxReward) {
		return PowerLaw{}, fmt.Errorf("max reward %v: %w", maxReward, ErrInvalid)
	}
	var s float64
	for t := 1; t <= n-1; t++ {
		s += math.Pow(float64(t+1), -beta)
	}
	return PowerLaw{Beta: beta, c: 1 / (maxReward * s)}, nil
}

// Value implements Func.
func (w PowerLaw) Value(p float64, t int) float64 {
	if p <= 0 || t < 1 {
		return 0
	}
	return w.c * p * math.Pow(float64(t+1), -w.Beta)
}

// DerivP implements Func.
func (w PowerLaw) DerivP(p float64, t int) float64 {
	if t < 1 {
		return 0
	}
	return w.c * math.Pow(float64(t+1), -w.Beta)
}

// Norm returns the normalization constant C_β.
func (w PowerLaw) Norm() float64 { return w.c }

// ValueAt evaluates the waiting function at a continuous deferral time
// t > 0 (in periods). The dynamic session model uses this for sessions
// arriving mid-period, whose wait to the start of period i+k is k−u for
// arrival offset u ∈ [0, 1).
func (w PowerLaw) ValueAt(p, t float64) float64 {
	if p <= 0 || t <= 0 {
		return 0
	}
	return w.c * p * math.Pow(t+1, -w.Beta)
}

// Concave is the concave-in-p generalization w(p,t) = C·p^γ/(t+1)^β with
// exponent γ ∈ (0, 1]. γ = 1 recovers PowerLaw. It exists to exercise
// Prop. 3's full generality (any increasing concave p-dependence keeps the
// problem convex).
type Concave struct {
	Beta  float64
	Gamma float64
	c     float64
}

var _ Func = Concave{}

// NewConcave builds a concave waiting function normalized the same way as
// NewPowerLaw.
func NewConcave(beta, gamma float64, n int, maxReward float64) (Concave, error) {
	if gamma <= 0 || gamma > 1 || math.IsNaN(gamma) {
		return Concave{}, fmt.Errorf("gamma %v (need 0 < γ ≤ 1): %w", gamma, ErrInvalid)
	}
	if _, err := NewPowerLaw(beta, n, maxReward); err != nil {
		return Concave{}, err
	}
	// Normalize so Σ_{t=1..n−1} C·P^γ/(t+1)^β = 1, i.e. C = 1/(P^γ·S_β).
	var s float64
	for t := 1; t <= n-1; t++ {
		s += math.Pow(float64(t+1), -beta)
	}
	return Concave{Beta: beta, Gamma: gamma, c: 1 / (math.Pow(maxReward, gamma) * s)}, nil
}

// Value implements Func.
func (w Concave) Value(p float64, t int) float64 {
	if p <= 0 || t < 1 {
		return 0
	}
	return w.c * math.Pow(p, w.Gamma) * math.Pow(float64(t+1), -w.Beta)
}

// DerivP implements Func.
func (w Concave) DerivP(p float64, t int) float64 {
	if p <= 0 || t < 1 {
		return 0
	}
	return w.c * w.Gamma * math.Pow(p, w.Gamma-1) * math.Pow(float64(t+1), -w.Beta)
}

// DeferTime returns the deferral time from period from to period to in an
// n-period day: the b ∈ [1, n] with b ≡ to−from (mod n) (paper §II). A
// result of n means "a full day later", which the models never use.
func DeferTime(from, to, n int) int {
	b := (to - from) % n
	if b <= 0 {
		b += n
	}
	return b
}
