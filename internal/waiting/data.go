package waiting

// This file embeds the paper's published patience-index data: the
// application catalogue (Table IV) and the per-period demand-by-patience
// distributions used in the §V simulations (Tables VII, VIII) and the
// Appendix I perturbation studies (Tables XI, XIII, XV).
//
// All demand figures are in the paper's units of 10 MBps.

// PatienceIndices are the ten β values the simulations sweep (Table IV).
var PatienceIndices = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}

// PatienceExamples maps each patience index to the paper's example
// application session (Table IV).
var PatienceExamples = map[float64]string{
	0.5: "File backup",
	1:   "Non-critical software update",
	1.5: "Non-critical file download (e.g. peer-to-peer)",
	2:   "Website browsing",
	2.5: "Online purchases",
	3:   "Movie download for immediate viewing",
	3.5: "Critical file download or software update",
	4:   "Checking email",
	4.5: "Television program streaming",
	5:   "Live sporting event",
}

// Dist48 is Table VII: demand under TIP by patience index for the
// 48-period day. Row r covers periods 2r+1 and 2r+2 (both have the same
// distribution); column j is demand of type PatienceIndices[j] in 10 MBps.
var Dist48 = [24][10]float64{
	{5, 5, 7, 1, 1, 0, 2, 0, 0, 2},  // periods 1 & 2
	{4, 3, 7, 0, 0, 0, 2, 0, 0, 4},  // 3 & 4
	{3, 2, 5, 1, 1, 0, 1, 0, 0, 3},  // 5 & 6
	{1, 2, 4, 2, 2, 1, 1, 0, 0, 0},  // 7 & 8
	{1, 2, 3, 1, 1, 0, 1, 0, 0, 0},  // 9 & 10
	{1, 2, 2, 0, 0, 0, 1, 0, 1, 1},  // 11 & 12
	{1, 2, 1, 0, 0, 0, 1, 0, 1, 1},  // 13 & 14
	{0, 1, 2, 0, 0, 2, 1, 0, 1, 1},  // 15 & 16
	{1, 3, 2, 0, 1, 0, 1, 1, 1, 1},  // 17 & 18
	{2, 1, 3, 0, 1, 0, 1, 3, 1, 1},  // 19 & 20
	{2, 5, 3, 0, 1, 0, 2, 0, 2, 2},  // 21 & 22
	{5, 5, 7, 1, 1, 0, 2, 0, 0, 2},  // 23 & 24
	{3, 6, 4, 2, 1, 0, 2, 0, 2, 0},  // 25 & 26
	{3, 4, 4, 0, 3, 0, 2, 0, 2, 2},  // 27 & 28
	{3, 4, 4, 2, 1, 0, 2, 0, 2, 2},  // 29 & 30
	{6, 3, 5, 0, 1, 1, 2, 2, 0, 2},  // 31 & 32
	{8, 2, 5, 0, 1, 0, 2, 1, 1, 2},  // 33 & 34
	{4, 7, 2, 0, 1, 0, 2, 5, 0, 2},  // 35 & 36
	{6, 5, 2, 2, 2, 1, 2, 1, 0, 1},  // 37 & 38
	{4, 7, 5, 0, 0, 0, 2, 0, 4, 2},  // 39 & 40
	{7, 6, 7, 0, 1, 2, 0, 0, 0, 0},  // 41 & 42
	{9, 5, 5, 0, 1, 0, 3, 3, 0, 0},  // 43 & 44
	{7, 8, 5, 0, 1, 0, 1, 0, 1, 3},  // 45 & 46
	{8, 11, 5, 0, 0, 0, 0, 3, 0, 0}, // 47 & 48
}

// Dist12 is Table VIII: demand under TIP by patience index for the
// 12-period model; row i is period i+1.
var Dist12 = [12][10]float64{
	{4, 4, 7, 1, 1, 0, 2, 0, 0, 3},
	{2, 2, 4, 1, 1, 0, 1, 0, 0, 2},
	{1, 2, 2, 0, 1, 0, 1, 0, 1, 0},
	{1, 2, 1, 0, 0, 1, 1, 0, 1, 1},
	{1, 2, 2, 0, 1, 0, 1, 2, 1, 1},
	{3, 3, 3, 1, 1, 1, 2, 1, 2, 2},
	{3, 5, 4, 1, 2, 0, 2, 0, 2, 1},
	{5, 4, 5, 1, 1, 1, 2, 1, 1, 2},
	{6, 5, 4, 0, 1, 0, 2, 3, 1, 2},
	{5, 6, 4, 1, 1, 1, 2, 1, 2, 2},
	{8, 5, 6, 0, 1, 1, 1, 1, 0, 0},
	{7, 9, 5, 0, 1, 0, 1, 1, 1, 1},
}

// DistPerturbPeriod1 is Table XI: perturbed period-1 distributions for
// total period-1 demand 18..26 (×10 MBps), used in the Table VI / XII
// demand-perturbation study. Keyed by the total.
var DistPerturbPeriod1 = map[int][10]float64{
	18: {4, 3, 6, 0, 0, 0, 2, 0, 0, 3},
	19: {3, 3, 6, 1, 0, 0, 2, 0, 0, 4},
	20: {3, 3, 6, 1, 1, 0, 2, 0, 0, 4},
	21: {3, 3, 7, 1, 1, 0, 2, 0, 0, 4},
	22: {3, 4, 7, 1, 1, 0, 2, 0, 0, 4},
	23: {3, 4, 7, 1, 1, 0, 2, 0, 0, 5},
	24: {3, 4, 8, 1, 1, 0, 2, 0, 0, 5},
	25: {4, 4, 8, 1, 1, 0, 2, 0, 0, 5},
	26: {4, 4, 8, 1, 1, 0, 3, 0, 0, 5},
}

// DistWaitPerturbPeriod1 is Table XIII: the mis-estimated period-1
// distribution (users less willing to defer) for the waiting-function
// perturbation study (Tables XIII–XIV).
var DistWaitPerturbPeriod1 = [10]float64{3, 4, 5, 0, 1, 2, 2, 0, 0, 5}

// DistWaitPerturbAll is Table XV: the mis-estimated distribution for all
// 12 periods (Tables XV–XVI).
var DistWaitPerturbAll = [12][10]float64{
	{3, 4, 5, 0, 1, 2, 2, 0, 0, 5},
	{2, 2, 4, 1, 1, 0, 1, 0, 0, 2},
	{1, 2, 2, 0, 1, 0, 1, 0, 1, 0},
	{0, 2, 1, 0, 1, 1, 1, 0, 1, 1},
	{1, 2, 2, 0, 1, 0, 1, 2, 1, 1},
	{3, 3, 3, 1, 1, 1, 2, 1, 2, 2},
	{3, 5, 2, 1, 2, 0, 2, 0, 2, 3},
	{2, 4, 5, 1, 1, 1, 2, 1, 3, 2},
	{4, 2, 4, 0, 1, 0, 2, 4, 4, 2},
	{2, 5, 5, 1, 0, 1, 2, 2, 3, 3},
	{5, 4, 2, 3, 1, 1, 2, 1, 2, 1},
	{6, 8, 5, 0, 1, 0, 1, 1, 2, 3},
}

// Demand48 expands Dist48 into a 48-entry per-period matrix: element [i][j]
// is the demand of patience type j in period i+1 (10 MBps).
func Demand48() [][]float64 {
	out := make([][]float64, 48)
	for i := range out {
		row := Dist48[i/2]
		out[i] = append([]float64(nil), row[:]...)
	}
	return out
}

// Demand12 expands Dist12 into a 12-entry per-period matrix.
func Demand12() [][]float64 {
	out := make([][]float64, 12)
	for i := range out {
		out[i] = append([]float64(nil), Dist12[i][:]...)
	}
	return out
}

// Totals sums a per-period type matrix into per-period totals.
func Totals(demand [][]float64) []float64 {
	out := make([]float64, len(demand))
	for i, row := range demand {
		var s float64
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}
