package waiting

import (
	"errors"
	"math"
	"testing"
)

func TestNewExpDecayValidation(t *testing.T) {
	if _, err := NewExpDecay(-1, 12, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative beta: err = %v, want ErrInvalid", err)
	}
	if _, err := NewExpDecay(1, 1, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("one period: err = %v, want ErrInvalid", err)
	}
	if _, err := NewExpDecay(1, 12, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero reward: err = %v, want ErrInvalid", err)
	}
}

func TestExpDecayNormalization(t *testing.T) {
	for _, beta := range []float64{0, 0.2, 1, 3} {
		w, err := NewExpDecay(beta, 24, 2)
		if err != nil {
			t.Fatalf("NewExpDecay(%v): %v", beta, err)
		}
		var s float64
		for dt := 1; dt <= 23; dt++ {
			s += w.Value(2, dt)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("β=%v: Σw(P,t) = %v, want 1", beta, s)
		}
	}
}

func TestExpDecayThinnerTailThanPowerLaw(t *testing.T) {
	// At matched β=1 the exponential tail falls below the power-law tail
	// for long deferrals (relative to their t=1 mass).
	exp1, err := NewExpDecay(1, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	pow1, err := NewPowerLaw(1, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	expRatio := exp1.Value(0.5, 10) / exp1.Value(0.5, 1)
	powRatio := pow1.Value(0.5, 10) / pow1.Value(0.5, 1)
	if expRatio >= powRatio {
		t.Errorf("exp tail ratio %v not thinner than power-law %v", expRatio, powRatio)
	}
}

func TestExpDecayDerivAndEdges(t *testing.T) {
	w, err := NewExpDecay(0.7, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Value(0.5, 0) != 0 || w.Value(-1, 3) != 0 || w.DerivP(0.5, 0) != 0 {
		t.Error("invalid args must give 0")
	}
	if math.Abs(w.DerivP(0.3, 4)-w.Value(1, 4)) > 1e-14 {
		t.Error("DerivP must equal Value(1, t) for the linear family")
	}
	if w.Norm() <= 0 {
		t.Error("normalization constant must be positive")
	}
}

func TestExpDecayZeroBetaUniform(t *testing.T) {
	w, err := NewExpDecay(0, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	for dt := 1; dt <= 12; dt++ {
		if math.Abs(w.Value(1, dt)-1.0/12) > 1e-12 {
			t.Errorf("β=0: w(P,%d) = %v, want uniform 1/12", dt, w.Value(1, dt))
		}
	}
}
