package waiting

import (
	"fmt"
	"math"
)

// UniformArrival is the dynamic-model waiting function of §III / Prop. 5:
// the *expected* deferred fraction for sessions whose arrival times are
// uniformly distributed within their period. A session arriving at offset
// u ∈ [0,1] into period i and deferring to period i+k waits k−u periods,
// so the expectation replaces the static (t+1)^{−β} kernel with
//
//	I_β(k) = ∫₀¹ (k−u+1)^{−β} du = ∫_k^{k+1} v^{−β} dv.
//
// Like PowerLaw it is normalized so that Σ_{k=1..n−1} w(P, k) = 1 at the
// maximum reward P, which keeps deferred-out volume within demand.
type UniformArrival struct {
	Beta float64
	c    float64
}

var _ Func = UniformArrival{}

// NewUniformArrival builds the normalized expected waiting function for an
// n-period day with maximum reward maxReward.
func NewUniformArrival(beta float64, n int, maxReward float64) (UniformArrival, error) {
	if beta < 0 || math.IsNaN(beta) {
		return UniformArrival{}, fmt.Errorf("patience index %v: %w", beta, ErrInvalid)
	}
	if n < 2 {
		return UniformArrival{}, fmt.Errorf("%d periods: %w", n, ErrInvalid)
	}
	if maxReward <= 0 || math.IsNaN(maxReward) {
		return UniformArrival{}, fmt.Errorf("max reward %v: %w", maxReward, ErrInvalid)
	}
	var s float64
	for k := 1; k <= n-1; k++ {
		s += powerIntegral(beta, k)
	}
	return UniformArrival{Beta: beta, c: 1 / (maxReward * s)}, nil
}

// Value implements Func.
func (w UniformArrival) Value(p float64, k int) float64 {
	if p <= 0 || k < 1 {
		return 0
	}
	return w.c * p * powerIntegral(w.Beta, k)
}

// DerivP implements Func.
func (w UniformArrival) DerivP(p float64, k int) float64 {
	if k < 1 {
		return 0
	}
	return w.c * powerIntegral(w.Beta, k)
}

// Norm returns the normalization constant.
func (w UniformArrival) Norm() float64 { return w.c }

// ValueAt evaluates the pointwise deferral probability for a session with
// an exact (continuous) wait of t periods: C·p/(t+1)^β with this family's
// normalization, so that Value(p, k) = E_u[ValueAt(p, k−u)] for u uniform
// on [0, 1). The session-level Monte-Carlo simulator samples with this
// kernel, making its population mean exactly the fluid model (Prop. 5).
func (w UniformArrival) ValueAt(p, t float64) float64 {
	if p <= 0 || t <= 0 {
		return 0
	}
	return w.c * p * math.Pow(t+1, -w.Beta)
}

// powerIntegral evaluates ∫_k^{k+1} v^{−β} dv (k ≥ 1).
//
// The textbook antiderivative (b^(1−β) − a^(1−β))/(1−β) cancels
// catastrophically as β → 1: both powers round to 1 ± ~1e−16 while their
// true difference shrinks like (1−β)·ln(b/a), so at β = 1 ± 1e−12 the
// quotient carried only ~2 correct digits. Factoring out a^(1−β) and
// using expm1 evaluates the same quantity without subtracting nearby
// numbers, and flows continuously into the β = 1 limit ln(b/a); the
// remaining equality is a division-by-zero guard at the exact singular
// point, not a convergence test.
func powerIntegral(beta float64, k int) float64 {
	a, b := float64(k), float64(k+1)
	lr := math.Log(b / a)
	delta := 1 - beta
	if delta == 0 {
		return lr
	}
	return math.Pow(a, delta) * math.Expm1(delta*lr) / delta
}
