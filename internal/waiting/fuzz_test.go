package waiting

import (
	"math"
	"testing"
)

// FuzzPowerLawInvariants checks the normalized power-law family on
// arbitrary parameters: range, normalization bound, monotonicity in p and
// t.
func FuzzPowerLawInvariants(f *testing.F) {
	f.Add(0.5, 12, 1.0, 0.3)
	f.Add(5.0, 48, 3.0, 1.4)
	f.Add(0.0, 4, 0.1, 0.05)
	f.Fuzz(func(t *testing.T, beta float64, n int, maxReward, p float64) {
		if math.IsNaN(beta) || math.IsInf(beta, 0) || math.IsNaN(maxReward) || math.IsNaN(p) {
			t.Skip()
		}
		beta = math.Abs(math.Mod(beta, 10))
		n = 2 + abs(n)%60
		maxReward = 0.01 + math.Abs(math.Mod(maxReward, 10))
		p = math.Abs(math.Mod(p, maxReward))
		w, err := NewPowerLaw(beta, n, maxReward)
		if err != nil {
			t.Fatalf("NewPowerLaw(%v,%d,%v): %v", beta, n, maxReward, err)
		}
		var sum float64
		prev := math.Inf(1)
		for dt := 1; dt <= n-1; dt++ {
			v := w.Value(p, dt)
			if v < 0 || v > 1 {
				t.Fatalf("w(%v,%d) = %v outside [0,1]", p, dt, v)
			}
			if v > prev+1e-12 {
				t.Fatalf("w increasing in t at dt=%d", dt)
			}
			prev = v
			sum += v
		}
		// Normalization: total deferral probability ≤ p/P ≤ 1.
		if sum > p/maxReward+1e-9 {
			t.Fatalf("Σw = %v exceeds p/P = %v", sum, p/maxReward)
		}
		// Monotone in p.
		if p > 0 && w.Value(p/2, 1) > w.Value(p, 1)+1e-12 {
			t.Fatal("w not increasing in p")
		}
	})
}

// FuzzDeferTime checks the modular deferral-time arithmetic.
func FuzzDeferTime(f *testing.F) {
	f.Add(1, 2, 12)
	f.Add(47, 3, 48)
	f.Fuzz(func(t *testing.T, from, to, n int) {
		n = 2 + abs(n)%100
		from = 1 + abs(from)%n
		to = 1 + abs(to)%n
		b := DeferTime(from, to, n)
		if b < 1 || b > n {
			t.Fatalf("DeferTime(%d,%d,%d) = %d outside [1,n]", from, to, n, b)
		}
		if (b-(to-from))%n != 0 {
			t.Fatalf("DeferTime(%d,%d,%d) = %d violates congruence", from, to, n, b)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return 0
		}
		return -x
	}
	return x
}
