package waiting

import (
	"errors"
	"math"
	"testing"
)

func TestNewUniformArrivalValidation(t *testing.T) {
	if _, err := NewUniformArrival(-1, 12, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative beta: err = %v, want ErrInvalid", err)
	}
	if _, err := NewUniformArrival(1, 1, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("one period: err = %v, want ErrInvalid", err)
	}
	if _, err := NewUniformArrival(1, 12, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero reward: err = %v, want ErrInvalid", err)
	}
}

func TestUniformArrivalNormalization(t *testing.T) {
	for _, beta := range PatienceIndices {
		w, err := NewUniformArrival(beta, 48, 1)
		if err != nil {
			t.Fatalf("NewUniformArrival(%v): %v", beta, err)
		}
		var s float64
		for k := 1; k <= 47; k++ {
			s += w.Value(1, k)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("β=%v: Σw(P,k) = %v, want 1", beta, s)
		}
	}
}

func TestPowerIntegralAgainstNumeric(t *testing.T) {
	for _, beta := range []float64{0.5, 1, 1.7, 3} {
		for _, k := range []int{1, 2, 7} {
			// Trapezoid with fine steps.
			const steps = 20000
			var num float64
			for i := 0; i < steps; i++ {
				v0 := float64(k) + float64(i)/steps
				v1 := float64(k) + float64(i+1)/steps
				num += (math.Pow(v0, -beta) + math.Pow(v1, -beta)) / 2 / steps
			}
			got := powerIntegral(beta, k)
			if math.Abs(got-num) > 1e-8 {
				t.Errorf("β=%v k=%d: integral %v, numeric %v", beta, k, got, num)
			}
		}
	}
}

func TestUniformArrivalAboveStaticForShortDeferrals(t *testing.T) {
	// The expected kernel ∫_k^{k+1} v^{−β} dv exceeds the static endpoint
	// kernel (k+1)^{−β} because v^{−β} is decreasing — sessions arriving
	// mid-period wait less than a full k periods.
	beta := 2.0
	for _, k := range []int{1, 3, 10} {
		if got, static := powerIntegral(beta, k), math.Pow(float64(k+1), -beta); got <= static {
			t.Errorf("k=%d: integral %v not above static kernel %v", k, got, static)
		}
	}
}

func TestUniformArrivalDecreasingInTime(t *testing.T) {
	w, err := NewUniformArrival(1.5, 24, 1)
	if err != nil {
		t.Fatalf("NewUniformArrival: %v", err)
	}
	prev := math.Inf(1)
	for k := 1; k < 24; k++ {
		v := w.Value(0.5, k)
		if v >= prev {
			t.Fatalf("not strictly decreasing at k=%d", k)
		}
		prev = v
	}
}

func TestUniformArrivalEdgeCases(t *testing.T) {
	w, _ := NewUniformArrival(1, 12, 1)
	if w.Value(0.5, 0) != 0 || w.Value(-0.1, 3) != 0 {
		t.Error("invalid args must give 0")
	}
	if w.DerivP(0.5, 0) != 0 {
		t.Error("DerivP at k=0 must be 0")
	}
	// DerivP consistent with Value slope (linear in p).
	if math.Abs(w.DerivP(0.7, 2)-w.Value(1, 2)) > 1e-14 {
		t.Error("DerivP must equal Value(1, k) for the linear family")
	}
}

func TestUniformArrivalZeroBeta(t *testing.T) {
	// β = 0: perfectly patient, kernel constant 1, so all deferral times
	// equally likely: w(P,k) = 1/(n−1).
	w, err := NewUniformArrival(0, 13, 2)
	if err != nil {
		t.Fatalf("NewUniformArrival: %v", err)
	}
	for k := 1; k <= 12; k++ {
		if math.Abs(w.Value(2, k)-1.0/12) > 1e-12 {
			t.Errorf("w(P,%d) = %v, want 1/12", k, w.Value(2, k))
		}
	}
}

func TestPowerIntegralContinuityNearBetaOne(t *testing.T) {
	// Regression for the catastrophic cancellation in the textbook
	// antiderivative (b^(1−β)−a^(1−β))/(1−β): at β = 1 ± 1e−12 the powers
	// both round to 1 ± ~1e−16 and the quotient kept only ~2 correct
	// digits (relative error ~1e−2 at k = 100). The expm1 form must flow
	// smoothly into the β = 1 branch from both sides.
	for _, k := range []int{1, 7, 100} {
		exact := math.Log(float64(k+1) / float64(k))
		for _, beta := range []float64{1 - 1e-12, 1 + 1e-12} {
			got := powerIntegral(beta, k)
			if rel := math.Abs(got-exact) / exact; rel > 1e-9 {
				t.Errorf("powerIntegral(%v, %d) = %v, want ≈ %v (rel err %.2e)",
					beta, k, got, exact, rel)
			}
		}
	}
}

func TestPowerIntegralClosedForms(t *testing.T) {
	// Spot-check the stable form against hand-computed integrals.
	cases := []struct {
		beta float64
		k    int
		want float64
	}{
		{2, 1, 0.5},                // ∫₁² v⁻² = 1 − 1/2
		{2, 3, 1.0 / 12},           // 1/3 − 1/4
		{0.5, 1, 2*math.Sqrt2 - 2}, // 2(√2 − 1)
		{0, 5, 1},                  // ∫ of 1
	}
	for _, c := range cases {
		if got := powerIntegral(c.beta, c.k); math.Abs(got-c.want) > 1e-14 {
			t.Errorf("powerIntegral(%v, %d) = %v, want %v", c.beta, c.k, got, c.want)
		}
	}
}
