package waiting

import "testing"

// Table V totals (MBps) for each 48-period pair, used to cross-check the
// Table VII distribution data.
var table5PairTotals = []float64{
	230, 200, 160, 130, 90, 80, 70, 80, 110, 130, 170, 230,
	200, 200, 200, 220, 220, 230, 220, 240, 230, 260, 270, 270,
}

func TestDist48MatchesTable5Totals(t *testing.T) {
	for r, row := range Dist48 {
		var s float64
		for _, v := range row {
			s += v
		}
		want := table5PairTotals[r] / 10 // Table VII is in 10 MBps
		if r == 22 {
			// Known inconsistency in the paper itself: Table VII's row for
			// periods 45&46 sums to 260 MBps while Table V lists 270 MBps.
			// We stay faithful to Table VII, the input the optimizer uses.
			want = 26
		}
		if s != want {
			t.Errorf("Dist48 row %d (periods %d&%d) sums to %v, want %v",
				r, 2*r+1, 2*r+2, s, want)
		}
	}
}

// Table IX totals for the 12-period model.
var table9Totals = []float64{22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26}

func TestDist12MatchesTable9Totals(t *testing.T) {
	for i, row := range Dist12 {
		var s float64
		for _, v := range row {
			s += v
		}
		if s != table9Totals[i] {
			t.Errorf("Dist12 period %d sums to %v, want %v", i+1, s, table9Totals[i])
		}
	}
}

func TestDistPerturbPeriod1Totals(t *testing.T) {
	for total, row := range DistPerturbPeriod1 {
		var s float64
		for _, v := range row {
			s += v
		}
		if s != float64(total) {
			t.Errorf("DistPerturbPeriod1[%d] sums to %v", total, s)
		}
	}
	// The study sweeps 18..26 around the 22 baseline.
	for total := 18; total <= 26; total++ {
		if _, ok := DistPerturbPeriod1[total]; !ok {
			t.Errorf("missing perturbation row for total %d", total)
		}
	}
}

func TestDemandExpansion(t *testing.T) {
	d48 := Demand48()
	if len(d48) != 48 {
		t.Fatalf("Demand48 has %d periods, want 48", len(d48))
	}
	// Both periods of a pair share a distribution.
	for i := 0; i < 48; i += 2 {
		for j := range d48[i] {
			if d48[i][j] != d48[i+1][j] {
				t.Errorf("periods %d and %d differ at type %d", i+1, i+2, j)
			}
		}
	}
	d12 := Demand12()
	if len(d12) != 12 {
		t.Fatalf("Demand12 has %d periods, want 12", len(d12))
	}
	totals := Totals(d12)
	for i, want := range table9Totals {
		if totals[i] != want {
			t.Errorf("Totals(Demand12)[%d] = %v, want %v", i, totals[i], want)
		}
	}
}

func TestDemandExpansionIndependence(t *testing.T) {
	a := Demand48()
	b := Demand48()
	a[0][0] = 999
	if b[0][0] == 999 {
		t.Error("Demand48 calls share backing storage")
	}
}

func TestPatienceCatalogue(t *testing.T) {
	if len(PatienceIndices) != 10 {
		t.Fatalf("%d patience indices, want 10", len(PatienceIndices))
	}
	for _, beta := range PatienceIndices {
		if _, ok := PatienceExamples[beta]; !ok {
			t.Errorf("no example application for β=%v", beta)
		}
	}
	// Strictly increasing from 0.5 to 5 in steps of 0.5.
	for i := 1; i < len(PatienceIndices); i++ {
		if PatienceIndices[i]-PatienceIndices[i-1] != 0.5 {
			t.Errorf("patience step at %d is %v, want 0.5", i, PatienceIndices[i]-PatienceIndices[i-1])
		}
	}
}

func TestDistWaitPerturbAllDiffersFromBaseline(t *testing.T) {
	// The perturbed distribution must differ from Table VIII somewhere
	// (that is the point of the robustness study) but keep all entries
	// non-negative.
	differs := false
	for i := range DistWaitPerturbAll {
		for j := range DistWaitPerturbAll[i] {
			if DistWaitPerturbAll[i][j] < 0 {
				t.Errorf("negative demand at (%d,%d)", i, j)
			}
			if DistWaitPerturbAll[i][j] != Dist12[i][j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("perturbed distribution identical to baseline")
	}
}
