package waiting

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPowerLawValidation(t *testing.T) {
	tests := []struct {
		name      string
		beta      float64
		n         int
		maxReward float64
	}{
		{name: "negative beta", beta: -1, n: 12, maxReward: 1},
		{name: "nan beta", beta: math.NaN(), n: 12, maxReward: 1},
		{name: "one period", beta: 1, n: 1, maxReward: 1},
		{name: "zero max reward", beta: 1, n: 12, maxReward: 0},
		{name: "negative max reward", beta: 1, n: 12, maxReward: -3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPowerLaw(tt.beta, tt.n, tt.maxReward); !errors.Is(err, ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestPowerLawNormalization(t *testing.T) {
	// At the maximum reward P, the total deferred fraction over all
	// possible deferral times must be exactly 1 (paper §II).
	for _, beta := range PatienceIndices {
		for _, tc := range []struct {
			n int
			p float64
		}{{12, 1}, {48, 3}, {24, 0.7}} {
			w, err := NewPowerLaw(beta, tc.n, tc.p)
			if err != nil {
				t.Fatalf("NewPowerLaw(%v): %v", beta, err)
			}
			var s float64
			for dt := 1; dt <= tc.n-1; dt++ {
				s += w.Value(tc.p, dt)
			}
			if math.Abs(s-1) > 1e-12 {
				t.Errorf("β=%v n=%d P=%v: Σw(P,t) = %v, want 1", beta, tc.n, tc.p, s)
			}
		}
	}
}

func TestPowerLawMonotoneInReward(t *testing.T) {
	w, err := NewPowerLaw(2, 12, 1)
	if err != nil {
		t.Fatalf("NewPowerLaw: %v", err)
	}
	if !(w.Value(0.5, 1) < w.Value(0.8, 1)) {
		t.Error("w not increasing in p")
	}
	if w.Value(0, 1) != 0 {
		t.Errorf("w(0,t) = %v, want 0", w.Value(0, 1))
	}
	if w.Value(-1, 1) != 0 {
		t.Errorf("w(p<0,t) = %v, want 0", w.Value(-1, 1))
	}
}

func TestPowerLawDecreasingInTime(t *testing.T) {
	// Users prefer shorter deferrals: w decreasing in t for β > 0.
	w, err := NewPowerLaw(1.5, 24, 1)
	if err != nil {
		t.Fatalf("NewPowerLaw: %v", err)
	}
	prev := math.Inf(1)
	for dt := 1; dt < 24; dt++ {
		v := w.Value(0.5, dt)
		if v >= prev {
			t.Fatalf("w not strictly decreasing at t=%d: %v ≥ %v", dt, v, prev)
		}
		prev = v
	}
}

func TestPowerLawPatienceOrdering(t *testing.T) {
	// For long deferrals, a patient session (small β) defers more than an
	// impatient one (large β) at the same reward — Fig. 3's crossover.
	patient, _ := NewPowerLaw(0.5, 12, 1)
	impatient, _ := NewPowerLaw(5, 12, 1)
	p := 0.49
	longDefer := 8
	if !(patient.Value(p, longDefer) > impatient.Value(p, longDefer)) {
		t.Errorf("patient w(%d) = %v not above impatient %v",
			longDefer, patient.Value(p, longDefer), impatient.Value(p, longDefer))
	}
	// And the impatient one concentrates more mass on t = 1.
	if !(impatient.Value(p, 1) > patient.Value(p, 1)) {
		t.Errorf("impatient w(1) = %v not above patient %v",
			impatient.Value(p, 1), patient.Value(p, 1))
	}
}

func TestPowerLawDerivP(t *testing.T) {
	w, _ := NewPowerLaw(2.5, 12, 1)
	const h = 1e-7
	for _, dt := range []int{1, 3, 11} {
		num := (w.Value(0.5+h, dt) - w.Value(0.5-h, dt)) / (2 * h)
		if math.Abs(num-w.DerivP(0.5, dt)) > 1e-6 {
			t.Errorf("t=%d: DerivP = %v, numeric %v", dt, w.DerivP(0.5, dt), num)
		}
	}
	if w.DerivP(0.5, 0) != 0 {
		t.Error("DerivP at t=0 must be 0")
	}
}

func TestPowerLawInvalidTime(t *testing.T) {
	w, _ := NewPowerLaw(1, 12, 1)
	if w.Value(0.5, 0) != 0 {
		t.Error("w(p, 0) must be 0 (no zero-time deferral)")
	}
	if w.Value(0.5, -3) != 0 {
		t.Error("w(p, t<0) must be 0")
	}
}

func TestConcaveValidation(t *testing.T) {
	for _, gamma := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewConcave(1, gamma, 12, 1); !errors.Is(err, ErrInvalid) {
			t.Errorf("gamma=%v: err = %v, want ErrInvalid", gamma, err)
		}
	}
}

func TestConcaveReducesToPowerLaw(t *testing.T) {
	pl, _ := NewPowerLaw(2, 12, 1)
	cc, err := NewConcave(2, 1, 12, 1)
	if err != nil {
		t.Fatalf("NewConcave: %v", err)
	}
	for _, dt := range []int{1, 5, 11} {
		if math.Abs(pl.Value(0.3, dt)-cc.Value(0.3, dt)) > 1e-14 {
			t.Errorf("γ=1 concave differs from power law at t=%d", dt)
		}
	}
}

func TestConcaveNormalizationAndConcavity(t *testing.T) {
	w, err := NewConcave(1.5, 0.5, 12, 2)
	if err != nil {
		t.Fatalf("NewConcave: %v", err)
	}
	var s float64
	for dt := 1; dt <= 11; dt++ {
		s += w.Value(2, dt)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("Σw(P,t) = %v, want 1", s)
	}
	// Concavity in p: midpoint value above chord.
	a, b := 0.2, 1.8
	mid := w.Value((a+b)/2, 3)
	chord := (w.Value(a, 3) + w.Value(b, 3)) / 2
	if mid <= chord {
		t.Errorf("not concave: w(mid)=%v ≤ chord %v", mid, chord)
	}
}

func TestDeferTime(t *testing.T) {
	tests := []struct {
		from, to, n, want int
	}{
		{1, 2, 12, 1},
		{1, 12, 12, 11},
		{12, 1, 12, 1}, // wraps to next day
		{10, 2, 12, 4}, // wraps
		{5, 5, 12, 12}, // same period = full day
		{48, 1, 48, 1}, // wrap at 48
		{3, 1, 48, 46}, // long wrap
	}
	for _, tt := range tests {
		if got := DeferTime(tt.from, tt.to, tt.n); got != tt.want {
			t.Errorf("DeferTime(%d,%d,%d) = %d, want %d", tt.from, tt.to, tt.n, got, tt.want)
		}
	}
}

// Property: DeferTime is always in [1, n] and satisfies the congruence
// b ≡ to−from (mod n).
func TestDeferTimeProperty(t *testing.T) {
	f := func(from, to uint8, nn uint8) bool {
		n := 2 + int(nn)%47
		fr := 1 + int(from)%n
		toP := 1 + int(to)%n
		b := DeferTime(fr, toP, n)
		if b < 1 || b > n {
			return false
		}
		return (b-(toP-fr))%n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
