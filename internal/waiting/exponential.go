package waiting

import (
	"fmt"
	"math"
)

// ExpDecay is an alternative waiting-function family with exponential
// time-decay, w_β(p, t) = C·p·e^{−βt}. §IV says "the ISP chooses a
// parametrized family"; the power law is its running example, and this
// family exercises the same interfaces with a much thinner patience tail
// (impatient users vanish faster than any polynomial). It satisfies
// Prop. 3's conditions (linear, hence concave, in p) and is normalized
// like the others: Σ_{t=1..n−1} w(P, t) = 1.
type ExpDecay struct {
	Beta float64
	c    float64
}

var _ Func = ExpDecay{}

// NewExpDecay builds a normalized exponential-decay waiting function.
func NewExpDecay(beta float64, n int, maxReward float64) (ExpDecay, error) {
	if beta < 0 || math.IsNaN(beta) {
		return ExpDecay{}, fmt.Errorf("decay rate %v: %w", beta, ErrInvalid)
	}
	if n < 2 {
		return ExpDecay{}, fmt.Errorf("%d periods: %w", n, ErrInvalid)
	}
	if maxReward <= 0 || math.IsNaN(maxReward) {
		return ExpDecay{}, fmt.Errorf("max reward %v: %w", maxReward, ErrInvalid)
	}
	var s float64
	for t := 1; t <= n-1; t++ {
		s += math.Exp(-beta * float64(t))
	}
	return ExpDecay{Beta: beta, c: 1 / (maxReward * s)}, nil
}

// Value implements Func.
func (w ExpDecay) Value(p float64, t int) float64 {
	if p <= 0 || t < 1 {
		return 0
	}
	return w.c * p * math.Exp(-w.Beta*float64(t))
}

// DerivP implements Func.
func (w ExpDecay) DerivP(p float64, t int) float64 {
	if t < 1 {
		return 0
	}
	return w.c * math.Exp(-w.Beta*float64(t))
}

// Norm returns the normalization constant.
func (w ExpDecay) Norm() float64 { return w.c }
