package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewDropTailValidation(t *testing.T) {
	s := NewSim()
	if _, err := NewDropTailLink(s, 0, 10); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero rate: err = %v, want ErrBadParam", err)
	}
	if _, err := NewDropTailLink(s, 10, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero buffer: err = %v, want ErrBadParam", err)
	}
}

func TestDropTailSinglePacket(t *testing.T) {
	s := NewSim()
	l, err := NewDropTailLink(s, 10, 120) // 10 MB/s
	if err != nil {
		t.Fatalf("NewDropTailLink: %v", err)
	}
	var deliveredAt float64
	l.OnDeliver(func(Packet) { deliveredAt = s.Now() })
	ok, err := l.Enqueue(Packet{FlowID: 1, Bytes: 1500})
	if err != nil || !ok {
		t.Fatalf("Enqueue: ok=%v err=%v", ok, err)
	}
	s.Run(1)
	// 1500 B at 10 MB/s = 150 µs.
	if math.Abs(deliveredAt-1500.0/10e6) > 1e-12 {
		t.Errorf("delivered at %v, want 150 µs", deliveredAt)
	}
	if l.Delivered != 1 || l.Dropped != 0 {
		t.Errorf("counters: delivered %d, dropped %d", l.Delivered, l.Dropped)
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 1, 10)
	var order []int
	l.OnDeliver(func(p Packet) { order = append(order, p.FlowID) })
	for i := 1; i <= 5; i++ {
		if ok, err := l.Enqueue(Packet{FlowID: i, Bytes: 100}); err != nil || !ok {
			t.Fatalf("Enqueue %d: ok=%v err=%v", i, ok, err)
		}
	}
	s.Run(1)
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("delivery order %v, want FIFO", order)
		}
	}
}

func TestDropTailBufferOverflow(t *testing.T) {
	// Buffer of 120 packets plus one in service: the 122nd synchronous
	// arrival is the first drop, exactly the paper's testbed queue.
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	var drops int
	for i := 0; i < 150; i++ {
		ok, err := l.Enqueue(Packet{FlowID: i, Bytes: 1500})
		if err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		if !ok {
			drops++
		}
	}
	if want := 150 - 121; drops != want {
		t.Errorf("drops = %d, want %d (120 queued + 1 in service)", drops, want)
	}
	if l.MaxQueue != 120 {
		t.Errorf("MaxQueue = %d, want 120", l.MaxQueue)
	}
	s.Run(10)
	if l.Delivered != 121 {
		t.Errorf("delivered = %d, want 121", l.Delivered)
	}
	if lr := l.LossRate(); math.Abs(lr-float64(29)/150) > 1e-12 {
		t.Errorf("LossRate = %v, want 29/150", lr)
	}
}

func TestDropTailThroughputAtSaturation(t *testing.T) {
	// Keep the link saturated for 1 s; delivered volume ≈ rate.
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	// Feed a packet on every delivery to stay busy.
	l.OnDeliver(func(Packet) {
		if s.Now() < 1 {
			// Errors are impossible for valid packets on a draining queue.
			if _, err := l.Enqueue(Packet{Bytes: 1500}); err != nil {
				t.Errorf("refill: %v", err)
			}
		}
	})
	if _, err := l.Enqueue(Packet{Bytes: 1500}); err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	if math.Abs(l.DeliveredBytes-10e6) > 1500*2 {
		t.Errorf("delivered %v bytes in 1 s, want ≈1e7", l.DeliveredBytes)
	}
	if u := l.Utilization(); math.Abs(u-1) > 0.01 {
		t.Errorf("utilization %v, want ≈1", u)
	}
}

func TestDropTailIdleUtilization(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 10)
	_ = s.At(1, func() {}) // advance the clock with an empty event
	s.Run(1)
	if u := l.Utilization(); u != 0 {
		t.Errorf("idle utilization %v, want 0", u)
	}
}

func TestDropTailBadPacket(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 10)
	if _, err := l.Enqueue(Packet{Bytes: 0}); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero-size packet: err = %v, want ErrBadParam", err)
	}
	if _, err := l.Enqueue(Packet{Bytes: -5}); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative packet: err = %v, want ErrBadParam", err)
	}
}

func TestDropTailPoissonOverload(t *testing.T) {
	// Offered load 2× capacity: loss rate near 50%, queue pinned at the
	// buffer limit — the congestion regime TDP is meant to relieve.
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	rng := rand.New(rand.NewSource(3))
	const pkt = 1500
	arrivalRate := 2 * 10e6 / pkt // packets per second at 2× capacity
	tt := 0.0
	for {
		tt += rng.ExpFloat64() / arrivalRate
		if tt >= 2 {
			break
		}
		if err := s.At(tt, func() {
			if _, err := l.Enqueue(Packet{Bytes: pkt}); err != nil {
				t.Errorf("enqueue: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2)
	if lr := l.LossRate(); lr < 0.4 || lr > 0.6 {
		t.Errorf("loss rate %v at 2× overload, want ≈0.5", lr)
	}
	if u := l.Utilization(); u < 0.98 {
		t.Errorf("utilization %v under overload, want ≈1", u)
	}
}
