package netsim

import (
	"fmt"
	"math"
)

// TCPSource is a simplified TCP-Reno sender driving a DropTailLink: slow
// start, congestion avoidance, multiplicative decrease on drops, and a
// bandwidth-delay-product's worth of self-clocking via ACKs returning one
// RTT after a packet enters service.
//
// The paper's testbed carried real TCP through its 10 MBps / 120-packet
// bottleneck (its background-traffic methodology cites a TCP-variants
// study); this source reproduces the qualitative dynamics that matter at
// that queue — AIMD sawtooth, RTT unfairness, loss synchronization —
// without modeling SACK/timeout minutiae.
type TCPSource struct {
	sim  *Sim
	link *DropTailLink

	// FlowID tags this source's packets.
	FlowID int
	// RTT is the two-way propagation delay in seconds (queueing adds to
	// it implicitly through link service).
	RTT float64
	// MSS is the segment size in bytes.
	MSS float64
	// TotalBytes is the transfer size; 0 means unbounded (background).
	TotalBytes float64

	cwnd     float64 // congestion window, in segments
	ssthresh float64
	inFlight int
	sentSeq  int // next segment index to send
	ackedSeq int // segments acknowledged
	finished bool
	done     func(*TCPSource)

	// Retransmits counts loss events (each drop forces one resend).
	Retransmits int
}

// NewTCPSource attaches a sender to a link. onDone (optional) fires when
// TotalBytes are acknowledged.
func NewTCPSource(sim *Sim, link *DropTailLink, flowID int, rtt, mss, totalBytes float64,
	onDone func(*TCPSource)) (*TCPSource, error) {
	if sim == nil || link == nil {
		return nil, fmt.Errorf("nil sim or link: %w", ErrBadParam)
	}
	if rtt <= 0 || mss <= 0 || math.IsNaN(rtt) || math.IsNaN(mss) {
		return nil, fmt.Errorf("rtt %v, mss %v: %w", rtt, mss, ErrBadParam)
	}
	if totalBytes < 0 || math.IsNaN(totalBytes) {
		return nil, fmt.Errorf("total %v: %w", totalBytes, ErrBadParam)
	}
	return &TCPSource{
		sim:        sim,
		link:       link,
		FlowID:     flowID,
		RTT:        rtt,
		MSS:        mss,
		TotalBytes: totalBytes,
		cwnd:       2,
		ssthresh:   64,
		done:       onDone,
	}, nil
}

// Start begins the transfer.
func (t *TCPSource) Start() {
	t.pump()
}

// Cwnd returns the current congestion window in segments.
func (t *TCPSource) Cwnd() float64 { return t.cwnd }

// AckedBytes returns the volume acknowledged so far.
func (t *TCPSource) AckedBytes() float64 { return float64(t.ackedSeq) * t.MSS }

// Finished reports transfer completion.
func (t *TCPSource) Finished() bool { return t.finished }

// segmentsTotal returns the number of segments in the transfer (0 =
// unbounded).
func (t *TCPSource) segmentsTotal() int {
	if t.TotalBytes <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(t.TotalBytes / t.MSS))
}

// pump sends while the window allows.
func (t *TCPSource) pump() {
	for !t.finished && t.inFlight < int(t.cwnd) && t.sentSeq < t.segmentsTotal() {
		t.sendSegment()
	}
}

func (t *TCPSource) sendSegment() {
	t.sentSeq++
	t.inFlight++
	ok, err := t.link.Enqueue(Packet{FlowID: t.FlowID, Bytes: t.MSS})
	if err != nil {
		panic(fmt.Sprintf("netsim: tcp enqueue: %v", err))
	}
	if !ok {
		// Droptail loss, detected a RTT later via missing ACK (abstracted
		// as an immediate scheduled loss event): multiplicative decrease
		// and retransmission.
		t.Retransmits++
		t.sentSeq--
		if err := t.sim.After(t.RTT, func() { t.onLoss() }); err != nil {
			panic(fmt.Sprintf("netsim: tcp loss schedule: %v", err))
		}
		return
	}
	// The ACK returns one RTT after the segment is delivered; approximate
	// delivery latency by watching our own enqueue order: schedule the ACK
	// when the link hands the packet over. We hook delivery per packet via
	// a shared dispatcher (see attachACKDispatch).
	t.ensureDispatch()
}

// onLoss halves the window (Reno multiplicative decrease).
func (t *TCPSource) onLoss() {
	if t.finished {
		return
	}
	t.ssthresh = math.Max(t.cwnd/2, 2)
	t.cwnd = t.ssthresh
	t.inFlight-- // the lost segment is no longer outstanding
	t.pump()
}

// onAck advances the window (slow start below ssthresh, else congestion
// avoidance) and keeps pumping.
func (t *TCPSource) onAck() {
	if t.finished {
		return
	}
	t.inFlight--
	t.ackedSeq++
	if t.cwnd < t.ssthresh {
		t.cwnd++
	} else {
		t.cwnd += 1 / t.cwnd
	}
	if t.TotalBytes > 0 && t.ackedSeq >= t.segmentsTotal() {
		t.finished = true
		if t.done != nil {
			t.done(t)
		}
		return
	}
	t.pump()
}

// ackDispatch fans link deliveries out to the owning TCP sources.
type ackDispatch struct {
	sources map[int]*TCPSource
}

// ensureDispatch installs the shared delivery hook on the link (idempotent
// per link; multiple sources on one link share it).
func (t *TCPSource) ensureDispatch() {
	if t.link.onDeliver == nil {
		d := &ackDispatch{sources: make(map[int]*TCPSource)}
		t.link.OnDeliver(func(p Packet) {
			if src, ok := d.sources[p.FlowID]; ok {
				// ACK returns after the propagation RTT.
				if err := src.sim.After(src.RTT, func() { src.onAck() }); err != nil {
					panic(fmt.Sprintf("netsim: tcp ack schedule: %v", err))
				}
			}
		})
		t.link.ackDispatch = d
	}
	if d, ok := t.link.ackDispatch.(*ackDispatch); ok {
		d.sources[t.FlowID] = t
	}
}
