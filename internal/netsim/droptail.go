package netsim

import (
	"fmt"
	"math"
)

// Packet is one unit of transmission through a DropTailLink.
type Packet struct {
	// FlowID tags the owning flow for per-flow accounting.
	FlowID int
	// Bytes is the packet size (the paper's testbed uses 1500 B MTU).
	Bytes float64
}

// DropTailLink is a packet-level FIFO bottleneck with a finite buffer —
// the paper's testbed queue (10 MBps, 120-packet buffer, footnote 7).
// Packets arriving to a full buffer are dropped from the tail.
//
// It complements PSLink: PSLink is the fluid model the emulation uses for
// volume accounting; DropTailLink reproduces queueing behavior (loss,
// delay, occupancy) at the packet level when that fidelity matters.
type DropTailLink struct {
	sim     *Sim
	rate    float64 // bytes per second
	buffer  int     // max queued packets (excluding the one in service)
	queue   []Packet
	serving bool

	// Delivered and Dropped count packets; DeliveredBytes and
	// DroppedBytes count volume.
	Delivered, Dropped           int
	DeliveredBytes, DroppedBytes float64
	// MaxQueue is the high-water mark of queue occupancy.
	MaxQueue int
	// busySince/busyTime track utilization.
	busySince float64
	busyTime  float64

	onDeliver func(Packet)
	// ackDispatch holds the shared TCP ACK fan-out when TCPSources are
	// attached (see tcp.go).
	ackDispatch any
}

// NewDropTailLink creates a droptail bottleneck with the given rate in
// megabytes per second and buffer capacity in packets.
func NewDropTailLink(sim *Sim, rateMBps float64, bufferPackets int) (*DropTailLink, error) {
	if rateMBps <= 0 || math.IsNaN(rateMBps) {
		return nil, fmt.Errorf("rate %v MBps: %w", rateMBps, ErrBadParam)
	}
	if bufferPackets < 1 {
		return nil, fmt.Errorf("buffer %d packets: %w", bufferPackets, ErrBadParam)
	}
	return &DropTailLink{
		sim:    sim,
		rate:   rateMBps * 1e6,
		buffer: bufferPackets,
	}, nil
}

// OnDeliver installs a delivery callback (e.g. for RTT accounting).
func (l *DropTailLink) OnDeliver(fn func(Packet)) { l.onDeliver = fn }

// QueueLen returns the current number of queued packets (excluding the
// packet in service).
func (l *DropTailLink) QueueLen() int { return len(l.queue) }

// Utilization returns the fraction of elapsed simulation time the link
// has spent transmitting.
func (l *DropTailLink) Utilization() float64 {
	now := l.sim.Now()
	if now == 0 {
		return 0
	}
	busy := l.busyTime
	if l.serving {
		busy += now - l.busySince
	}
	return busy / now
}

// Enqueue offers a packet to the link; it returns false if the buffer is
// full and the packet was dropped.
func (l *DropTailLink) Enqueue(p Packet) (bool, error) {
	if p.Bytes <= 0 || math.IsNaN(p.Bytes) {
		return false, fmt.Errorf("packet of %v bytes: %w", p.Bytes, ErrBadParam)
	}
	if !l.serving {
		// Idle link: serve immediately.
		l.startService(p)
		return true, nil
	}
	if len(l.queue) >= l.buffer {
		l.Dropped++
		l.DroppedBytes += p.Bytes
		return false, nil
	}
	l.queue = append(l.queue, p)
	if len(l.queue) > l.MaxQueue {
		l.MaxQueue = len(l.queue)
	}
	return true, nil
}

func (l *DropTailLink) startService(p Packet) {
	l.serving = true
	l.busySince = l.sim.Now()
	txTime := p.Bytes / l.rate
	// The schedule cannot fail: txTime ≥ 0 by validation above.
	if err := l.sim.After(txTime, func() { l.finishService(p) }); err != nil {
		panic(fmt.Sprintf("netsim: droptail schedule: %v", err))
	}
}

func (l *DropTailLink) finishService(p Packet) {
	l.Delivered++
	l.DeliveredBytes += p.Bytes
	l.busyTime += l.sim.Now() - l.busySince
	l.serving = false
	if l.onDeliver != nil {
		l.onDeliver(p)
	}
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.startService(next)
	}
}

// LossRate returns the fraction of offered packets dropped so far.
func (l *DropTailLink) LossRate() float64 {
	total := l.Delivered + l.Dropped + len(l.queue)
	if l.serving {
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(l.Dropped) / float64(total)
}
