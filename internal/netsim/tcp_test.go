package netsim

import (
	"errors"
	"math"
	"testing"
)

func TestNewTCPSourceValidation(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	if _, err := NewTCPSource(nil, l, 1, 0.05, 1500, 1e6, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("nil sim: err = %v, want ErrBadParam", err)
	}
	if _, err := NewTCPSource(s, nil, 1, 0.05, 1500, 1e6, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("nil link: err = %v, want ErrBadParam", err)
	}
	if _, err := NewTCPSource(s, l, 1, 0, 1500, 1e6, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero rtt: err = %v, want ErrBadParam", err)
	}
	if _, err := NewTCPSource(s, l, 1, 0.05, 0, 1e6, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero mss: err = %v, want ErrBadParam", err)
	}
	if _, err := NewTCPSource(s, l, 1, 0.05, 1500, -1, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative total: err = %v, want ErrBadParam", err)
	}
}

func TestTCPSingleFlowCompletes(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120) // 10 MB/s
	var doneAt float64
	src, err := NewTCPSource(s, l, 1, 0.02, 1500, 5e6, func(ts *TCPSource) {
		doneAt = s.Now()
	})
	if err != nil {
		t.Fatalf("NewTCPSource: %v", err)
	}
	src.Start()
	s.Run(60)
	if !src.Finished() {
		t.Fatalf("transfer incomplete: acked %v of 5e6 (cwnd %v)", src.AckedBytes(), src.Cwnd())
	}
	// 5 MB at 10 MB/s is 0.5 s of pure serialization; with slow-start and
	// 20 ms ACK clocking it must still land within a few seconds.
	if doneAt <= 0.5 || doneAt > 10 {
		t.Errorf("finished at %v s, want between serialization bound and 10 s", doneAt)
	}
	if got := src.AckedBytes(); got < 5e6 {
		t.Errorf("acked %v bytes, want ≥ 5e6", got)
	}
}

func TestTCPSlowStartGrowsWindow(t *testing.T) {
	s := NewSim()
	l, _ := NewDropTailLink(s, 100, 1000) // fat link: no drops
	src, err := NewTCPSource(s, l, 1, 0.05, 1500, 0 /* unbounded */, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	s.Run(0.6) // a dozen RTTs
	if src.Cwnd() <= 8 {
		t.Errorf("cwnd = %v after slow start, want substantial growth", src.Cwnd())
	}
}

func TestTCPLossHalvesWindow(t *testing.T) {
	// A tiny buffer forces drops; the window must experience
	// multiplicative decrease (retransmits observed, cwnd bounded).
	s := NewSim()
	l, _ := NewDropTailLink(s, 1, 5) // 1 MB/s, 5-packet buffer
	src, err := NewTCPSource(s, l, 1, 0.01, 1500, 3e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	s.Run(20)
	if src.Retransmits == 0 {
		t.Error("no losses on an overbuffered flow through a 5-packet queue")
	}
	if src.Cwnd() < 1 {
		t.Errorf("cwnd collapsed to %v", src.Cwnd())
	}
	// AIMD keeps the window near the path capacity, far below slow-start
	// explosion.
	if src.Cwnd() > 200 {
		t.Errorf("cwnd = %v despite persistent loss", src.Cwnd())
	}
}

func TestTCPFairnessEqualRTT(t *testing.T) {
	// Two flows, same RTT, shared bottleneck: long-run throughputs within
	// a factor of two of each other.
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	a, err := NewTCPSource(s, l, 1, 0.03, 1500, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPSource(s, l, 2, 0.03, 1500, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	s.Run(30)
	ab, bb := a.AckedBytes(), b.AckedBytes()
	if ab == 0 || bb == 0 {
		t.Fatalf("starved flow: %v / %v", ab, bb)
	}
	ratio := ab / bb
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("throughput ratio %v outside [0.5, 2]", ratio)
	}
	// Together they should drive the link hard.
	if got := l.DeliveredBytes; got < 0.5*10e6*30 {
		t.Errorf("delivered %v bytes in 30 s, want ≥ half capacity", got)
	}
}

func TestTCPRTTUnfairness(t *testing.T) {
	// Classic TCP property: the short-RTT flow out-competes the long-RTT
	// flow on a shared bottleneck.
	s := NewSim()
	l, _ := NewDropTailLink(s, 5, 60)
	short, err := NewTCPSource(s, l, 1, 0.01, 1500, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewTCPSource(s, l, 2, 0.2, 1500, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	short.Start()
	long.Start()
	s.Run(30)
	if !(short.AckedBytes() > long.AckedBytes()) {
		t.Errorf("short-RTT flow (%v B) did not beat long-RTT flow (%v B)",
			short.AckedBytes(), long.AckedBytes())
	}
}

func TestTCPThroughputTracksCapacity(t *testing.T) {
	// A single long flow on the paper's 10 MBps / 120-packet bottleneck
	// should sustain most of the capacity.
	s := NewSim()
	l, _ := NewDropTailLink(s, 10, 120)
	src, err := NewTCPSource(s, l, 1, 0.05, 1500, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	s.Run(20)
	rate := src.AckedBytes() / 20
	if rate < 0.5*10e6 {
		t.Errorf("sustained %v B/s, want ≥ 50%% of 10 MB/s", rate)
	}
	if math.IsNaN(rate) {
		t.Fatal("NaN rate")
	}
}
