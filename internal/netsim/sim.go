// Package netsim is a small discrete-event network simulator: an event
// loop with a monotonic clock plus a processor-sharing bottleneck link.
//
// It stands in for the paper's §VI Linux testbed (Fig. 10): a 10 MBps
// bottleneck shared by user and background flows. Fidelity is at the flow
// level — concurrent flows share the bottleneck with RTT-dependent weights
// (TCP throughput falls with round-trip time), which captures the
// quantities the paper's experiment reports (per-class volumes moved per
// period) without simulating individual packets.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrBadParam is returned for invalid simulator parameters.
var ErrBadParam = errors.New("netsim: invalid parameter")

// event is a scheduled callback.
type event struct {
	time float64
	seq  int64 // tie-break so ordering is deterministic
	fn   func()
}

// eventQueue is a min-heap on (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation loop.
type Sim struct {
	now    float64
	seq    int64
	events eventQueue
}

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at an absolute time ≥ now.
func (s *Sim) At(t float64, fn func()) error {
	if t < s.now || math.IsNaN(t) {
		return fmt.Errorf("schedule at %v before now %v: %w", t, s.now, ErrBadParam)
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("delay %v: %w", delay, ErrBadParam)
	}
	return s.At(s.now+delay, fn)
}

// Run processes events until the queue empties or the clock passes until.
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.time > until {
			break
		}
		heap.Pop(&s.events)
		s.now = next.time
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (for tests/diagnostics).
func (s *Sim) Pending() int { return s.events.Len() }
