package netsim

import (
	"errors"
	"math"
	"testing"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	if err := s.At(3, func() { order = append(order, 3) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.At(1, func() { order = append(order, 1) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.At(2, func() { order = append(order, 2) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, want 10 (run advances to horizon)", s.Now())
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.At(1, func() { order = append(order, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimPastScheduleRejected(t *testing.T) {
	s := NewSim()
	_ = s.At(5, func() {})
	s.Run(5)
	if err := s.At(3, func() {}); !errors.Is(err, ErrBadParam) {
		t.Errorf("past schedule: err = %v, want ErrBadParam", err)
	}
	if err := s.After(-1, func() {}); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative delay: err = %v, want ErrBadParam", err)
	}
}

func TestSimRunStopsAtHorizon(t *testing.T) {
	s := NewSim()
	fired := false
	_ = s.At(100, func() { fired = true })
	s.Run(50)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run(200)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []float64
	_ = s.At(1, func() {
		times = append(times, s.Now())
		_ = s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestPSLinkSingleFlow(t *testing.T) {
	s := NewSim()
	l, err := NewPSLink(s, 10) // 10 MB/s
	if err != nil {
		t.Fatalf("NewPSLink: %v", err)
	}
	var done *Flow
	f := &Flow{ID: 1, Class: "ftp", User: "u1", Size: 50, Weight: 1}
	if err := l.Start(f, func(f *Flow) { done = f }); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.Run(100)
	if done == nil {
		t.Fatal("flow did not complete")
	}
	if math.Abs(done.Finished-5) > 1e-9 {
		t.Errorf("finished at %v, want 5 (50 MB at 10 MB/s)", done.Finished)
	}
	if math.Abs(l.TotalServed()-50) > 1e-9 {
		t.Errorf("TotalServed = %v, want 50", l.TotalServed())
	}
	if math.Abs(l.ServedByUser["u1"]-50) > 1e-9 || math.Abs(l.ServedByClass["ftp"]-50) > 1e-9 {
		t.Error("per-user/class accounting wrong")
	}
}

func TestPSLinkEqualSharing(t *testing.T) {
	s := NewSim()
	l, _ := NewPSLink(s, 10)
	var finish []float64
	onDone := func(f *Flow) { finish = append(finish, f.Finished) }
	// Two equal flows of 50 MB: each gets 5 MB/s → both done at t=10.
	_ = l.Start(&Flow{ID: 1, Size: 50, Weight: 1}, onDone)
	_ = l.Start(&Flow{ID: 2, Size: 50, Weight: 1}, onDone)
	s.Run(100)
	if len(finish) != 2 {
		t.Fatalf("%d completions, want 2", len(finish))
	}
	for _, ft := range finish {
		if math.Abs(ft-10) > 1e-9 {
			t.Errorf("finish %v, want 10", ft)
		}
	}
}

func TestPSLinkWeightedSharing(t *testing.T) {
	// Weight 3 vs 1: the heavy flow gets 7.5 MB/s, so its 30 MB finish at
	// t=4; afterwards the light flow gets the full 10 MB/s.
	s := NewSim()
	l, _ := NewPSLink(s, 10)
	var heavyDone, lightDone float64
	_ = l.Start(&Flow{ID: 1, Size: 30, Weight: 3}, func(f *Flow) { heavyDone = f.Finished })
	_ = l.Start(&Flow{ID: 2, Size: 20, Weight: 1}, func(f *Flow) { lightDone = f.Finished })
	s.Run(100)
	if math.Abs(heavyDone-4) > 1e-9 {
		t.Errorf("heavy finished %v, want 4", heavyDone)
	}
	// Light: 2.5 MB/s × 4 s = 10 MB served, 10 MB left at 10 MB/s → t = 5.
	if math.Abs(lightDone-5) > 1e-9 {
		t.Errorf("light finished %v, want 5", lightDone)
	}
}

func TestPSLinkLateArrival(t *testing.T) {
	s := NewSim()
	l, _ := NewPSLink(s, 10)
	var first, second float64
	_ = l.Start(&Flow{ID: 1, Size: 40, Weight: 1}, func(f *Flow) { first = f.Finished })
	_ = s.At(2, func() {
		_ = l.Start(&Flow{ID: 2, Size: 10, Weight: 1}, func(f *Flow) { second = f.Finished })
	})
	s.Run(100)
	// Flow 1 alone for 2 s (20 MB), then shares: 20 MB left at 5 MB/s and
	// flow 2 has 10 MB at 5 MB/s → flow 2 done at t=4, flow 1 serves its
	// last 10 MB at full speed → t = 5.
	if math.Abs(second-4) > 1e-9 {
		t.Errorf("flow 2 finished %v, want 4", second)
	}
	if math.Abs(first-5) > 1e-9 {
		t.Errorf("flow 1 finished %v, want 5", first)
	}
}

func TestPSLinkValidation(t *testing.T) {
	s := NewSim()
	if _, err := NewPSLink(s, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero capacity: err = %v, want ErrBadParam", err)
	}
	l, _ := NewPSLink(s, 10)
	if err := l.Start(&Flow{ID: 1, Size: 0, Weight: 1}, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero size: err = %v, want ErrBadParam", err)
	}
	if err := l.Start(&Flow{ID: 1, Size: 1, Weight: 0}, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero weight: err = %v, want ErrBadParam", err)
	}
	if err := l.Start(&Flow{ID: 1, Size: 1, Weight: 1}, nil); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := l.Start(&Flow{ID: 1, Size: 1, Weight: 1}, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("duplicate ID: err = %v, want ErrBadParam", err)
	}
}

func TestPSLinkConservation(t *testing.T) {
	// Total served never exceeds capacity × time and equals it while the
	// link is saturated (work conservation).
	s := NewSim()
	l, _ := NewPSLink(s, 10)
	for i := 0; i < 5; i++ {
		_ = l.Start(&Flow{ID: i, Size: 100, Weight: float64(i + 1)}, nil)
	}
	s.Run(7)
	l.Sync()
	if got := l.TotalServed(); math.Abs(got-70) > 1e-6 {
		t.Errorf("TotalServed = %v, want 70 (work conserving)", got)
	}
	if l.Utilization() != 1 {
		t.Error("saturated link must report utilization 1")
	}
}

func TestPSLinkIdleUtilization(t *testing.T) {
	s := NewSim()
	l, _ := NewPSLink(s, 10)
	if l.Utilization() != 0 {
		t.Error("idle link must report utilization 0")
	}
}
