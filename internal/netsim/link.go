package netsim

import (
	"fmt"
	"math"
)

// Flow is one transfer crossing the bottleneck.
type Flow struct {
	// ID is caller-assigned and unique.
	ID int
	// Class tags the flow (e.g. web/ftp/video/background) for accounting.
	Class string
	// User tags which user generated it ("" for background).
	User string
	// Size is the flow volume in megabytes.
	Size float64
	// Weight scales the flow's share of the bottleneck; TCP-like flows
	// use ∝ 1/RTT. Must be > 0.
	Weight float64

	// Arrived and Finished are set by the link (Finished is NaN while the
	// flow is in progress).
	Arrived, Finished float64

	served    float64
	completeC func(*Flow)
}

// Remaining returns the unserved megabytes.
func (f *Flow) Remaining() float64 { return f.Size - f.served }

// Served returns the megabytes served so far.
func (f *Flow) Served() float64 { return f.served }

// PSLink is a processor-sharing bottleneck: active flows split the
// capacity in proportion to their weights, the fluid limit of many TCP
// flows sharing a droptail queue.
type PSLink struct {
	sim      *Sim
	capacity float64 // MB per second
	active   map[int]*Flow
	lastAdv  float64
	gen      int64 // invalidates stale completion events

	// ServedByClass accumulates delivered volume per class.
	ServedByClass map[string]float64
	// ServedByUser accumulates delivered volume per user.
	ServedByUser map[string]float64
	totalServed  float64
}

// NewPSLink creates a link with the given capacity in MB/s attached to the
// simulator.
func NewPSLink(sim *Sim, capacityMBps float64) (*PSLink, error) {
	if capacityMBps <= 0 || math.IsNaN(capacityMBps) {
		return nil, fmt.Errorf("capacity %v: %w", capacityMBps, ErrBadParam)
	}
	return &PSLink{
		sim:           sim,
		capacity:      capacityMBps,
		active:        make(map[int]*Flow),
		lastAdv:       sim.Now(),
		ServedByClass: make(map[string]float64),
		ServedByUser:  make(map[string]float64),
	}, nil
}

// Start admits a flow now; onComplete (optional) fires when it finishes.
func (l *PSLink) Start(f *Flow, onComplete func(*Flow)) error {
	if f.Size <= 0 || math.IsNaN(f.Size) {
		return fmt.Errorf("flow %d size %v: %w", f.ID, f.Size, ErrBadParam)
	}
	if f.Weight <= 0 || math.IsNaN(f.Weight) {
		return fmt.Errorf("flow %d weight %v: %w", f.ID, f.Weight, ErrBadParam)
	}
	if _, dup := l.active[f.ID]; dup {
		return fmt.Errorf("flow %d already active: %w", f.ID, ErrBadParam)
	}
	l.advance()
	f.Arrived = l.sim.Now()
	f.Finished = math.NaN()
	f.served = 0
	f.completeC = onComplete
	l.active[f.ID] = f
	l.reschedule()
	return nil
}

// ActiveCount returns the number of in-progress flows.
func (l *PSLink) ActiveCount() int { return len(l.active) }

// TotalServed returns all delivered megabytes.
func (l *PSLink) TotalServed() float64 { return l.totalServed }

// Utilization returns the instantaneous utilization: 1 when any flow is
// active (work-conserving PS link), else 0.
func (l *PSLink) Utilization() float64 {
	if len(l.active) > 0 {
		return 1
	}
	return 0
}

// advance serves all active flows from lastAdv to now according to their
// weighted shares.
func (l *PSLink) advance() {
	now := l.sim.Now()
	dt := now - l.lastAdv
	l.lastAdv = now
	if dt <= 0 || len(l.active) == 0 {
		return
	}
	var wsum float64
	for _, f := range l.active {
		wsum += f.Weight
	}
	for _, f := range l.active {
		share := l.capacity * f.Weight / wsum
		amount := share * dt
		if amount > f.Remaining() {
			amount = f.Remaining()
		}
		f.served += amount
		l.totalServed += amount
		l.ServedByClass[f.Class] += amount
		if f.User != "" {
			l.ServedByUser[f.User] += amount
		}
	}
	// Retire finished flows (served may hit Size exactly at completion
	// events; tolerance guards roundoff).
	for id, f := range l.active {
		if f.Remaining() <= 1e-9 {
			f.Finished = now
			delete(l.active, id)
			if f.completeC != nil {
				f.completeC(f)
			}
		}
	}
}

// reschedule queues the next completion event.
func (l *PSLink) reschedule() {
	l.gen++
	gen := l.gen
	if len(l.active) == 0 {
		return
	}
	var wsum float64
	for _, f := range l.active {
		wsum += f.Weight
	}
	next := math.Inf(1)
	for _, f := range l.active {
		share := l.capacity * f.Weight / wsum
		if t := f.Remaining() / share; t < next {
			next = t
		}
	}
	// The event re-advances and re-schedules; stale generations no-op.
	_ = l.sim.After(next, func() {
		if gen != l.gen {
			return
		}
		l.advance()
		l.reschedule()
	})
}

// Sync brings served-byte accounting up to the current simulation time;
// call before reading counters mid-run.
func (l *PSLink) Sync() {
	l.advance()
	l.reschedule()
}
