package sessions

import (
	"errors"
	"math"
	"testing"

	"tdp/internal/core"
	"tdp/internal/waiting"
)

// smallConfig is a 6-period, 2-type day with congestion early on.
func smallConfig() Config {
	return Config{
		Periods: 6,
		ArrivalVolume: [][]float64{
			{60, 40}, {50, 30}, {20, 10}, {10, 10}, {15, 10}, {30, 20},
		},
		MeanSize:  0.5,
		Betas:     []float64{0.5, 3},
		Capacity:  []float64{70, 70, 70, 70, 70, 70},
		Rewards:   []float64{0, 0, 0.4, 0.5, 0.3, 0},
		MaxReward: 1,
		Seed:      1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"periods", func(c *Config) { c.Periods = 1 }},
		{"arrival len", func(c *Config) { c.ArrivalVolume = c.ArrivalVolume[:2] }},
		{"no types", func(c *Config) { c.Betas = nil }},
		{"ragged", func(c *Config) { c.ArrivalVolume[2] = []float64{1} }},
		{"negative volume", func(c *Config) { c.ArrivalVolume[0][0] = -1 }},
		{"mean size", func(c *Config) { c.MeanSize = 0 }},
		{"max reward", func(c *Config) { c.MaxReward = 0 }},
		{"reward above P", func(c *Config) { c.Rewards[2] = 5 }},
		{"negative reward", func(c *Config) { c.Rewards[2] = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := smallConfig()
			tt.mutate(&c)
			if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
			if _, err := Run(c); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestRunZeroRewardsNoDeferrals(t *testing.T) {
	cfg := smallConfig()
	cfg.Rewards = make([]float64, 6)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DeferredVolume != 0 || res.RewardsPaid != 0 {
		t.Errorf("deferred %v, paid %v with zero rewards", res.DeferredVolume, res.RewardsPaid)
	}
	for _, s := range res.Sessions {
		if s.Deferred || s.Target != s.HomePeriod {
			t.Fatal("session deferred with zero rewards")
		}
	}
}

func TestRunConservation(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var offered, total float64
	for _, v := range res.OfferedVolume {
		offered += v
	}
	for _, s := range res.Sessions {
		total += s.Size
	}
	if math.Abs(offered-total) > 1e-9 {
		t.Errorf("offered %v ≠ generated %v", offered, total)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.TotalCost() != b.TotalCost() || len(a.Sessions) != len(b.Sessions) {
		t.Error("same seed, different outcome")
	}
}

func TestRunSessionInvariants(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	for _, s := range res.Sessions {
		if s.Size <= 0 {
			t.Fatal("non-positive session size")
		}
		if s.Arrival < float64(s.HomePeriod) || s.Arrival >= float64(s.HomePeriod+1) {
			t.Fatalf("arrival %v outside home period %d", s.Arrival, s.HomePeriod)
		}
		if s.Deferred == (s.Target == s.HomePeriod) {
			t.Fatal("Deferred flag inconsistent with target")
		}
		// No deferrals to zero-reward periods.
		if s.Deferred && smallConfig().Rewards[s.Target] == 0 {
			t.Fatalf("deferred to unrewarded period %d", s.Target+1)
		}
	}
}

func TestEvaluateCostScaling(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	base := res.EvaluateCost(1)
	if math.Abs(base-res.TotalCost()) > 1e-9 {
		t.Errorf("EvaluateCost(1) = %v, TotalCost = %v", base, res.TotalCost())
	}
	doubled := res.EvaluateCost(2)
	wantCong := 2 * (base - res.RewardsPaid)
	if math.Abs(doubled-res.RewardsPaid-wantCong) > 1e-9 {
		t.Errorf("EvaluateCost(2) congestion part wrong")
	}
}

// TestProp5FluidLimit is the package's reason to exist: averaged over many
// runs with small sessions, the Monte-Carlo per-period offered volume and
// backlog must match the fluid DynamicModel's predictions (Prop. 5).
func TestProp5FluidLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.MeanSize = 0.25 // many small sessions → close to the fluid limit

	scn := &core.Scenario{
		Periods:       cfg.Periods,
		Demand:        cfg.ArrivalVolume,
		Betas:         cfg.Betas,
		Capacity:      cfg.Capacity,
		Cost:          core.LinearCost(1),
		MaxRewardNorm: cfg.MaxReward,
	}
	dm, err := core.NewDynamicModel(scn)
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	wantArr := dm.Arrivals(cfg.Rewards)
	_, wantBacklog := dm.Load(cfg.Rewards)
	wantCost := dm.CostAt(cfg.Rewards)

	offered, backlog, cost, err := MeanOverRuns(cfg, 200)
	if err != nil {
		t.Fatalf("MeanOverRuns: %v", err)
	}
	for i := range wantArr {
		if rel := math.Abs(offered[i]-wantArr[i]) / (1 + wantArr[i]); rel > 0.05 {
			t.Errorf("period %d offered: MC %v vs fluid %v", i+1, offered[i], wantArr[i])
		}
	}
	// Backlog is max(·,0) of a noisy quantity, so the MC mean is biased
	// upward near zero (Jensen); compare only clearly-congested periods.
	for i := range wantBacklog {
		if wantBacklog[i] < 2 {
			continue
		}
		if rel := math.Abs(backlog[i]-wantBacklog[i]) / wantBacklog[i]; rel > 0.15 {
			t.Errorf("period %d backlog: MC %v vs fluid %v", i+1, backlog[i], wantBacklog[i])
		}
	}
	if rel := math.Abs(cost-wantCost) / wantCost; rel > 0.15 {
		t.Errorf("cost: MC %v vs fluid %v (rel %v)", cost, wantCost, rel)
	}
}

// TestProp5DeferralFractions checks the per-type deferral mass matches the
// fluid kernels exactly in expectation.
func TestProp5DeferralFractions(t *testing.T) {
	cfg := smallConfig()
	cfg.MeanSize = 0.25
	// Single origin period with volume, everything else empty, to isolate
	// the deferral distribution from period 1.
	for i := range cfg.ArrivalVolume {
		for j := range cfg.ArrivalVolume[i] {
			cfg.ArrivalVolume[i][j] = 0
		}
	}
	cfg.ArrivalVolume[0][0] = 400 // patient type only

	w, err := waiting.NewUniformArrival(cfg.Betas[0], cfg.Periods, cfg.MaxReward)
	if err != nil {
		t.Fatal(err)
	}
	offered, _, _, err := MeanOverRuns(cfg, 300)
	if err != nil {
		t.Fatalf("MeanOverRuns: %v", err)
	}
	for k := 1; k < cfg.Periods; k++ {
		want := 400 * w.Value(cfg.Rewards[k], k)
		if math.Abs(offered[k]-want) > 0.05*400*0.05+1 {
			t.Errorf("deferral to period %d: MC %v vs fluid %v", k+1, offered[k], want)
		}
	}
}

func TestMeanOverRunsValidation(t *testing.T) {
	if _, _, _, err := MeanOverRuns(smallConfig(), 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero reps: err = %v, want ErrBadConfig", err)
	}
}
