// Package sessions is a Monte-Carlo, session-level simulator of the
// paper's §III stochastic model: Poisson session arrivals within each
// period (uniform arrival times), exponentially distributed session sizes,
// per-session probabilistic deferral driven by waiting functions, and a
// fixed-capacity bottleneck that carries unfinished work across periods.
//
// Its purpose is validation: Prop. 5 claims the fluid DynamicModel is the
// large-population limit of exactly this process, so the sampled
// per-period backlog and ISP cost must converge to the fluid predictions
// as the arrival rates grow. The integration tests in this package (and
// internal/experiments' Prop5 check) perform that comparison.
package sessions

import (
	"errors"
	"fmt"
	"math/rand"

	"tdp/internal/stochastic"
	"tdp/internal/waiting"
)

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sessions: invalid configuration")

// Config describes one simulated day.
type Config struct {
	// Periods is the number of periods n.
	Periods int
	// ArrivalVolume[i][j] is the expected volume (10 MBps·period) of type
	// j sessions arriving in period i+1 — λ_i·b in the paper's notation,
	// matched to the fluid model's Demand matrix.
	ArrivalVolume [][]float64
	// MeanSize is b, the mean session volume. Smaller values mean more,
	// smaller sessions (closer to the fluid limit).
	MeanSize float64
	// Betas[j] is the patience index of type j.
	Betas []float64
	// Capacity[i] is the service capacity per period (volume units).
	Capacity []float64
	// Rewards[i] is the published reward for deferring to period i+1.
	Rewards []float64
	// MaxReward is the normalization reward P.
	MaxReward float64
	// Seed drives the randomness.
	Seed int64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Periods < 2 {
		return fmt.Errorf("%d periods: %w", c.Periods, ErrBadConfig)
	}
	if len(c.ArrivalVolume) != c.Periods || len(c.Capacity) != c.Periods || len(c.Rewards) != c.Periods {
		return fmt.Errorf("per-period slices must have %d entries: %w", c.Periods, ErrBadConfig)
	}
	if len(c.Betas) == 0 {
		return fmt.Errorf("no session types: %w", ErrBadConfig)
	}
	for i, row := range c.ArrivalVolume {
		if len(row) != len(c.Betas) {
			return fmt.Errorf("arrival volume period %d has %d types, want %d: %w",
				i+1, len(row), len(c.Betas), ErrBadConfig)
		}
		for _, v := range row {
			if v < 0 {
				return fmt.Errorf("negative arrival volume in period %d: %w", i+1, ErrBadConfig)
			}
		}
	}
	if c.MeanSize <= 0 {
		return fmt.Errorf("mean size %v: %w", c.MeanSize, ErrBadConfig)
	}
	if c.MaxReward <= 0 {
		return fmt.Errorf("max reward %v: %w", c.MaxReward, ErrBadConfig)
	}
	for i, p := range c.Rewards {
		if p < 0 || p > c.MaxReward {
			return fmt.Errorf("reward %v in period %d outside [0, P]: %w", p, i+1, ErrBadConfig)
		}
	}
	return nil
}

// Session is one simulated application session.
type Session struct {
	Type       int
	Size       float64
	Arrival    float64 // absolute time in periods (fractional)
	HomePeriod int     // 0-based period it originally belongs to
	Target     int     // 0-based period it starts in (== HomePeriod if not deferred)
	Deferred   bool
}

// Result summarizes one simulated day.
type Result struct {
	// Sessions is every generated session with its deferral outcome.
	Sessions []Session
	// OfferedVolume[i] is the volume starting in period i+1 after
	// deferrals.
	OfferedVolume []float64
	// Backlog[i] is the unfinished work at the end of period i+1.
	Backlog []float64
	// RewardsPaid is Σ p_target·size over deferred sessions.
	RewardsPaid float64
	// CongestionCost is Σ_i f(backlog_i) with f(x) = slope·x given by
	// EvaluateCost; stored per-run for the common slope-1 case.
	CongestionCost float64
	// DeferredVolume is the total volume moved out of its home period.
	DeferredVolume float64
}

// TotalCost returns rewards paid plus congestion cost.
func (r *Result) TotalCost() float64 { return r.RewardsPaid + r.CongestionCost }

// Run simulates one day.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Periods

	wfs := make([]waiting.UniformArrival, len(cfg.Betas))
	for j, beta := range cfg.Betas {
		w, err := waiting.NewUniformArrival(beta, n, cfg.MaxReward)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		wfs[j] = w
	}

	res := &Result{
		OfferedVolume: make([]float64, n),
		Backlog:       make([]float64, n),
	}

	// Generate and defer sessions.
	for i := 0; i < n; i++ {
		for j := range cfg.Betas {
			vol := cfg.ArrivalVolume[i][j]
			if vol == 0 {
				continue
			}
			count, err := stochastic.Poisson(rng, vol/cfg.MeanSize)
			if err != nil {
				return nil, err
			}
			for s := 0; s < count; s++ {
				size, err := stochastic.Exponential(rng, cfg.MeanSize)
				if err != nil {
					return nil, err
				}
				u := rng.Float64() // arrival offset within the period
				sess := Session{
					Type:       j,
					Size:       size,
					Arrival:    float64(i) + u,
					HomePeriod: i,
					Target:     i,
				}
				// Probabilistic deferral: the session moves to period
				// i+k with probability w_β(p_{i+k}, k−u), the per-session
				// reading of the fluid model's M_{i,k} integrand (§III,
				// eq. 5). Cumulative probability is clamped at 1.
				roll := rng.Float64()
				acc := 0.0
				for k := 1; k <= n-1; k++ {
					target := (i + k) % n
					acc += wfs[j].ValueAt(cfg.Rewards[target], float64(k)-u)
					if roll < acc {
						sess.Target = target
						sess.Deferred = true
						break
					}
				}
				res.Sessions = append(res.Sessions, sess)
				res.OfferedVolume[sess.Target] += size
				if sess.Deferred {
					res.RewardsPaid += cfg.Rewards[sess.Target] * size
					res.DeferredVolume += size
				}
			}
		}
	}

	// Serve through the single bottleneck with carry-over (Prop. 5's
	// accounting: cost on the work remaining at each period end).
	carry := 0.0
	for i := 0; i < n; i++ {
		load := carry + res.OfferedVolume[i]
		excess := load - cfg.Capacity[i]
		if excess < 0 {
			excess = 0
		}
		res.Backlog[i] = excess
		res.CongestionCost += excess // slope-1 f; rescale via EvaluateCost
		carry = excess
	}
	return res, nil
}

// EvaluateCost recomputes the ISP cost under a capacity-exceedance cost of
// the given marginal slope (the Run default is slope 1).
func (r *Result) EvaluateCost(slope float64) float64 {
	var c float64
	for _, b := range r.Backlog {
		c += slope * b
	}
	return r.RewardsPaid + c
}

// MeanOverRuns runs the simulation reps times with distinct seeds and
// averages offered volume, backlog, and cost — the quantities the fluid
// model predicts.
func MeanOverRuns(cfg Config, reps int) (offered, backlog []float64, cost float64, err error) {
	if reps < 1 {
		return nil, nil, 0, fmt.Errorf("%d reps: %w", reps, ErrBadConfig)
	}
	offered = make([]float64, cfg.Periods)
	backlog = make([]float64, cfg.Periods)
	for rep := 0; rep < reps; rep++ {
		run := cfg
		run.Seed = cfg.Seed + int64(rep)*7919
		res, rerr := Run(run)
		if rerr != nil {
			return nil, nil, 0, rerr
		}
		for i := range offered {
			offered[i] += res.OfferedVolume[i]
			backlog[i] += res.Backlog[i]
		}
		cost += res.TotalCost()
	}
	for i := range offered {
		offered[i] /= float64(reps)
		backlog[i] /= float64(reps)
	}
	cost /= float64(reps)
	return offered, backlog, cost, nil
}
