// Package estimate implements §IV of the paper: estimating users' waiting
// functions — per-period patience indices β_{j,i} and traffic proportions
// α_{j,i} — from *aggregate* usage data only, plus the follow-on
// re-estimation of baseline TIP demand from TDP measurements (eq. 9).
//
// The ISP never observes which session deferred where; it sees only the
// per-period difference T_i between demand under TIP and usage under TDP
// for each set of offered rewards. The deferral matrix entries
//
//	Q_ik = X_i · Σ_j α_{j,i} · C(β_{j,i}) · p_k / (t(i→k)+1)^{β_{j,i}}
//
// are linear functions of the observations (eq. 7), so the parameters can
// be fitted by nonlinear least squares on the net-flow equations.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"tdp/internal/linalg"
	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// ErrBadInput is returned for malformed estimation inputs.
var ErrBadInput = errors.New("estimate: invalid input")

// Params are per-period waiting-function parameters for m session types:
// mixing proportions Alpha (each row sums to 1) and patience indices Beta.
type Params struct {
	// Alpha[i][j] is the proportion of period-(i+1) traffic of type j.
	Alpha [][]float64
	// Beta[i][j] is the patience index of type j in period i+1.
	Beta [][]float64
}

// NewParams allocates zeroed parameters for n periods and m types.
func NewParams(n, m int) Params {
	a := make([][]float64, n)
	b := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, m)
		b[i] = make([]float64, m)
	}
	return Params{Alpha: a, Beta: b}
}

// Dims returns (periods, types).
func (p Params) Dims() (int, int) {
	if len(p.Alpha) == 0 {
		return 0, 0
	}
	return len(p.Alpha), len(p.Alpha[0])
}

// Validate checks shapes, β ≥ 0, α ≥ 0 with rows summing to ≈ 1.
func (p Params) Validate() error {
	n, m := p.Dims()
	if n == 0 || m == 0 || len(p.Beta) != n {
		return fmt.Errorf("params %dx%d: %w", n, m, ErrBadInput)
	}
	for i := 0; i < n; i++ {
		if len(p.Alpha[i]) != m || len(p.Beta[i]) != m {
			return fmt.Errorf("ragged params at period %d: %w", i+1, ErrBadInput)
		}
		var s float64
		for j := 0; j < m; j++ {
			if p.Alpha[i][j] < 0 || p.Beta[i][j] < 0 {
				return fmt.Errorf("negative parameter at (%d,%d): %w", i+1, j, ErrBadInput)
			}
			s += p.Alpha[i][j]
		}
		if math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("alpha row %d sums to %v: %w", i+1, s, ErrBadInput)
		}
	}
	return nil
}

// Model generates and fits the §IV observation model.
type Model struct {
	// Periods and Types are n and m.
	Periods, Types int
	// BaselineTIP is X_i, the per-period demand under TIP.
	BaselineTIP []float64
	// MaxReward is the normalizing reward P for the power-law family.
	MaxReward float64
	// MaxIter caps the Levenberg–Marquardt iterations of Fit (0 = 400).
	// Large deployments (many periods × types) may trade accuracy for
	// latency here.
	MaxIter int
	// Tol is the LM relative-reduction tolerance (0 = the solver default,
	// 1e-10). The streaming-vs-batch parity tests tighten it so both
	// paths land on the same optimum to well below their 1e-6 contract.
	Tol float64
}

// Validate checks the model description.
func (m *Model) Validate() error {
	if m.Periods < 2 || m.Types < 1 {
		return fmt.Errorf("model %d periods, %d types: %w", m.Periods, m.Types, ErrBadInput)
	}
	if len(m.BaselineTIP) != m.Periods {
		return fmt.Errorf("baseline has %d periods, want %d: %w", len(m.BaselineTIP), m.Periods, ErrBadInput)
	}
	if m.MaxReward <= 0 {
		return fmt.Errorf("max reward %v: %w", m.MaxReward, ErrBadInput)
	}
	return nil
}

// DeferralMatrix returns Q, where Q[i][k] is the volume deferred from
// period i+1 to period k+1 under parameters prm and rewards p (eq. 6).
func (m *Model) DeferralMatrix(prm Params, p []float64) ([][]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(p) != m.Periods {
		return nil, fmt.Errorf("rewards have %d periods, want %d: %w", len(p), m.Periods, ErrBadInput)
	}
	n := m.Periods
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m.Types; j++ {
			alpha := prm.Alpha[i][j]
			if alpha == 0 {
				continue
			}
			w, err := waiting.NewPowerLaw(prm.Beta[i][j], n, m.MaxReward)
			if err != nil {
				return nil, err
			}
			for dt := 1; dt <= n-1; dt++ {
				k := (i + dt) % n
				q[i][k] += m.BaselineTIP[i] * alpha * w.Value(p[k], dt)
			}
		}
	}
	return q, nil
}

// NetFlows returns T, where T[i] = Σ_k Q[i][k] − Σ_k Q[k][i]: the decrease
// of period i+1's usage moving from TIP to TDP (eq. 7). ΣT = 0 always
// (sessions never disappear).
func (m *Model) NetFlows(prm Params, p []float64) ([]float64, error) {
	q, err := m.DeferralMatrix(prm, p)
	if err != nil {
		return nil, err
	}
	n := m.Periods
	t := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			t[i] += q[i][k] - q[k][i]
		}
	}
	return t, nil
}

// Observation is one control experiment: the offered rewards and the
// measured per-period usage decrease T_i (TIP demand minus TDP usage).
type Observation struct {
	Rewards []float64
	T       []float64
}

// FitResult is the outcome of waiting-function estimation.
type FitResult struct {
	Params Params
	// RSS is the residual sum of squares at the fit.
	RSS float64
	// Iterations reports LM effort.
	Iterations int
}

// Fit estimates (α, β) for every period from aggregate observations by
// Levenberg–Marquardt on the net-flow equations, starting from a neutral
// guess (uniform α, β = 1). Since ΣT_i ≡ 0, one equation per observation
// is redundant — exactly the degree of freedom the paper's elimination
// step removes; LM handles the rank deficiency through damping.
func (m *Model) Fit(obs []Observation) (*FitResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	for s, o := range obs {
		if len(o.Rewards) != m.Periods || len(o.T) != m.Periods {
			return nil, fmt.Errorf("observation %d malformed: %w", s, ErrBadInput)
		}
	}
	n := m.Periods
	x0 := m.neutralStart()
	bounds := m.fitBounds()

	// The residuals are evaluated by the packed fast path shared with
	// StreamFitter (identical math to NetFlows ∘ unpack, pinned by the
	// stream equivalence tests, without the per-call Params/PowerLaw
	// allocations the numeric Jacobian would multiply by dim+1).
	fast := newStreamResid(m)
	fast.bind(obs)
	resid := optimize.FuncResiduals{N: len(obs) * n, Fn: fast.eval}
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 400
	}
	res, err := optimize.LevenbergMarquardt(resid, x0, optimize.LMConfig{
		MaxIter: maxIter,
		Tol:     m.Tol,
		Bounds:  &bounds,
	})
	if err != nil && !errors.Is(err, optimize.ErrLMStalled) && !errors.Is(err, optimize.ErrMaxIterations) {
		return nil, fmt.Errorf("fit: %w", err)
	}
	return &FitResult{
		Params:     m.unpack(res.X),
		RSS:        res.RSS,
		Iterations: res.Iterations,
	}, nil
}

func (m *Model) alphaIdx(i, j int) int { return i*m.Types*2 + j }
func (m *Model) betaIdx(i, j int) int  { return i*m.Types*2 + m.Types + j }

// packedDim is the LM parameter-vector length: per period, m raw alphas
// then m betas.
func (m *Model) packedDim() int { return m.Periods * m.Types * 2 }

// neutralStart is the cold-start point shared by Fit and StreamFitter:
// uniform mixing proportions and β = 1 everywhere.
func (m *Model) neutralStart() []float64 {
	x0 := make([]float64, m.packedDim())
	for i := 0; i < m.Periods; i++ {
		for j := 0; j < m.Types; j++ {
			x0[m.alphaIdx(i, j)] = 1 / float64(m.Types)
			x0[m.betaIdx(i, j)] = 1
		}
	}
	return x0
}

// fitBounds is the LM box shared by Fit and StreamFitter: α ∈ [1e-3, 1]
// (raw, renormalized by unpack) and β ∈ [0, 10].
func (m *Model) fitBounds() optimize.Bounds {
	dim := m.packedDim()
	lower := make([]float64, dim)
	upper := make([]float64, dim)
	for i := 0; i < m.Periods; i++ {
		for j := 0; j < m.Types; j++ {
			lower[m.alphaIdx(i, j)] = 1e-3
			upper[m.alphaIdx(i, j)] = 1
			lower[m.betaIdx(i, j)] = 0
			upper[m.betaIdx(i, j)] = 10
		}
	}
	return optimize.Bounds{Lower: lower, Upper: upper}
}

// unpack converts the packed LM vector into Params, normalizing each
// period's raw alphas to sum to 1.
func (m *Model) unpack(x []float64) Params {
	prm := NewParams(m.Periods, m.Types)
	for i := 0; i < m.Periods; i++ {
		var s float64
		for j := 0; j < m.Types; j++ {
			a := math.Max(x[m.alphaIdx(i, j)], 0)
			prm.Alpha[i][j] = a
			s += a
			prm.Beta[i][j] = math.Max(x[m.betaIdx(i, j)], 0)
		}
		if s <= 0 {
			for j := 0; j < m.Types; j++ {
				prm.Alpha[i][j] = 1 / float64(m.Types)
			}
			continue
		}
		for j := 0; j < m.Types; j++ {
			prm.Alpha[i][j] /= s
		}
	}
	return prm
}

// WaitingCurve evaluates the fitted aggregate waiting function of period
// i+1 at reward p over deferral times 1..n−1 — the curves compared in the
// paper's Fig. 2.
func (m *Model) WaitingCurve(prm Params, period int, p float64) ([]float64, error) {
	if period < 0 || period >= m.Periods {
		return nil, fmt.Errorf("period %d: %w", period, ErrBadInput)
	}
	out := make([]float64, m.Periods-1)
	for j := 0; j < m.Types; j++ {
		w, err := waiting.NewPowerLaw(prm.Beta[period][j], m.Periods, m.MaxReward)
		if err != nil {
			return nil, err
		}
		for dt := 1; dt <= m.Periods-1; dt++ {
			out[dt-1] += prm.Alpha[period][j] * w.Value(p, dt)
		}
	}
	return out, nil
}

// MaxPercentError reports the paper's Table III accuracy metric: the
// maximum percent difference between the actual and estimated aggregate
// waiting curves of a period, sampled at the given rewards.
func (m *Model) MaxPercentError(actual, est Params, period int, rewards []float64) (float64, error) {
	var worst float64
	for _, p := range rewards {
		a, err := m.WaitingCurve(actual, period, p)
		if err != nil {
			return 0, err
		}
		e, err := m.WaitingCurve(est, period, p)
		if err != nil {
			return 0, err
		}
		for i := range a {
			if a[i] == 0 {
				continue
			}
			if pe := 100 * math.Abs(e[i]-a[i]) / a[i]; pe > worst {
				worst = pe
			}
		}
	}
	return worst, nil
}

// EstimateBaseline recovers the per-period demand under TIP, X_i, from
// TDP usage measurements given known waiting-function parameters (eq. 9).
// Each usage observation contributes n linear equations
//
//	x_i = X_i·(1 − Σ_k ω_ik) + Σ_k X_k·ω_ki,
//
// where ω_ik is the fitted waiting value for deferring from i to k at the
// observation's rewards and X-relative volume; the stacked system over all
// observations is solved in least squares, averaging out measurement noise.
func (m *Model) EstimateBaseline(prm Params, usageObs []Observation) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(usageObs) == 0 {
		return nil, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	n := m.Periods
	rows := len(usageObs) * n
	a := linalg.NewMatrix(rows, n)
	b := make(linalg.Vector, rows)
	for s, o := range usageObs {
		if len(o.Rewards) != n || len(o.T) != n {
			return nil, fmt.Errorf("observation %d malformed: %w", s, ErrBadInput)
		}
		// ω[i][k]: per-unit-X deferral fraction from i to k.
		omega, err := m.unitDeferrals(prm, o.Rewards)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			row := s*n + i
			var outSum float64
			for k := 0; k < n; k++ {
				outSum += omega[i][k]
			}
			a.Set(row, i, 1-outSum)
			for k := 0; k < n; k++ {
				if k != i {
					a.Set(row, k, a.At(row, k)+omega[k][i])
				}
			}
			// Here Observation.T carries the *usage under TDP* x_i.
			b[row] = o.T[i]
		}
	}
	x, err := linalg.LeastSquares(a, b)
	if err != nil {
		return nil, fmt.Errorf("baseline solve: %w", err)
	}
	return x, nil
}

// unitDeferrals returns ω[i][k]: the fraction of X_i deferred from i to k.
func (m *Model) unitDeferrals(prm Params, p []float64) ([][]float64, error) {
	n := m.Periods
	omega := make([][]float64, n)
	for i := range omega {
		omega[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m.Types; j++ {
			alpha := prm.Alpha[i][j]
			if alpha == 0 {
				continue
			}
			w, err := waiting.NewPowerLaw(prm.Beta[i][j], n, m.MaxReward)
			if err != nil {
				return nil, err
			}
			for dt := 1; dt <= n-1; dt++ {
				k := (i + dt) % n
				omega[i][k] += alpha * w.Value(p[k], dt)
			}
		}
	}
	return omega, nil
}
