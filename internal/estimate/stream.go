package estimate

import (
	"errors"
	"fmt"
	"math"

	"tdp/internal/optimize"
)

// StreamConfig tunes a StreamFitter.
type StreamConfig struct {
	// Window is the number of complete day observations retained; older
	// days are evicted. Must be ≥ 1.
	Window int
	// MaxIter caps the Levenberg–Marquardt iterations of one Refine
	// (default 120). Warm starts usually converge in a handful.
	MaxIter int
	// Tol is the LM relative-reduction tolerance (default 1e-12 — tighter
	// than Fit's 1e-10 so warm and cold refinements land on the same
	// optimum to well below the 1e-6 streaming-vs-batch contract).
	Tol float64
	// AbsTol, when > 0, short-circuits a refinement whose residual sum of
	// squares is already at or below it (see optimize.LMConfig.AbsTol).
	AbsTol float64
}

// RefineResult reports one streaming refinement.
type RefineResult struct {
	FitResult
	// Reused is true when the window had no new data since the previous
	// refinement and the cached fit was returned without any LM work.
	Reused bool
	// Warm is true when the LM was seeded from the previous fit rather
	// than the neutral cold start.
	Warm bool
}

// StreamFitter is the incremental counterpart of Model.Fit: it assembles
// per-period usage reports into day observations, retains a sliding
// window of the most recent days, and re-runs the §IV waiting-function
// estimation each period as a warm-started Levenberg–Marquardt
// refinement seeded from the previous fit — the same
// truncate-the-homotopy idea the optimizer's WithWarmStart uses, applied
// to estimation. On an unchanged window the refinement is O(1) (the
// cached fit is returned); with one new period of data it typically
// converges in one or two LM iterations instead of a cold fit's dozens.
//
// A StreamFitter is NOT internally synchronized: callers (the tube
// profiling engines) serialize access under their own locks, matching
// the rest of this package.
type StreamFitter struct {
	model *Model
	cfg   StreamConfig

	// ring is the observation window: Window slots with preallocated
	// Rewards/T backing arrays, overwritten in place on eviction so the
	// steady-state ingest path allocates nothing.
	ring  []Observation
	head  int // next slot to overwrite
	count int // complete days banked (≤ Window)
	days  int // complete days ever observed (monotonic)

	// day-in-progress assembly. Periods must arrive in order 0..n−1; a
	// stream attached mid-day discards the partial day rather than pair
	// its usage with rewards from the wrong day (see ObservePeriod).
	curRewards []float64
	curT       []float64
	curNext    int // next period index expected (0 = at a day boundary)

	// warm-start state.
	x     []float64 // packed parameter vector of the last fit
	warm  bool      // x holds a previous fit
	dirty bool      // window changed since the last successful Refine
	last  FitResult // cached fit (valid when warm)

	// stalePeriods counts period closes folded since the last successful
	// refinement — the estimate-staleness signal the obs layer exports.
	stalePeriods int

	resid *streamResid
	// scratch for Observations(): reused backing array, chronological.
	obsScratch []Observation
}

// NewStreamFitter builds a streaming fitter over the model. The model is
// validated once here; Refine does not re-validate.
func NewStreamFitter(m *Model, cfg StreamConfig) (*StreamFitter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("stream window %d: %w", cfg.Window, ErrBadInput)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 120
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-12
	}
	n := m.Periods
	sf := &StreamFitter{
		model:      m,
		cfg:        cfg,
		ring:       make([]Observation, cfg.Window),
		curRewards: make([]float64, n),
		curT:       make([]float64, n),
	}
	for s := range sf.ring {
		sf.ring[s] = Observation{Rewards: make([]float64, n), T: make([]float64, n)}
	}
	sf.resid = newStreamResid(m)
	return sf, nil
}

// Model returns the underlying observation model.
func (sf *StreamFitter) Model() *Model { return sf.model }

// WindowLen returns the number of complete days currently banked.
func (sf *StreamFitter) WindowLen() int { return sf.count }

// WindowFull reports whether the window holds Window complete days.
func (sf *StreamFitter) WindowFull() bool { return sf.count == sf.cfg.Window }

// Days returns the number of complete days ever folded (monotonic; the
// window retains the most recent min(Days, Window) of them).
func (sf *StreamFitter) Days() int { return sf.days }

// StalePeriods returns the number of period closes folded since the last
// successful refinement.
func (sf *StreamFitter) StalePeriods() int { return sf.stalePeriods }

// ObservePeriod folds one closed period of the day in progress: the
// reward that was in force and the measured aggregate usage (the fitter
// derives T = baseline − usage itself, keeping the reward/usage pairing
// in one call — the day-boundary hazard of collecting them separately is
// what this API exists to remove). Periods must arrive in day order
// 0..n−1; completing period n−1 banks the day into the window (evicting
// the oldest day once full) and returns dayClosed = true.
//
// A fitter attached mid-day (first call with period > 0) discards
// reports until the next day boundary instead of stitching a day out of
// two different reward schedules. Out-of-order or duplicate periods
// within a day are rejected: silently re-aligning would attribute usage
// to the wrong rewards.
func (sf *StreamFitter) ObservePeriod(period int, reward, usage float64) (dayClosed bool, err error) {
	n := sf.model.Periods
	if period < 0 || period >= n {
		return false, fmt.Errorf("period %d of %d: %w", period, n, ErrBadInput)
	}
	if math.IsNaN(reward) || math.IsNaN(usage) {
		return false, fmt.Errorf("period %d: NaN report: %w", period, ErrBadInput)
	}
	if period != sf.curNext {
		if sf.curNext == 0 {
			// Attached mid-day: skip to the next day boundary.
			return false, nil
		}
		return false, fmt.Errorf("period %d out of order (want %d): %w", period, sf.curNext, ErrBadInput)
	}
	sf.curRewards[period] = reward
	sf.curT[period] = sf.model.BaselineTIP[period] - usage
	sf.stalePeriods++
	if period < n-1 {
		sf.curNext = period + 1
		return false, nil
	}
	sf.pushDay(sf.curRewards, sf.curT)
	sf.curNext = 0
	return true, nil
}

// AddDay banks one complete day observation directly — the replay/batch
// parity path: rewards and T exactly as Model.Fit's Observation. The
// fitter must be at a day boundary (no day in progress).
func (sf *StreamFitter) AddDay(rewards, t []float64) error {
	n := sf.model.Periods
	if len(rewards) != n || len(t) != n {
		return fmt.Errorf("day dims %d/%d, want %d: %w", len(rewards), len(t), n, ErrBadInput)
	}
	if sf.curNext != 0 {
		return fmt.Errorf("day in progress (next period %d): %w", sf.curNext, ErrBadInput)
	}
	sf.stalePeriods += n
	sf.pushDay(rewards, t)
	return nil
}

// pushDay copies a completed day into the ring, evicting the oldest slot
// when the window is full. No allocation: the slot's backing arrays are
// reused.
func (sf *StreamFitter) pushDay(rewards, t []float64) {
	slot := &sf.ring[sf.head]
	copy(slot.Rewards, rewards)
	copy(slot.T, t)
	sf.head = (sf.head + 1) % len(sf.ring)
	if sf.count < len(sf.ring) {
		sf.count++
	}
	sf.days++
	sf.dirty = true
}

// Observations returns the windowed day observations oldest-first. The
// returned slice and its contents are shared scratch: valid until the
// next call into the fitter.
func (sf *StreamFitter) Observations() []Observation {
	if sf.obsScratch == nil {
		sf.obsScratch = make([]Observation, 0, len(sf.ring))
	}
	sf.obsScratch = sf.obsScratch[:0]
	start := sf.head - sf.count
	if start < 0 {
		start += len(sf.ring)
	}
	for s := 0; s < sf.count; s++ {
		sf.obsScratch = append(sf.obsScratch, sf.ring[(start+s)%len(sf.ring)])
	}
	return sf.obsScratch
}

// Refine re-estimates (α, β) over the current window, warm-started from
// the previous fit when one exists. With no new data since the last
// successful refinement it returns the cached fit (Reused = true) at
// O(1) cost.
func (sf *StreamFitter) Refine() (*RefineResult, error) {
	if sf.count == 0 {
		return nil, fmt.Errorf("no complete days in window: %w", ErrBadInput)
	}
	if !sf.dirty && sf.warm {
		res := &RefineResult{FitResult: sf.last, Reused: true, Warm: true}
		res.Params = sf.last.Params.clone()
		return res, nil
	}
	obs := sf.Observations()
	wasWarm := sf.warm
	var x0 []float64
	if sf.warm {
		x0 = sf.x
	} else {
		x0 = sf.model.neutralStart()
	}
	bounds := sf.model.fitBounds()
	sf.resid.bind(obs)
	res, err := optimize.LevenbergMarquardt(optimize.FuncResiduals{
		N:  len(obs) * sf.model.Periods,
		Fn: sf.resid.eval,
	}, x0, optimize.LMConfig{
		MaxIter: sf.cfg.MaxIter,
		Tol:     sf.cfg.Tol,
		AbsTol:  sf.cfg.AbsTol,
		Bounds:  &bounds,
	})
	sf.resid.bind(nil)
	if err != nil && !errorsIsLMBenign(err) {
		return nil, fmt.Errorf("stream refine: %w", err)
	}
	sf.x = append(sf.x[:0], res.X...)
	sf.warm = true
	sf.dirty = false
	sf.stalePeriods = 0
	sf.last = FitResult{
		Params:     sf.model.unpack(res.X),
		RSS:        res.RSS,
		Iterations: res.Iterations,
	}
	out := &RefineResult{FitResult: sf.last, Warm: wasWarm}
	out.Params = sf.last.Params.clone()
	return out, nil
}

// errorsIsLMBenign mirrors Fit's treatment of LM termination: a stall or
// iteration cap still yields the best point found.
func errorsIsLMBenign(err error) bool {
	return errors.Is(err, optimize.ErrLMStalled) || errors.Is(err, optimize.ErrMaxIterations)
}

// clone deep-copies fitted parameters (the cached fit must not alias
// what Refine hands out).
func (p Params) clone() Params {
	n, m := p.Dims()
	out := NewParams(n, m)
	for i := 0; i < n; i++ {
		copy(out.Alpha[i], p.Alpha[i])
		copy(out.Beta[i], p.Beta[i])
	}
	return out
}

// MaxAbsDiff returns the largest absolute difference between two
// parameter sets of equal shape, over both α and β — the
// streaming-vs-batch divergence metric.
func MaxAbsDiff(a, b Params) float64 {
	var worst float64
	for i := range a.Beta {
		for j := range a.Beta[i] {
			if d := math.Abs(a.Beta[i][j] - b.Beta[i][j]); d > worst {
				worst = d
			}
			if d := math.Abs(a.Alpha[i][j] - b.Alpha[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// streamResid evaluates the net-flow residuals directly from the packed
// parameter vector, with no per-call allocation: Fit's closure unpacks
// into freshly allocated Params and rebuilds waiting.PowerLaw values for
// every (period, type) on every call, which a per-period refinement (and
// the numeric Jacobian's dim+1 calls per iteration) cannot afford. The
// math is identical to Model.NetFlows ∘ unpack; the equivalence tests
// pin the two to ≤ 1e-9.
type streamResid struct {
	m   *Model
	obs []Observation

	// Per-(period,type) power tables (dt+1)^-β for dt = 1..n−1, cached
	// keyed by the exact bits of β: the numeric Jacobian perturbs one
	// parameter per call, so at most one row is rebuilt per evaluation.
	powBits []uint64  // cached Float64bits(β) per (i,j); ^0 = empty
	pow     []float64 // [(i*Types+j)*(n-1) + (dt-1)]
	cnorm   []float64 // per (i,j): C(β) = 1/(maxReward·Σ_t (dt+1)^-β)
	alpha   []float64 // per (i,j): row-normalized mixing proportion
	tacc    []float64 // per period: net-flow accumulator
}

func newStreamResid(m *Model) *streamResid {
	n, mt := m.Periods, m.Types
	r := &streamResid{
		m:       m,
		powBits: make([]uint64, n*mt),
		pow:     make([]float64, n*mt*(n-1)),
		cnorm:   make([]float64, n*mt),
		alpha:   make([]float64, n*mt),
		tacc:    make([]float64, n),
	}
	for k := range r.powBits {
		r.powBits[k] = ^uint64(0)
	}
	return r
}

// bind points the evaluator at the window for the duration of one solve.
func (r *streamResid) bind(obs []Observation) { r.obs = obs }

// eval computes out[s*n+i] = predictedT[i] − obs[s].T[i] for every
// windowed day s, matching Fit's residual layout.
func (r *streamResid) eval(x, out []float64) {
	m := r.m
	n, mt := m.Periods, m.Types

	// Refresh the per-(i,j) β-dependent tables; bit-keyed so unchanged
	// parameters cost one integer compare.
	for i := 0; i < n; i++ {
		for j := 0; j < mt; j++ {
			k := i*mt + j
			beta := math.Max(x[m.betaIdx(i, j)], 0)
			bits := math.Float64bits(beta)
			if bits == r.powBits[k] {
				continue
			}
			r.powBits[k] = bits
			row := r.pow[k*(n-1) : (k+1)*(n-1)]
			var s float64
			for dt := 1; dt <= n-1; dt++ {
				v := math.Pow(float64(dt+1), -beta)
				row[dt-1] = v
				s += v
			}
			r.cnorm[k] = 1 / (m.MaxReward * s)
		}
	}
	// Row-normalize the raw alphas exactly as unpack does.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < mt; j++ {
			a := math.Max(x[m.alphaIdx(i, j)], 0)
			r.alpha[i*mt+j] = a
			s += a
		}
		if s <= 0 {
			for j := 0; j < mt; j++ {
				r.alpha[i*mt+j] = 1 / float64(mt)
			}
			continue
		}
		inv := 1 / s
		for j := 0; j < mt; j++ {
			r.alpha[i*mt+j] *= inv
		}
	}

	for s, o := range r.obs {
		tacc := r.tacc
		for i := range tacc {
			tacc[i] = 0
		}
		p := o.Rewards
		for i := 0; i < n; i++ {
			xi := m.BaselineTIP[i]
			for j := 0; j < mt; j++ {
				k := i*mt + j
				a := r.alpha[k]
				if a == 0 {
					continue
				}
				coef := xi * a * r.cnorm[k]
				row := r.pow[k*(n-1) : (k+1)*(n-1)]
				for dt := 1; dt <= n-1; dt++ {
					pk := p[(i+dt)%n]
					if pk <= 0 {
						continue // waiting.PowerLaw.Value clamps p ≤ 0 to 0
					}
					q := coef * pk * row[dt-1]
					tacc[i] += q
					tacc[(i+dt)%n] -= q
				}
			}
		}
		base := s * n
		for i := 0; i < n; i++ {
			out[base+i] = tacc[i] - o.T[i]
		}
	}
}
