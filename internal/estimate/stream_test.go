package estimate

import (
	"errors"
	"math"
	"testing"
)

// streamTruthModel builds an n-period single-type model with a smoothly
// varying demand baseline — the shape of a tube-style per-class fit.
func streamTruthModel(n int) (*Model, Params) {
	base := make([]float64, n)
	for i := range base {
		base[i] = 100 + 50*math.Sin(2*math.Pi*float64(i)/float64(n))
	}
	m := &Model{Periods: n, Types: 1, BaselineTIP: base, MaxReward: 1, Tol: 1e-12}
	prm := NewParams(n, 1)
	for i := 0; i < n; i++ {
		prm.Alpha[i][0] = 1
		prm.Beta[i][0] = 0.5 + 1.5*float64(i)/float64(n)
	}
	return m, prm
}

// dayRewards returns a deterministic per-day reward schedule in
// (0.1, 1.0], varied across days so a short window still identifies
// every period's β.
func dayRewards(n, day int) []float64 {
	p := make([]float64, n)
	for k := 0; k < n; k++ {
		p[k] = 0.1 + 0.9*float64((k*7+day*3)%10+1)/10
	}
	return p
}

// TestStreamResidMatchesNetFlows pins the packed fast-path residual to
// the reference NetFlows ∘ unpack composition on a multi-type model.
func TestStreamResidMatchesNetFlows(t *testing.T) {
	m := table3Model()
	r := newStreamResid(m)
	var obs []Observation
	for d := 0; d < 3; d++ {
		obs = append(obs, Observation{Rewards: dayRewards(3, d), T: []float64{1, -0.5, -0.5}})
	}
	r.bind(obs)
	out := make([]float64, len(obs)*3)
	// Several packed points, including clamped negatives and the β the
	// bit-keyed pow cache must invalidate between calls.
	points := [][]float64{
		{0.5, 0.5, 1, 2, 0.2, 0.8, 1.5, 0.7, 0.9, 0.1, 0, 3},
		{0.5, 0.5, 1, 2, 0.2, 0.8, 1.5, 0.7, 0.9, 0.1, 0, 3},       // repeat: pure cache hit
		{-0.1, 0.5, 1.2, 2, 0.2, 0.8, 1.4, 0.7, 0.9, 0.1, 0.5, 3}, // raw α < 0 clamps
		{1, 1, 0.3, 0.3, 0.5, 0.5, 2.2, 2.2, 0.33, 0.67, 1.1, 0},
	}
	for pi, x := range points {
		r.eval(x, out)
		prm := m.unpack(x)
		for s, o := range obs {
			want, err := m.NetFlows(prm, o.Rewards)
			if err != nil {
				t.Fatalf("NetFlows: %v", err)
			}
			for i := 0; i < 3; i++ {
				got := out[s*3+i] + o.T[i]
				if math.Abs(got-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("point %d obs %d period %d: fast %v, reference %v", pi, s, i, got, want[i])
				}
			}
		}
	}
}

// TestStreamRefineMatchesBatchFit is the streaming-vs-batch contract:
// replay noiseless traces per period through the StreamFitter (warm
// refinement after every day) and require the final streaming estimate
// to match a cold Model.Fit over exactly the windowed observations to
// ≤ 1e-6, across n ∈ {12, 24, 48} × window sizes.
func TestStreamRefineMatchesBatchFit(t *testing.T) {
	for _, n := range []int{12, 24, 48} {
		for _, window := range []int{2, 3} {
			m, truth := streamTruthModel(n)
			sf, err := NewStreamFitter(m, StreamConfig{Window: window, Tol: 1e-12})
			if err != nil {
				t.Fatalf("n=%d w=%d: NewStreamFitter: %v", n, window, err)
			}
			days := window + 2
			var last *RefineResult
			for d := 0; d < days; d++ {
				p := dayRewards(n, d)
				tt, err := m.NetFlows(truth, p)
				if err != nil {
					t.Fatalf("NetFlows: %v", err)
				}
				for i := 0; i < n; i++ {
					usage := m.BaselineTIP[i] - tt[i]
					closed, err := sf.ObservePeriod(i, p[i], usage)
					if err != nil {
						t.Fatalf("n=%d w=%d day %d: ObservePeriod(%d): %v", n, window, d, i, err)
					}
					if closed != (i == n-1) {
						t.Fatalf("day closed at period %d", i)
					}
				}
				if last, err = sf.Refine(); err != nil {
					t.Fatalf("n=%d w=%d day %d: Refine: %v", n, window, d, err)
				}
			}
			if !sf.WindowFull() {
				t.Fatalf("window not full after %d days", days)
			}
			// Batch comparator: cold Model.Fit over the same window.
			obs := sf.Observations()
			batchObs := make([]Observation, len(obs))
			for i, o := range obs {
				batchObs[i] = Observation{
					Rewards: append([]float64(nil), o.Rewards...),
					T:       append([]float64(nil), o.T...),
				}
			}
			batch, err := m.Fit(batchObs)
			if err != nil {
				t.Fatalf("n=%d w=%d: batch Fit: %v", n, window, err)
			}
			if d := MaxAbsDiff(last.Params, batch.Params); d > 1e-6 {
				t.Errorf("n=%d w=%d: streaming vs batch divergence %.3g, want ≤ 1e-6", n, window, d)
			}
			// And both must have recovered the ground truth β's.
			if d := MaxAbsDiff(last.Params, truth); d > 1e-4 {
				t.Errorf("n=%d w=%d: streaming vs truth divergence %.3g, want ≤ 1e-4", n, window, d)
			}
		}
	}
}

func TestStreamWindowEviction(t *testing.T) {
	n := 4
	m, truth := streamTruthModel(n)
	sf, err := NewStreamFitter(m, StreamConfig{Window: 3})
	if err != nil {
		t.Fatalf("NewStreamFitter: %v", err)
	}
	var wantLast [][]float64
	for d := 0; d < 5; d++ {
		p := dayRewards(n, d)
		tt, err := m.NetFlows(truth, p)
		if err != nil {
			t.Fatalf("NetFlows: %v", err)
		}
		if err := sf.AddDay(p, tt); err != nil {
			t.Fatalf("AddDay: %v", err)
		}
		if d >= 2 {
			wantLast = append(wantLast, p)
		}
	}
	if sf.WindowLen() != 3 || sf.Days() != 5 || !sf.WindowFull() {
		t.Fatalf("window len %d days %d, want 3/5", sf.WindowLen(), sf.Days())
	}
	obs := sf.Observations()
	if len(obs) != 3 {
		t.Fatalf("Observations len %d, want 3", len(obs))
	}
	for s, o := range obs {
		for i := range o.Rewards {
			if math.Abs(o.Rewards[i]-wantLast[s][i]) > 0 {
				t.Fatalf("window slot %d holds wrong day (oldest-first eviction broken)", s)
			}
		}
	}
}

func TestStreamObservePeriodDayBoundaries(t *testing.T) {
	n := 4
	m, _ := streamTruthModel(n)
	sf, err := NewStreamFitter(m, StreamConfig{Window: 2})
	if err != nil {
		t.Fatalf("NewStreamFitter: %v", err)
	}
	// Attached mid-day: periods before the next day boundary are skipped.
	if closed, err := sf.ObservePeriod(2, 0.5, 90); err != nil || closed {
		t.Fatalf("mid-day attach: closed=%v err=%v, want skip", closed, err)
	}
	if sf.StalePeriods() != 0 {
		t.Fatalf("skipped period counted as stale")
	}
	// A proper day runs 0..n−1 and closes at the boundary.
	for i := 0; i < n; i++ {
		closed, err := sf.ObservePeriod(i, 0.5, 90)
		if err != nil {
			t.Fatalf("ObservePeriod(%d): %v", i, err)
		}
		if closed != (i == n-1) {
			t.Fatalf("period %d: closed = %v", i, closed)
		}
	}
	if sf.WindowLen() != 1 {
		t.Fatalf("window len %d after one day, want 1", sf.WindowLen())
	}
	// Out-of-order and duplicate periods are rejected mid-day.
	if _, err := sf.ObservePeriod(0, 0.5, 90); err != nil {
		t.Fatalf("day start: %v", err)
	}
	if _, err := sf.ObservePeriod(0, 0.5, 90); !errors.Is(err, ErrBadInput) {
		t.Errorf("duplicate period: err = %v, want ErrBadInput", err)
	}
	if _, err := sf.ObservePeriod(2, 0.5, 90); !errors.Is(err, ErrBadInput) {
		t.Errorf("skipped period: err = %v, want ErrBadInput", err)
	}
	if _, err := sf.ObservePeriod(9, 0.5, 90); !errors.Is(err, ErrBadInput) {
		t.Errorf("period out of range: err = %v, want ErrBadInput", err)
	}
	if _, err := sf.ObservePeriod(1, math.NaN(), 90); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN reward: err = %v, want ErrBadInput", err)
	}
	// AddDay refuses to interleave with a day in progress.
	if err := sf.AddDay(make([]float64, n), make([]float64, n)); !errors.Is(err, ErrBadInput) {
		t.Errorf("AddDay mid-day: err = %v, want ErrBadInput", err)
	}
}

func TestStreamRefineReuseAndStaleness(t *testing.T) {
	n := 6
	m, truth := streamTruthModel(n)
	sf, err := NewStreamFitter(m, StreamConfig{Window: 2})
	if err != nil {
		t.Fatalf("NewStreamFitter: %v", err)
	}
	if _, err := sf.Refine(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty refine: err = %v, want ErrBadInput", err)
	}
	p := dayRewards(n, 0)
	tt, _ := m.NetFlows(truth, p)
	if err := sf.AddDay(p, tt); err != nil {
		t.Fatalf("AddDay: %v", err)
	}
	if sf.StalePeriods() != n {
		t.Fatalf("stale periods %d, want %d", sf.StalePeriods(), n)
	}
	r1, err := sf.Refine()
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if r1.Reused || r1.Warm {
		t.Errorf("first refine: Reused=%v Warm=%v, want cold fresh", r1.Reused, r1.Warm)
	}
	if sf.StalePeriods() != 0 {
		t.Errorf("stale periods %d after refine, want 0", sf.StalePeriods())
	}
	r2, err := sf.Refine()
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !r2.Reused {
		t.Errorf("quiesced refine not reused")
	}
	if d := MaxAbsDiff(r1.Params, r2.Params); d > 0 {
		t.Errorf("reused refine drifted by %v", d)
	}
	// The cached params must not alias the caller's copy.
	r2.Params.Beta[0][0] = 99
	r3, _ := sf.Refine()
	if r3.Params.Beta[0][0] == 99 {
		t.Errorf("cached params aliased to caller copy")
	}
}

// TestStreamObserveAllocs pins the per-report ingest path: folding a
// period into the day in progress allocates nothing.
func TestStreamObserveAllocs(t *testing.T) {
	n := 12
	m, _ := streamTruthModel(n)
	sf, err := NewStreamFitter(m, StreamConfig{Window: 4})
	if err != nil {
		t.Fatalf("NewStreamFitter: %v", err)
	}
	period := 0
	allocs := testing.AllocsPerRun(10000, func() {
		if _, err := sf.ObservePeriod(period, 0.5, 90); err != nil {
			t.Fatalf("ObservePeriod: %v", err)
		}
		period = (period + 1) % n
	})
	if allocs > 0 {
		t.Errorf("ObservePeriod allocates %.1f per call, want 0", allocs)
	}
}
