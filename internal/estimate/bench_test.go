package estimate

import (
	"fmt"
	"math"
	"testing"
)

// benchStream builds a fitter with a full window of replayed noiseless
// days and a converged warm fit, the steady state a per-period
// refinement runs in.
func benchStream(b *testing.B, n, window int) (*Model, Params, *StreamFitter) {
	b.Helper()
	m, truth := streamTruthModel(n)
	sf, err := NewStreamFitter(m, StreamConfig{Window: window})
	if err != nil {
		b.Fatalf("NewStreamFitter: %v", err)
	}
	for d := 0; d < window; d++ {
		p := dayRewards(n, d)
		tt, err := m.NetFlows(truth, p)
		if err != nil {
			b.Fatalf("NetFlows: %v", err)
		}
		if err := sf.AddDay(p, tt); err != nil {
			b.Fatalf("AddDay: %v", err)
		}
	}
	if _, err := sf.Refine(); err != nil {
		b.Fatalf("warm-up Refine: %v", err)
	}
	return m, truth, sf
}

// BenchmarkStreamFitWarm measures the real per-period cost: one new
// period folded into the day in progress, then a warm-started
// refinement over the full window.
func BenchmarkStreamFitWarm(b *testing.B) {
	for _, sz := range []struct{ n, window int }{{12, 3}, {24, 3}, {48, 3}} {
		b.Run(fmt.Sprintf("n%dw%d", sz.n, sz.window), func(b *testing.B) {
			m, truth, sf := benchStream(b, sz.n, sz.window)
			n := sz.n
			period := 0
			day := 0
			p := dayRewards(n, day)
			tt, _ := m.NetFlows(truth, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sf.ObservePeriod(period, p[period], m.BaselineTIP[period]-tt[period]); err != nil {
					b.Fatalf("ObservePeriod: %v", err)
				}
				if _, err := sf.Refine(); err != nil {
					b.Fatalf("Refine: %v", err)
				}
				period++
				if period == n {
					period = 0
					day++
					b.StopTimer()
					p = dayRewards(n, day)
					tt, _ = m.NetFlows(truth, p)
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkStreamFitReused measures the quiesced fast path: Refine with
// no new data returns the cached fit.
func BenchmarkStreamFitReused(b *testing.B) {
	_, _, sf := benchStream(b, 24, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sf.Refine(); err != nil {
			b.Fatalf("Refine: %v", err)
		}
	}
}

// BenchmarkStreamFitColdBatch is the day-end baseline the streaming
// engine replaces: a cold Model.Fit over the same window.
func BenchmarkStreamFitColdBatch(b *testing.B) {
	for _, sz := range []struct{ n, window int }{{12, 3}, {24, 3}} {
		b.Run(fmt.Sprintf("n%dw%d", sz.n, sz.window), func(b *testing.B) {
			m, truth, sf := benchStream(b, sz.n, sz.window)
			obs := sf.Observations()
			batch := make([]Observation, len(obs))
			for i, o := range obs {
				batch[i] = Observation{
					Rewards: append([]float64(nil), o.Rewards...),
					T:       append([]float64(nil), o.T...),
				}
			}
			_ = truth
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Fit(batch); err != nil {
					b.Fatalf("Fit: %v", err)
				}
			}
		})
	}
}

// BenchmarkStreamObservePeriod isolates the O(1) fold of one period
// report into the day in progress (no refinement).
func BenchmarkStreamObservePeriod(b *testing.B) {
	m, _, sf := benchStream(b, 24, 3)
	n := m.Periods
	period := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sf.ObservePeriod(period, 0.5, 90); err != nil {
			b.Fatalf("ObservePeriod: %v", err)
		}
		period++
		if period == n {
			period = 0
		}
	}
	if sf.Days() < 0 {
		b.Fatal("unreachable")
	}
	_ = math.Inf(1)
}
