package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// table3Model reproduces the §IV example: 3 periods, 2 session types,
// rewards swept in [0, 1], unit baseline demand scale.
func table3Model() *Model {
	return &Model{
		Periods:     3,
		Types:       2,
		BaselineTIP: []float64{22, 13, 8},
		MaxReward:   1,
	}
}

// table3Actual is Table III's "actual values" column.
func table3Actual() Params {
	prm := NewParams(3, 2)
	alpha1 := []float64{0.17, 0.5, 0.83}
	beta2 := []float64{2, 2.33, 2.67}
	for i := 0; i < 3; i++ {
		prm.Alpha[i][0] = alpha1[i]
		prm.Alpha[i][1] = 1 - alpha1[i]
		prm.Beta[i][0] = 1
		prm.Beta[i][1] = beta2[i]
	}
	return prm
}

// rewardGrid sweeps reward vectors in [0,1]³ as the paper's data
// generation does.
func rewardGrid() [][]float64 {
	var out [][]float64
	levels := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, a := range levels {
		for _, b := range levels {
			for _, c := range levels {
				if a == 0 && b == 0 && c == 0 {
					continue
				}
				out = append(out, []float64{a, b, c})
			}
		}
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	good := table3Actual()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := table3Actual()
	bad.Alpha[0][0] = 0.9 // row no longer sums to 1
	if err := bad.Validate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad alpha sum: err = %v, want ErrBadInput", err)
	}
	bad2 := table3Actual()
	bad2.Beta[1][1] = -3
	if err := bad2.Validate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative beta: err = %v, want ErrBadInput", err)
	}
	var empty Params
	if err := empty.Validate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: err = %v, want ErrBadInput", err)
	}
}

func TestModelValidate(t *testing.T) {
	m := table3Model()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	m.BaselineTIP = m.BaselineTIP[:2]
	if err := m.Validate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("short baseline: err = %v, want ErrBadInput", err)
	}
}

func TestNetFlowsConservation(t *testing.T) {
	// ΣT_i = 0: sessions never disappear (the redundancy the paper's
	// elimination step exploits).
	m := table3Model()
	prm := table3Actual()
	for _, p := range rewardGrid() {
		tt, err := m.NetFlows(prm, p)
		if err != nil {
			t.Fatalf("NetFlows: %v", err)
		}
		var s float64
		for _, v := range tt {
			s += v
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("ΣT = %v for rewards %v, want 0", s, p)
		}
	}
}

func TestDeferralMatrixShape(t *testing.T) {
	m := table3Model()
	prm := table3Actual()
	q, err := m.DeferralMatrix(prm, []float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatalf("DeferralMatrix: %v", err)
	}
	for i := 0; i < 3; i++ {
		if q[i][i] != 0 {
			t.Errorf("Q[%d][%d] = %v, want 0", i, i, q[i][i])
		}
		for k := 0; k < 3; k++ {
			if q[i][k] < 0 {
				t.Errorf("negative deferral Q[%d][%d]", i, k)
			}
		}
	}
	// Zero rewards → zero deferrals.
	qz, err := m.DeferralMatrix(prm, []float64{0, 0, 0})
	if err != nil {
		t.Fatalf("DeferralMatrix: %v", err)
	}
	for i := range qz {
		for k := range qz[i] {
			if qz[i][k] != 0 {
				t.Errorf("deferral with zero rewards at (%d,%d)", i, k)
			}
		}
	}
	if _, err := m.DeferralMatrix(prm, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short rewards: err = %v, want ErrBadInput", err)
	}
}

// TestFitTable3 reproduces the §IV estimation experiment: generate
// aggregate data from the actual parameters, fit, and require the
// estimated waiting curves to stay close (the paper reports ≤ 11.8% max
// percent error; we allow headroom since the mixture parameters are only
// weakly identifiable — the paper's own estimated α̂₁ = 0.46 vs actual
// 0.17 shows this).
func TestFitTable3(t *testing.T) {
	m := table3Model()
	actual := table3Actual()
	var obs []Observation
	for _, p := range rewardGrid() {
		tt, err := m.NetFlows(actual, p)
		if err != nil {
			t.Fatalf("NetFlows: %v", err)
		}
		obs = append(obs, Observation{Rewards: p, T: tt})
	}
	fit, err := m.Fit(obs)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if err := fit.Params.Validate(); err != nil {
		t.Errorf("fitted params invalid: %v", err)
	}
	probe := []float64{0.25, 0.5, 0.75, 1}
	for period := 0; period < 3; period++ {
		pe, err := m.MaxPercentError(actual, fit.Params, period, probe)
		if err != nil {
			t.Fatalf("MaxPercentError: %v", err)
		}
		if pe > 20 {
			t.Errorf("period %d: max percent error %.1f%%, want ≤ 20%% (paper: ≤ 11.8%%)",
				period+1, pe)
		}
	}
}

// TestFitTable3WithNoise repeats the estimation with measurement noise on
// the observed net flows — the regime the paper's §IV iteration is meant
// for ("due to noise in the data…"). The fitted curves must stay close.
func TestFitTable3WithNoise(t *testing.T) {
	m := table3Model()
	actual := table3Actual()
	rng := rand.New(rand.NewSource(2024))
	var obs []Observation
	for _, p := range rewardGrid() {
		tt, err := m.NetFlows(actual, p)
		if err != nil {
			t.Fatalf("NetFlows: %v", err)
		}
		noisy := make([]float64, len(tt))
		for i := range tt {
			noisy[i] = tt[i] + 0.05*rng.NormFloat64() // ≈2% of typical flows
		}
		obs = append(obs, Observation{Rewards: p, T: noisy})
	}
	fit, err := m.Fit(obs)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for period := 0; period < 3; period++ {
		pe, err := m.MaxPercentError(actual, fit.Params, period, []float64{0.5, 1})
		if err != nil {
			t.Fatalf("MaxPercentError: %v", err)
		}
		if pe > 25 {
			t.Errorf("period %d: noisy-fit curve error %.1f%%, want ≤ 25%%", period+1, pe)
		}
	}
}

func TestFitInputValidation(t *testing.T) {
	m := table3Model()
	if _, err := m.Fit(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no obs: err = %v, want ErrBadInput", err)
	}
	bad := []Observation{{Rewards: []float64{1}, T: []float64{0, 0, 0}}}
	if _, err := m.Fit(bad); !errors.Is(err, ErrBadInput) {
		t.Errorf("malformed obs: err = %v, want ErrBadInput", err)
	}
}

func TestEstimateBaselineRecoversTIP(t *testing.T) {
	// Generate TDP usage from known X and params; the linear solve must
	// recover X (the eq. 9 iteration).
	m := table3Model()
	prm := table3Actual()
	xTrue := m.BaselineTIP
	var obs []Observation
	for _, p := range [][]float64{{0.3, 0.6, 0.1}, {0.9, 0.2, 0.5}, {0.1, 0.8, 0.7}} {
		omega, err := m.unitDeferrals(prm, p)
		if err != nil {
			t.Fatalf("unitDeferrals: %v", err)
		}
		usage := make([]float64, 3)
		for i := 0; i < 3; i++ {
			usage[i] = xTrue[i]
			for k := 0; k < 3; k++ {
				usage[i] -= xTrue[i] * omega[i][k]
				usage[i] += xTrue[k] * omega[k][i]
			}
		}
		obs = append(obs, Observation{Rewards: p, T: usage})
	}
	got, err := m.EstimateBaseline(prm, obs)
	if err != nil {
		t.Fatalf("EstimateBaseline: %v", err)
	}
	for i := range xTrue {
		if math.Abs(got[i]-xTrue[i]) > 1e-6*(1+xTrue[i]) {
			t.Errorf("X[%d] = %v, want %v", i, got[i], xTrue[i])
		}
	}
}

func TestEstimateBaselineValidation(t *testing.T) {
	m := table3Model()
	prm := table3Actual()
	if _, err := m.EstimateBaseline(prm, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no obs: err = %v, want ErrBadInput", err)
	}
}

func TestWaitingCurveBounds(t *testing.T) {
	m := table3Model()
	prm := table3Actual()
	if _, err := m.WaitingCurve(prm, 5, 0.5); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad period: err = %v, want ErrBadInput", err)
	}
	c, err := m.WaitingCurve(prm, 0, 1)
	if err != nil {
		t.Fatalf("WaitingCurve: %v", err)
	}
	if len(c) != 2 {
		t.Fatalf("curve has %d points, want 2", len(c))
	}
	// At the maximum reward, the aggregate curve sums to 1 (normalization
	// carried through the mixture).
	if s := c[0] + c[1]; math.Abs(s-1) > 1e-9 {
		t.Errorf("Σ curve at P = %v, want 1", s)
	}
	// Decreasing in deferral time.
	if c[0] <= c[1] {
		t.Errorf("curve not decreasing: %v", c)
	}
}
