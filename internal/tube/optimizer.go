package tube

import (
	"fmt"
	"sync"

	"tdp/internal/core"
	"tdp/internal/mechanism"
	"tdp/internal/obs"
	"tdp/internal/rrd"
)

// OptimizerConfig describes a TUBE Optimizer deployment.
type OptimizerConfig struct {
	// Scenario is the initial demand estimate and cost structure; its
	// Betas correspond one-to-one with Classes.
	Scenario *core.Scenario
	// Classes names the traffic classes (len == len(Scenario.Betas)).
	Classes []string
	// UseDynamic selects the carry-over dynamic model for price
	// determination (the paper's TUBE Optimizer uses the online algorithm
	// backed by the dynamic model).
	UseDynamic bool
	// HistoryRows bounds the RRD archives (default 1024).
	HistoryRows int
	// BasePrice is the baseline usage price per volume unit for billing
	// ($0.10 units; default 1).
	BasePrice float64
	// Shards is the measurement engine's lock-stripe count (0 → the
	// ingest package default, sized from GOMAXPROCS).
	Shards int
	// ProfileWindow bounds the day-batch profiling engine to a sliding
	// window of the most recent days (0 = retain every day, the
	// original unbounded behavior).
	ProfileWindow int
	// Streaming enables the streaming profiling engine: per-class
	// patience is re-estimated with a warm-started refinement at every
	// period close, fed from the same atomic rollover cut that drives
	// billing and price determination.
	Streaming bool
	// StreamWindow is the streaming engine's day window (default 3).
	StreamWindow int
	// Pricer, when set, replaces the online per-period price engine with
	// a pricing mechanism from the zoo: the initial schedule comes from
	// the mechanism's day plan, the schedule is re-planned once per day
	// from the observed per-period usage totals, and the online engine
	// (per-period re-optimization, demand EMA) is not constructed.
	// Billing, measurement, history and streaming profiling are
	// unchanged — only price determination is swapped.
	Pricer mechanism.Pricer
}

// Optimizer is the TUBE server brain: it owns the measurement engine, the
// profiling engine, the online price determination engine, and the price
// and usage history.
type Optimizer struct {
	mu        sync.Mutex
	cfg       OptimizerConfig
	meas      *Measurement          // internally synchronized (sharded engine)
	profiler  *Profiler             // internally synchronized
	stream    *StreamProfiler       // internally synchronized; nil unless cfg.Streaming
	online    *core.OnlineOptimizer // guarded by mu: the online engine has no lock of its own; nil when cfg.Pricer is set
	priceHist *rrd.DB
	usageHist *rrd.DB
	billing   *Billing
	period    int       // guarded by mu
	rewards   []float64 // guarded by mu: day-shaped published schedule
	dayUsage  []float64 // guarded by mu: per-period usage totals of the day in progress (mechanism mode only)

	// coldPeriodEvals is a one-shot cold-solve calibration measured at
	// construction: the 1-D evaluation count of a full-bracket per-period
	// solve on this scenario, the baseline for the evals-saved metric.
	coldPeriodEvals int
}

// NewOptimizer validates the configuration, computes the initial reward
// schedule with a full offline solve, and prepares the engines.
func NewOptimizer(cfg OptimizerConfig) (*Optimizer, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("nil scenario: %w", ErrBadInput)
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, badInput(err)
	}
	if len(cfg.Classes) != len(cfg.Scenario.Betas) {
		return nil, fmt.Errorf("%d classes for %d session types: %w",
			len(cfg.Classes), len(cfg.Scenario.Betas), ErrBadInput)
	}
	if cfg.HistoryRows <= 0 {
		cfg.HistoryRows = 1024
	}
	if cfg.BasePrice == 0 {
		cfg.BasePrice = 1
	}
	meas, err := NewMeasurementShards(cfg.Classes, cfg.Shards)
	if err != nil {
		return nil, err
	}
	profiler, err := NewProfiler(cfg.Scenario.Periods, len(cfg.Classes),
		cfg.Scenario.TotalDemand(), cfg.Scenario.NormReward())
	if err != nil {
		return nil, err
	}
	if cfg.ProfileWindow > 0 {
		if err := profiler.SetWindow(cfg.ProfileWindow); err != nil {
			return nil, err
		}
	}
	var stream *StreamProfiler
	if cfg.Streaming {
		stream, err = NewStreamProfiler(cfg.Scenario.Demand, cfg.Scenario.NormReward(),
			StreamConfig{Window: cfg.StreamWindow})
		if err != nil {
			return nil, err
		}
		if err := stream.Attach(meas.Engine()); err != nil {
			return nil, err
		}
	}
	var (
		online  *core.OnlineOptimizer
		rewards []float64
		coldPS  core.PeriodSolve
	)
	if cfg.Pricer != nil {
		rewards, err = cfg.Pricer.PlanDay(cfg.Scenario, nil)
		if err != nil {
			return nil, fmt.Errorf("mechanism %q initial plan: %w", cfg.Pricer.Name(), err)
		}
		if len(rewards) != cfg.Scenario.Periods {
			return nil, fmt.Errorf("mechanism %q planned %d periods, want %d: %w",
				cfg.Pricer.Name(), len(rewards), cfg.Scenario.Periods, ErrBadInput)
		}
	} else {
		online, err = core.NewOnlineOptimizer(cfg.Scenario, core.OnlineConfig{
			UseDynamic: cfg.UseDynamic,
		})
		if err != nil {
			return nil, badInput(err)
		}
		rewards = online.Rewards()
	}
	priceHist, err := rrd.New(1, rrd.ArchiveSpec{Func: rrd.Last, Steps: 1, Rows: cfg.HistoryRows})
	if err != nil {
		return nil, err
	}
	usageHist, err := rrd.New(1, rrd.ArchiveSpec{Func: rrd.Last, Steps: 1, Rows: cfg.HistoryRows})
	if err != nil {
		return nil, err
	}
	billing, err := NewBilling(cfg.BasePrice)
	if err != nil {
		return nil, err
	}
	if online != nil {
		// One-shot calibration: measure what a cold full-bracket per-period
		// solve costs here, so warm solves can report evaluations saved.
		if coldPS, err = online.ColdPeriodSolve(0); err != nil {
			return nil, err
		}
	}
	return &Optimizer{
		cfg:             cfg,
		meas:            meas,
		profiler:        profiler,
		stream:          stream,
		online:          online,
		priceHist:       priceHist,
		usageHist:       usageHist,
		billing:         billing,
		rewards:         rewards,
		dayUsage:        make([]float64, cfg.Scenario.Periods),
		coldPeriodEvals: coldPS.Evals,
	}, nil
}

// Measurement exposes the measurement engine for traffic accounting.
func (o *Optimizer) Measurement() *Measurement { return o.meas }

// Profiler exposes the profiling engine.
func (o *Optimizer) Profiler() *Profiler { return o.profiler }

// Stream exposes the streaming profiling engine (nil unless the
// optimizer was configured with Streaming).
func (o *Optimizer) Stream() *StreamProfiler { return o.stream }

// Billing exposes the billing engine.
func (o *Optimizer) Billing() *Billing { return o.billing }

// Period returns the index (0-based) of the period now in progress.
func (o *Optimizer) Period() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.period
}

// CurrentReward returns the published reward for the period in progress.
func (o *Optimizer) CurrentReward() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rewards[o.period%o.cfg.Scenario.Periods]
}

// Schedule returns a copy of the full day reward schedule.
func (o *Optimizer) Schedule() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]float64(nil), o.rewards...)
}

// ClosePeriod ends the period in progress: it snapshots and resets the
// measurement counters, feeds the observation to the online price engine,
// logs price and usage history, and publishes the updated schedule.
// It returns the closed period's per-class measured volumes.
func (o *Optimizer) ClosePeriod() ([]float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	// One atomic rollover: per-class and per-user totals come from the
	// same consistent cut, so a report racing the period close cannot be
	// billed in one period but profiled in the other (the old
	// UserTotals-then-Reset pair left that window open).
	observed, perUser := o.meas.Rollover()
	idx := o.period % o.cfg.Scenario.Periods
	reward := o.rewards[idx]

	if err := o.billing.AddPeriod(perUser, reward); err != nil {
		return nil, fmt.Errorf("billing: %w", err)
	}

	// Streaming profiling rides the same critical section: the fold
	// consumes the (reward, totals) pair of THIS rollover cut before any
	// schedule update below can change the reward — billed, profiled and
	// re-priced usage all describe one atomic period close.
	if o.stream != nil {
		if _, err := o.stream.FoldPeriod(idx, reward, observed); err != nil {
			return nil, fmt.Errorf("stream profile: %w", err)
		}
		if o.stream.Days() > 0 {
			if _, err := o.stream.Refine(); err != nil {
				return nil, fmt.Errorf("stream refine: %w", err)
			}
		}
	}

	var total float64
	for _, v := range observed {
		total += v
	}

	if o.online != nil {
		ps, err := o.online.Advance(observed)
		if err != nil {
			return nil, fmt.Errorf("close period %d: %w", o.period, err)
		}
		o.rewards = o.online.Rewards()
		o.recordPeriodSolve(ps)
	} else {
		// Mechanism mode: bank the period's usage total; at the day
		// boundary hand the full day profile to the mechanism and publish
		// its next-day schedule (mechanisms plan whole days, not periods).
		o.dayUsage[idx] = total
		if idx == o.cfg.Scenario.Periods-1 {
			if err := o.replanMechanism(); err != nil {
				return nil, err
			}
		}
	}

	t := int64(o.period + 1)
	if err := o.priceHist.Update(t, reward); err != nil {
		return nil, fmt.Errorf("price history: %w", err)
	}
	if err := o.usageHist.Update(t, total); err != nil {
		return nil, fmt.Errorf("usage history: %w", err)
	}
	o.period++
	return observed, nil
}

// replanMechanism closes a day in mechanism mode: the day's observed
// usage totals go to the pricing mechanism as its observation, and the
// schedule it plans is published for the next day. Callers must hold
// o.mu.
func (o *Optimizer) replanMechanism() error {
	ob := &mechanism.Observation{Usage: append([]float64(nil), o.dayUsage...)}
	rewards, err := o.cfg.Pricer.PlanDay(o.cfg.Scenario, ob)
	if err != nil {
		return fmt.Errorf("mechanism %q day plan: %w", o.cfg.Pricer.Name(), err)
	}
	if len(rewards) != o.cfg.Scenario.Periods {
		return fmt.Errorf("mechanism %q planned %d periods, want %d: %w",
			o.cfg.Pricer.Name(), len(rewards), o.cfg.Scenario.Periods, ErrBadInput)
	}
	o.rewards = rewards
	obs.Default().Counter("optimizer_mechanism_plans_total",
		"mechanism day plans published, by mechanism",
		obs.Labels{"mechanism": o.cfg.Pricer.Name()}).Inc()
	return nil
}

// recordPeriodSolve publishes one online re-optimization to the default
// registry, keyed by whether the warm bracket sufficed.
func (o *Optimizer) recordPeriodSolve(ps core.PeriodSolve) {
	start := "cold"
	if ps.Warm {
		start = "warm"
	}
	reg := obs.Default()
	lbl := obs.Labels{"start": start}
	reg.Counter("online_period_solves_total", "per-period re-optimizations, by start mode", lbl).Inc()
	reg.Histogram("online_period_solve_evals", "1-D cost evaluations per period re-optimization",
		lbl, periodEvalBuckets).Observe(float64(ps.Evals))
	if ps.Warm {
		if saved := o.coldPeriodEvals - ps.Evals; saved > 0 {
			reg.Counter("online_period_evals_saved_total",
				"1-D cost evaluations avoided by warm-started period solves, vs the startup cold calibration", nil).
				Add(int64(saved))
		}
	}
}

// periodEvalBuckets spans 1…1024 one-dimensional evaluations per solve.
var periodEvalBuckets = obs.ExpBuckets(1, 2, 11)

// PriceHistory returns the archived per-period published rewards.
func (o *Optimizer) PriceHistory() ([]rrd.Point, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.priceHist.Fetch(0)
}

// UsageHistory returns the archived per-period aggregate usage.
func (o *Optimizer) UsageHistory() ([]rrd.Point, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.usageHist.Fetch(0)
}

// DemandEstimate returns the online engine's current demand estimate.
// In mechanism mode there is no online engine and no demand EMA, so the
// declared scenario demand is returned unchanged.
func (o *Optimizer) DemandEstimate() [][]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.online == nil {
		out := make([][]float64, len(o.cfg.Scenario.Demand))
		for i, row := range o.cfg.Scenario.Demand {
			out[i] = append([]float64(nil), row...)
		}
		return out
	}
	return o.online.DemandEstimate()
}
