package tube

import (
	"fmt"
	"sync"

	"tdp/internal/core"
	"tdp/internal/obs"
	"tdp/internal/rrd"
)

// OptimizerConfig describes a TUBE Optimizer deployment.
type OptimizerConfig struct {
	// Scenario is the initial demand estimate and cost structure; its
	// Betas correspond one-to-one with Classes.
	Scenario *core.Scenario
	// Classes names the traffic classes (len == len(Scenario.Betas)).
	Classes []string
	// UseDynamic selects the carry-over dynamic model for price
	// determination (the paper's TUBE Optimizer uses the online algorithm
	// backed by the dynamic model).
	UseDynamic bool
	// HistoryRows bounds the RRD archives (default 1024).
	HistoryRows int
	// BasePrice is the baseline usage price per volume unit for billing
	// ($0.10 units; default 1).
	BasePrice float64
	// Shards is the measurement engine's lock-stripe count (0 → the
	// ingest package default, sized from GOMAXPROCS).
	Shards int
	// ProfileWindow bounds the day-batch profiling engine to a sliding
	// window of the most recent days (0 = retain every day, the
	// original unbounded behavior).
	ProfileWindow int
	// Streaming enables the streaming profiling engine: per-class
	// patience is re-estimated with a warm-started refinement at every
	// period close, fed from the same atomic rollover cut that drives
	// billing and price determination.
	Streaming bool
	// StreamWindow is the streaming engine's day window (default 3).
	StreamWindow int
}

// Optimizer is the TUBE server brain: it owns the measurement engine, the
// profiling engine, the online price determination engine, and the price
// and usage history.
type Optimizer struct {
	mu        sync.Mutex
	cfg       OptimizerConfig
	meas      *Measurement          // internally synchronized (sharded engine)
	profiler  *Profiler             // internally synchronized
	stream    *StreamProfiler       // internally synchronized; nil unless cfg.Streaming
	online    *core.OnlineOptimizer // guarded by mu: the online engine has no lock of its own
	priceHist *rrd.DB
	usageHist *rrd.DB
	billing   *Billing
	period    int       // guarded by mu
	rewards   []float64 // guarded by mu: day-shaped published schedule

	// coldPeriodEvals is a one-shot cold-solve calibration measured at
	// construction: the 1-D evaluation count of a full-bracket per-period
	// solve on this scenario, the baseline for the evals-saved metric.
	coldPeriodEvals int
}

// NewOptimizer validates the configuration, computes the initial reward
// schedule with a full offline solve, and prepares the engines.
func NewOptimizer(cfg OptimizerConfig) (*Optimizer, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("nil scenario: %w", ErrBadInput)
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, badInput(err)
	}
	if len(cfg.Classes) != len(cfg.Scenario.Betas) {
		return nil, fmt.Errorf("%d classes for %d session types: %w",
			len(cfg.Classes), len(cfg.Scenario.Betas), ErrBadInput)
	}
	if cfg.HistoryRows <= 0 {
		cfg.HistoryRows = 1024
	}
	if cfg.BasePrice == 0 {
		cfg.BasePrice = 1
	}
	meas, err := NewMeasurementShards(cfg.Classes, cfg.Shards)
	if err != nil {
		return nil, err
	}
	profiler, err := NewProfiler(cfg.Scenario.Periods, len(cfg.Classes),
		cfg.Scenario.TotalDemand(), cfg.Scenario.NormReward())
	if err != nil {
		return nil, err
	}
	if cfg.ProfileWindow > 0 {
		if err := profiler.SetWindow(cfg.ProfileWindow); err != nil {
			return nil, err
		}
	}
	var stream *StreamProfiler
	if cfg.Streaming {
		stream, err = NewStreamProfiler(cfg.Scenario.Demand, cfg.Scenario.NormReward(),
			StreamConfig{Window: cfg.StreamWindow})
		if err != nil {
			return nil, err
		}
		if err := stream.Attach(meas.Engine()); err != nil {
			return nil, err
		}
	}
	online, err := core.NewOnlineOptimizer(cfg.Scenario, core.OnlineConfig{
		UseDynamic: cfg.UseDynamic,
	})
	if err != nil {
		return nil, badInput(err)
	}
	priceHist, err := rrd.New(1, rrd.ArchiveSpec{Func: rrd.Last, Steps: 1, Rows: cfg.HistoryRows})
	if err != nil {
		return nil, err
	}
	usageHist, err := rrd.New(1, rrd.ArchiveSpec{Func: rrd.Last, Steps: 1, Rows: cfg.HistoryRows})
	if err != nil {
		return nil, err
	}
	billing, err := NewBilling(cfg.BasePrice)
	if err != nil {
		return nil, err
	}
	// One-shot calibration: measure what a cold full-bracket per-period
	// solve costs here, so warm solves can report evaluations saved.
	coldPS, err := online.ColdPeriodSolve(0)
	if err != nil {
		return nil, err
	}
	return &Optimizer{
		cfg:             cfg,
		meas:            meas,
		profiler:        profiler,
		stream:          stream,
		online:          online,
		priceHist:       priceHist,
		usageHist:       usageHist,
		billing:         billing,
		rewards:         online.Rewards(),
		coldPeriodEvals: coldPS.Evals,
	}, nil
}

// Measurement exposes the measurement engine for traffic accounting.
func (o *Optimizer) Measurement() *Measurement { return o.meas }

// Profiler exposes the profiling engine.
func (o *Optimizer) Profiler() *Profiler { return o.profiler }

// Stream exposes the streaming profiling engine (nil unless the
// optimizer was configured with Streaming).
func (o *Optimizer) Stream() *StreamProfiler { return o.stream }

// Billing exposes the billing engine.
func (o *Optimizer) Billing() *Billing { return o.billing }

// Period returns the index (0-based) of the period now in progress.
func (o *Optimizer) Period() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.period
}

// CurrentReward returns the published reward for the period in progress.
func (o *Optimizer) CurrentReward() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rewards[o.period%o.cfg.Scenario.Periods]
}

// Schedule returns a copy of the full day reward schedule.
func (o *Optimizer) Schedule() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]float64(nil), o.rewards...)
}

// ClosePeriod ends the period in progress: it snapshots and resets the
// measurement counters, feeds the observation to the online price engine,
// logs price and usage history, and publishes the updated schedule.
// It returns the closed period's per-class measured volumes.
func (o *Optimizer) ClosePeriod() ([]float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	// One atomic rollover: per-class and per-user totals come from the
	// same consistent cut, so a report racing the period close cannot be
	// billed in one period but profiled in the other (the old
	// UserTotals-then-Reset pair left that window open).
	observed, perUser := o.meas.Rollover()
	idx := o.period % o.cfg.Scenario.Periods
	reward := o.rewards[idx]

	if err := o.billing.AddPeriod(perUser, reward); err != nil {
		return nil, fmt.Errorf("billing: %w", err)
	}

	// Streaming profiling rides the same critical section: the fold
	// consumes the (reward, totals) pair of THIS rollover cut before any
	// schedule update below can change the reward — billed, profiled and
	// re-priced usage all describe one atomic period close.
	if o.stream != nil {
		if _, err := o.stream.FoldPeriod(idx, reward, observed); err != nil {
			return nil, fmt.Errorf("stream profile: %w", err)
		}
		if o.stream.Days() > 0 {
			if _, err := o.stream.Refine(); err != nil {
				return nil, fmt.Errorf("stream refine: %w", err)
			}
		}
	}

	ps, err := o.online.Advance(observed)
	if err != nil {
		return nil, fmt.Errorf("close period %d: %w", o.period, err)
	}
	o.rewards = o.online.Rewards()
	o.recordPeriodSolve(ps)

	var total float64
	for _, v := range observed {
		total += v
	}
	t := int64(o.period + 1)
	if err := o.priceHist.Update(t, reward); err != nil {
		return nil, fmt.Errorf("price history: %w", err)
	}
	if err := o.usageHist.Update(t, total); err != nil {
		return nil, fmt.Errorf("usage history: %w", err)
	}
	o.period++
	return observed, nil
}

// recordPeriodSolve publishes one online re-optimization to the default
// registry, keyed by whether the warm bracket sufficed.
func (o *Optimizer) recordPeriodSolve(ps core.PeriodSolve) {
	start := "cold"
	if ps.Warm {
		start = "warm"
	}
	reg := obs.Default()
	lbl := obs.Labels{"start": start}
	reg.Counter("online_period_solves_total", "per-period re-optimizations, by start mode", lbl).Inc()
	reg.Histogram("online_period_solve_evals", "1-D cost evaluations per period re-optimization",
		lbl, periodEvalBuckets).Observe(float64(ps.Evals))
	if ps.Warm {
		if saved := o.coldPeriodEvals - ps.Evals; saved > 0 {
			reg.Counter("online_period_evals_saved_total",
				"1-D cost evaluations avoided by warm-started period solves, vs the startup cold calibration", nil).
				Add(int64(saved))
		}
	}
}

// periodEvalBuckets spans 1…1024 one-dimensional evaluations per solve.
var periodEvalBuckets = obs.ExpBuckets(1, 2, 11)

// PriceHistory returns the archived per-period published rewards.
func (o *Optimizer) PriceHistory() ([]rrd.Point, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.priceHist.Fetch(0)
}

// UsageHistory returns the archived per-period aggregate usage.
func (o *Optimizer) UsageHistory() ([]rrd.Point, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.usageHist.Fetch(0)
}

// DemandEstimate returns the online engine's current demand estimate.
func (o *Optimizer) DemandEstimate() [][]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.online.DemandEstimate()
}
