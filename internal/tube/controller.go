package tube

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"tdp/internal/core"
	"tdp/internal/mechanism"
	"tdp/internal/obs"
	"tdp/internal/optimize"
)

// Controller closes the paper's Fig. 1 loop across days: publish a day of
// optimized rewards, observe the aggregate user reaction, feed the
// TIP-vs-TDP differences to the profiling engine, and re-estimate the
// patience indices that drive the next day's optimization — the "weekly"
// estimation workflow §IV describes, where the ISP never observes
// individual sessions.
//
// With Streaming enabled the loop also turns per period: ObservePeriod
// folds each period close into the streaming profiling engine,
// warm-refines the patience estimate, and re-plans the remaining
// schedule — estimation latency drops from a day to a period.
//
// All methods are safe for concurrent use: the day/period cut (usage
// fold → re-estimation → belief update → re-plan) runs under one
// critical section, so a concurrent Betas or PlanDay can never observe
// a half-applied day.
type Controller struct {
	mu       sync.Mutex
	cfg      ControllerConfig
	betas    []float64 // guarded by mu
	profiler *ClassProfiler
	stream   *StreamProfiler // internally synchronized; nil unless cfg.Streaming
	days     int             // guarded by mu

	// lastRewards is the most recent planned schedule; day 2 onward it
	// warm-starts the solve (the patience belief moves only a little per
	// re-estimation, so the previous optimum is near the new one).
	lastRewards []float64 // guarded by mu
	// coldPlanEvals is the evaluation count of the first (cold) plan, the
	// baseline for the evals-saved metric.
	coldPlanEvals int // guarded by mu
	// lastUsage is the most recent closed day's per-period usage totals,
	// handed to a configured pricing mechanism as its observation.
	lastUsage []float64 // guarded by mu
}

// ControllerConfig describes the deployment.
type ControllerConfig struct {
	// Demand[i][j] is the TIP baseline demand of class j in period i+1
	// (from a pre-TDP control period).
	Demand [][]float64
	// Classes names the traffic classes.
	Classes []string
	// InitialBetas is the ISP's prior patience estimate per class.
	InitialBetas []float64
	// Capacity, Cost, MaxRewardNorm parameterize the pricing model.
	Capacity      []float64
	Cost          core.CostFunc
	MaxRewardNorm float64
	// UseDynamic selects the carry-over model.
	UseDynamic bool
	// MinObservations gates re-estimation: the profiler must hold at
	// least this many days of data before its estimates replace the
	// prior (default 2 — a single day is rarely identifying). The
	// streaming engine applies the same gate in complete days.
	MinObservations int
	// EstimationIter caps the LM iterations per re-estimation (default
	// 150; the day-batch fit starts from scratch each day, the streaming
	// refinement warm-starts).
	EstimationIter int
	// ProfileWindow bounds the day-batch profiler to the most recent
	// days (0 = retain every day).
	ProfileWindow int
	// Streaming enables per-period re-estimation via ObservePeriod.
	Streaming bool
	// StreamWindow is the streaming engine's day window (default 3).
	StreamWindow int
	// Pricer, when set, replaces the optimizing day plan with a pricing
	// mechanism from the zoo: PlanDay delegates to the mechanism under
	// the *current patience belief* and the last closed day's usage
	// totals, so profiling keeps improving every mechanism's model of
	// the users, not just TDP's. When nil, the paper's solver plans.
	Pricer mechanism.Pricer
}

// DayReport summarizes one closed day of the control loop.
type DayReport struct {
	// Day is the 1-based day number.
	Day int
	// Rewards is the schedule that was published.
	Rewards []float64
	// UsageTotals is the realized per-period aggregate usage.
	UsageTotals []float64
	// CongestionCost is Σ_i f(usage_i − A_i) on the realized usage.
	CongestionCost float64
	// Betas is the patience estimate in force *after* this day's
	// re-profiling.
	Betas []float64
	// Reestimated reports whether profiling updated the betas.
	Reestimated bool
	// Trace is the day's timed span tree (plan → react → observe →
	// estimate). Only RunDay/RunDayCtx populate it; a bare ObserveDay
	// leaves it nil.
	Trace *obs.Span
}

// PeriodReport summarizes one streamed period close.
type PeriodReport struct {
	// Period is the period index within the day (0-based).
	Period int
	// Day is the 1-based number of the day in progress (the day the
	// period belongs to).
	Day int
	// DayClosed reports whether this period completed a day.
	DayClosed bool
	// Reward is the reward that was in force.
	Reward float64
	// UsageByClass is the folded per-class usage.
	UsageByClass []float64
	// Betas is the patience estimate in force after the fold.
	Betas []float64
	// Refined reports whether the streaming refinement updated the
	// belief (false while the gate is not yet met or the window is
	// quiesced).
	Refined bool
	// Replanned reports whether the schedule was re-optimized.
	Replanned bool
	// Rewards is the schedule in force after the period (re-planned or
	// carried).
	Rewards []float64
	// StalePeriods is the streaming engine's estimate staleness after
	// this period.
	StalePeriods int
	// Trace is the period's timed span tree (fold → refine → replan).
	// Only ObservePeriodCtx under a traced context populates timings;
	// the tree is always returned.
	Trace *obs.Span
}

// NewController validates the configuration.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Demand) < 2 {
		return nil, fmt.Errorf("demand needs ≥ 2 periods: %w", ErrBadInput)
	}
	if len(cfg.Classes) == 0 || len(cfg.InitialBetas) != len(cfg.Classes) {
		return nil, fmt.Errorf("%d classes, %d betas: %w", len(cfg.Classes), len(cfg.InitialBetas), ErrBadInput)
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 2
	}
	if cfg.EstimationIter <= 0 {
		cfg.EstimationIter = 150
	}
	scn := &core.Scenario{
		Periods:       len(cfg.Demand),
		Demand:        cfg.Demand,
		Betas:         cfg.InitialBetas,
		Capacity:      cfg.Capacity,
		Cost:          cfg.Cost,
		MaxRewardNorm: cfg.MaxRewardNorm,
	}
	if err := scn.Validate(); err != nil {
		return nil, badInput(err)
	}
	prof, err := NewClassProfiler(cfg.Demand, scn.NormReward(), cfg.EstimationIter)
	if err != nil {
		return nil, err
	}
	if cfg.ProfileWindow > 0 {
		if err := prof.SetWindow(cfg.ProfileWindow); err != nil {
			return nil, err
		}
	}
	var stream *StreamProfiler
	if cfg.Streaming {
		stream, err = NewStreamProfiler(cfg.Demand, scn.NormReward(), StreamConfig{
			Window:  cfg.StreamWindow,
			MaxIter: cfg.EstimationIter,
		})
		if err != nil {
			return nil, err
		}
	}
	return &Controller{
		cfg:      cfg,
		betas:    append([]float64(nil), cfg.InitialBetas...),
		profiler: prof,
		stream:   stream,
	}, nil
}

// Betas returns the current per-class patience estimates.
func (c *Controller) Betas() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.betasLocked()
}

// betasLocked copies the belief. Callers must hold c.mu.
func (c *Controller) betasLocked() []float64 {
	return append([]float64(nil), c.betas...)
}

// Days returns the number of closed days.
func (c *Controller) Days() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.days
}

// Stream exposes the streaming profiling engine (nil unless the
// controller was configured with Streaming).
func (c *Controller) Stream() *StreamProfiler { return c.stream }

// scenario builds the pricing scenario from the current belief.
// Callers must hold c.mu.
func (c *Controller) scenario() *core.Scenario {
	return &core.Scenario{
		Periods:       len(c.cfg.Demand),
		Demand:        c.cfg.Demand,
		Betas:         c.betas,
		Capacity:      c.cfg.Capacity,
		Cost:          c.cfg.Cost,
		MaxRewardNorm: c.cfg.MaxRewardNorm,
	}
}

// PlanDay solves the pricing model under the current patience belief and
// returns the reward schedule to publish. From the second day on, the
// solve warm-starts from the previous day's schedule, which truncates the
// smoothing homotopy and typically cuts the evaluation count by an order
// of magnitude; the optimum is unchanged (the solve still converges to the
// same tolerance on the exact cost).
func (c *Controller) PlanDay() ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planLocked()
}

// planLocked is PlanDay's body. Callers must hold c.mu.
func (c *Controller) planLocked() ([]float64, error) {
	if c.cfg.Pricer != nil {
		return c.planMechanismLocked()
	}
	scn := c.scenario()
	warm := c.lastRewards != nil
	var opts []optimize.Option
	if warm {
		opts = append(opts, optimize.WithWarmStart(c.lastRewards))
	}
	var (
		pr  *core.Pricing
		err error
	)
	if c.cfg.UseDynamic {
		var m *core.DynamicModel
		if m, err = core.NewDynamicModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	} else {
		var m *core.StaticModel
		if m, err = core.NewStaticModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	}
	if err != nil {
		return nil, badInput(err)
	}
	c.recordPlan(pr, warm)
	c.lastRewards = append([]float64(nil), pr.Rewards...)
	return pr.Rewards, nil
}

// planMechanismLocked delegates the day plan to the configured pricing
// mechanism, under the current patience belief and the last closed
// day's usage totals. Callers must hold c.mu.
func (c *Controller) planMechanismLocked() ([]float64, error) {
	scn := c.scenario()
	var ob *mechanism.Observation
	if c.lastUsage != nil {
		ob = &mechanism.Observation{Usage: append([]float64(nil), c.lastUsage...)}
	}
	rewards, err := c.cfg.Pricer.PlanDay(scn, ob)
	if err != nil {
		return nil, fmt.Errorf("mechanism %q day plan: %w", c.cfg.Pricer.Name(), err)
	}
	if len(rewards) != scn.Periods {
		return nil, fmt.Errorf("mechanism %q planned %d periods, want %d: %w",
			c.cfg.Pricer.Name(), len(rewards), scn.Periods, ErrBadInput)
	}
	c.lastRewards = append([]float64(nil), rewards...)
	obs.Default().Counter("controller_mechanism_plans_total",
		"mechanism day plans published, by mechanism",
		obs.Labels{"mechanism": c.cfg.Pricer.Name()}).Inc()
	return rewards, nil
}

// recordPlan publishes one day-plan solve to the default registry, keyed
// by whether it was warm-started. Callers must hold c.mu.
func (c *Controller) recordPlan(pr *core.Pricing, warm bool) {
	start := "cold"
	if warm {
		start = "warm"
	}
	reg := obs.Default()
	lbl := obs.Labels{"start": start}
	reg.Counter("controller_plans_total", "day-plan solves, by start mode", lbl).Inc()
	reg.Histogram("controller_plan_iterations", "solver iterations per day plan", lbl, planBuckets).
		Observe(float64(pr.Iterations))
	reg.Histogram("controller_plan_evals", "objective evaluations per day plan", lbl, planBuckets).
		Observe(float64(pr.Evals))
	if !warm {
		c.coldPlanEvals = pr.Evals
	} else if saved := c.coldPlanEvals - pr.Evals; saved > 0 {
		reg.Counter("controller_plan_evals_saved_total",
			"objective evaluations avoided by warm-started day plans, vs the first cold plan", nil).
			Add(int64(saved))
	}
}

// planBuckets spans 1…~5e5 iterations/evaluations per plan.
var planBuckets = obs.ExpBuckets(1, 2, 20)

// ObserveDay closes a day: the realized per-period, per-class usage (what
// the measurement engine accounted) is folded into the per-class
// profiler, and once enough days are banked the patience estimates are
// refreshed for the next PlanDay.
func (c *Controller) ObserveDay(rewards []float64, usage [][]float64) (*DayReport, error) {
	return c.observeDay(context.Background(), rewards, usage)
}

// observeDay is ObserveDay with span threading: under a traced context
// it times the profiler fold (profile.observe) and the re-estimation
// (profile.estimate) separately, since the LM fit dominates.
//
// The whole day cut runs under c.mu: fold, re-estimation and belief
// update are one critical section, so concurrent Betas/PlanDay callers
// see either the pre-day or the post-day belief, never a torn one.
func (c *Controller) observeDay(ctx context.Context, rewards []float64, usage [][]float64) (*DayReport, error) {
	n := len(c.cfg.Demand)
	if len(rewards) != n || len(usage) != n {
		return nil, fmt.Errorf("day has %d rewards, %d usage rows, want %d: %w",
			len(rewards), len(usage), n, ErrBadInput)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, obsSpan := obs.StartSpan(ctx, "profile.observe")
	if err := c.profiler.AddObservation(rewards, usage); err != nil {
		obsSpan.End()
		return nil, err
	}
	c.days++

	report := &DayReport{
		Day:         c.days,
		Rewards:     append([]float64(nil), rewards...),
		UsageTotals: make([]float64, n),
	}
	for i, row := range usage {
		for _, v := range row {
			report.UsageTotals[i] += v
		}
		report.CongestionCost += c.cfg.Cost.Value(report.UsageTotals[i] - c.cfg.Capacity[i])
	}
	c.lastUsage = append(c.lastUsage[:0], report.UsageTotals...)
	obsSpan.End()
	if c.profiler.ObservationCount() >= c.cfg.MinObservations {
		_, estSpan := obs.StartSpan(ctx, "profile.estimate")
		betas, err := c.profiler.EstimateBetas()
		estSpan.End()
		if err != nil {
			return nil, fmt.Errorf("re-profiling: %w", err)
		}
		c.betas = betas
		report.Reestimated = true
	}
	report.Betas = c.betasLocked()
	c.publishDayMetrics(report)
	return report, nil
}

// publishDayMetrics exports the closed day to the default registry.
func (c *Controller) publishDayMetrics(report *DayReport) {
	reg := obs.Default()
	reg.Counter("controller_days_total", "control-loop days closed", nil).Inc()
	if report.Reestimated {
		reg.Counter("controller_reestimates_total", "patience re-estimations performed", nil).Inc()
	}
	reg.Gauge("controller_congestion_cost", "congestion cost of the last closed day", nil).
		Set(report.CongestionCost)
	for j, b := range report.Betas {
		reg.Gauge("controller_beta", "patience estimate in force, by class index", obs.Labels{"class": strconv.Itoa(j)}).
			Set(b)
	}
}

// ObservePeriod closes one period of the streaming loop: fold the
// authoritative per-class usage of the period into the streaming
// profiling engine, warm-refine the patience estimate, and — once the
// MinObservations gate (in complete days) is met and the refinement
// produced new information — re-plan the schedule under the updated
// belief. Requires Streaming in the configuration.
func (c *Controller) ObservePeriod(period int, reward float64, usageByClass []float64) (*PeriodReport, error) {
	return c.ObservePeriodCtx(context.Background(), period, reward, usageByClass)
}

// ObservePeriodCtx is ObservePeriod under a context: the period runs
// inside a span tree rooted at controller.period (fold → refine →
// replan), attached as a child if ctx already carries a span.
//
// The whole period cut runs under c.mu — the same critical-section
// guarantee as observeDay, per period.
func (c *Controller) ObservePeriodCtx(ctx context.Context, period int, reward float64, usageByClass []float64) (*PeriodReport, error) {
	if c.stream == nil {
		return nil, fmt.Errorf("streaming not enabled: %w", ErrBadInput)
	}
	ctx, span := obs.StartSpan(ctx, "controller.period")
	defer span.End()
	c.mu.Lock()
	defer c.mu.Unlock()

	_, foldSpan := obs.StartSpan(ctx, "profile.fold")
	dayClosed, err := c.stream.FoldPeriod(period, reward, usageByClass)
	foldSpan.End()
	if err != nil {
		return nil, err
	}
	if dayClosed {
		c.days++
	}
	report := &PeriodReport{
		Period:       period,
		Day:          c.days + 1,
		DayClosed:    dayClosed,
		Reward:       reward,
		UsageByClass: append([]float64(nil), usageByClass...),
		Trace:        span,
	}
	if dayClosed {
		report.Day = c.days
	}

	if c.stream.Days() > 0 {
		_, refineSpan := obs.StartSpan(ctx, "profile.refine")
		est, err := c.stream.Refine()
		refineSpan.End()
		if err != nil {
			return nil, fmt.Errorf("stream refine: %w", err)
		}
		// Adopt the streaming belief once the day gate is met; a reused
		// refinement carries no new information, so the plan stands.
		if !est.Reused && c.stream.Days() >= c.cfg.MinObservations {
			c.betas = append(c.betas[:0], est.Betas...)
			report.Refined = true
			_, planSpan := obs.StartSpan(ctx, "optimize.replan")
			rewards, err := c.planLocked()
			planSpan.End()
			if err != nil {
				return nil, fmt.Errorf("replan: %w", err)
			}
			report.Replanned = true
			report.Rewards = rewards
		}
	}
	if report.Rewards == nil && c.lastRewards != nil {
		report.Rewards = append([]float64(nil), c.lastRewards...)
	}
	report.Betas = c.betasLocked()
	report.StalePeriods = c.stream.StalePeriods()
	c.publishPeriodMetrics(report)
	return report, nil
}

// publishPeriodMetrics exports the closed period to the default registry.
func (c *Controller) publishPeriodMetrics(report *PeriodReport) {
	reg := obs.Default()
	reg.Counter("controller_periods_total", "streamed period closes", nil).Inc()
	if report.Replanned {
		reg.Counter("controller_replans_total", "per-period schedule re-optimizations", nil).Inc()
	}
	reg.Gauge("controller_stream_stale_periods",
		"streaming estimate staleness after the last period close", nil).
		Set(float64(report.StalePeriods))
}

// UserModel maps a published reward schedule to the realized per-period,
// per-class usage — the population's reaction as the measurement engine
// would account it. Emulations and tests plug in ground-truth behavior.
type UserModel func(rewards []float64) ([][]float64, error)

// RunDay plans, lets users react, and observes — one full loop turn.
func (c *Controller) RunDay(react UserModel) (*DayReport, error) {
	return c.RunDayCtx(context.Background(), react)
}

// RunDayCtx is RunDay under a context: the day runs inside a span tree
// rooted at controller.run_day (attached as a child if ctx already
// carries a span), and the finished tree is returned on the report's
// Trace field — one timed trace of optimize → publish/react →
// ingest/observe → estimate per loop turn.
func (c *Controller) RunDayCtx(ctx context.Context, react UserModel) (*DayReport, error) {
	ctx, day := obs.StartSpan(ctx, "controller.run_day")
	defer func() {
		obs.Default().Histogram("controller_day_seconds",
			"wall-clock duration of one control-loop day", nil, dayBuckets).
			Observe(day.End().Seconds())
	}()

	_, plan := obs.StartSpan(ctx, "optimize.plan")
	rewards, err := c.PlanDay()
	plan.End()
	if err != nil {
		return nil, err
	}
	_, reactSpan := obs.StartSpan(ctx, "usage.react")
	usage, err := react(rewards)
	reactSpan.End()
	if err != nil {
		return nil, fmt.Errorf("user reaction: %w", err)
	}
	report, err := c.observeDay(ctx, rewards, usage)
	if err != nil {
		return nil, err
	}
	report.Trace = day
	return report, nil
}

// RunStreamDay runs one full day of the streaming loop: plan (or carry
// the current schedule), let users react period by period, and close
// every period through ObservePeriod — the per-period counterpart of
// RunDay. react receives the reward in force for the period and returns
// the per-class usage; the schedule may be re-planned mid-day, in which
// case later periods see the updated rewards. It returns the last
// period's report.
func (c *Controller) RunStreamDay(react func(period int, reward float64) ([]float64, error)) (*PeriodReport, error) {
	return c.RunStreamDayCtx(context.Background(), react)
}

// RunStreamDayCtx is RunStreamDay under a context; each period's span
// tree hangs off ctx's span when present.
func (c *Controller) RunStreamDayCtx(ctx context.Context, react func(period int, reward float64) ([]float64, error)) (*PeriodReport, error) {
	if c.stream == nil {
		return nil, fmt.Errorf("streaming not enabled: %w", ErrBadInput)
	}
	rewards, err := c.PlanDay()
	if err != nil {
		return nil, err
	}
	var last *PeriodReport
	for i := range rewards {
		reward := rewards[i]
		usage, err := react(i, reward)
		if err != nil {
			return nil, fmt.Errorf("user reaction, period %d: %w", i, err)
		}
		if last, err = c.ObservePeriodCtx(ctx, i, reward, usage); err != nil {
			return nil, err
		}
		if last.Rewards != nil {
			rewards = last.Rewards
		}
	}
	return last, nil
}

// dayBuckets spans 100µs…~1.5h: planning on a laptop scenario sits at
// the low end, a million-user estimation day at the high end.
var dayBuckets = obs.ExpBuckets(1e-4, 2, 24)
