package tube

import (
	"context"
	"fmt"
	"strconv"

	"tdp/internal/core"
	"tdp/internal/obs"
	"tdp/internal/optimize"
)

// Controller closes the paper's Fig. 1 loop across days: publish a day of
// optimized rewards, observe the aggregate user reaction, feed the
// TIP-vs-TDP differences to the profiling engine, and re-estimate the
// patience indices that drive the next day's optimization — the "weekly"
// estimation workflow §IV describes, where the ISP never observes
// individual sessions.
type Controller struct {
	cfg      ControllerConfig
	betas    []float64
	profiler *ClassProfiler
	days     int

	// lastRewards is the most recent planned schedule; day 2 onward it
	// warm-starts the solve (the patience belief moves only a little per
	// re-estimation, so the previous optimum is near the new one).
	lastRewards []float64
	// coldPlanEvals is the evaluation count of the first (cold) plan, the
	// baseline for the evals-saved metric.
	coldPlanEvals int
}

// ControllerConfig describes the deployment.
type ControllerConfig struct {
	// Demand[i][j] is the TIP baseline demand of class j in period i+1
	// (from a pre-TDP control period).
	Demand [][]float64
	// Classes names the traffic classes.
	Classes []string
	// InitialBetas is the ISP's prior patience estimate per class.
	InitialBetas []float64
	// Capacity, Cost, MaxRewardNorm parameterize the pricing model.
	Capacity      []float64
	Cost          core.CostFunc
	MaxRewardNorm float64
	// UseDynamic selects the carry-over model.
	UseDynamic bool
	// MinObservations gates re-estimation: the profiler must hold at
	// least this many days of data before its estimates replace the
	// prior (default 2 — a single day is rarely identifying).
	MinObservations int
	// EstimationIter caps the LM iterations per re-estimation (default
	// 150; the fit warm-starts from scratch each day).
	EstimationIter int
}

// DayReport summarizes one closed day of the control loop.
type DayReport struct {
	// Day is the 1-based day number.
	Day int
	// Rewards is the schedule that was published.
	Rewards []float64
	// UsageTotals is the realized per-period aggregate usage.
	UsageTotals []float64
	// CongestionCost is Σ_i f(usage_i − A_i) on the realized usage.
	CongestionCost float64
	// Betas is the patience estimate in force *after* this day's
	// re-profiling.
	Betas []float64
	// Reestimated reports whether profiling updated the betas.
	Reestimated bool
	// Trace is the day's timed span tree (plan → react → observe →
	// estimate). Only RunDay/RunDayCtx populate it; a bare ObserveDay
	// leaves it nil.
	Trace *obs.Span
}

// NewController validates the configuration.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Demand) < 2 {
		return nil, fmt.Errorf("demand needs ≥ 2 periods: %w", ErrBadInput)
	}
	if len(cfg.Classes) == 0 || len(cfg.InitialBetas) != len(cfg.Classes) {
		return nil, fmt.Errorf("%d classes, %d betas: %w", len(cfg.Classes), len(cfg.InitialBetas), ErrBadInput)
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 2
	}
	if cfg.EstimationIter <= 0 {
		cfg.EstimationIter = 150
	}
	scn := &core.Scenario{
		Periods:       len(cfg.Demand),
		Demand:        cfg.Demand,
		Betas:         cfg.InitialBetas,
		Capacity:      cfg.Capacity,
		Cost:          cfg.Cost,
		MaxRewardNorm: cfg.MaxRewardNorm,
	}
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	prof, err := NewClassProfiler(cfg.Demand, scn.NormReward(), cfg.EstimationIter)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:      cfg,
		betas:    append([]float64(nil), cfg.InitialBetas...),
		profiler: prof,
	}, nil
}

// Betas returns the current per-class patience estimates.
func (c *Controller) Betas() []float64 {
	return append([]float64(nil), c.betas...)
}

// Days returns the number of closed days.
func (c *Controller) Days() int { return c.days }

// scenario builds the pricing scenario from the current belief.
func (c *Controller) scenario() *core.Scenario {
	return &core.Scenario{
		Periods:       len(c.cfg.Demand),
		Demand:        c.cfg.Demand,
		Betas:         c.betas,
		Capacity:      c.cfg.Capacity,
		Cost:          c.cfg.Cost,
		MaxRewardNorm: c.cfg.MaxRewardNorm,
	}
}

// PlanDay solves the pricing model under the current patience belief and
// returns the reward schedule to publish. From the second day on, the
// solve warm-starts from the previous day's schedule, which truncates the
// smoothing homotopy and typically cuts the evaluation count by an order
// of magnitude; the optimum is unchanged (the solve still converges to the
// same tolerance on the exact cost).
func (c *Controller) PlanDay() ([]float64, error) {
	scn := c.scenario()
	warm := c.lastRewards != nil
	var opts []optimize.Option
	if warm {
		opts = append(opts, optimize.WithWarmStart(c.lastRewards))
	}
	var (
		pr  *core.Pricing
		err error
	)
	if c.cfg.UseDynamic {
		var m *core.DynamicModel
		if m, err = core.NewDynamicModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	} else {
		var m *core.StaticModel
		if m, err = core.NewStaticModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	}
	if err != nil {
		return nil, err
	}
	c.recordPlan(pr, warm)
	c.lastRewards = append([]float64(nil), pr.Rewards...)
	return pr.Rewards, nil
}

// recordPlan publishes one day-plan solve to the default registry, keyed
// by whether it was warm-started.
func (c *Controller) recordPlan(pr *core.Pricing, warm bool) {
	start := "cold"
	if warm {
		start = "warm"
	}
	reg := obs.Default()
	lbl := obs.Labels{"start": start}
	reg.Counter("controller_plans_total", "day-plan solves, by start mode", lbl).Inc()
	reg.Histogram("controller_plan_iterations", "solver iterations per day plan", lbl, planBuckets).
		Observe(float64(pr.Iterations))
	reg.Histogram("controller_plan_evals", "objective evaluations per day plan", lbl, planBuckets).
		Observe(float64(pr.Evals))
	if !warm {
		c.coldPlanEvals = pr.Evals
	} else if saved := c.coldPlanEvals - pr.Evals; saved > 0 {
		reg.Counter("controller_plan_evals_saved_total",
			"objective evaluations avoided by warm-started day plans, vs the first cold plan", nil).
			Add(int64(saved))
	}
}

// planBuckets spans 1…~5e5 iterations/evaluations per plan.
var planBuckets = obs.ExpBuckets(1, 2, 20)

// ObserveDay closes a day: the realized per-period, per-class usage (what
// the measurement engine accounted) is folded into the per-class
// profiler, and once enough days are banked the patience estimates are
// refreshed for the next PlanDay.
func (c *Controller) ObserveDay(rewards []float64, usage [][]float64) (*DayReport, error) {
	return c.observeDay(context.Background(), rewards, usage)
}

// observeDay is ObserveDay with span threading: under a traced context
// it times the profiler fold (profile.observe) and the re-estimation
// (profile.estimate) separately, since the LM fit dominates.
func (c *Controller) observeDay(ctx context.Context, rewards []float64, usage [][]float64) (*DayReport, error) {
	n := len(c.cfg.Demand)
	if len(rewards) != n || len(usage) != n {
		return nil, fmt.Errorf("day has %d rewards, %d usage rows, want %d: %w",
			len(rewards), len(usage), n, ErrBadInput)
	}
	_, obsSpan := obs.StartSpan(ctx, "profile.observe")
	if err := c.profiler.AddObservation(rewards, usage); err != nil {
		obsSpan.End()
		return nil, err
	}
	c.days++

	report := &DayReport{
		Day:         c.days,
		Rewards:     append([]float64(nil), rewards...),
		UsageTotals: make([]float64, n),
	}
	for i, row := range usage {
		for _, v := range row {
			report.UsageTotals[i] += v
		}
		report.CongestionCost += c.cfg.Cost.Value(report.UsageTotals[i] - c.cfg.Capacity[i])
	}
	obsSpan.End()
	if c.profiler.ObservationCount() >= c.cfg.MinObservations {
		_, estSpan := obs.StartSpan(ctx, "profile.estimate")
		betas, err := c.profiler.EstimateBetas()
		estSpan.End()
		if err != nil {
			return nil, fmt.Errorf("re-profiling: %w", err)
		}
		c.betas = betas
		report.Reestimated = true
	}
	report.Betas = c.Betas()
	c.publishDayMetrics(report)
	return report, nil
}

// publishDayMetrics exports the closed day to the default registry.
func (c *Controller) publishDayMetrics(report *DayReport) {
	reg := obs.Default()
	reg.Counter("controller_days_total", "control-loop days closed", nil).Inc()
	if report.Reestimated {
		reg.Counter("controller_reestimates_total", "patience re-estimations performed", nil).Inc()
	}
	reg.Gauge("controller_congestion_cost", "congestion cost of the last closed day", nil).
		Set(report.CongestionCost)
	for j, b := range report.Betas {
		reg.Gauge("controller_beta", "patience estimate in force, by class index", obs.Labels{"class": strconv.Itoa(j)}).
			Set(b)
	}
}

// UserModel maps a published reward schedule to the realized per-period,
// per-class usage — the population's reaction as the measurement engine
// would account it. Emulations and tests plug in ground-truth behavior.
type UserModel func(rewards []float64) ([][]float64, error)

// RunDay plans, lets users react, and observes — one full loop turn.
func (c *Controller) RunDay(react UserModel) (*DayReport, error) {
	return c.RunDayCtx(context.Background(), react)
}

// RunDayCtx is RunDay under a context: the day runs inside a span tree
// rooted at controller.run_day (attached as a child if ctx already
// carries a span), and the finished tree is returned on the report's
// Trace field — one timed trace of optimize → publish/react →
// ingest/observe → estimate per loop turn.
func (c *Controller) RunDayCtx(ctx context.Context, react UserModel) (*DayReport, error) {
	ctx, day := obs.StartSpan(ctx, "controller.run_day")
	defer func() {
		obs.Default().Histogram("controller_day_seconds",
			"wall-clock duration of one control-loop day", nil, dayBuckets).
			Observe(day.End().Seconds())
	}()

	_, plan := obs.StartSpan(ctx, "optimize.plan")
	rewards, err := c.PlanDay()
	plan.End()
	if err != nil {
		return nil, err
	}
	_, reactSpan := obs.StartSpan(ctx, "usage.react")
	usage, err := react(rewards)
	reactSpan.End()
	if err != nil {
		return nil, fmt.Errorf("user reaction: %w", err)
	}
	report, err := c.observeDay(ctx, rewards, usage)
	if err != nil {
		return nil, err
	}
	report.Trace = day
	return report, nil
}

// dayBuckets spans 100µs…~1.5h: planning on a laptop scenario sits at
// the low end, a million-user estimation day at the high end.
var dayBuckets = obs.ExpBuckets(1e-4, 2, 24)
