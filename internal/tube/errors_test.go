package tube

import (
	"errors"
	"testing"

	"tdp/internal/core"
	"tdp/internal/estimate"
	"tdp/internal/ingest"
)

// TestErrorWrappingAudit pins the error contract of every public tube
// entry point: invalid input matches tube.ErrBadInput regardless of
// which lower layer rejected it, AND the lower layer's own sentinel
// stays reachable through the wrap — callers may program against
// either.
func TestErrorWrappingAudit(t *testing.T) {
	scn := testScenario()

	// --- ingest-origin errors -------------------------------------------
	if _, err := NewMeasurement(nil); !errors.Is(err, ErrBadInput) || !errors.Is(err, ingest.ErrBadReport) {
		t.Errorf("NewMeasurement(nil): %v, want tube.ErrBadInput ∧ ingest.ErrBadReport", err)
	}
	m, err := NewMeasurement(testClasses())
	if err != nil {
		t.Fatalf("NewMeasurement: %v", err)
	}
	if err := m.Record("u", "nosuch", 1); !errors.Is(err, ErrBadInput) || !errors.Is(err, ingest.ErrBadReport) {
		t.Errorf("Record bad class: %v, want tube.ErrBadInput ∧ ingest.ErrBadReport", err)
	}
	if err := m.RecordBatch([]UsageReport{{User: "u", Class: "web", VolumeMB: -1}}); !errors.Is(err, ErrBadInput) || !errors.Is(err, ingest.ErrBadReport) {
		t.Errorf("RecordBatch negative volume: %v, want tube.ErrBadInput ∧ ingest.ErrBadReport", err)
	}

	// --- estimate-origin errors -----------------------------------------
	if _, err := NewProfiler(0, 1, nil, 1); !errors.Is(err, ErrBadInput) || !errors.Is(err, estimate.ErrBadInput) {
		t.Errorf("NewProfiler invalid model: %v, want tube.ErrBadInput ∧ estimate.ErrBadInput", err)
	}
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	if _, err := sp.Refine(); !errors.Is(err, ErrBadInput) || !errors.Is(err, estimate.ErrBadInput) {
		t.Errorf("StreamProfiler empty refine: %v, want tube.ErrBadInput ∧ estimate.ErrBadInput", err)
	}
	if _, err := sp.FoldPeriod(0, 0.5, []float64{1, 2, 3}); err != nil {
		t.Fatalf("FoldPeriod: %v", err)
	}
	if _, err := sp.FoldPeriod(3, 0.5, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) || !errors.Is(err, estimate.ErrBadInput) {
		t.Errorf("StreamProfiler out-of-order fold: %v, want tube.ErrBadInput ∧ estimate.ErrBadInput", err)
	}

	// --- core-origin errors ---------------------------------------------
	badScn := testScenario()
	badScn.Capacity = nil
	if _, err := NewOptimizer(OptimizerConfig{Scenario: badScn, Classes: testClasses()}); !errors.Is(err, ErrBadInput) || !errors.Is(err, core.ErrBadScenario) {
		t.Errorf("NewOptimizer bad scenario: %v, want tube.ErrBadInput ∧ core.ErrBadScenario", err)
	}
	cfg := controllerConfig()
	cfg.Capacity = nil
	if _, err := NewController(cfg); !errors.Is(err, ErrBadInput) || !errors.Is(err, core.ErrBadScenario) {
		t.Errorf("NewController bad scenario: %v, want tube.ErrBadInput ∧ core.ErrBadScenario", err)
	}

	// --- tube-origin errors stay single-branded -------------------------
	p, err := NewProfiler(scn.Periods, 3, scn.TotalDemand(), scn.NormReward())
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	if _, err := p.Estimate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("Estimate no observations: %v, want tube.ErrBadInput", err)
	}
	if err := p.AddObservation([]float64{1}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("AddObservation bad dims: %v, want tube.ErrBadInput", err)
	}
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if _, err := c.ObserveDay([]float64{1}, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("ObserveDay bad dims: %v, want tube.ErrBadInput", err)
	}
}
