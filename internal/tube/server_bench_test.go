package tube

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tdp/internal/cluster"
	"tdp/internal/wire"
)

// BenchmarkUsageHTTP measures end-to-end ingestion over real HTTP:
// per-report POST /usage versus POST /usage/batch at growing batch
// sizes. The reported reports/s metric is what tubeload measures from
// outside the process.
func BenchmarkUsageHTTP(b *testing.B) {
	newServer := func(b *testing.B) (*httptest.Server, *Optimizer) {
		opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewServer(opt)
		if err != nil {
			b.Fatal(err)
		}
		return httptest.NewServer(srv), opt
	}

	b.Run("single", func(b *testing.B) {
		ts, _ := newServer(b)
		defer ts.Close()
		body, _ := json.Marshal(UsageReport{User: "user1", Class: "web", VolumeMB: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/usage", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
	})

	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			ts, _ := newServer(b)
			defer ts.Close()
			batch := make([]UsageReport, size)
			for i := range batch {
				batch[i] = UsageReport{
					User:     fmt.Sprintf("user%03d", i%64),
					Class:    testClasses()[i%3],
					VolumeMB: 1,
				}
			}
			body, _ := json.Marshal(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(ts.URL+"/usage/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkUsageWireHTTP is BenchmarkUsageHTTP's binary twin: the same
// batches over POST /usage/wire on a single-node cluster. Compare the
// reports/s metric against batch= runs above for the codec's end-to-end
// win.
func BenchmarkUsageWireHTTP(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(opt)
			if err != nil {
				b.Fatal(err)
			}
			cfg := cluster.Config{Version: 1, Members: []cluster.Member{{ID: "n0", Addr: "http://local"}}}
			if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cfg, QueueDepth: 4096}); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv)
			defer ts.Close()
			tab, err := wire.NewClassTable(testClasses())
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]UsageReport, size)
			for i := range batch {
				batch[i] = UsageReport{
					User:     fmt.Sprintf("user%03d", i%64),
					Class:    testClasses()[i%3],
					VolumeMB: 1,
				}
			}
			body, err := wire.NewEncoder(tab).Encode(batch)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(ts.URL+"/usage/wire", cluster.WireContentType, bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
