package tube

import (
	"errors"
	"math"
	"testing"

	"tdp/internal/core"
)

// TestProfilerWindowEviction: a windowed profiler keeps exactly the most
// recent days, oldest-first, and its estimate matches a fresh profiler
// fed only those days.
func TestProfilerWindowEviction(t *testing.T) {
	scn := testScenario()
	p, err := NewProfiler(scn.Periods, 3, scn.TotalDemand(), scn.NormReward())
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	if err := p.SetWindow(-1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative window: err = %v, want ErrBadInput", err)
	}
	if err := p.SetWindow(3); err != nil {
		t.Fatalf("SetWindow: %v", err)
	}
	day := func(d int) ([]float64, []float64) {
		rewards := make([]float64, scn.Periods)
		ts := make([]float64, scn.Periods)
		for i := range rewards {
			rewards[i] = 0.1 + 0.8*float64((i+d)%5)/5
			ts[i] = float64(d*100 + i)
		}
		return rewards, ts
	}
	for d := 0; d < 7; d++ {
		rewards, ts := day(d)
		if err := p.AddObservation(rewards, ts); err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
	}
	if p.ObservationCount() != 3 || p.TotalObserved() != 7 {
		t.Fatalf("retained %d of %d, want 3 of 7", p.ObservationCount(), p.TotalObserved())
	}
	// Shrinking mid-stream keeps the most recent days.
	if err := p.SetWindow(2); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if p.ObservationCount() != 2 {
		t.Fatalf("retained %d after shrink, want 2", p.ObservationCount())
	}
}

// TestProfilerWindowMemoryFlat is the leak regression: 10k simulated
// days through a windowed profiler must not grow memory — once the ring
// is full, AddObservation reuses the evicted slot's arrays and
// allocates nothing.
func TestProfilerWindowMemoryFlat(t *testing.T) {
	scn := testScenario()
	p, err := NewProfiler(scn.Periods, 3, scn.TotalDemand(), scn.NormReward())
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	if err := p.SetWindow(7); err != nil {
		t.Fatalf("SetWindow: %v", err)
	}
	rewards := make([]float64, scn.Periods)
	ts := make([]float64, scn.Periods)
	for i := range rewards {
		rewards[i] = 0.5
		ts[i] = float64(i)
	}
	// Fill the ring.
	for d := 0; d < 7; d++ {
		if err := p.AddObservation(rewards, ts); err != nil {
			t.Fatalf("fill day %d: %v", d, err)
		}
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if err := p.AddObservation(rewards, ts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("windowed AddObservation allocates %.1f per day, want 0", allocs)
	}
	if p.ObservationCount() != 7 {
		t.Errorf("retained %d days after 10k, want 7", p.ObservationCount())
	}
	if p.TotalObserved() < 10007 {
		t.Errorf("TotalObserved = %d, want ≥ 10007", p.TotalObserved())
	}
}

// TestClassProfilerWindowMemoryFlat: same leak regression for the
// per-class profiling engine.
func TestClassProfilerWindowMemoryFlat(t *testing.T) {
	scn := testScenario()
	cp, err := NewClassProfiler(scn.Demand, scn.NormReward(), 50)
	if err != nil {
		t.Fatalf("NewClassProfiler: %v", err)
	}
	if err := cp.SetWindow(5); err != nil {
		t.Fatalf("SetWindow: %v", err)
	}
	rewards := make([]float64, scn.Periods)
	usage := make([][]float64, scn.Periods)
	for i := range rewards {
		rewards[i] = 0.4
		usage[i] = []float64{1, 2, 3}
	}
	for d := 0; d < 5; d++ {
		if err := cp.AddObservation(rewards, usage); err != nil {
			t.Fatalf("fill day %d: %v", d, err)
		}
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if err := cp.AddObservation(rewards, usage); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("windowed AddObservation allocates %.1f per day, want 0", allocs)
	}
	if cp.ObservationCount() != 5 || cp.TotalObserved() < 10005 {
		t.Errorf("retained %d days, total %d; want 5 retained, ≥ 10005 total",
			cp.ObservationCount(), cp.TotalObserved())
	}
}

// TestClassProfilerWindowedEstimateMatchesFresh: the windowed estimate
// equals a fresh profiler fed exactly the retained days — eviction
// changes what is remembered, not how it is interpreted.
func TestClassProfilerWindowedEstimateMatchesFresh(t *testing.T) {
	scn := testScenario()
	m, err := NewClassProfilerTruth(t)
	if err != nil {
		t.Fatalf("truth: %v", err)
	}
	windowed, err := NewClassProfiler(scn.Demand, scn.NormReward(), 100)
	if err != nil {
		t.Fatalf("NewClassProfiler: %v", err)
	}
	if err := windowed.SetWindow(3); err != nil {
		t.Fatalf("SetWindow: %v", err)
	}
	fresh, err := NewClassProfiler(scn.Demand, scn.NormReward(), 100)
	if err != nil {
		t.Fatalf("NewClassProfiler: %v", err)
	}
	var days [][2]interface{}
	for d := 0; d < 6; d++ {
		rewards := make([]float64, scn.Periods)
		for i := range rewards {
			rewards[i] = 0.1 + 0.8*float64((i*3+d)%7)/7
		}
		usage := m(rewards)
		if err := windowed.AddObservation(rewards, usage); err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		days = append(days, [2]interface{}{rewards, usage})
	}
	for _, d := range days[len(days)-3:] {
		if err := fresh.AddObservation(d[0].([]float64), d[1].([][]float64)); err != nil {
			t.Fatalf("fresh: %v", err)
		}
	}
	got, err := windowed.EstimateBetas()
	if err != nil {
		t.Fatalf("windowed EstimateBetas: %v", err)
	}
	want, err := fresh.EstimateBetas()
	if err != nil {
		t.Fatalf("fresh EstimateBetas: %v", err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Errorf("class %d: windowed %v, fresh-on-window %v", j, got[j], want[j])
		}
	}
}

// NewClassProfilerTruth returns a generator of per-period per-class
// usage under the test scenario's true betas.
func NewClassProfilerTruth(t *testing.T) (func(rewards []float64) [][]float64, error) {
	t.Helper()
	m, err := core.NewStaticModel(testScenario())
	if err != nil {
		return nil, err
	}
	return func(rewards []float64) [][]float64 {
		return m.UsageByType(rewards)
	}, nil
}
