package tube

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tdp/internal/cluster"
)

// TestReplicatedPriceNotReady pins the sentinel contract: a follower
// asked for a price before its first snapshot replicates reports a
// wrapped tube.ErrNotReady — callers branch on errors.Is, not on the
// message text — and the HTTP surface maps it to 503.
func TestReplicatedPriceNotReady(t *testing.T) {
	cfg := cluster.Config{Version: 1}
	nodes := make([]*Server, 2)
	urls := make([]string, 2)
	for i := range nodes {
		opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		nodes[i], urls[i] = srv, ts.URL
		cfg.Members = append(cfg.Members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ts.URL})
	}
	for i, srv := range nodes {
		opts := ClusterOptions{SelfID: fmt.Sprintf("n%d", i), Ring: cfg}
		if i > 0 {
			opts.LeaderURL = urls[0]
			// An hour between pulls: the follower cannot have synced yet.
			opts.ReplicateEvery = time.Hour
		}
		if err := srv.EnableCluster(opts); err != nil {
			t.Fatal(err)
		}
	}

	_, replicated, err := nodes[1].replicatedPrice()
	if !replicated {
		t.Fatal("follower did not report a replicated price view")
	}
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("unsynced follower price: %v, want errors.Is(err, ErrNotReady)", err)
	}

	resp, err := http.Get(urls[1] + "/price")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced follower /price returned %d, want 503", resp.StatusCode)
	}

	// The leader, by contrast, never reports a replicated view at all.
	if _, replicated, _ := nodes[0].replicatedPrice(); replicated {
		t.Fatal("leader claimed a replicated price view")
	}
}
