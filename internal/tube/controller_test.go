package tube

import (
	"errors"
	"math"
	"testing"

	"tdp/internal/core"
)

// controllerConfig is a 12-period, 3-class deployment whose ISP starts
// with a deliberately wrong patience prior.
func controllerConfig() ControllerConfig {
	scn := testScenario() // true betas: web 4, ftp 1.5, video 0.5
	return ControllerConfig{
		Demand:       scn.Demand,
		Classes:      testClasses(),
		InitialBetas: []float64{2.5, 2.5, 2.5}, // uninformative prior
		Capacity:     scn.Capacity,
		Cost:         scn.Cost,
	}
}

// truthModel returns a UserModel backed by the population's true patience.
func truthModel(t *testing.T) UserModel {
	t.Helper()
	scn := testScenario()
	m, err := core.NewStaticModel(scn)
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	return func(rewards []float64) ([][]float64, error) {
		return m.UsageByType(rewards), nil
	}
}

func TestNewControllerValidation(t *testing.T) {
	cfg := controllerConfig()
	cfg.Demand = cfg.Demand[:1]
	if _, err := NewController(cfg); !errors.Is(err, ErrBadInput) {
		t.Errorf("one period: err = %v, want ErrBadInput", err)
	}
	cfg = controllerConfig()
	cfg.InitialBetas = []float64{1}
	if _, err := NewController(cfg); !errors.Is(err, ErrBadInput) {
		t.Errorf("beta count: err = %v, want ErrBadInput", err)
	}
	cfg = controllerConfig()
	cfg.Capacity = nil
	if _, err := NewController(cfg); err == nil {
		t.Error("missing capacity accepted")
	}
}

func TestControllerObserveDayValidation(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if _, err := c.ObserveDay([]float64{1}, make([][]float64, 12)); !errors.Is(err, ErrBadInput) {
		t.Errorf("short rewards: err = %v, want ErrBadInput", err)
	}
}

func TestControllerFirstDayKeepsPrior(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	rep, err := c.RunDay(truthModel(t))
	if err != nil {
		t.Fatalf("RunDay: %v", err)
	}
	if rep.Day != 1 || c.Days() != 1 {
		t.Errorf("day accounting wrong: %d/%d", rep.Day, c.Days())
	}
	if rep.Reestimated {
		t.Error("re-estimated from a single day (MinObservations=2)")
	}
	for j, b := range c.Betas() {
		if b != 2.5 {
			t.Errorf("beta[%d] = %v, want prior 2.5", j, b)
		}
	}
}

// TestControllerLoopLearnsPatience is the end-to-end Fig. 1 loop test:
// after several days of publish → react → profile, the ISP's patience
// estimates must recover the true per-class ordering and move toward the
// truth, and the realized congestion cost must stay below the TIP level.
func TestControllerLoopLearnsPatience(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	react := truthModel(t)
	var reports []*DayReport
	for day := 0; day < 4; day++ {
		rep, err := c.RunDay(react)
		if err != nil {
			t.Fatalf("day %d: %v", day+1, rep)
		}
		reports = append(reports, rep)
	}
	last := reports[len(reports)-1]
	if !last.Reestimated {
		t.Fatal("profiling never kicked in")
	}
	betas := c.Betas()
	// True ordering: web (4) > ftp (1.5) > video (0.5).
	if !(betas[0] > betas[1] && betas[1] > betas[2]) {
		t.Errorf("patience ordering not recovered: %v", betas)
	}
	// Estimates moved from the flat 2.5 prior toward the truth.
	truth := []float64{4, 1.5, 0.5}
	var before, after float64
	for j := range truth {
		before += math.Abs(2.5 - truth[j])
		after += math.Abs(betas[j] - truth[j])
	}
	if after >= before {
		t.Errorf("estimates did not improve: Σ|Δ| %v → %v (betas %v)", before, after, betas)
	}
	// TDP kept realized congestion below the TIP level every day.
	scn := testScenario()
	var tipCost float64
	for i, x := range scn.TotalDemand() {
		tipCost += scn.Cost.Value(x - scn.Capacity[i])
	}
	for _, rep := range reports {
		if rep.CongestionCost >= tipCost {
			t.Errorf("day %d congestion %v not below TIP %v", rep.Day, rep.CongestionCost, tipCost)
		}
	}
}

// TestControllerRewardsAdaptAfterProfiling: once the betas update, the
// planned schedule changes — the loop actually feeds back.
func TestControllerRewardsAdaptAfterProfiling(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	initial, err := c.PlanDay()
	if err != nil {
		t.Fatalf("PlanDay: %v", err)
	}
	react := truthModel(t)
	for day := 0; day < 3; day++ {
		if _, err := c.RunDay(react); err != nil {
			t.Fatalf("day %d: %v", day+1, err)
		}
	}
	adapted, err := c.PlanDay()
	if err != nil {
		t.Fatalf("PlanDay: %v", err)
	}
	var diff float64
	for i := range initial {
		diff += math.Abs(initial[i] - adapted[i])
	}
	if diff < 0.05 {
		t.Errorf("schedule unchanged after profiling (Σ|Δp| = %v)", diff)
	}
}

func TestControllerUserModelError(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	boom := errors.New("users revolted")
	if _, err := c.RunDay(func([]float64) ([][]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the user-model error", err)
	}
}
