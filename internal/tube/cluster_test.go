package tube

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/ingest"
	"tdp/internal/wire"
)

// clusterNode bundles one clustered server with its test harness.
type clusterNode struct {
	id  string
	opt *Optimizer
	srv *Server
	ts  *httptest.Server
}

// startCluster brings up n clustered servers on real listeners sharing
// a ring; node 0 is the leader, the rest replicate prices from it.
func startCluster(t *testing.T, n int, queueDepth int) ([]*clusterNode, cluster.Config) {
	t.Helper()
	nodes := make([]*clusterNode, n)
	cfg := cluster.Config{Version: 1}
	// Two passes: addresses exist only after the listeners are up.
	for i := range nodes {
		opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		nodes[i] = &clusterNode{id: fmt.Sprintf("n%d", i), opt: opt, srv: srv, ts: ts}
		cfg.Members = append(cfg.Members, cluster.Member{ID: nodes[i].id, Addr: ts.URL})
	}
	for i, nd := range nodes {
		opts := ClusterOptions{SelfID: nd.id, Ring: cfg, QueueDepth: queueDepth}
		if i > 0 {
			opts.LeaderURL = nodes[0].ts.URL
			opts.ReplicateEvery = 20 * time.Millisecond
		}
		if err := nd.srv.EnableCluster(opts); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = nd.srv.Shutdown(ctx)
			cancel()
			nd.ts.Close()
		}
	})
	return nodes, cfg
}

func clusterReports(users, perUser int) []ingest.Report {
	var reps []ingest.Report
	classes := testClasses()
	for u := 0; u < users; u++ {
		for k := 0; k < perUser; k++ {
			reps = append(reps, ingest.Report{
				User:     fmt.Sprintf("cu%04d", u),
				Class:    classes[(u+k)%len(classes)],
				VolumeMB: 1 + 0.25*float64((u+k)%8),
			})
		}
	}
	return reps
}

// drainClusterQueues flushes every node's apply queue so engine totals
// are comparable.
func drainClusterQueues(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, nd := range nodes {
		if err := nd.srv.cl.queue.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterWireIngestExactlyOnce drives a Router over real HTTP
// against 3 clustered nodes and checks every report lands exactly once,
// with totals bit-identical to a single engine (dyadic volumes).
func TestClusterWireIngestExactlyOnce(t *testing.T) {
	nodes, cfg := startCluster(t, 3, 1024)
	ring, err := cluster.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := wire.NewClassTable(testClasses())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(tab, ring, &cluster.HTTPSender{})
	if err != nil {
		t.Fatal(err)
	}
	reps := clusterReports(120, 5)
	ctx := context.Background()
	for lo := 0; lo < len(reps); lo += 64 {
		hi := min(lo+64, len(reps))
		stats, err := rt.Send(ctx, reps[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shed != 0 {
			t.Fatalf("underloaded cluster shed %d reports", stats.Shed)
		}
	}
	drainClusterQueues(t, nodes)

	ref, err := ingest.NewEngine(testClasses(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RecordBatch(append([]ingest.Report(nil), reps...)); err != nil {
		t.Fatal(err)
	}
	refClass := ref.ClassTotals()
	sum := make([]float64, len(refClass))
	var accepted int64
	for _, nd := range nodes {
		eng := nd.opt.Measurement().Engine()
		for j, v := range eng.ClassTotals() {
			sum[j] += v
		}
		accepted += eng.Accepted()
		if eng.Accepted() == 0 {
			t.Fatalf("node %s accounted nothing", nd.id)
		}
	}
	if accepted != int64(len(reps)) {
		t.Fatalf("cluster accounted %d reports, sent %d", accepted, len(reps))
	}
	for j := range sum {
		//lint:allow floateq dyadic sums are exact; bit-identity is the property under test
		if sum[j] != refClass[j] {
			t.Fatalf("class %d: cluster total %v, single-node %v", j, sum[j], refClass[j])
		}
	}
}

// TestClusterRingUpdateAndMisrouteRejection pushes a new ring over PUT
// /cluster/ring and checks (a) version monotonicity, (b) the JSON path
// answers 421 + owner hint for a misrouted user, (c) the wire path
// rejects by index.
func TestClusterRingUpdateAndMisrouteRejection(t *testing.T) {
	nodes, cfg := startCluster(t, 2, 64)
	n0 := nodes[0]

	// Find a user n0 does NOT own.
	ring, err := cluster.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := ""
	for u := 0; u < 1000; u++ {
		cand := fmt.Sprintf("mu%04d", u)
		if ring.OwnerID(cand) != "n0" {
			other = cand
			break
		}
	}
	if other == "" {
		t.Fatal("no key hashed off n0")
	}

	// (b) JSON single-report path: 421 with a redirect hint.
	body, _ := json.Marshal(ingest.Report{User: other, Class: "web", VolumeMB: 1})
	resp, err := http.Post(n0.ts.URL+"/usage", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted /usage: status %d, want 421", resp.StatusCode)
	}
	if hint := resp.Header.Get("X-Tube-Owner"); hint != nodes[1].ts.URL {
		t.Fatalf("redirect hint %q, want %q", hint, nodes[1].ts.URL)
	}

	// (c) Wire path: rejected by index, nothing accounted.
	tab, err := wire.NewClassTable(testClasses())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.NewEncoder(tab).Encode([]ingest.Report{{User: other, Class: "web", VolumeMB: 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(n0.ts.URL+"/usage/wire", cluster.WireContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var ack cluster.WireAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Accepted != 0 || len(ack.Rejected) != 1 || ack.Rejected[0] != 0 {
		t.Fatalf("misrouted wire ack: %+v", ack)
	}

	// (a) Ring update: an older version is refused, a newer applied.
	put := func(c cluster.Config) ringAck {
		t.Helper()
		raw, _ := json.Marshal(c)
		req, _ := http.NewRequest(http.MethodPut, n0.ts.URL+"/cluster/ring", bytes.NewReader(raw))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT ring: status %d", resp.StatusCode)
		}
		var a ringAck
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a := put(cfg); a.Applied || a.Version != 1 {
		t.Fatalf("replayed ring v1: %+v", a)
	}
	solo := cluster.Config{Version: 2, Members: []cluster.Member{{ID: "n0", Addr: n0.ts.URL}}}
	if a := put(solo); !a.Applied || a.Version != 2 {
		t.Fatalf("ring v2: %+v", a)
	}
	// n0 now owns everything: the previously misrouted user is accepted.
	resp, err = http.Post(n0.ts.URL+"/usage", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("after takeover /usage: status %d, want 204", resp.StatusCode)
	}
}

// TestClusterPriceReplication: followers serve the leader's schedule
// from replicated snapshots and report staleness on /healthz.
func TestClusterPriceReplication(t *testing.T) {
	nodes, _ := startCluster(t, 2, 64)
	leader, follower := nodes[0], nodes[1]

	var want PriceInfo
	resp, err := http.Get(leader.ts.URL + "/price")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The follower converges within a few pull intervals.
	deadline := time.Now().Add(5 * time.Second)
	var got PriceInfo
	for {
		resp, err := http.Get(follower.ts.URL + "/price")
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		if ok {
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never served a replicated price")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Period != want.Period || len(got.Rewards) != len(want.Rewards) {
		t.Fatalf("replicated price %+v, leader %+v", got, want)
	}
	for i := range got.Rewards {
		//lint:allow floateq JSON round-trips float64 exactly
		if got.Rewards[i] != want.Rewards[i] {
			t.Fatalf("reward %d: follower %v, leader %v", i, got.Rewards[i], want.Rewards[i])
		}
	}

	// healthz on the follower reports cluster state and staleness.
	resp, err = http.Get(follower.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("follower healthz: status %d, %+v", resp.StatusCode, h)
	}
	if h.Cluster == nil || h.Cluster.Self != "n1" || h.Cluster.Leader ||
		h.Cluster.Members != 2 || len(h.Cluster.OwnedRanges) == 0 {
		t.Fatalf("follower cluster health: %+v", h.Cluster)
	}
	if h.Cluster.ReplicationStalenessSeconds == nil || *h.Cluster.ReplicationStalenessSeconds < 0 {
		t.Fatalf("follower staleness: %+v", h.Cluster.ReplicationStalenessSeconds)
	}
	if h.Cluster.OwnedFraction <= 0 || h.Cluster.OwnedFraction >= 1 {
		t.Fatalf("follower owns %.3f of the circle", h.Cluster.OwnedFraction)
	}
}

// TestHealthzSingleNode: healthz exists (and omits the cluster section)
// without EnableCluster.
func TestHealthzSingleNode(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var h Health
	if err := json.NewDecoder(rec.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Cluster != nil {
		t.Fatalf("single-node healthz: %+v", h)
	}
}

// TestBodyLimits: oversize bodies answer 413 and are counted in the
// handler rejection metrics (satellite: http.MaxBytesReader bounds).
func TestBodyLimits(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	post := func(path string, body []byte) int {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	// Valid JSON that only reveals its size by reading past the bound.
	oversize := func(size int) []byte {
		return []byte(`{"user":"` + strings.Repeat("x", size) + `"}`)
	}
	if code := post("/usage", oversize(maxUsageBody)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /usage: status %d, want 413", code)
	}
	if code := post("/usage/batch", []byte(`[{"user":"`+strings.Repeat("x", maxBatchBody)+`"}]`)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /usage/batch: status %d, want 413", code)
	}
	counts := srv.RequestCounts()
	if counts["usage_rejected"] != 1 || counts["usage_batch_rejected"] != 1 {
		t.Fatalf("rejection counters: %+v", counts)
	}
	// A small malformed body is still a plain 400.
	if code := post("/usage", []byte("not json")); code != http.StatusBadRequest {
		t.Fatalf("malformed /usage: status %d, want 400", code)
	}
	if got := srv.RequestCounts()["usage_rejected"]; got != 1 {
		t.Fatalf("400 bumped the 413 counter to %d", got)
	}
}

// TestClusterLoadShedding: a depth-1 queue with a stalled drain sheds
// oldest batches, visibly, with per-class counts.
func TestClusterLoadShedding(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Version: 1, Members: []cluster.Member{{ID: "n0", Addr: "http://local"}}}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cfg, QueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	// Stall the drain worker by flooding faster than it can apply is
	// racy; instead push through the handler with the worker intact but
	// the queue depth at 1 — the second in-flight batch evicts the
	// first often enough only under real stall, so stop the worker
	// deterministically via Close and use Push directly.
	tab, err := wire.NewClassTable(testClasses())
	if err != nil {
		t.Fatal(err)
	}
	enc := wire.NewEncoder(tab)
	post := func(users []string) cluster.WireAck {
		t.Helper()
		var reps []ingest.Report
		for _, u := range users {
			reps = append(reps, ingest.Report{User: u, Class: "web", VolumeMB: 1})
		}
		frame, err := enc.Encode(reps)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/usage/wire", bytes.NewReader(frame))
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("wire status %d: %s", rec.Code, rec.Body.String())
		}
		var ack cluster.WireAck
		if err := json.NewDecoder(rec.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return ack
	}
	// With the worker running, sheds are timing-dependent; assert only
	// the conservation the metrics promise: accepted == applied + shed.
	var sent int
	for i := 0; i < 200; i++ {
		ack := post([]string{fmt.Sprintf("su%03d", i), fmt.Sprintf("su%03d", i+1000)})
		sent += ack.Accepted
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.cl.queue.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	shed, byClass := srv.cl.queue.ShedTotals()
	applied := opt.Measurement().Engine().Accepted()
	if applied+shed != int64(sent) {
		t.Fatalf("conservation: applied %d + shed %d != accepted %d", applied, shed, sent)
	}
	var classSum int64
	for _, c := range byClass {
		classSum += c
	}
	if classSum != shed {
		t.Fatalf("per-class shed %d != total %d", classSum, shed)
	}
}

// TestEnableClusterValidation covers the config error paths.
func TestEnableClusterValidation(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Version: 1, Members: []cluster.Member{{ID: "n0", Addr: "http://a"}}}
	if err := srv.EnableCluster(ClusterOptions{Ring: cfg}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no SelfID: %v", err)
	}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "ghost", Ring: cfg}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("self not in ring: %v", err)
	}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cluster.Config{}}); !errors.Is(err, cluster.ErrBadConfig) {
		t.Fatalf("empty ring: %v", err)
	}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cfg}); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cfg}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("double enable: %v", err)
	}
	if srv.Ring() == nil || srv.Ring().Version() != 1 {
		t.Fatalf("Ring(): %+v", srv.Ring())
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGUIWireRoundTrip drives the GUI client's wire path end to end.
func TestGUIWireRoundTrip(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Version: 1, Members: []cluster.Member{{ID: "n0", Addr: "http://local"}}}
	if err := srv.EnableCluster(ClusterOptions{SelfID: "n0", Ring: cfg}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	g, err := NewGUI(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := g.ReportUsageWire(ctx, clusterReports(3, 2)); err == nil ||
		!strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("wire before EnableWire: %v", err)
	}
	if err := g.EnableWire(testClasses()); err != nil {
		t.Fatal(err)
	}
	reps := clusterReports(5, 3)
	if err := g.ReportUsageWire(ctx, reps); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.cl.queue.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if got := opt.Measurement().Engine().Accepted(); got != int64(len(reps)) {
		t.Fatalf("engine accounted %d, sent %d", got, len(reps))
	}
}
