package tube

import (
	"fmt"
	"sync"

	"tdp/internal/estimate"
)

// Profiler is the profiling engine: it accumulates per-period aggregate
// usage observations under the published rewards and estimates one
// patience index per traffic class with the §IV waiting-function
// estimation algorithm.
//
// By default every recorded day is retained forever — fine for a
// testbed week, an unbounded leak on a server that closes periods for
// months. SetWindow bounds retention to a sliding window of the most
// recent days; once the window is full, new days overwrite the oldest
// in place (the slot's backing arrays are reused, so a windowed
// profiler's memory stays flat no matter how many days it sees).
type Profiler struct {
	mu     sync.Mutex
	model  *estimate.Model        // immutable after New (Fit does not mutate)
	window int                    // guarded by mu: max days retained; 0 = unbounded
	obs    []estimate.Observation // guarded by mu: ring when window > 0
	head   int                    // guarded by mu: oldest slot once the ring is full
	total  int                    // guarded by mu: days ever recorded
}

// NewProfiler builds a profiler for the given day structure: n periods,
// one estimated (α, β) pair per class, baseline TIP demand per period and
// the normalizing maximum reward.
func NewProfiler(periods, classes int, baselineTIP []float64, maxReward float64) (*Profiler, error) {
	m := &estimate.Model{
		Periods:     periods,
		Types:       classes,
		BaselineTIP: append([]float64(nil), baselineTIP...),
		MaxReward:   maxReward,
	}
	if err := m.Validate(); err != nil {
		return nil, badInput(err)
	}
	return &Profiler{model: m}, nil
}

// SetWindow bounds retention to the most recent `days` observations
// (0 restores unbounded growth). If more than `days` observations are
// already banked, the oldest are dropped.
func (p *Profiler) SetWindow(days int) error {
	if days < 0 {
		return fmt.Errorf("window %d: %w", days, ErrBadInput)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = p.chronological(nil)
	p.head = 0
	if days > 0 && len(p.obs) > days {
		p.obs = append(p.obs[:0], p.obs[len(p.obs)-days:]...)
	}
	p.window = days
	return nil
}

// Window returns the retention bound (0 = unbounded).
func (p *Profiler) Window() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.window
}

// chronological appends the retained observations, oldest first, to dst.
// Callers must hold p.mu. The returned headers alias the ring's backing
// arrays — deep-copy before releasing the lock if the data must survive
// subsequent AddObservation calls.
func (p *Profiler) chronological(dst []estimate.Observation) []estimate.Observation {
	if p.window > 0 && len(p.obs) == p.window {
		dst = append(dst, p.obs[p.head:]...)
		return append(dst, p.obs[:p.head]...)
	}
	return append(dst, p.obs...)
}

// AddObservation records one day's rewards and per-period usage decreases
// T_i (TIP baseline minus measured TDP usage).
func (p *Profiler) AddObservation(rewards, t []float64) error {
	if len(rewards) != p.model.Periods || len(t) != p.model.Periods {
		return fmt.Errorf("observation dims %d/%d, want %d: %w",
			len(rewards), len(t), p.model.Periods, ErrBadInput)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total++
	if p.window > 0 && len(p.obs) == p.window {
		// Ring full: overwrite the oldest day in place, reusing its
		// backing arrays so long-running windowed profiling allocates
		// nothing per day.
		slot := &p.obs[p.head]
		copy(slot.Rewards, rewards)
		copy(slot.T, t)
		p.head++
		if p.head == p.window {
			p.head = 0
		}
		return nil
	}
	p.obs = append(p.obs, estimate.Observation{
		Rewards: append([]float64(nil), rewards...),
		T:       append([]float64(nil), t...),
	})
	return nil
}

// ObservationCount returns the number of retained observations.
func (p *Profiler) ObservationCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.obs)
}

// TotalObserved returns the number of days ever recorded (monotonic;
// the window retains the most recent min(TotalObserved, Window)).
func (p *Profiler) TotalObserved() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Estimate runs the waiting-function estimation on everything retained so
// far and returns the fitted per-period, per-class parameters.
func (p *Profiler) Estimate() (estimate.Params, error) {
	p.mu.Lock()
	// Deep copy under the lock: a windowed ring reuses slot arrays, so
	// the fit must not read storage a concurrent AddObservation may
	// overwrite.
	ordered := p.chronological(nil)
	obs := make([]estimate.Observation, len(ordered))
	for i, o := range ordered {
		obs[i] = estimate.Observation{
			Rewards: append([]float64(nil), o.Rewards...),
			T:       append([]float64(nil), o.T...),
		}
	}
	p.mu.Unlock()
	if len(obs) == 0 {
		return estimate.Params{}, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	fit, err := p.model.Fit(obs)
	if err != nil {
		return estimate.Params{}, badInput(fmt.Errorf("profile: %w", err))
	}
	return fit.Params, nil
}

// ClassProfiler estimates one patience index per traffic class from
// *per-class* usage — the TUBE profiling engine proper. Unlike the §IV
// aggregate algorithm (Profiler), it exploits the measurement engine's
// per-class accounting, which sidesteps the mixture-identifiability
// problem: each class is a single-type estimation with its own net flows.
//
// Like Profiler, retention is unbounded by default and SetWindow bounds
// it to a sliding window with in-place slot reuse.
type ClassProfiler struct {
	mu        sync.Mutex
	periods   int
	classes   int
	baseline  [][]float64 // [period][class] TIP demand; immutable after New
	maxReward float64
	maxIter   int
	window    int           // guarded by mu: max days retained; 0 = unbounded
	rewards   [][]float64   // guarded by mu: ring of per-day rewards when window > 0
	usage     [][][]float64 // guarded by mu: ring of per-day [period][class] usage
	head      int           // guarded by mu: oldest slot once the ring is full
	total     int           // guarded by mu: days ever recorded
}

// NewClassProfiler builds a per-class profiler from the per-period,
// per-class TIP baseline.
func NewClassProfiler(baseline [][]float64, maxReward float64, maxIter int) (*ClassProfiler, error) {
	if len(baseline) < 2 || len(baseline[0]) == 0 {
		return nil, fmt.Errorf("baseline %dx?: %w", len(baseline), ErrBadInput)
	}
	classes := len(baseline[0])
	cp := &ClassProfiler{
		periods:   len(baseline),
		classes:   classes,
		maxReward: maxReward,
		maxIter:   maxIter,
	}
	for i, row := range baseline {
		if len(row) != classes {
			return nil, fmt.Errorf("ragged baseline at period %d: %w", i+1, ErrBadInput)
		}
		cp.baseline = append(cp.baseline, append([]float64(nil), row...))
	}
	if maxReward <= 0 {
		return nil, fmt.Errorf("max reward %v: %w", maxReward, ErrBadInput)
	}
	return cp, nil
}

// SetWindow bounds retention to the most recent `days` observations
// (0 restores unbounded growth). If more than `days` observations are
// already banked, the oldest are dropped.
func (cp *ClassProfiler) SetWindow(days int) error {
	if days < 0 {
		return fmt.Errorf("window %d: %w", days, ErrBadInput)
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	rewards, usage := cp.chronological()
	cp.rewards, cp.usage = rewards, usage
	cp.head = 0
	if days > 0 && len(cp.rewards) > days {
		drop := len(cp.rewards) - days
		cp.rewards = append(cp.rewards[:0], cp.rewards[drop:]...)
		cp.usage = append(cp.usage[:0], cp.usage[drop:]...)
	}
	cp.window = days
	return nil
}

// Window returns the retention bound (0 = unbounded).
func (cp *ClassProfiler) Window() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.window
}

// chronological returns the retained days, oldest first. Callers must
// hold cp.mu; the returned rows alias ring storage.
func (cp *ClassProfiler) chronological() ([][]float64, [][][]float64) {
	if cp.window > 0 && len(cp.rewards) == cp.window {
		r := make([][]float64, 0, cp.window)
		u := make([][][]float64, 0, cp.window)
		r = append(append(r, cp.rewards[cp.head:]...), cp.rewards[:cp.head]...)
		u = append(append(u, cp.usage[cp.head:]...), cp.usage[:cp.head]...)
		return r, u
	}
	return cp.rewards, cp.usage
}

// AddObservation records one day: the published rewards and the measured
// per-period, per-class usage.
func (cp *ClassProfiler) AddObservation(rewards []float64, usage [][]float64) error {
	if len(rewards) != cp.periods || len(usage) != cp.periods {
		return fmt.Errorf("observation dims %d/%d, want %d: %w",
			len(rewards), len(usage), cp.periods, ErrBadInput)
	}
	for i, row := range usage {
		if len(row) != cp.classes {
			return fmt.Errorf("usage period %d has %d classes, want %d: %w",
				i+1, len(row), cp.classes, ErrBadInput)
		}
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.total++
	if cp.window > 0 && len(cp.rewards) == cp.window {
		// Ring full: reuse the oldest day's storage in place.
		copy(cp.rewards[cp.head], rewards)
		slot := cp.usage[cp.head]
		for i, row := range usage {
			copy(slot[i], row)
		}
		cp.head++
		if cp.head == cp.window {
			cp.head = 0
		}
		return nil
	}
	u := make([][]float64, cp.periods)
	for i, row := range usage {
		u[i] = append([]float64(nil), row...)
	}
	cp.rewards = append(cp.rewards, append([]float64(nil), rewards...))
	cp.usage = append(cp.usage, u)
	return nil
}

// ObservationCount returns the number of retained days.
func (cp *ClassProfiler) ObservationCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.rewards)
}

// TotalObserved returns the number of days ever recorded.
func (cp *ClassProfiler) TotalObserved() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.total
}

// EstimateBetas fits one patience index per class: a single-type §IV
// estimation on that class's net flows, reduced to a demand-weighted
// average across periods.
func (cp *ClassProfiler) EstimateBetas() ([]float64, error) {
	cp.mu.Lock()
	// Deep copy under the lock: ring slots are reused by concurrent
	// AddObservation calls.
	ordRewards, ordUsage := cp.chronological()
	days := len(ordRewards)
	rewards := make([][]float64, days)
	usage := make([][][]float64, days)
	for d := 0; d < days; d++ {
		rewards[d] = append([]float64(nil), ordRewards[d]...)
		u := make([][]float64, cp.periods)
		for i, row := range ordUsage[d] {
			u[i] = append([]float64(nil), row...)
		}
		usage[d] = u
	}
	cp.mu.Unlock()
	if days == 0 {
		return nil, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	betas := make([]float64, cp.classes)
	for j := 0; j < cp.classes; j++ {
		base := make([]float64, cp.periods)
		for i := range base {
			base[i] = cp.baseline[i][j]
		}
		model := &estimate.Model{
			Periods:     cp.periods,
			Types:       1,
			BaselineTIP: base,
			MaxReward:   cp.maxReward,
			MaxIter:     cp.maxIter,
		}
		var obs []estimate.Observation
		for d := 0; d < days; d++ {
			t := make([]float64, cp.periods)
			for i := 0; i < cp.periods; i++ {
				t[i] = base[i] - usage[d][i][j]
			}
			obs = append(obs, estimate.Observation{Rewards: rewards[d], T: t})
		}
		fit, err := model.Fit(obs)
		if err != nil {
			return nil, badInput(fmt.Errorf("class %d: %w", j, err))
		}
		var num, den float64
		for i := 0; i < cp.periods; i++ {
			num += base[i] * fit.Params.Beta[i][0]
			den += base[i]
		}
		if den == 0 {
			betas[j] = 1
			continue
		}
		betas[j] = num / den
	}
	return betas, nil
}

// PatienceByClass reduces fitted parameters to a single representative
// patience index per class: the demand-weighted average of β across
// periods — the per-class summary the price engine consumes.
func (p *Profiler) PatienceByClass(prm estimate.Params) ([]float64, error) {
	n, m := prm.Dims()
	if n != p.model.Periods || m != p.model.Types {
		return nil, fmt.Errorf("params %dx%d, want %dx%d: %w",
			n, m, p.model.Periods, p.model.Types, ErrBadInput)
	}
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		var num, den float64
		for i := 0; i < n; i++ {
			w := prm.Alpha[i][j] * p.model.BaselineTIP[i]
			num += w * prm.Beta[i][j]
			den += w
		}
		if den == 0 {
			out[j] = 1 // neutral default when a class carries no traffic
			continue
		}
		out[j] = num / den
	}
	return out, nil
}
