package tube

import (
	"fmt"
	"sync"

	"tdp/internal/estimate"
)

// Profiler is the profiling engine: it accumulates per-period aggregate
// usage observations under the published rewards and estimates one
// patience index per traffic class with the §IV waiting-function
// estimation algorithm.
type Profiler struct {
	mu    sync.Mutex
	model *estimate.Model        // immutable after New (Fit does not mutate)
	obs   []estimate.Observation // guarded by mu
}

// NewProfiler builds a profiler for the given day structure: n periods,
// one estimated (α, β) pair per class, baseline TIP demand per period and
// the normalizing maximum reward.
func NewProfiler(periods, classes int, baselineTIP []float64, maxReward float64) (*Profiler, error) {
	m := &estimate.Model{
		Periods:     periods,
		Types:       classes,
		BaselineTIP: append([]float64(nil), baselineTIP...),
		MaxReward:   maxReward,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Profiler{model: m}, nil
}

// AddObservation records one day's rewards and per-period usage decreases
// T_i (TIP baseline minus measured TDP usage).
func (p *Profiler) AddObservation(rewards, t []float64) error {
	if len(rewards) != p.model.Periods || len(t) != p.model.Periods {
		return fmt.Errorf("observation dims %d/%d, want %d: %w",
			len(rewards), len(t), p.model.Periods, ErrBadInput)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = append(p.obs, estimate.Observation{
		Rewards: append([]float64(nil), rewards...),
		T:       append([]float64(nil), t...),
	})
	return nil
}

// ObservationCount returns the number of recorded observations.
func (p *Profiler) ObservationCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.obs)
}

// Estimate runs the waiting-function estimation on everything recorded so
// far and returns the fitted per-period, per-class parameters.
func (p *Profiler) Estimate() (estimate.Params, error) {
	p.mu.Lock()
	obs := append([]estimate.Observation(nil), p.obs...)
	p.mu.Unlock()
	if len(obs) == 0 {
		return estimate.Params{}, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	fit, err := p.model.Fit(obs)
	if err != nil {
		return estimate.Params{}, fmt.Errorf("profile: %w", err)
	}
	return fit.Params, nil
}

// ClassProfiler estimates one patience index per traffic class from
// *per-class* usage — the TUBE profiling engine proper. Unlike the §IV
// aggregate algorithm (Profiler), it exploits the measurement engine's
// per-class accounting, which sidesteps the mixture-identifiability
// problem: each class is a single-type estimation with its own net flows.
type ClassProfiler struct {
	mu        sync.Mutex
	periods   int
	classes   int
	baseline  [][]float64 // [period][class] TIP demand; immutable after New
	maxReward float64
	maxIter   int
	rewards   [][]float64   // guarded by mu: per observation day
	usage     [][][]float64 // guarded by mu: per observation day: [period][class]
}

// NewClassProfiler builds a per-class profiler from the per-period,
// per-class TIP baseline.
func NewClassProfiler(baseline [][]float64, maxReward float64, maxIter int) (*ClassProfiler, error) {
	if len(baseline) < 2 || len(baseline[0]) == 0 {
		return nil, fmt.Errorf("baseline %dx?: %w", len(baseline), ErrBadInput)
	}
	classes := len(baseline[0])
	cp := &ClassProfiler{
		periods:   len(baseline),
		classes:   classes,
		maxReward: maxReward,
		maxIter:   maxIter,
	}
	for i, row := range baseline {
		if len(row) != classes {
			return nil, fmt.Errorf("ragged baseline at period %d: %w", i+1, ErrBadInput)
		}
		cp.baseline = append(cp.baseline, append([]float64(nil), row...))
	}
	if maxReward <= 0 {
		return nil, fmt.Errorf("max reward %v: %w", maxReward, ErrBadInput)
	}
	return cp, nil
}

// AddObservation records one day: the published rewards and the measured
// per-period, per-class usage.
func (cp *ClassProfiler) AddObservation(rewards []float64, usage [][]float64) error {
	if len(rewards) != cp.periods || len(usage) != cp.periods {
		return fmt.Errorf("observation dims %d/%d, want %d: %w",
			len(rewards), len(usage), cp.periods, ErrBadInput)
	}
	u := make([][]float64, cp.periods)
	for i, row := range usage {
		if len(row) != cp.classes {
			return fmt.Errorf("usage period %d has %d classes, want %d: %w",
				i+1, len(row), cp.classes, ErrBadInput)
		}
		u[i] = append([]float64(nil), row...)
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.rewards = append(cp.rewards, append([]float64(nil), rewards...))
	cp.usage = append(cp.usage, u)
	return nil
}

// ObservationCount returns the number of recorded days.
func (cp *ClassProfiler) ObservationCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.rewards)
}

// EstimateBetas fits one patience index per class: a single-type §IV
// estimation on that class's net flows, reduced to a demand-weighted
// average across periods.
func (cp *ClassProfiler) EstimateBetas() ([]float64, error) {
	cp.mu.Lock()
	days := len(cp.rewards)
	rewards := cp.rewards
	usage := cp.usage
	cp.mu.Unlock()
	if days == 0 {
		return nil, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	betas := make([]float64, cp.classes)
	for j := 0; j < cp.classes; j++ {
		base := make([]float64, cp.periods)
		for i := range base {
			base[i] = cp.baseline[i][j]
		}
		model := &estimate.Model{
			Periods:     cp.periods,
			Types:       1,
			BaselineTIP: base,
			MaxReward:   cp.maxReward,
			MaxIter:     cp.maxIter,
		}
		var obs []estimate.Observation
		for d := 0; d < days; d++ {
			t := make([]float64, cp.periods)
			for i := 0; i < cp.periods; i++ {
				t[i] = base[i] - usage[d][i][j]
			}
			obs = append(obs, estimate.Observation{Rewards: rewards[d], T: t})
		}
		fit, err := model.Fit(obs)
		if err != nil {
			return nil, fmt.Errorf("class %d: %w", j, err)
		}
		var num, den float64
		for i := 0; i < cp.periods; i++ {
			num += base[i] * fit.Params.Beta[i][0]
			den += base[i]
		}
		if den == 0 {
			betas[j] = 1
			continue
		}
		betas[j] = num / den
	}
	return betas, nil
}

// PatienceByClass reduces fitted parameters to a single representative
// patience index per class: the demand-weighted average of β across
// periods — the per-class summary the price engine consumes.
func (p *Profiler) PatienceByClass(prm estimate.Params) ([]float64, error) {
	n, m := prm.Dims()
	if n != p.model.Periods || m != p.model.Types {
		return nil, fmt.Errorf("params %dx%d, want %dx%d: %w",
			n, m, p.model.Periods, p.model.Types, ErrBadInput)
	}
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		var num, den float64
		for i := 0; i < n; i++ {
			w := prm.Alpha[i][j] * p.model.BaselineTIP[i]
			num += w * prm.Beta[i][j]
			den += w
		}
		if den == 0 {
			out[j] = 1 // neutral default when a class carries no traffic
			continue
		}
		out[j] = num / den
	}
	return out, nil
}
