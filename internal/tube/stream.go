// Streaming profiling: the live counterpart of the day-batch Profiler /
// ClassProfiler pair (DESIGN.md §12).
//
// The batch engines collect whole days and re-fit from a neutral start
// when asked — the paper's "weekly" workflow. StreamProfiler instead
// rides the serving plane: it subscribes to the ingest engine's delta
// stream for a live per-class usage sketch, folds the *authoritative*
// per-class totals of every period close (the measurement rollover cut)
// into one estimate.StreamFitter per class, and warm-starts a
// Levenberg–Marquardt refinement from the previous fit each period —
// O(1) fold cost per period close and microseconds per refinement,
// versus a cold fit per day.
//
// Consistency: the delta subscription is delivered outside the ingest
// shard locks, so the sketch is an advisory live view that is NOT
// ordered against Rollover. The fitters are fed exclusively from
// rollover totals (FoldPeriod), inside the optimizer's period-close
// critical section; at each fold the sketch is swapped out and its
// disagreement with the authoritative totals is exported as the
// stream_sketch_skew_mb metric.
package tube

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"tdp/internal/estimate"
	"tdp/internal/ingest"
	"tdp/internal/obs"
)

// StreamConfig tunes a StreamProfiler.
type StreamConfig struct {
	// Window is the number of complete days each per-class fitter
	// retains (default 3).
	Window int
	// MaxIter caps LM iterations per refinement (default from the
	// estimate package).
	MaxIter int
	// Tol is the LM convergence tolerance for both the streaming
	// refinement and the batch comparator (default 1e-13 — tight enough
	// that warm-started streaming and cold batch fits agree to the
	// 1e-6 divergence contract with two orders of margin).
	Tol float64
	// AbsTol, when > 0, lets a refinement return as soon as the residual
	// sum of squares is at or below it — the quiesced fast path.
	AbsTol float64
}

// StreamEstimate is the result of one streaming refinement.
type StreamEstimate struct {
	// Betas is the demand-weighted patience index per class.
	Betas []float64
	// Reused is true when every class returned its cached fit (no new
	// data since the previous refinement).
	Reused bool
	// Warm is true when at least one class seeded LM from its previous
	// fit rather than the neutral cold start.
	Warm bool
	// Iterations sums LM iterations across classes.
	Iterations int
	// RSS sums the residual sum of squares across classes.
	RSS float64
}

// StreamProfiler estimates per-class patience continuously from the
// live ingest stream. FoldPeriod/Refine/Divergence are safe for
// concurrent use; the sketch subscription is internally synchronized.
type StreamProfiler struct {
	mu        sync.Mutex
	periods   int
	classes   int
	baseline  [][]float64 // [period][class]; immutable after New
	fitters   []*estimate.StreamFitter // guarded by mu: one single-type fitter per class
	betas     []float64                // guarded by mu: last refined per-class patience
	refined   bool                     // guarded by mu: betas hold a fit (not still empty)
	periodsIn int                      // guarded by mu: period closes folded

	// Live sketch, fed by the ingest delta subscription. The adders are
	// internally synchronized; eng/subID are guarded by mu.
	sketch []*obs.FloatAdder
	eng    *ingest.Engine // guarded by mu: engine the subscription is attached to
	subID  int64          // guarded by mu

	met atomic.Pointer[streamMetrics] // nil until Instrument, like ingest's hookup
}

// NewStreamProfiler builds one streaming fitter per class from the
// per-period, per-class TIP baseline (same shape as NewClassProfiler).
func NewStreamProfiler(baseline [][]float64, maxReward float64, cfg StreamConfig) (*StreamProfiler, error) {
	if len(baseline) < 2 || len(baseline[0]) == 0 {
		return nil, fmt.Errorf("baseline %dx?: %w", len(baseline), ErrBadInput)
	}
	if maxReward <= 0 {
		return nil, fmt.Errorf("max reward %v: %w", maxReward, ErrBadInput)
	}
	if cfg.Window <= 0 {
		cfg.Window = 3
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-13
	}
	classes := len(baseline[0])
	sp := &StreamProfiler{
		periods: len(baseline),
		classes: classes,
		betas:   make([]float64, classes),
		sketch:  make([]*obs.FloatAdder, classes),
	}
	for i, row := range baseline {
		if len(row) != classes {
			return nil, fmt.Errorf("ragged baseline at period %d: %w", i+1, ErrBadInput)
		}
		sp.baseline = append(sp.baseline, append([]float64(nil), row...))
	}
	for j := 0; j < classes; j++ {
		base := make([]float64, sp.periods)
		for i := range base {
			base[i] = sp.baseline[i][j]
		}
		m := &estimate.Model{
			Periods:     sp.periods,
			Types:       1,
			BaselineTIP: base,
			MaxReward:   maxReward,
			MaxIter:     cfg.MaxIter,
			Tol:         cfg.Tol,
		}
		sf, err := estimate.NewStreamFitter(m, estimate.StreamConfig{
			Window:  cfg.Window,
			MaxIter: cfg.MaxIter,
			Tol:     cfg.Tol,
			AbsTol:  cfg.AbsTol,
		})
		if err != nil {
			return nil, badInput(fmt.Errorf("class %d: %w", j, err))
		}
		sp.fitters = append(sp.fitters, sf)
		sp.sketch[j] = obs.NewFloatAdder()
	}
	return sp, nil
}

// Classes returns the number of profiled classes.
func (sp *StreamProfiler) Classes() int { return sp.classes }

// Attach subscribes the live sketch to eng's delta stream. The engine's
// class count must match the profiler's. Attaching replaces any
// previous subscription.
func (sp *StreamProfiler) Attach(eng *ingest.Engine) error {
	if eng == nil {
		return fmt.Errorf("nil engine: %w", ErrBadInput)
	}
	if got := len(eng.Classes()); got != sp.classes {
		return fmt.Errorf("engine has %d classes, profiler %d: %w", got, sp.classes, ErrBadInput)
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.eng != nil {
		sp.eng.Unsubscribe(sp.subID)
	}
	sketch := sp.sketch
	sp.eng = eng
	sp.subID = eng.Subscribe(func(byClass []float64) {
		for j, v := range byClass {
			if v != 0 {
				sketch[j].Add(v)
			}
		}
	})
	return nil
}

// Detach removes the delta subscription, if any.
func (sp *StreamProfiler) Detach() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.eng != nil {
		sp.eng.Unsubscribe(sp.subID)
		sp.eng = nil
		sp.subID = 0
	}
}

// FoldPeriod folds one closed period into every class fitter: the
// reward that was in force and the authoritative per-class usage totals
// from the measurement rollover. It swaps the live sketch and exports
// its disagreement with the authoritative totals as the skew metric.
// Call it from the same critical section that performs the rollover so
// the (reward, usage) pair cannot straddle a schedule update — the
// day-boundary hazard the batch path had.
func (sp *StreamProfiler) FoldPeriod(period int, reward float64, usageByClass []float64) (dayClosed bool, err error) {
	if len(usageByClass) != sp.classes {
		return false, fmt.Errorf("%d usage classes, want %d: %w", len(usageByClass), sp.classes, ErrBadInput)
	}
	// Validate up front: the per-class fitters must stay in lockstep, so
	// no fold may start unless every class's fold will be accepted.
	for j, v := range usageByClass {
		if math.IsNaN(v) {
			return false, fmt.Errorf("class %d: NaN usage: %w", j, ErrBadInput)
		}
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var skew float64
	for j, a := range sp.sketch {
		live := a.Swap()
		d := live - usageByClass[j]
		if d < 0 {
			d = -d
		}
		skew += d
	}
	for j, sf := range sp.fitters {
		closed, err := sf.ObservePeriod(period, reward, usageByClass[j])
		if err != nil {
			// Period-sequencing errors are detected identically by every
			// fitter before any state changes, so lockstep is preserved.
			return false, badInput(fmt.Errorf("class %d: %w", j, err))
		}
		dayClosed = closed
	}
	sp.periodsIn++
	if m := sp.met.Load(); m != nil {
		m.folds.Inc()
		m.skew.Set(skew)
		if dayClosed {
			m.days.Inc()
		}
	}
	return dayClosed, nil
}

// Refine runs one warm-started refinement per class and reduces the
// fitted per-period β's to a demand-weighted patience index per class.
// With no new data since the last call it returns the cached estimate
// in microseconds.
func (sp *StreamProfiler) Refine() (*StreamEstimate, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	est := &StreamEstimate{
		Betas:  make([]float64, sp.classes),
		Reused: true,
	}
	for j, sf := range sp.fitters {
		res, err := sf.Refine()
		if err != nil {
			return nil, badInput(fmt.Errorf("class %d: %w", j, err))
		}
		if !res.Reused {
			est.Reused = false
		}
		if res.Warm {
			est.Warm = true
		}
		est.Iterations += res.Iterations
		est.RSS += res.RSS
		base := sp.fitters[j].Model().BaselineTIP
		var num, den float64
		for i := 0; i < sp.periods; i++ {
			num += base[i] * res.Params.Beta[i][0]
			den += base[i]
		}
		if den == 0 {
			est.Betas[j] = 1
			continue
		}
		est.Betas[j] = num / den
	}
	copy(sp.betas, est.Betas)
	sp.refined = true
	if m := sp.met.Load(); m != nil {
		mode := "cold"
		if est.Reused {
			mode = "reused"
		} else if est.Warm {
			mode = "warm"
		}
		m.refines[mode].Inc()
		if !est.Reused {
			m.iterations.Observe(float64(est.Iterations))
		}
		for j, b := range est.Betas {
			m.beta[j].Set(b)
		}
	}
	return est, nil
}

// Betas returns the most recent refined per-class patience estimates;
// ok is false until the first successful Refine.
func (sp *StreamProfiler) Betas() (betas []float64, ok bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]float64(nil), sp.betas...), sp.refined
}

// WindowLen returns the number of complete days currently banked.
func (sp *StreamProfiler) WindowLen() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.fitters) == 0 {
		return 0
	}
	return sp.fitters[0].WindowLen()
}

// WindowFull reports whether the day window is at capacity.
func (sp *StreamProfiler) WindowFull() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.fitters) == 0 {
		return false
	}
	return sp.fitters[0].WindowFull()
}

// Days returns the number of complete days ever folded.
func (sp *StreamProfiler) Days() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.fitters) == 0 {
		return 0
	}
	return sp.fitters[0].Days()
}

// StalePeriods returns the number of period closes folded since the
// last refinement (the estimate-staleness signal, also exported as a
// gauge by Instrument).
func (sp *StreamProfiler) StalePeriods() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.stalePeriodsLocked()
}

// stalePeriodsLocked returns the max staleness across classes. Callers
// must hold sp.mu.
func (sp *StreamProfiler) stalePeriodsLocked() int {
	stale := 0
	for _, sf := range sp.fitters {
		if s := sf.StalePeriods(); s > stale {
			stale = s
		}
	}
	return stale
}

// Divergence measures the streaming-vs-batch gap: for every class it
// runs a cold batch fit over exactly the fitter's windowed days and
// returns the largest parameter difference against the streaming fit —
// the contract is ≤ 1e-6 once the window is full. It is a diagnostic
// (one cold LM per class); the result is exported on the
// stream_batch_divergence gauge when instrumented.
func (sp *StreamProfiler) Divergence() (float64, error) {
	sp.mu.Lock()
	type job struct {
		model *estimate.Model
		obs   []estimate.Observation
		prm   estimate.Params
	}
	jobs := make([]job, 0, sp.classes)
	for j, sf := range sp.fitters {
		res, err := sf.Refine()
		if err != nil {
			sp.mu.Unlock()
			return 0, badInput(fmt.Errorf("class %d: %w", j, err))
		}
		shared := sf.Observations()
		obsCopy := make([]estimate.Observation, len(shared))
		for i, o := range shared {
			obsCopy[i] = estimate.Observation{
				Rewards: append([]float64(nil), o.Rewards...),
				T:       append([]float64(nil), o.T...),
			}
		}
		jobs = append(jobs, job{model: sf.Model(), obs: obsCopy, prm: res.Params})
	}
	sp.mu.Unlock()
	var worst float64
	for j, jb := range jobs {
		fit, err := jb.model.Fit(jb.obs)
		if err != nil {
			return 0, badInput(fmt.Errorf("class %d batch fit: %w", j, err))
		}
		if d := estimate.MaxAbsDiff(jb.prm, fit.Params); d > worst {
			worst = d
		}
	}
	if m := sp.met.Load(); m != nil {
		m.divergence.Set(worst)
	}
	return worst, nil
}

// streamMetrics is the obs hookup, nil until Instrument.
type streamMetrics struct {
	folds      *obs.Counter
	days       *obs.Counter
	refines    map[string]*obs.Counter
	iterations *obs.Histogram
	skew       *obs.Gauge
	divergence *obs.Gauge
	beta       []*obs.Gauge
}

// refineIterBuckets spans 1…~1k LM iterations per refinement.
var refineIterBuckets = obs.ExpBuckets(1, 2, 11)

// Instrument registers the streaming profiler's metrics on reg:
// estimate staleness, window occupancy, live-sketch volume, fold/day
// counters, refinement modes and iterations, sketch-vs-rollover skew
// and streaming-vs-batch divergence.
func (sp *StreamProfiler) Instrument(reg *obs.Registry) {
	m := &streamMetrics{
		folds: reg.Counter("stream_folds_total", "period closes folded into the streaming fitters", nil),
		days:  reg.Counter("stream_days_total", "complete days folded into the streaming window", nil),
		refines: map[string]*obs.Counter{
			"cold":   reg.Counter("stream_refines_total", "streaming refinements, by start mode", obs.Labels{"mode": "cold"}),
			"warm":   reg.Counter("stream_refines_total", "streaming refinements, by start mode", obs.Labels{"mode": "warm"}),
			"reused": reg.Counter("stream_refines_total", "streaming refinements, by start mode", obs.Labels{"mode": "reused"}),
		},
		iterations: reg.Histogram("stream_refine_iterations", "LM iterations per non-reused refinement, summed over classes", nil, refineIterBuckets),
		skew:       reg.Gauge("stream_sketch_skew_mb", "abs difference between the live delta sketch and the authoritative rollover totals at the last period close, summed over classes", nil),
		divergence: reg.Gauge("stream_batch_divergence", "max parameter difference between the streaming fit and a cold batch fit over the same window, at the last Divergence call", nil),
	}
	for j := 0; j < sp.classes; j++ {
		m.beta = append(m.beta, reg.Gauge("stream_beta",
			"streaming patience estimate, by class index", obs.Labels{"class": strconv.Itoa(j)}))
	}
	reg.GaugeFunc("stream_stale_periods", "period closes folded since the last refinement (estimate staleness)", nil,
		func() float64 { return float64(sp.StalePeriods()) })
	reg.GaugeFunc("stream_window_days", "complete days banked in the streaming window (occupancy)", nil,
		func() float64 { return float64(sp.WindowLen()) })
	reg.GaugeFunc("stream_live_delta_mb", "usage accumulated in the live sketch since the last period close, summed over classes", nil,
		func() float64 {
			var sum float64
			for _, a := range sp.sketch {
				sum += a.Value()
			}
			return sum
		})
	sp.met.Store(m)
}
