package tube

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNewBillingValidation(t *testing.T) {
	if _, err := NewBilling(0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero price: err = %v, want ErrBadInput", err)
	}
	if _, err := NewBilling(-1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative price: err = %v, want ErrBadInput", err)
	}
}

func TestBillingAccrual(t *testing.T) {
	b, err := NewBilling(1) // $0.10 per MB
	if err != nil {
		t.Fatalf("NewBilling: %v", err)
	}
	// Period 1: no reward — full price.
	if err := b.AddPeriod(map[string]float64{"alice": 10, "bob": 4}, 0); err != nil {
		t.Fatalf("AddPeriod: %v", err)
	}
	// Period 2: reward 0.3 — price 0.7.
	if err := b.AddPeriod(map[string]float64{"alice": 10}, 0.3); err != nil {
		t.Fatalf("AddPeriod: %v", err)
	}
	if got := b.Bill("alice"); math.Abs(got-17) > 1e-12 {
		t.Errorf("alice bill = %v, want 17", got)
	}
	if got := b.Bill("bob"); got != 4 {
		t.Errorf("bob bill = %v, want 4", got)
	}
	if got := b.RewardCredit("alice"); math.Abs(got-3) > 1e-12 {
		t.Errorf("alice credit = %v, want 3", got)
	}
	if got := b.Bill("nobody"); got != 0 {
		t.Errorf("unknown user bill = %v, want 0", got)
	}
	if b.Periods() != 2 {
		t.Errorf("Periods = %d, want 2", b.Periods())
	}
}

func TestBillingPriceFloor(t *testing.T) {
	// A reward above the base price floors the effective price at zero —
	// the ISP never pays users to consume.
	b, _ := NewBilling(1)
	if err := b.AddPeriod(map[string]float64{"u": 5}, 2.5); err != nil {
		t.Fatalf("AddPeriod: %v", err)
	}
	if got := b.Bill("u"); got != 0 {
		t.Errorf("bill = %v, want 0 (floored)", got)
	}
	if got := b.RewardCredit("u"); got != 5 {
		t.Errorf("credit = %v, want 5 (capped at base price × usage)", got)
	}
}

func TestBillingErrors(t *testing.T) {
	b, _ := NewBilling(1)
	if err := b.AddPeriod(map[string]float64{"u": -1}, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative usage: err = %v, want ErrBadInput", err)
	}
	if err := b.AddPeriod(map[string]float64{"u": 1}, -0.1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative reward: err = %v, want ErrBadInput", err)
	}
}

func TestBillingStatementsAndCycle(t *testing.T) {
	b, _ := NewBilling(2)
	_ = b.AddPeriod(map[string]float64{"carol": 3, "alice": 1}, 0.5)
	stmts := b.Statements()
	if len(stmts) != 2 || stmts[0].User != "alice" || stmts[1].User != "carol" {
		t.Fatalf("Statements = %+v, want sorted [alice carol]", stmts)
	}
	if math.Abs(stmts[1].Charge-4.5) > 1e-12 {
		t.Errorf("carol charge = %v, want 4.5", stmts[1].Charge)
	}
	closed := b.CloseCycle()
	if len(closed) != 2 {
		t.Fatal("CloseCycle lost statements")
	}
	if len(b.Statements()) != 0 || b.Periods() != 0 {
		t.Error("cycle not reset")
	}
}

func TestOptimizerBillingIntegration(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  testClasses(),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	reward := opt.CurrentReward()
	if err := opt.Measurement().Record("user9", "video", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.ClosePeriod(); err != nil {
		t.Fatalf("ClosePeriod: %v", err)
	}
	want := (1 - reward) * 100
	if want < 0 {
		want = 0
	}
	if got := opt.Billing().Bill("user9"); math.Abs(got-want) > 1e-9 {
		t.Errorf("bill = %v, want %v (base 1, reward %v)", got, want, reward)
	}
}

func TestBillOverHTTP(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario:  testScenario(),
		Classes:   testClasses(),
		BasePrice: 2,
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, _ := NewServer(opt)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	gui, _ := NewGUI(ts.URL)
	ctx := context.Background()

	if err := gui.ReportUsage(ctx, UsageReport{User: "dave", Class: "web", VolumeMB: 50}); err != nil {
		t.Fatal(err)
	}
	reward := opt.CurrentReward()
	if _, err := opt.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	st, err := gui.FetchBill(ctx, "dave")
	if err != nil {
		t.Fatalf("FetchBill: %v", err)
	}
	price := 2 - reward
	if price < 0 {
		price = 0
	}
	if math.Abs(st.Charge-price*50) > 1e-9 {
		t.Errorf("charge = %v, want %v", st.Charge, price*50)
	}
	if st.User != "dave" {
		t.Errorf("user = %q", st.User)
	}
}

func TestCloseCycleAtomicNoLostAccruals(t *testing.T) {
	// Regression for the split-critical-section CloseCycle: it used to
	// snapshot statements under one hold of mu and reset the maps under a
	// second, so an AddPeriod landing in the gap was charged to the user
	// and then wiped before appearing on any statement. With snapshot and
	// reset in one critical section, every accrued unit must show up on
	// exactly one cycle's statements. (Run under -race in CI.)
	b, err := NewBilling(1)
	if err != nil {
		t.Fatalf("NewBilling: %v", err)
	}
	const (
		writers = 4
		adds    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			for i := 0; i < adds; i++ {
				// reward 0 → price 1 → each call accrues exactly 1.
				if err := b.AddPeriod(map[string]float64{user: 1}, 0); err != nil {
					t.Errorf("AddPeriod: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	var closed []Statement
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			closed = append(closed, b.CloseCycle()...)
		}
	}()
	wg.Wait()
	<-done
	closed = append(closed, b.CloseCycle()...)

	var total float64
	for _, s := range closed {
		total += s.Charge
	}
	if want := float64(writers * adds); total != want {
		t.Fatalf("accrued %v across cycles, want %v: CloseCycle lost updates", total, want)
	}
}
