package tube

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"

	"tdp/internal/core"
	"tdp/internal/estimate"
)

// testScenario is a small 12-period, 3-class deployment: web, ftp, and
// streaming video with distinct patience indices.
func testScenario() *core.Scenario {
	classes := 3
	demand := make([][]float64, 12)
	base := []float64{22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26}
	for i := range demand {
		demand[i] = make([]float64, classes)
		demand[i][0] = base[i] * 0.2 // web
		demand[i][1] = base[i] * 0.3 // ftp
		demand[i][2] = base[i] * 0.5 // video
	}
	return &core.Scenario{
		Periods:  12,
		Demand:   demand,
		Betas:    []float64{4, 1.5, 0.5}, // web impatient, video patient
		Capacity: []float64{18, 18, 18, 18, 18, 18, 18, 18, 18, 18, 18, 18},
		Cost:     core.LinearCost(3),
	}
}

func testClasses() []string { return []string{"web", "ftp", "video"} }

func TestMeasurementValidation(t *testing.T) {
	if _, err := NewMeasurement(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no classes: err = %v, want ErrBadInput", err)
	}
	if _, err := NewMeasurement([]string{"a", "a"}); !errors.Is(err, ErrBadInput) {
		t.Errorf("dup class: err = %v, want ErrBadInput", err)
	}
	if _, err := NewMeasurement([]string{""}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty class: err = %v, want ErrBadInput", err)
	}
}

func TestMeasurementAccounting(t *testing.T) {
	m, err := NewMeasurement(testClasses())
	if err != nil {
		t.Fatalf("NewMeasurement: %v", err)
	}
	mustRecord := func(u, c string, v float64) {
		t.Helper()
		if err := m.Record(u, c, v); err != nil {
			t.Fatalf("Record(%s,%s,%v): %v", u, c, v, err)
		}
	}
	mustRecord("user1", "web", 10)
	mustRecord("user1", "web", 5)
	mustRecord("user2", "video", 100)
	mustRecord("user2", "ftp", 20)

	totals := m.ClassTotals()
	want := []float64{15, 20, 100}
	for i := range want {
		if totals[i] != want[i] {
			t.Errorf("ClassTotals[%d] = %v, want %v", i, totals[i], want[i])
		}
	}
	users := m.UserTotals()
	if users["user1"] != 15 || users["user2"] != 120 {
		t.Errorf("UserTotals = %v", users)
	}
	if got := m.Users(); len(got) != 2 || got[0] != "user1" || got[1] != "user2" {
		t.Errorf("Users = %v", got)
	}

	closed := m.Reset()
	for i := range want {
		if closed[i] != want[i] {
			t.Errorf("Reset returned %v, want %v", closed, want)
		}
	}
	for _, v := range m.ClassTotals() {
		if v != 0 {
			t.Error("counters not cleared by Reset")
		}
	}
}

func TestMeasurementRecordErrors(t *testing.T) {
	m, _ := NewMeasurement(testClasses())
	if err := m.Record("", "web", 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty user: err = %v, want ErrBadInput", err)
	}
	if err := m.Record("u", "smtp", 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown class: err = %v, want ErrBadInput", err)
	}
	if err := m.Record("u", "web", -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative volume: err = %v, want ErrBadInput", err)
	}
}

func TestProfilerEndToEnd(t *testing.T) {
	// Feed the profiler synthetic observations generated from known
	// parameters and check the per-class patience summary orders classes
	// correctly (video most patient).
	scn := testScenario()
	prof, err := NewProfiler(12, 3, scn.TotalDemand(), scn.Cost.MaxSlope())
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	if _, err := prof.Estimate(); !errors.Is(err, ErrBadInput) {
		t.Errorf("estimate with no data: err = %v, want ErrBadInput", err)
	}

	truth := estimate.NewParams(12, 3)
	for i := 0; i < 12; i++ {
		truth.Alpha[i] = []float64{0.2, 0.3, 0.5}
		truth.Beta[i] = []float64{4, 1.5, 0.5}
	}
	gen := &estimate.Model{Periods: 12, Types: 3, BaselineTIP: scn.TotalDemand(), MaxReward: 3}
	rewardSets := [][]float64{
		{0, 0.5, 1, 0, 0.5, 1, 0, 0.5, 1, 0, 0.5, 1},
		{1.5, 0, 0, 1.5, 0, 0, 1.5, 0, 0, 1.5, 0, 0},
		{0.2, 0.4, 0.6, 0.8, 1, 1.2, 0.2, 0.4, 0.6, 0.8, 1, 1.2},
		{1.2, 1, 0.8, 0.6, 0.4, 0.2, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 1.2, 1, 0.8, 0.6, 0.4, 0.2},
		{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7},
		{1.5, 1.5, 0, 0, 1.5, 1.5, 0, 0, 1.5, 1.5, 0, 0},
		{0, 1.4, 0, 1.1, 0, 0.8, 0, 0.5, 0, 0.2, 0, 1},
	}
	for _, p := range rewardSets {
		tt, err := gen.NetFlows(truth, p)
		if err != nil {
			t.Fatalf("NetFlows: %v", err)
		}
		if err := prof.AddObservation(p, tt); err != nil {
			t.Fatalf("AddObservation: %v", err)
		}
	}
	if prof.ObservationCount() != len(rewardSets) {
		t.Fatalf("ObservationCount = %d, want %d", prof.ObservationCount(), len(rewardSets))
	}
	prm, err := prof.Estimate()
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	patience, err := prof.PatienceByClass(prm)
	if err != nil {
		t.Fatalf("PatienceByClass: %v", err)
	}
	if len(patience) != 3 {
		t.Fatalf("PatienceByClass returned %d entries", len(patience))
	}
	// Identification of individual mixture components is weak (see §IV
	// discussion), but the aggregate curves must be close: compare per
	// period at a probe reward.
	for period := 0; period < 12; period += 4 {
		pe, err := gen.MaxPercentError(truth, prm, period, []float64{0.5, 1.5})
		if err != nil {
			t.Fatalf("MaxPercentError: %v", err)
		}
		if pe > 30 {
			t.Errorf("period %d: aggregate curve error %.1f%% > 30%%", period+1, pe)
		}
	}
}

func TestProfilerObservationValidation(t *testing.T) {
	prof, err := NewProfiler(12, 3, make([]float64, 12), 3)
	if err == nil {
		// zero baseline is fine structurally; MaxReward>0 and dims valid
		_ = prof
	} else {
		t.Fatalf("NewProfiler: %v", err)
	}
	if err := prof.AddObservation([]float64{1}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short obs: err = %v, want ErrBadInput", err)
	}
}

func TestOptimizerLifecycle(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  testClasses(),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	if opt.Period() != 0 {
		t.Errorf("initial period = %d", opt.Period())
	}
	sched := opt.Schedule()
	if len(sched) != 12 {
		t.Fatalf("schedule has %d periods", len(sched))
	}
	if opt.CurrentReward() != sched[0] {
		t.Errorf("CurrentReward %v != schedule[0] %v", opt.CurrentReward(), sched[0])
	}
	// Record traffic matching the estimate and close the period.
	meas := opt.Measurement()
	for i, c := range testClasses() {
		if err := meas.Record("user1", c, testScenario().Demand[0][i]); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	observed, err := opt.ClosePeriod()
	if err != nil {
		t.Fatalf("ClosePeriod: %v", err)
	}
	if len(observed) != 3 {
		t.Fatalf("observed %v", observed)
	}
	if opt.Period() != 1 {
		t.Errorf("period = %d after close, want 1", opt.Period())
	}
	hist, err := opt.PriceHistory()
	if err != nil || len(hist) != 1 {
		t.Fatalf("PriceHistory = (%v, %v), want 1 point", hist, err)
	}
	if math.Abs(hist[0].Value-sched[0]) > 1e-12 {
		t.Errorf("history recorded %v, want %v", hist[0].Value, sched[0])
	}
	uh, err := opt.UsageHistory()
	if err != nil || len(uh) != 1 {
		t.Fatalf("UsageHistory = (%v, %v)", uh, err)
	}
	wantTotal := testScenario().Demand[0][0] + testScenario().Demand[0][1] + testScenario().Demand[0][2]
	if math.Abs(uh[0].Value-wantTotal) > 1e-9 {
		t.Errorf("usage history %v, want %v", uh[0].Value, wantTotal)
	}
}

func TestOptimizerConfigValidation(t *testing.T) {
	if _, err := NewOptimizer(OptimizerConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil scenario: err = %v, want ErrBadInput", err)
	}
	if _, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  []string{"web"},
	}); !errors.Is(err, ErrBadInput) {
		t.Errorf("class mismatch: err = %v, want ErrBadInput", err)
	}
}

func TestServerAndGUIEndToEnd(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  testClasses(),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	gui, err := NewGUI(ts.URL)
	if err != nil {
		t.Fatalf("NewGUI: %v", err)
	}
	ctx := context.Background()

	info, err := gui.PullPrice(ctx)
	if err != nil {
		t.Fatalf("PullPrice: %v", err)
	}
	if info.Period != 0 || len(info.Rewards) != 12 {
		t.Errorf("PriceInfo = %+v", info)
	}
	if gui.CurrentReward() != info.Reward {
		t.Errorf("CurrentReward %v != pulled %v", gui.CurrentReward(), info.Reward)
	}

	// Report usage over the wire and close the period.
	if err := gui.ReportUsage(ctx, UsageReport{User: "user2", Class: "video", VolumeMB: 42}); err != nil {
		t.Fatalf("ReportUsage: %v", err)
	}
	observed, err := opt.ClosePeriod()
	if err != nil {
		t.Fatalf("ClosePeriod: %v", err)
	}
	if observed[2] != 42 {
		t.Errorf("video observed %v, want 42", observed[2])
	}

	// Pull for the next period; local history should hold both periods.
	if _, err := gui.PullPrice(ctx); err != nil {
		t.Fatalf("PullPrice: %v", err)
	}
	hist, err := gui.PriceHistory()
	if err != nil {
		t.Fatalf("PriceHistory: %v", err)
	}
	if len(hist) != 2 {
		t.Errorf("GUI history has %d points, want 2", len(hist))
	}
	if gui.Pulls() != 2 {
		t.Errorf("Pulls = %d, want 2 (once per period)", gui.Pulls())
	}
}

func TestServerRejectsBadUsage(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  testClasses(),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, _ := NewServer(opt)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	gui, _ := NewGUI(ts.URL)
	ctx := context.Background()
	if err := gui.ReportUsage(ctx, UsageReport{User: "u", Class: "nope", VolumeMB: 1}); err == nil {
		t.Error("unknown class accepted over the wire")
	}
	if err := gui.ReportUsage(ctx, UsageReport{User: "", Class: "web", VolumeMB: 1}); err == nil {
		t.Error("empty user accepted over the wire")
	}
}

func TestGUIHistoryPersistence(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: testScenario(),
		Classes:  testClasses(),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, _ := NewServer(opt)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	gui, _ := NewGUI(ts.URL)
	ctx := context.Background()
	if _, err := gui.PullPrice(ctx); err != nil {
		t.Fatalf("PullPrice: %v", err)
	}
	if _, err := opt.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if _, err := gui.PullPrice(ctx); err != nil {
		t.Fatalf("PullPrice: %v", err)
	}

	var buf bytes.Buffer
	if err := gui.SaveHistory(&buf); err != nil {
		t.Fatalf("SaveHistory: %v", err)
	}
	// A fresh GUI ("after restart") restores the archive.
	gui2, _ := NewGUI(ts.URL)
	if err := gui2.LoadHistory(&buf); err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	want, _ := gui.PriceHistory()
	got, err := gui2.PriceHistory()
	if err != nil {
		t.Fatalf("PriceHistory: %v", err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("restored %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := gui2.LoadHistory(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestNewGUIValidation(t *testing.T) {
	if _, err := NewGUI(""); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty URL: err = %v, want ErrBadInput", err)
	}
	if _, err := NewServer(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil optimizer: err = %v, want ErrBadInput", err)
	}
}
