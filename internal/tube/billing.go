package tube

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Billing accrues each user's bill under time-dependent usage pricing.
// The paper's §IV observation is that correct billing needs only the
// per-user usage in each period and that period's published reward: the
// effective price is the baseline usage price minus the reward (rewards
// "move the baseline usage price", §I-C), floored at zero.
type Billing struct {
	mu        sync.Mutex
	basePrice float64            // $0.10 per volume unit; immutable after New
	charges   map[string]float64 // guarded by mu
	rewards   map[string]float64 // guarded by mu: value of rewards credited per user
	periods   int                // guarded by mu
}

// NewBilling creates a billing engine with the given baseline usage price
// per volume unit ($0.10 units).
func NewBilling(basePrice float64) (*Billing, error) {
	if basePrice <= 0 || math.IsNaN(basePrice) {
		return nil, fmt.Errorf("base price %v: %w", basePrice, ErrBadInput)
	}
	return &Billing{
		basePrice: basePrice,
		charges:   make(map[string]float64),
		rewards:   make(map[string]float64),
	}, nil
}

// BasePrice returns the baseline usage price.
func (b *Billing) BasePrice() float64 { return b.basePrice }

// AddPeriod accrues one closed period: each user's usage is charged at
// max(basePrice − reward, 0).
func (b *Billing) AddPeriod(usageByUser map[string]float64, reward float64) error {
	if reward < 0 || math.IsNaN(reward) {
		return fmt.Errorf("reward %v: %w", reward, ErrBadInput)
	}
	price := b.basePrice - reward
	if price < 0 {
		price = 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for user, usage := range usageByUser {
		if usage < 0 {
			return fmt.Errorf("usage %v for %q: %w", usage, user, ErrBadInput)
		}
		b.charges[user] += price * usage
		b.rewards[user] += (b.basePrice - price) * usage
	}
	b.periods++
	return nil
}

// Bill returns a user's accrued charge this cycle (0 for unknown users).
func (b *Billing) Bill(user string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.charges[user]
}

// RewardCredit returns the total value of rewards a user has received this
// cycle (the discount off TIP billing).
func (b *Billing) RewardCredit(user string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rewards[user]
}

// Periods returns how many periods have been accrued this cycle.
func (b *Billing) Periods() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.periods
}

// Users returns how many users carry a charge this cycle.
func (b *Billing) Users() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.charges)
}

// Statement is one user's line on the cycle statement.
type Statement struct {
	User         string  `json:"user"`
	Charge       float64 `json:"charge"`       // $0.10 units
	RewardCredit float64 `json:"rewardCredit"` // discount vs TIP billing
}

// Statements returns the cycle's per-user statements, sorted by user.
func (b *Billing) Statements() []Statement {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.statementsLocked()
}

// statementsLocked builds the sorted statement list; callers hold mu.
func (b *Billing) statementsLocked() []Statement {
	out := make([]Statement, 0, len(b.charges))
	for user, charge := range b.charges {
		out = append(out, Statement{
			User:         user,
			Charge:       charge,
			RewardCredit: b.rewards[user],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// CloseCycle returns the final statements and resets for the next cycle.
// Snapshot and reset happen under one hold of mu: the earlier
// Statements-then-reset pair left a window where an AddPeriod landing
// between the two acquisitions was charged to users but wiped before
// appearing on any statement (the locksplit bug class, caught by
// tubelint once the fields above were annotated).
func (b *Billing) CloseCycle() []Statement {
	b.mu.Lock()
	defer b.mu.Unlock()
	stmts := b.statementsLocked()
	b.charges = make(map[string]float64)
	b.rewards = make(map[string]float64)
	b.periods = 0
	return stmts
}
