package tube

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMeasurementRecordResetRace is the regression test for the
// lost-update race in the original Measurement.Reset, which read the
// totals and cleared the map under two separate lock acquisitions: a
// Record landing in the window was dropped from the closed period.
// Under the atomic rollover, the sum of every closed period's totals
// plus the final counters must account for every report exactly
// (integral volumes, so float addition is exact). Run with -race.
func TestMeasurementRecordResetRace(t *testing.T) {
	m, err := NewMeasurement(testClasses())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 400

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", w)
			for i := 0; i < perWriter; i++ {
				if err := m.Record(user, "web", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var closed float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, v := range m.Reset() {
				closed += v
			}
		}
	}()
	wg.Wait()
	<-done
	for _, v := range m.ClassTotals() {
		closed += v
	}
	if want := float64(writers * perWriter); closed != want {
		t.Fatalf("accounted %v MB across resets, want %v: Reset dropped concurrent Records", closed, want)
	}
}

func TestUsageBatchEndpoint(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := NewServer(opt)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	gui, _ := NewGUI(ts.URL)
	ctx := context.Background()

	batch := []UsageReport{
		{User: "user1", Class: "web", VolumeMB: 3},
		{User: "user1", Class: "web", VolumeMB: 4},
		{User: "user2", Class: "video", VolumeMB: 50},
	}
	if err := gui.ReportUsageBatch(ctx, batch); err != nil {
		t.Fatalf("ReportUsageBatch: %v", err)
	}
	ct := opt.Measurement().ClassTotals()
	if ct[0] != 7 || ct[2] != 50 {
		t.Errorf("ClassTotals after batch = %v", ct)
	}

	// A batch with one bad report is rejected atomically.
	bad := []UsageReport{
		{User: "user3", Class: "web", VolumeMB: 1},
		{User: "user3", Class: "smtp", VolumeMB: 1},
	}
	if err := gui.ReportUsageBatch(ctx, bad); err == nil {
		t.Fatal("bad batch accepted over the wire")
	}
	if ut := opt.Measurement().UserTotals(); ut["user3"] != 0 {
		t.Errorf("rejected batch left residue: %v", ut)
	}

	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/usage/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: status %d, want 400", resp.StatusCode)
	}
}

func TestServerRequestCounters(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := NewServer(opt)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	gui, _ := NewGUI(ts.URL)
	ctx := context.Background()

	if _, err := gui.PullPrice(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := gui.PullPrice(ctx); err != nil {
		t.Fatal(err)
	}
	if err := gui.ReportUsage(ctx, UsageReport{User: "u", Class: "web", VolumeMB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := gui.ReportUsageBatch(ctx, []UsageReport{{User: "u", Class: "ftp", VolumeMB: 1}}); err != nil {
		t.Fatal(err)
	}

	counts := srv.RequestCounts()
	if counts["price"] != 2 || counts["usage"] != 1 || counts["usage_batch"] != 1 {
		t.Errorf("RequestCounts = %v", counts)
	}

	// The /stats endpoint serves the same counters (and counts itself).
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if got := srv.RequestCounts()["stats"]; got != 1 {
		t.Errorf("stats counter = %d, want 1", got)
	}
}

func TestServerServeShutdown(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := NewServer(opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	gui, _ := NewGUI("http://" + ln.Addr().String())
	if _, err := gui.PullPrice(context.Background()); err != nil {
		t.Fatalf("PullPrice over Serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := gui.PullPrice(context.Background()); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}

	// Shutdown on a never-started server is a no-op.
	srv2, _ := NewServer(opt)
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown before Serve: %v", err)
	}
}
