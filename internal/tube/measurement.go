// Package tube implements the TUBE prototype of §VI: the server-side
// Optimizer (measurement engine → profiling engine → price determination
// engine) and the user-side GUI client that pulls prices once per period
// over HTTP, with RRD-backed history on both ends.
//
// The paper's deployment used IPtables byte counters, an Ntop GUI plugin
// and an SSL channel; here measurement is an in-process counter API the
// emulated testbed feeds, the GUI is a polling client library, and the
// channel is plain HTTP on localhost (see DESIGN.md §2 for the
// substitution rationale).
package tube

import (
	"errors"
	"fmt"

	"tdp/internal/core"
	"tdp/internal/estimate"
	"tdp/internal/ingest"
)

// ErrBadInput is returned for invalid engine inputs.
var ErrBadInput = errors.New("tube: invalid input")

// ErrRemote classifies server-side failures seen by the GUI client: a
// non-success HTTP status or an ack that contradicts what was sent.
// Callers distinguish transport errors (returned unwrapped from
// net/http) from protocol failures with errors.Is(err, ErrRemote).
var ErrRemote = errors.New("tube: remote request failed")

// ErrNotReady classifies transient not-yet-available states: a price
// follower asked for a price before its first snapshot replicated.
// Callers retry after a pull interval instead of failing the request.
var ErrNotReady = errors.New("tube: not ready")

// Measurement is the measurement engine: per-user, per-class byte
// accounting for the current period, the role IPtables counters play in
// the paper's prototype. It is a thin adapter over the sharded
// ingest.Engine (DESIGN.md §7), which replaced the original
// single-global-mutex map: class membership checks are O(1) against a
// precomputed index, reads merge across shards on demand, and period
// close is one atomic read-totals-and-swap — the original Reset read
// the totals and cleared the map under two separate lock acquisitions,
// silently dropping any Record that landed in between.
type Measurement struct {
	eng *ingest.Engine
}

// NewMeasurement creates an engine accounting the given traffic classes
// with the default shard count.
func NewMeasurement(classes []string) (*Measurement, error) {
	return NewMeasurementShards(classes, 0)
}

// NewMeasurementShards creates an engine over an explicit number of
// lock stripes (0 → ingest.DefaultShards; 1 reproduces the original
// serial layout).
func NewMeasurementShards(classes []string, shards int) (*Measurement, error) {
	eng, err := ingest.NewEngine(classes, shards)
	if err != nil {
		return nil, badInput(err)
	}
	return &Measurement{eng: eng}, nil
}

// badInput rebrands a lower-layer validation error under this package's
// sentinel. The tube package fronts three engines with their own
// sentinels — ingest.ErrBadReport, estimate.ErrBadInput,
// core.ErrBadScenario — and callers of the tube API should not need to
// know which layer rejected their input: every public entry point
// funnels its error through here, so errors.Is(err, tube.ErrBadInput)
// works uniformly while the original sentinel stays wrapped underneath
// (errors.Is against the lower-layer sentinel also still matches).
func badInput(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrBadInput) {
		return err // already branded; don't double-wrap
	}
	if errors.Is(err, ingest.ErrBadReport) ||
		errors.Is(err, estimate.ErrBadInput) ||
		errors.Is(err, core.ErrBadScenario) {
		return fmt.Errorf("%w: %w", err, ErrBadInput)
	}
	return err
}

// Engine exposes the underlying sharded accounting engine.
func (m *Measurement) Engine() *ingest.Engine { return m.eng }

// Record accumulates volumeMB of traffic for (user, class).
func (m *Measurement) Record(user, class string, volumeMB float64) error {
	return badInput(m.eng.Record(user, class, volumeMB))
}

// RecordBatch accounts a whole batch of reports with one lock
// acquisition per touched shard. Validation is all-or-nothing: an
// invalid report rejects the entire batch with nothing applied.
func (m *Measurement) RecordBatch(reports []UsageReport) error {
	return badInput(m.eng.RecordBatch(reports))
}

// Classes returns the accounted traffic classes.
func (m *Measurement) Classes() []string { return m.eng.Classes() }

// ClassTotals returns this period's aggregate volume per class, ordered
// as Classes().
func (m *Measurement) ClassTotals() []float64 { return m.eng.ClassTotals() }

// UserTotals returns this period's total volume per user.
func (m *Measurement) UserTotals() map[string]float64 { return m.eng.UserTotals() }

// Users returns the users seen this period, sorted.
func (m *Measurement) Users() []string { return m.eng.Users() }

// Rollover atomically closes the period, returning its per-class and
// per-user totals from one consistent cut: no concurrent Record can
// land between the snapshot and the clear.
func (m *Measurement) Rollover() (classTotals []float64, userTotals map[string]float64) {
	return m.eng.Rollover()
}

// Reset clears the counters for a new period and returns the closed
// period's per-class totals (one atomic critical section, see Rollover).
func (m *Measurement) Reset() []float64 {
	totals, _ := m.eng.Rollover()
	return totals
}
