// Package tube implements the TUBE prototype of §VI: the server-side
// Optimizer (measurement engine → profiling engine → price determination
// engine) and the user-side GUI client that pulls prices once per period
// over HTTP, with RRD-backed history on both ends.
//
// The paper's deployment used IPtables byte counters, an Ntop GUI plugin
// and an SSL channel; here measurement is an in-process counter API the
// emulated testbed feeds, the GUI is a polling client library, and the
// channel is plain HTTP on localhost (see DESIGN.md §2 for the
// substitution rationale).
package tube

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrBadInput is returned for invalid engine inputs.
var ErrBadInput = errors.New("tube: invalid input")

// Measurement is the measurement engine: per-user, per-class byte
// accounting for the current period, the role IPtables counters play in
// the paper's prototype.
type Measurement struct {
	mu      sync.Mutex
	classes []string
	byUser  map[string]map[string]float64 // user → class → MB
}

// NewMeasurement creates an engine accounting the given traffic classes.
func NewMeasurement(classes []string) (*Measurement, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("no classes: %w", ErrBadInput)
	}
	seen := make(map[string]bool, len(classes))
	for _, c := range classes {
		if c == "" || seen[c] {
			return nil, fmt.Errorf("class %q empty or duplicate: %w", c, ErrBadInput)
		}
		seen[c] = true
	}
	return &Measurement{
		classes: append([]string(nil), classes...),
		byUser:  make(map[string]map[string]float64),
	}, nil
}

// Record accumulates volumeMB of traffic for (user, class).
func (m *Measurement) Record(user, class string, volumeMB float64) error {
	if user == "" {
		return fmt.Errorf("empty user: %w", ErrBadInput)
	}
	if volumeMB < 0 {
		return fmt.Errorf("negative volume %v: %w", volumeMB, ErrBadInput)
	}
	if !m.knownClass(class) {
		return fmt.Errorf("unknown class %q: %w", class, ErrBadInput)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.byUser[user]
	if u == nil {
		u = make(map[string]float64, len(m.classes))
		m.byUser[user] = u
	}
	u[class] += volumeMB
	return nil
}

func (m *Measurement) knownClass(class string) bool {
	for _, c := range m.classes {
		if c == class {
			return true
		}
	}
	return false
}

// Classes returns the accounted traffic classes.
func (m *Measurement) Classes() []string {
	return append([]string(nil), m.classes...)
}

// ClassTotals returns this period's aggregate volume per class, ordered as
// Classes().
func (m *Measurement) ClassTotals() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(m.classes))
	for _, u := range m.byUser {
		for i, c := range m.classes {
			out[i] += u[c]
		}
	}
	return out
}

// UserTotals returns this period's total volume per user.
func (m *Measurement) UserTotals() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.byUser))
	for user, classes := range m.byUser {
		var s float64
		for _, v := range classes {
			s += v
		}
		out[user] = s
	}
	return out
}

// Users returns the users seen this period, sorted.
func (m *Measurement) Users() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byUser))
	for u := range m.byUser {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Reset clears the counters for a new period and returns the closed
// period's per-class totals.
func (m *Measurement) Reset() []float64 {
	totals := m.ClassTotals()
	m.mu.Lock()
	m.byUser = make(map[string]map[string]float64)
	m.mu.Unlock()
	return totals
}
