package tube

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// PriceInfo is the payload the communication engine publishes: the reward
// for the period in progress and the full day schedule. Rewards are in
// $0.10 units, matching the optimization models.
type PriceInfo struct {
	Period  int       `json:"period"`
	Reward  float64   `json:"reward"`
	Rewards []float64 `json:"rewards"`
}

// UsageReport is the payload the emulated access network (standing in for
// the IPtables counters) posts to account a user's traffic.
type UsageReport struct {
	User     string  `json:"user"`
	Class    string  `json:"class"`
	VolumeMB float64 `json:"volumeMB"`
}

// Server is the TUBE communication engine: it exposes the optimizer's
// prices to GUI clients and accepts usage accounting. The paper runs this
// channel over SSL/TLS; transport security is orthogonal here (DESIGN.md
// §2) — wrap the handler in your TLS listener of choice in production.
type Server struct {
	opt *Optimizer
	mux *http.ServeMux
}

// NewServer builds the HTTP surface for an optimizer.
func NewServer(opt *Optimizer) (*Server, error) {
	if opt == nil {
		return nil, fmt.Errorf("nil optimizer: %w", ErrBadInput)
	}
	s := &Server{opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /price", s.handlePrice)
	s.mux.HandleFunc("GET /history", s.handleHistory)
	s.mux.HandleFunc("GET /bill", s.handleBill)
	s.mux.HandleFunc("POST /usage", s.handleUsage)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	info := PriceInfo{
		Period:  s.opt.Period(),
		Reward:  s.opt.CurrentReward(),
		Rewards: s.opt.Schedule(),
	}
	writeJSON(w, http.StatusOK, info)
}

type historyPayload struct {
	Prices []pricePoint `json:"prices"`
	Usage  []pricePoint `json:"usage"`
}

type pricePoint struct {
	Period int64   `json:"period"`
	Value  float64 `json:"value"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	prices, err := s.opt.PriceHistory()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	usage, err := s.opt.UsageHistory()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var payload historyPayload
	for _, p := range prices {
		payload.Prices = append(payload.Prices, pricePoint{Period: p.Time, Value: p.Value})
	}
	for _, p := range usage {
		payload.Usage = append(payload.Usage, pricePoint{Period: p.Time, Value: p.Value})
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	billing := s.opt.Billing()
	if user != "" {
		writeJSON(w, http.StatusOK, Statement{
			User:         user,
			Charge:       billing.Bill(user),
			RewardCredit: billing.RewardCredit(user),
		})
		return
	}
	writeJSON(w, http.StatusOK, billing.Statements())
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	var rep UsageReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		http.Error(w, "malformed usage report", http.StatusBadRequest)
		return
	}
	if err := s.opt.Measurement().Record(rep.User, rep.Class, rep.VolumeMB); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrBadInput) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the client will see a truncated body and retry next period.
	_ = json.NewEncoder(w).Encode(v)
}
