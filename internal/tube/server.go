package tube

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"tdp/internal/ingest"
	"tdp/internal/obs"
)

// PriceInfo is the payload the communication engine publishes: the reward
// for the period in progress and the full day schedule. Rewards are in
// $0.10 units, matching the optimization models.
type PriceInfo struct {
	Period  int       `json:"period"`
	Reward  float64   `json:"reward"`
	Rewards []float64 `json:"rewards"`
}

// UsageReport is the payload the emulated access network (standing in for
// the IPtables counters) posts to account a user's traffic. It is the
// ingestion engine's wire format: POST /usage takes one, POST
// /usage/batch takes a JSON array.
type UsageReport = ingest.Report

// BatchAck is the /usage/batch response: how many reports were
// accounted. A batch is all-or-nothing, so Accepted is always the full
// batch size on success.
type BatchAck struct {
	Accepted int `json:"accepted"`
}

// Server is the TUBE communication engine: it exposes the optimizer's
// prices to GUI clients and accepts usage accounting, single reports or
// batches. The paper runs this channel over SSL/TLS; transport security
// is orthogonal here (DESIGN.md §2) — wrap the handler in your TLS
// listener of choice in production.
type Server struct {
	opt *Optimizer
	mux *http.ServeMux

	// reg is the server's metric namespace: per-handler request counters
	// and latency histograms (maintained by the counting middleware),
	// the ingest engine's counters, and gauges over the optimizer's
	// state. GET /metrics serves it merged with obs.Default().
	reg          *obs.Registry
	counterNames []string
	counters     map[string]*obs.Counter
	rejected     map[string]*obs.Counter

	// cl is the cluster plane, non-nil once EnableCluster has run.
	cl *clusterState

	mu      sync.Mutex
	httpSrv *http.Server // guarded by mu: non-nil once Serve has been called
}

// Request-body bounds: a single report is tiny, a JSON batch is capped
// well above the largest batch the harnesses send. Oversize bodies are
// rejected with 413 and counted in tube_http_rejected_total.
const (
	maxUsageBody = 64 << 10
	maxBatchBody = 16 << 20
)

// latencyBuckets spans 1µs…8s in powers of two — wide enough for an
// in-process handler call and a loaded listener alike.
var latencyBuckets = obs.ExpBuckets(1e-6, 2, 24)

// NewServer builds the HTTP surface for an optimizer.
func NewServer(opt *Optimizer) (*Server, error) {
	if opt == nil {
		return nil, fmt.Errorf("nil optimizer: %w", ErrBadInput)
	}
	s := &Server{
		opt:      opt,
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
		counters: make(map[string]*obs.Counter),
		rejected: make(map[string]*obs.Counter),
	}
	s.handle("GET /price", "price", s.handlePrice)
	s.handle("GET /history", "history", s.handleHistory)
	s.handle("GET /bill", "bill", s.handleBill)
	s.handle("POST /usage", "usage", s.handleUsage)
	s.handle("POST /usage/batch", "usage_batch", s.handleUsageBatch)
	s.handle("GET /stats", "stats", s.handleStats)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	opt.Measurement().Engine().Instrument(s.reg)
	if sp := opt.Stream(); sp != nil {
		sp.Instrument(s.reg)
	}
	s.registerStateGauges()
	return s, nil
}

// registerStateGauges exposes the optimizer's control-loop state as
// scrape-time gauges: the period clock, the published incentive, and
// the billing/profiling engines' progress.
func (s *Server) registerStateGauges() {
	opt := s.opt
	s.reg.GaugeFunc("tube_current_period", "period index in progress", nil,
		func() float64 { return float64(opt.Period()) })
	s.reg.GaugeFunc("tube_current_reward", "published reward for the period in progress ($0.10 units)", nil,
		func() float64 { return opt.CurrentReward() })
	s.reg.GaugeFunc("tube_billing_periods", "periods accrued in the open billing cycle", nil,
		func() float64 { return float64(opt.Billing().Periods()) })
	s.reg.GaugeFunc("tube_billing_users", "users carrying a charge in the open billing cycle", nil,
		func() float64 { return float64(opt.Billing().Users()) })
	s.reg.GaugeFunc("tube_profiler_observations", "days recorded by the profiling engine", nil,
		func() float64 { return float64(opt.Profiler().ObservationCount()) })
}

// handle registers a route wrapped in request counting and latency
// observation. Body-carrying handlers also get a rejection counter for
// oversize payloads.
func (s *Server) handle(pattern, name string, h http.HandlerFunc) {
	lbl := obs.Labels{"handler": name}
	c := s.reg.Counter("tube_http_requests_total", "HTTP requests served, by handler", lbl)
	hist := s.reg.Histogram("tube_http_request_seconds", "HTTP request latency in seconds, by handler", lbl, latencyBuckets)
	s.counters[name] = c
	s.counterNames = append(s.counterNames, name)
	if len(pattern) > 4 && (pattern[:4] == "POST" || pattern[:3] == "PUT") {
		s.rejected[name] = s.reg.Counter("tube_http_rejected_total",
			"requests rejected for oversized bodies, by handler", lbl)
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		c.Inc()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	})
}

// Registry returns the server's metric registry, for embedding tools
// (tubeload, tubesim) that want to dump or extend the server's metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: the profile endpoints expose stacks
// and heap contents, so production deployments opt in explicitly
// (tubesim/tubeload do so behind their -pprof flag).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// RequestCounts returns a snapshot of the per-handler request counters,
// including the "<handler>_rejected" oversize-body rejections.
func (s *Server) RequestCounts() map[string]int64 {
	out := make(map[string]int64, len(s.counters)+len(s.rejected))
	for name, c := range s.counters {
		out[name] = c.Value()
	}
	for name, c := range s.rejected {
		out[name+"_rejected"] = c.Value()
	}
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// Serve accepts connections on ln until Shutdown. It returns nil after
// a graceful Shutdown (unlike http.Server.Serve, which returns
// ErrServerClosed).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{Handler: s}
	}
	srv := s.httpSrv
	s.mu.Unlock()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown gracefully stops a Serve-d server: the listener closes
// immediately, in-flight requests (usage batches mid-ingest included)
// run to completion or until ctx expires, and a clustered node drains
// its acked wire batches into the engine before returning. A server
// never started still drains its cluster plane.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if cerr := s.closeCluster(ctx); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	// A cluster follower serves the leader's replicated schedule: the
	// whole plane publishes one price while only the leader solves.
	if info, replicated, err := s.replicatedPrice(); replicated {
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	info := PriceInfo{
		Period:  s.opt.Period(),
		Reward:  s.opt.CurrentReward(),
		Rewards: s.opt.Schedule(),
	}
	writeJSON(w, http.StatusOK, info)
}

type historyPayload struct {
	Prices []pricePoint `json:"prices"`
	Usage  []pricePoint `json:"usage"`
}

type pricePoint struct {
	Period int64   `json:"period"`
	Value  float64 `json:"value"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	prices, err := s.opt.PriceHistory()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	usage, err := s.opt.UsageHistory()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var payload historyPayload
	for _, p := range prices {
		payload.Prices = append(payload.Prices, pricePoint{Period: p.Time, Value: p.Value})
	}
	for _, p := range usage {
		payload.Usage = append(payload.Usage, pricePoint{Period: p.Time, Value: p.Value})
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	billing := s.opt.Billing()
	if user != "" {
		writeJSON(w, http.StatusOK, Statement{
			User:         user,
			Charge:       billing.Bill(user),
			RewardCredit: billing.RewardCredit(user),
		})
		return
	}
	writeJSON(w, http.StatusOK, billing.Statements())
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	var rep UsageReport
	if err := decodeJSONBody(w, r, maxUsageBody, &rep); err != nil {
		s.httpBodyError(w, err, "usage", "malformed usage report")
		return
	}
	if err := s.opt.Measurement().Record(rep.User, rep.Class, rep.VolumeMB); err != nil {
		s.usageError(w, err, []UsageReport{rep})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUsageBatch(w http.ResponseWriter, r *http.Request) {
	var reps []UsageReport
	if err := decodeJSONBody(w, r, maxBatchBody, &reps); err != nil {
		s.httpBodyError(w, err, "usage_batch", "malformed usage batch")
		return
	}
	if err := s.opt.Measurement().RecordBatch(reps); err != nil {
		// All-or-nothing: on error nothing was accounted, so the client
		// can safely retry the whole batch after fixing it.
		s.usageError(w, err, reps)
		return
	}
	writeJSON(w, http.StatusOK, BatchAck{Accepted: len(reps)})
}

// decodeJSONBody decodes a size-bounded JSON request body.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v)
}

// httpBodyError maps a body-decode failure to 413 (over the byte bound,
// counted per handler) or 400 (malformed).
func (s *Server) httpBodyError(w http.ResponseWriter, err error, handler, malformed string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		if c := s.rejected[handler]; c != nil {
			c.Inc()
		}
		http.Error(w, fmt.Sprintf("request body over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, malformed, http.StatusBadRequest)
}

// usageError writes an ingest failure. A clustered node rejecting a
// misrouted user answers 421 with an X-Tube-Owner redirect hint naming
// the node that does own the user.
func (s *Server) usageError(w http.ResponseWriter, err error, reps []UsageReport) {
	if errors.Is(err, ingest.ErrNotOwned) && s.cl != nil {
		ring := s.cl.ring.Load()
		for i := range reps {
			if reps[i].User != "" && !ring.Owns(s.cl.selfID, reps[i].User) {
				w.Header().Set("X-Tube-Owner", ring.Owner(reps[i].User).Addr)
				break
			}
		}
	}
	http.Error(w, err.Error(), usageStatus(err))
}

func usageStatus(err error) int {
	if errors.Is(err, ingest.ErrNotOwned) {
		// The user hashes to another node's range: misdirected request.
		return http.StatusMisdirectedRequest
	}
	if errors.Is(err, ErrBadInput) || errors.Is(err, ingest.ErrBadReport) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.RequestCounts())
}

// handleMetrics serves the Prometheus exposition: the server's own
// registry (handler counters/latencies, ingest, optimizer-state gauges)
// merged with the process-wide default registry (solver and controller
// metrics).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheusAll(w, s.reg, obs.Default())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-response;
	// the client will see a truncated body and retry next period.
	_ = json.NewEncoder(w).Encode(v)
}
