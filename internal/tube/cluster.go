package tube

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/ingest"
	"tdp/internal/obs"
	"tdp/internal/wire"
)

// ClusterOptions configures a Server as one node of a consistent-hash
// serving plane (DESIGN.md §13).
type ClusterOptions struct {
	// SelfID is this node's member ID; it must appear in Ring.Members.
	SelfID string
	// Ring is the initial ring configuration. Later configs arrive via
	// PUT /cluster/ring and must carry a strictly higher Version.
	Ring cluster.Config
	// QueueDepth bounds the wire-ingest apply queue in batches (default
	// 256). When full, the OLDEST queued batch is shed and counted in
	// cluster_shed_reports_total — overload degrades visibly, never as
	// silent latency collapse.
	QueueDepth int
	// LeaderURL, when non-empty, makes this node a price FOLLOWER: it
	// pulls snapshots from the leader at that base URL and serves
	// GET /price from the replicated schedule. Empty means this node is
	// the leader (it runs the optimizer control loop and cuts snapshots).
	LeaderURL string
	// ReplicateEvery is the follower pull interval (default 1s).
	ReplicateEvery time.Duration
	// ReplicateFanout, when > 0, arranges followers in a fan-out tree of
	// this arity: each follower pulls snapshots from its tree parent
	// (cluster.TreeParent over the current ring) instead of the leader,
	// falling back to the leader when the parent fails. 0 keeps every
	// follower pulling from the leader directly.
	ReplicateFanout int
}

// clusterState is the per-node cluster plane hanging off a Server.
type clusterState struct {
	selfID string
	leader bool

	ring    atomic.Pointer[cluster.Ring]
	tab     *wire.ClassTable
	decPool sync.Pool // *wire.Decoder
	queue   *cluster.ShedQueue
	rep     *cluster.Replicator                  // non-nil on followers
	snap    atomic.Pointer[cluster.PriceSnapshot] // follower's applied snapshot

	wireReports  *obs.Counter
	wireRejected *obs.Counter
	ringSwaps    *obs.Counter
}

// EnableCluster joins this server to a consistent-hash serving plane:
// it mounts POST /usage/wire (binary batch ingest with ownership
// enforcement and load shedding), GET/PUT /cluster/ring, and
// GET /cluster/snapshot, and installs an ownership filter on the ingest
// engine so the JSON paths reject misrouted users with 421. Call before
// Serve — routes cannot be added once the server is handling requests.
func (s *Server) EnableCluster(opts ClusterOptions) error {
	if s.cl != nil {
		return fmt.Errorf("cluster already enabled: %w", ErrBadInput)
	}
	if opts.SelfID == "" {
		return fmt.Errorf("cluster needs a SelfID: %w", ErrBadInput)
	}
	ring, err := cluster.Build(opts.Ring)
	if err != nil {
		return err
	}
	if _, ok := ring.Member(opts.SelfID); !ok {
		return fmt.Errorf("self %q not in ring: %w", opts.SelfID, ErrBadInput)
	}
	eng := s.opt.Measurement().Engine()
	classes := eng.Classes()
	tab, err := wire.NewClassTable(classes)
	if err != nil {
		return err
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 256
	}
	q, err := cluster.NewShedQueue(classes, depth)
	if err != nil {
		return err
	}
	cl := &clusterState{
		selfID: opts.SelfID,
		leader: opts.LeaderURL == "",
		tab:    tab,
		queue:  q,
	}
	cl.decPool.New = func() any { return wire.NewDecoder(tab) }
	cl.ring.Store(ring)
	q.Instrument(s.reg, classes)
	q.Start(func(batch cluster.Batch) {
		// Admission (ownership, validity) happened before the ack; a ring
		// move while the batch sat queued must not un-account it.
		if batch.Reports != nil {
			_ = eng.RecordBatchAdmitted(batch.Reports)
			return
		}
		_ = eng.ApplyWire(batch.Users, batch.Hashes, batch.Recs)
	})
	// The JSON ingest paths enforce ownership per the CURRENT ring view;
	// the closure loads it atomically so ring swaps need no re-install.
	eng.SetFilter(func(user string) bool {
		return cl.ring.Load().Owns(cl.selfID, user)
	})
	if opts.LeaderURL != "" {
		rep, err := cluster.NewReplicator(opts.LeaderURL, opts.ReplicateEvery, func(snap cluster.PriceSnapshot) error {
			cl.snap.Store(&snap)
			return nil
		})
		if err != nil {
			return err
		}
		rep.Instrument(s.reg)
		if opts.ReplicateFanout > 0 {
			fanout := opts.ReplicateFanout
			leaderURL := opts.LeaderURL
			rep.SetSource(func() (string, bool) {
				// Re-derived per pull from the CURRENT ring: membership
				// changes reshape the tree with no coordination.
				ring := cl.ring.Load()
				leaderID := ""
				for _, m := range ring.Members() {
					if m.Addr == leaderURL {
						leaderID = m.ID
						break
					}
				}
				if leaderID == "" {
					return "", false
				}
				parent, ok := cluster.TreeParent(ring, leaderID, cl.selfID, fanout)
				if !ok {
					return "", false
				}
				return parent.Addr, true
			})
		}
		cl.rep = rep
		rep.Start()
	}
	cl.wireReports = s.reg.Counter("cluster_wire_reports_total", "reports admitted over the wire ingest path", nil)
	cl.wireRejected = s.reg.Counter("cluster_wire_rejected_total", "reports rejected as not-owned on the wire ingest path", nil)
	cl.ringSwaps = s.reg.Counter("cluster_ring_swaps_total", "ring configurations applied", nil)
	s.reg.GaugeFunc("cluster_ring_version", "version of the ring configuration in effect", nil,
		func() float64 { return float64(cl.ring.Load().Version()) })
	s.reg.GaugeFunc("cluster_owned_fraction", "fraction of the hash circle this node owns", nil,
		func() float64 { r := cl.ring.Load(); return r.OwnedFraction(cl.selfID) })
	s.cl = cl
	s.handle("POST /usage/wire", "usage_wire", s.handleUsageWire)
	s.handle("GET /cluster/ring", "ring_get", s.handleRingGet)
	s.handle("PUT /cluster/ring", "ring_put", s.handleRingPut)
	s.handle("GET /cluster/snapshot", "cluster_snapshot", s.handleSnapshot)
	return nil
}

// Ring returns the node's current ring view (nil when clustering is
// off).
func (s *Server) Ring() *cluster.Ring {
	if s.cl == nil {
		return nil
	}
	return s.cl.ring.Load()
}

// DrainCluster blocks until every admitted wire batch has been applied
// to the ingest engine (no-op when clustering is off). Harnesses call
// it before comparing engine totals against what they sent.
func (s *Server) DrainCluster(ctx context.Context) error {
	if s.cl == nil {
		return nil
	}
	return s.cl.queue.Drain(ctx)
}

// ShedReports returns how many reports this node's apply queue has shed
// under overload (0 when clustering is off).
func (s *Server) ShedReports() int64 {
	if s.cl == nil {
		return 0
	}
	n, _ := s.cl.queue.ShedTotals()
	return n
}

// closeCluster stops the replication loop and drains the apply queue so
// every acked batch is accounted before shutdown returns.
func (s *Server) closeCluster(ctx context.Context) error {
	cl := s.cl
	if cl == nil {
		return nil
	}
	if cl.rep != nil {
		cl.rep.Stop()
	}
	err := cl.queue.Drain(ctx)
	cl.queue.Close()
	return err
}

// maxWireBody bounds a POST /usage/wire request: two full-size frames.
const maxWireBody = 2 * wire.DefaultMaxFrameBytes

func (s *Server) handleUsageWire(w http.ResponseWriter, r *http.Request) {
	cl := s.cl
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWireBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejected["usage_wire"].Inc()
			http.Error(w, fmt.Sprintf("wire body over %d bytes", maxWireBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	dec := cl.decPool.Get().(*wire.Decoder)
	defer cl.decPool.Put(dec)
	// Zero-copy admission: each frame is walked in its own terms (user
	// table + index records) without materializing []ingest.Report.
	// Ownership is enforced against this node's CURRENT ring view — once
	// per DISTINCT user via the decoder's cached hashes, not once per
	// record — and misrouted reports are rejected by index (spanning all
	// frames in the body), never silently accepted; the ack's RingVersion
	// tells a stale router to refetch.
	ring := cl.ring.Load()
	accepted, shed := 0, 0
	var rejected []int
	base := 0 // report index of the current frame's first record
	for buf := body; len(buf) > 0; {
		users, hashes, recs, n, err := dec.DecodeRecords(buf)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrTooLarge) {
				s.rejected["usage_wire"].Inc()
				status = http.StatusRequestEntityTooLarge
			}
			http.Error(w, err.Error(), status)
			return
		}
		buf = buf[n:]
		ownedUser := make([]bool, len(users))
		allOwned := true
		for u := range users {
			ownedUser[u] = ring.OwnsHash(cl.selfID, hashes[u])
			allOwned = allOwned && ownedUser[u]
		}
		// The queue keeps the batch alive past this request (and past the
		// decoder's next frame), so the scratch slices are copied here —
		// the user strings themselves stay interned, only headers copy.
		var owned []ingest.WireRecord
		if allOwned {
			owned = append(owned, recs...)
		} else {
			for i := range recs {
				if ownedUser[recs[i].User] {
					owned = append(owned, recs[i])
				} else {
					rejected = append(rejected, base+i)
				}
			}
		}
		if len(owned) > 0 {
			shed += cl.queue.PushWire(
				append([]string(nil), users...),
				append([]uint32(nil), hashes...),
				owned)
			accepted += len(owned)
		}
		base += len(recs)
	}
	cl.wireReports.Add(int64(accepted))
	cl.wireRejected.Add(int64(len(rejected)))
	writeJSON(w, http.StatusOK, cluster.WireAck{
		Accepted:    accepted,
		Rejected:    rejected,
		RingVersion: ring.Version(),
		Queued:      true,
		Shed:        shed,
	})
}

func (s *Server) handleRingGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cl.ring.Load().Config())
}

// ringAck is the PUT /cluster/ring response: whether the config was
// applied and the version now in effect.
type ringAck struct {
	Applied bool   `json:"applied"`
	Version uint64 `json:"version"`
}

func (s *Server) handleRingPut(w http.ResponseWriter, r *http.Request) {
	var cfg cluster.Config
	if err := decodeJSONBody(w, r, maxBatchBody, &cfg); err != nil {
		s.httpBodyError(w, err, "ring_put", "malformed ring config")
		return
	}
	next, err := cluster.Build(cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cl := s.cl
	// Versions are monotonic: an equal-or-older config is acknowledged
	// but not applied, so replayed or reordered pushes cannot roll the
	// ring back.
	for {
		cur := cl.ring.Load()
		if next.Version() <= cur.Version() {
			writeJSON(w, http.StatusOK, ringAck{Applied: false, Version: cur.Version()})
			return
		}
		if cl.ring.CompareAndSwap(cur, next) {
			cl.ringSwaps.Inc()
			writeJSON(w, http.StatusOK, ringAck{Applied: true, Version: next.Version()})
			return
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	cl := s.cl
	if cl.leader {
		snap := cluster.NewPriceSnapshot(s.opt.Period(), s.opt.Schedule(), cl.ring.Load().Version())
		writeJSON(w, http.StatusOK, snap)
		return
	}
	// Followers re-serve their applied copy, so pulls can fan out in a
	// tree instead of thundering the leader.
	if snap := cl.snap.Load(); snap != nil {
		writeJSON(w, http.StatusOK, *snap)
		return
	}
	http.Error(w, "no snapshot replicated yet", http.StatusServiceUnavailable)
}

// replicatedPrice returns the follower's price view, or false when this
// node serves prices from its own optimizer (leader or non-clustered).
func (s *Server) replicatedPrice() (PriceInfo, bool, error) {
	cl := s.cl
	if cl == nil || cl.leader {
		return PriceInfo{}, false, nil
	}
	snap := cl.snap.Load()
	if snap == nil {
		return PriceInfo{}, true, fmt.Errorf("price replica not yet synchronized: %w", ErrNotReady)
	}
	return PriceInfo{
		Period:  snap.Period,
		Reward:  snap.Rewards[snap.Period%len(snap.Rewards)],
		Rewards: snap.Rewards,
	}, true, nil
}

// ClusterHealth is the cluster section of the /healthz payload.
type ClusterHealth struct {
	Self          string          `json:"self"`
	Leader        bool            `json:"leader"`
	RingVersion   uint64          `json:"ringVersion"`
	Members       int             `json:"members"`
	OwnedFraction float64         `json:"ownedFraction"`
	OwnedRanges   []cluster.Range `json:"ownedRanges"`
	// ReplicationStalenessSeconds is the age of the applied price
	// snapshot (-1 before the first); absent on the leader.
	ReplicationStalenessSeconds *float64 `json:"replicationStalenessSeconds,omitempty"`
	QueuedBatches               int      `json:"queuedBatches"`
	ShedReports                 int64    `json:"shedReports"`
}

// Health is the GET /healthz payload.
type Health struct {
	Status  string         `json:"status"` // "ok", "starting", or "degraded"
	Period  int            `json:"period"`
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// replicaStalenessLimit is how stale a follower's price snapshot may be
// before /healthz degrades the node.
const replicaStalenessLimit = 15 * time.Second

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Period: s.opt.Period()}
	if cl := s.cl; cl != nil {
		ring := cl.ring.Load()
		shed, _ := cl.queue.ShedTotals()
		ch := &ClusterHealth{
			Self:          cl.selfID,
			Leader:        cl.leader,
			RingVersion:   ring.Version(),
			Members:       len(ring.Members()),
			OwnedFraction: ring.OwnedFraction(cl.selfID),
			OwnedRanges:   ring.OwnedRanges(cl.selfID),
			QueuedBatches: cl.queue.Depth(),
			ShedReports:   shed,
		}
		if cl.rep != nil {
			stale := cl.rep.StalenessSeconds()
			ch.ReplicationStalenessSeconds = &stale
			if stale < 0 {
				h.Status = "starting"
			} else if stale > replicaStalenessLimit.Seconds() {
				h.Status = "degraded"
			}
		}
		h.Cluster = ch
	}
	status := http.StatusOK
	if h.Status != "ok" {
		// Load balancers treat non-200 as not-ready; "starting" and
		// "degraded" both mean "don't route new traffic here yet".
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
