package tube

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint drives the server through every handler and then
// checks that GET /metrics serves a Prometheus exposition covering the
// server, ingest, and optimizer-state metric families — the acceptance
// surface of the obs subsystem.
func TestMetricsEndpoint(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		var r *httptest.ResponseRecorder = httptest.NewRecorder()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		srv.ServeHTTP(r, req)
		return r
	}
	if w := do("GET", "/price", ""); w.Code != 200 {
		t.Fatalf("GET /price = %d", w.Code)
	}
	if w := do("POST", "/usage", `{"user":"u1","class":"web","volumeMB":5}`); w.Code != 204 {
		t.Fatalf("POST /usage = %d: %s", w.Code, w.Body)
	}
	if w := do("POST", "/usage/batch", `[{"user":"u2","class":"ftp","volumeMB":3},{"user":"u1","class":"web","volumeMB":1}]`); w.Code != 200 {
		t.Fatalf("POST /usage/batch = %d: %s", w.Code, w.Body)
	}
	if w := do("POST", "/usage", `{"user":"u1","class":"nope","volumeMB":5}`); w.Code != 400 {
		t.Fatalf("bad class = %d, want 400", w.Code)
	}

	w := do("GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		"# TYPE tube_http_requests_total counter\n",
		`tube_http_requests_total{handler="price"} 1` + "\n",
		`tube_http_requests_total{handler="usage"} 2` + "\n",
		"# TYPE tube_http_request_seconds histogram\n",
		`tube_http_request_seconds_bucket{handler="price",le="+Inf"} 1` + "\n",
		"ingest_reports_total 3\n",
		"ingest_batches_total 1\n",
		"ingest_reports_rejected_total 1\n",
		"# TYPE ingest_shard_users gauge\n",
		"tube_current_period 0\n",
		"tube_billing_periods 0\n",
		"tube_profiler_observations 0\n",
		// Solver metrics from the default registry: NewOptimizer's
		// initial offline solve has already recorded at least one solve.
		"# TYPE optimize_solves_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// /stats must stay backward-compatible with the obs-backed counters.
	if w := do("GET", "/stats", ""); w.Code != 200 || !strings.Contains(w.Body.String(), `"price":1`) {
		t.Errorf("GET /stats = %d body %s", w.Code, w.Body)
	}
	counts := srv.RequestCounts()
	if counts["usage"] != 2 || counts["metrics"] != 1 {
		t.Errorf("RequestCounts = %v", counts)
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	opt, err := NewOptimizer(OptimizerConfig{Scenario: testScenario(), Classes: testClasses()})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != 404 {
		t.Fatalf("pprof without EnablePprof = %d, want 404", w.Code)
	}
	srv.EnablePprof()
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("pprof after EnablePprof = %d, want 200", w.Code)
	}
}

// TestRunDayTrace checks the span tree one RunDay produces: a
// controller.run_day root with the loop stages as children, all ended.
func TestRunDayTrace(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	model := truthModel(t)
	var reports []*DayReport
	for day := 0; day < 2; day++ {
		rep, err := c.RunDayCtx(context.Background(), model)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		reports = append(reports, rep)
	}

	for i, rep := range reports {
		if rep.Trace == nil {
			t.Fatalf("day %d: nil trace", i+1)
		}
		if rep.Trace.Name() != "controller.run_day" {
			t.Fatalf("day %d root = %q", i+1, rep.Trace.Name())
		}
		var names []string
		for _, ch := range rep.Trace.Children() {
			names = append(names, ch.Name())
			if !ch.Ended() {
				t.Errorf("day %d: span %q not ended", i+1, ch.Name())
			}
		}
		want := []string{"optimize.plan", "usage.react", "profile.observe"}
		if i == 1 {
			// Day 2 reaches MinObservations and re-estimates.
			want = append(want, "profile.estimate")
		}
		if len(names) != len(want) {
			t.Fatalf("day %d spans = %v, want %v", i+1, names, want)
		}
		for j := range want {
			if names[j] != want[j] {
				t.Fatalf("day %d spans = %v, want %v", i+1, names, want)
			}
		}
		if !strings.Contains(rep.Trace.Render(), "optimize.plan") {
			t.Errorf("render missing plan span:\n%s", rep.Trace.Render())
		}
	}
	if !reports[1].Reestimated {
		t.Fatal("day 2 did not re-estimate (MinObservations default changed?)")
	}
}
