package tube

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tdp/internal/cluster"
	"tdp/internal/rrd"
	"tdp/internal/wire"
)

// GUI is the user-side TUBE client: it pulls the price exactly once per
// period (the paper's §VI-B scalability rule), keeps a local RRD history
// of offered prices, and exposes the current reward to the user's
// applications (or to an Autopilot).
type GUI struct {
	base    string
	client  *http.Client
	history *rrd.DB
	pulls   int
	last    PriceInfo
	havePri bool
	enc     *wire.Encoder // non-nil once EnableWire has run
}

// NewGUI builds a client for the optimizer at baseURL (no trailing slash).
func NewGUI(baseURL string) (*GUI, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("empty base URL: %w", ErrBadInput)
	}
	hist, err := rrd.New(1, rrd.ArchiveSpec{Func: rrd.Last, Steps: 1, Rows: 1024})
	if err != nil {
		return nil, err
	}
	return &GUI{
		base:    baseURL,
		client:  &http.Client{Timeout: 10 * time.Second},
		history: hist,
		last:    PriceInfo{Period: -1},
	}, nil
}

// PullPrice fetches the current price from the optimizer. TUBE GUIs call
// this once at each period boundary.
func (g *GUI) PullPrice(ctx context.Context) (PriceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.base+"/price", nil)
	if err != nil {
		return PriceInfo{}, fmt.Errorf("build request: %w", err)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return PriceInfo{}, fmt.Errorf("pull price: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PriceInfo{}, fmt.Errorf("%w: pull price: status %d", ErrRemote, resp.StatusCode)
	}
	var info PriceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return PriceInfo{}, fmt.Errorf("decode price: %w", err)
	}
	g.pulls++
	// Record one history point per period; the server may be asked twice
	// for the same period (e.g. on reconnect) — keep the latest only.
	if !g.havePri || info.Period > g.last.Period {
		if err := g.history.Update(int64(info.Period+1), info.Reward); err == nil {
			g.havePri = true
		}
	}
	g.last = info
	return info, nil
}

// ReportUsage posts a usage record to the optimizer's measurement engine
// (the testbed's stand-in for in-network accounting).
func (g *GUI) ReportUsage(ctx context.Context, rep UsageReport) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("encode usage: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+"/usage",
		bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return fmt.Errorf("report usage: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("%w: report usage: status %d", ErrRemote, resp.StatusCode)
	}
	return nil
}

// ReportUsageBatch posts a whole batch of usage records in one request
// (the high-throughput path: the server accounts the batch with one
// lock acquisition per shard). The batch is all-or-nothing server-side.
func (g *GUI) ReportUsageBatch(ctx context.Context, reps []UsageReport) error {
	body, err := json.Marshal(reps)
	if err != nil {
		return fmt.Errorf("encode usage batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+"/usage/batch",
		bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return fmt.Errorf("report usage batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: report usage batch: status %d", ErrRemote, resp.StatusCode)
	}
	var ack BatchAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("decode batch ack: %w", err)
	}
	if ack.Accepted != len(reps) {
		return fmt.Errorf("%w: batch ack %d != %d sent", ErrRemote, ack.Accepted, len(reps))
	}
	return nil
}

// EnableWire switches this client to the binary batch format for
// ReportUsageWire. The class list must match the server's ingest
// configuration exactly — the wire frames carry a hash of it and the
// server rejects frames built against a different table.
func (g *GUI) EnableWire(classes []string) error {
	tab, err := wire.NewClassTable(classes)
	if err != nil {
		return err
	}
	g.enc = wire.NewEncoder(tab)
	return nil
}

// ReportUsageWire posts a batch in the binary wire format (EnableWire
// first). Roughly the JSON batch path with the encode/decode cost
// replaced by the wire codec; the server may queue the batch behind its
// load-shedding apply queue.
func (g *GUI) ReportUsageWire(ctx context.Context, reps []UsageReport) error {
	if g.enc == nil {
		return fmt.Errorf("wire format not enabled: %w", ErrBadInput)
	}
	frame, err := g.enc.Encode(reps)
	if err != nil {
		return fmt.Errorf("encode wire batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+"/usage/wire",
		bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("Content-Type", cluster.WireContentType)
	resp, err := g.client.Do(req)
	if err != nil {
		return fmt.Errorf("report usage wire: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: report usage wire: status %d", ErrRemote, resp.StatusCode)
	}
	var ack cluster.WireAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("decode wire ack: %w", err)
	}
	if len(ack.Rejected) > 0 || ack.Accepted != len(reps) {
		return fmt.Errorf("%w: wire ack accepted %d of %d (%d rejected as not owned)",
			ErrRemote, ack.Accepted, len(reps), len(ack.Rejected))
	}
	return nil
}

// FetchBill retrieves the user's accrued charge and reward credit for the
// current billing cycle.
func (g *GUI) FetchBill(ctx context.Context, user string) (Statement, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		g.base+"/bill?user="+user, nil)
	if err != nil {
		return Statement{}, fmt.Errorf("build request: %w", err)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return Statement{}, fmt.Errorf("fetch bill: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Statement{}, fmt.Errorf("%w: fetch bill: status %d", ErrRemote, resp.StatusCode)
	}
	var st Statement
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Statement{}, fmt.Errorf("decode bill: %w", err)
	}
	return st, nil
}

// CurrentReward returns the most recently pulled reward (0 before the
// first successful pull).
func (g *GUI) CurrentReward() float64 {
	if !g.havePri {
		return 0
	}
	return g.last.Reward
}

// Pulls returns how many price pulls this GUI has made (tests assert the
// once-per-period discipline).
func (g *GUI) Pulls() int { return g.pulls }

// PriceHistory returns the locally archived price points.
func (g *GUI) PriceHistory() ([]rrd.Point, error) {
	return g.history.Fetch(0)
}

// SaveHistory snapshots the local price history (the RRDtool file the
// paper's GUI keeps) so it survives restarts.
func (g *GUI) SaveHistory(w io.Writer) error {
	return g.history.Save(w)
}

// LoadHistory restores a history snapshot written by SaveHistory.
func (g *GUI) LoadHistory(r io.Reader) error {
	db, err := rrd.Load(r)
	if err != nil {
		return err
	}
	g.history = db
	return nil
}

// SaveHistoryFile persists the price history to path via the RRD
// package's crash-safe write-temp + fsync + rename path, so a crash
// mid-save cannot truncate the archive.
func (g *GUI) SaveHistoryFile(path string) error {
	return g.history.SaveFile(path)
}

// LoadHistoryFile restores a history snapshot written by
// SaveHistoryFile; partial or corrupt files are rejected.
func (g *GUI) LoadHistoryFile(path string) error {
	db, err := rrd.LoadFile(path)
	if err != nil {
		return err
	}
	g.history = db
	return nil
}
