package tube

import (
	"errors"
	"fmt"
	"testing"

	"tdp/internal/core"
	"tdp/internal/mechanism"
)

// mustPricer builds a zoo mechanism for tests.
func mustPricer(t *testing.T, name string, p mechanism.Params) mechanism.Pricer {
	t.Helper()
	pr, err := mechanism.New(name, p)
	if err != nil {
		t.Fatalf("mechanism.New(%q): %v", name, err)
	}
	return pr
}

func TestOptimizerWithMechanism(t *testing.T) {
	scn := testScenario()
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: scn,
		Classes:  testClasses(),
		Pricer: mustPricer(t, "static-tod", mechanism.Params{
			Windows: mechanism.SlackWindows(scn, 0.8),
		}),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}

	// The initial schedule is the mechanism's plan: day-shaped, with at
	// least one rewarded period (the test scenario has slack).
	sched := opt.Schedule()
	if len(sched) != scn.Periods {
		t.Fatalf("schedule has %d periods, want %d", len(sched), scn.Periods)
	}
	var rewarded bool
	for _, p := range sched {
		if p > 0 {
			rewarded = true
		}
	}
	if !rewarded {
		t.Fatalf("mechanism schedule all-zero: %v", sched)
	}

	// Run two full days of period closes; the schedule must survive the
	// day boundary (re-planned by the mechanism, not the online engine).
	for day := 0; day < 2; day++ {
		for p := 0; p < scn.Periods; p++ {
			if err := opt.Measurement().Record(fmt.Sprintf("u%d", p%3), "web", 5); err != nil {
				t.Fatalf("Record: %v", err)
			}
			if _, err := opt.ClosePeriod(); err != nil {
				t.Fatalf("ClosePeriod day %d period %d: %v", day, p, err)
			}
		}
	}
	if got := opt.Period(); got != 2*scn.Periods {
		t.Fatalf("period = %d, want %d", got, 2*scn.Periods)
	}
	sched2 := opt.Schedule()
	if len(sched2) != scn.Periods {
		t.Fatalf("post-replan schedule has %d periods", len(sched2))
	}
	// Static time-of-day pricing ignores observations, so the replanned
	// schedule is the same surface.
	for i := range sched {
		if sched[i] != sched2[i] {
			t.Fatalf("static-tod schedule drifted at %d: %v → %v", i, sched[i], sched2[i])
		}
	}

	// No online engine in mechanism mode: the demand estimate is the
	// declared scenario, not an EMA.
	est := opt.DemandEstimate()
	for i, row := range est {
		for j, v := range row {
			if v != scn.Demand[i][j] {
				t.Fatalf("demand estimate drifted at [%d][%d]: %v != %v", i, j, v, scn.Demand[i][j])
			}
		}
	}
}

func TestOptimizerMechanismObservationShiftsPlan(t *testing.T) {
	scn := testScenario()
	opt, err := NewOptimizer(OptimizerConfig{
		Scenario: scn,
		Classes:  testClasses(),
		Pricer:   mustPricer(t, "rebate", mechanism.Params{Budget: 6}),
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	initial := opt.Schedule()

	// A day of heavy traffic concentrated in the first half of the day:
	// the rebate's slack shape must move relative to the declared-demand
	// plan once the observation lands.
	for p := 0; p < scn.Periods; p++ {
		vol := 1.0
		if p < scn.Periods/2 {
			vol = 30
		}
		if err := opt.Measurement().Record("u1", "video", vol); err != nil {
			t.Fatalf("Record: %v", err)
		}
		if _, err := opt.ClosePeriod(); err != nil {
			t.Fatalf("ClosePeriod: %v", err)
		}
	}
	replanned := opt.Schedule()
	var moved bool
	for i := range initial {
		if initial[i] != replanned[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("rebate plan ignored the observed day: %v", replanned)
	}
}

func TestControllerWithMechanism(t *testing.T) {
	scn := testScenario()
	for _, name := range []string{"static-tod", "rebate", "reverse", "tdp"} {
		t.Run(name, func(t *testing.T) {
			params := mechanism.Params{}
			if name == "static-tod" {
				params.Windows = mechanism.SlackWindows(scn, 0.7)
			}
			ctrl, err := NewController(ControllerConfig{
				Demand:       scn.Demand,
				Classes:      testClasses(),
				InitialBetas: []float64{2, 2, 2},
				Capacity:     scn.Capacity,
				Cost:         scn.Cost,
				Pricer:       mustPricer(t, name, params),
			})
			if err != nil {
				t.Fatalf("NewController: %v", err)
			}
			react := truthModel(t)
			for day := 1; day <= 3; day++ {
				rep, err := ctrl.RunDay(react)
				if err != nil {
					t.Fatalf("RunDay %d: %v", day, err)
				}
				if len(rep.Rewards) != scn.Periods {
					t.Fatalf("day %d: %d rewards", day, len(rep.Rewards))
				}
			}
			// Profiling still runs under every mechanism: after 3 days the
			// belief has been re-estimated away from the flat prior.
			if ctrl.Days() != 3 {
				t.Fatalf("days = %d", ctrl.Days())
			}
			betas := ctrl.Betas()
			flat := true
			for _, b := range betas {
				if b != 2 {
					flat = false
				}
			}
			if flat {
				t.Fatalf("betas never re-estimated under %s: %v", name, betas)
			}
		})
	}
}

func TestControllerMechanismPlanError(t *testing.T) {
	scn := testScenario()
	ctrl, err := NewController(ControllerConfig{
		Demand:       scn.Demand,
		Classes:      testClasses(),
		InitialBetas: []float64{2, 2, 2},
		Capacity:     scn.Capacity,
		Cost:         scn.Cost,
		Pricer:       badPricer{},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if _, err := ctrl.PlanDay(); !errors.Is(err, errBadPlan) {
		t.Fatalf("PlanDay error = %v, want errBadPlan wrap", err)
	}
}

var errBadPlan = errors.New("deliberately failing pricer")

type badPricer struct{}

func (badPricer) Name() string { return "bad" }
func (badPricer) PlanDay(*core.Scenario, *mechanism.Observation) ([]float64, error) {
	return nil, errBadPlan
}
