package tube

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestGUIRemoteErrorsWrapSentinel pins the client half of the error
// contract: every GUI entry point that fails on a server status or a
// contradictory ack classifies the failure under tube.ErrRemote, so
// callers separate protocol failures from transport errors with
// errors.Is instead of string matching.
func TestGUIRemoteErrorsWrapSentinel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	g, err := NewGUI(srv.URL)
	if err != nil {
		t.Fatalf("NewGUI: %v", err)
	}
	if err := g.EnableWire(testClasses()); err != nil {
		t.Fatalf("EnableWire: %v", err)
	}
	ctx := context.Background()
	rep := UsageReport{User: "u", Class: "web", VolumeMB: 1}

	if _, err := g.PullPrice(ctx); !errors.Is(err, ErrRemote) {
		t.Errorf("PullPrice on 500: %v, want tube.ErrRemote", err)
	}
	if err := g.ReportUsage(ctx, rep); !errors.Is(err, ErrRemote) {
		t.Errorf("ReportUsage on 500: %v, want tube.ErrRemote", err)
	}
	if err := g.ReportUsageBatch(ctx, []UsageReport{rep}); !errors.Is(err, ErrRemote) {
		t.Errorf("ReportUsageBatch on 500: %v, want tube.ErrRemote", err)
	}
	if err := g.ReportUsageWire(ctx, []UsageReport{rep}); !errors.Is(err, ErrRemote) {
		t.Errorf("ReportUsageWire on 500: %v, want tube.ErrRemote", err)
	}
	if _, err := g.FetchBill(ctx, "u"); !errors.Is(err, ErrRemote) {
		t.Errorf("FetchBill on 500: %v, want tube.ErrRemote", err)
	}

	// A 2xx whose ack contradicts the request is the same class of
	// failure: the remote side did not do what was asked.
	ackSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"accepted":0}`))
	}))
	defer ackSrv.Close()
	g2, err := NewGUI(ackSrv.URL)
	if err != nil {
		t.Fatalf("NewGUI: %v", err)
	}
	if err := g2.ReportUsageBatch(ctx, []UsageReport{rep}); !errors.Is(err, ErrRemote) {
		t.Errorf("ReportUsageBatch short ack: %v, want tube.ErrRemote", err)
	}
}
