package tube

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"tdp/internal/core"
	"tdp/internal/ingest"
	"tdp/internal/obs"
)

// streamDayRewards returns a deterministic reward schedule for day d,
// varied enough across days to identify every period's β.
func streamDayRewards(n, d int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.1 + 0.8*float64((i*3+d)%7)/7
	}
	return p
}

// TestStreamProfilerMatchesBatch replays noiseless truth-model days
// period by period through the streaming profiler and requires (a) the
// streaming fit to match a cold batch fit over the same window to the
// 1e-6 contract, and (b) the reduced per-class betas to recover the
// true patience ordering.
func TestStreamProfilerMatchesBatch(t *testing.T) {
	scn := testScenario()
	truth, err := NewClassProfilerTruth(t)
	if err != nil {
		t.Fatalf("truth: %v", err)
	}
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{Window: 3})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	var est *StreamEstimate
	for d := 0; d < 5; d++ {
		rewards := streamDayRewards(scn.Periods, d)
		usage := truth(rewards)
		for i := 0; i < scn.Periods; i++ {
			closed, err := sp.FoldPeriod(i, rewards[i], usage[i])
			if err != nil {
				t.Fatalf("day %d period %d: %v", d, i, err)
			}
			if closed != (i == scn.Periods-1) {
				t.Fatalf("day %d closed at period %d", d, i)
			}
		}
		if est, err = sp.Refine(); err != nil {
			t.Fatalf("day %d: Refine: %v", d, err)
		}
	}
	if !sp.WindowFull() || sp.Days() != 5 {
		t.Fatalf("window full=%v days=%d, want full after 5", sp.WindowFull(), sp.Days())
	}
	div, err := sp.Divergence()
	if err != nil {
		t.Fatalf("Divergence: %v", err)
	}
	if div > 1e-6 {
		t.Errorf("streaming vs batch divergence %.3g, want ≤ 1e-6", div)
	}
	// True ordering: web (4) > ftp (1.5) > video (0.5).
	if !(est.Betas[0] > est.Betas[1] && est.Betas[1] > est.Betas[2]) {
		t.Errorf("patience ordering not recovered: %v", est.Betas)
	}
	betas, ok := sp.Betas()
	if !ok {
		t.Fatal("Betas not available after refinement")
	}
	for j := range betas {
		if betas[j] != est.Betas[j] {
			t.Errorf("Betas()[%d] = %v, estimate %v", j, betas[j], est.Betas[j])
		}
	}
}

// TestStreamProfilerQuiescedReuse: refining twice with no new data
// returns the cached fit.
func TestStreamProfilerQuiescedReuse(t *testing.T) {
	scn := testScenario()
	truth, err := NewClassProfilerTruth(t)
	if err != nil {
		t.Fatalf("truth: %v", err)
	}
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{Window: 2})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	rewards := streamDayRewards(scn.Periods, 0)
	usage := truth(rewards)
	for i := 0; i < scn.Periods; i++ {
		if _, err := sp.FoldPeriod(i, rewards[i], usage[i]); err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
	}
	if sp.StalePeriods() != scn.Periods {
		t.Errorf("stale periods %d, want %d", sp.StalePeriods(), scn.Periods)
	}
	first, err := sp.Refine()
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if first.Reused {
		t.Error("first refinement claims reuse")
	}
	if sp.StalePeriods() != 0 {
		t.Errorf("stale periods %d after refine, want 0", sp.StalePeriods())
	}
	second, err := sp.Refine()
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !second.Reused {
		t.Error("quiesced refinement not reused")
	}
	for j := range first.Betas {
		if first.Betas[j] != second.Betas[j] {
			t.Errorf("reused betas drifted: %v vs %v", first.Betas, second.Betas)
		}
	}
}

// TestStreamProfilerValidation covers the lockstep-preserving error
// paths and the empty-window refine.
func TestStreamProfilerValidation(t *testing.T) {
	scn := testScenario()
	if _, err := NewStreamProfiler(nil, 1, StreamConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil baseline: err = %v, want ErrBadInput", err)
	}
	if _, err := NewStreamProfiler(scn.Demand, 0, StreamConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero max reward: err = %v, want ErrBadInput", err)
	}
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	if _, err := sp.Refine(); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty refine: err = %v, want ErrBadInput", err)
	}
	if _, err := sp.FoldPeriod(0, 0.5, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("class count: err = %v, want ErrBadInput", err)
	}
	bad := []float64{1, math.NaN(), 3}
	if _, err := sp.FoldPeriod(0, 0.5, bad); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN usage: err = %v, want ErrBadInput", err)
	}
	// After a rejected fold, a clean day still runs in lockstep.
	for i := 0; i < scn.Periods; i++ {
		if _, err := sp.FoldPeriod(i, 0.5, []float64{1, 2, 3}); err != nil {
			t.Fatalf("period %d after rejected fold: %v", i, err)
		}
	}
	if sp.Days() != 1 {
		t.Errorf("days = %d, want 1", sp.Days())
	}
	// At a day boundary, a non-zero period is a mid-day (re)attach: the
	// fold is skipped without error until the next day starts.
	if closed, err := sp.FoldPeriod(5, 0.5, []float64{1, 2, 3}); err != nil || closed {
		t.Errorf("boundary reattach: closed=%v err=%v, want silent skip", closed, err)
	}
	// Mid-day, skipping ahead IS an ordering violation.
	if _, err := sp.FoldPeriod(0, 0.5, []float64{1, 2, 3}); err != nil {
		t.Fatalf("day restart: %v", err)
	}
	if _, err := sp.FoldPeriod(2, 0.5, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Errorf("out-of-order fold: err = %v, want ErrBadInput", err)
	}
	if err := sp.Attach(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil engine: err = %v, want ErrBadInput", err)
	}
	eng, err := ingest.NewEngine([]string{"one"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Attach(eng); !errors.Is(err, ErrBadInput) {
		t.Errorf("class mismatch: err = %v, want ErrBadInput", err)
	}
}

// TestStreamProfilerSketchSkew: with the sketch attached to the same
// engine whose rollover totals are folded, serial traffic yields zero
// skew, and traffic the rollover never saw shows up as skew.
func TestStreamProfilerSketchSkew(t *testing.T) {
	scn := testScenario()
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{Window: 2})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	reg := obs.NewRegistry()
	sp.Instrument(reg)
	eng, err := ingest.NewEngine(testClasses(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Attach(eng); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer sp.Detach()
	skew := reg.Gauge("stream_sketch_skew_mb", "", nil)
	// Period 0: every accounted MB reaches the sketch before the fold.
	if err := eng.Record("alice", "web", 7); err != nil {
		t.Fatal(err)
	}
	if err := eng.Record("bob", "video", 3); err != nil {
		t.Fatal(err)
	}
	totals, _ := eng.Rollover()
	if _, err := sp.FoldPeriod(0, 0.5, totals); err != nil {
		t.Fatalf("FoldPeriod: %v", err)
	}
	if got := skew.Value(); got != 0 {
		t.Errorf("serial fold skew = %v, want 0", got)
	}
	// Period 1: 5 MB recorded after the rollover lands in the next
	// period's sketch but not in these totals → skew 5.
	totals, _ = eng.Rollover()
	if err := eng.Record("carol", "ftp", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.FoldPeriod(1, 0.5, totals); err != nil {
		t.Fatalf("FoldPeriod: %v", err)
	}
	if got := skew.Value(); got != 5 {
		t.Errorf("post-rollover traffic skew = %v, want 5", got)
	}
}

// TestOptimizerStreaming drives a streaming optimizer through two full
// days of period closes and checks the streaming estimate goes live
// inside the ClosePeriod critical section.
func TestOptimizerStreaming(t *testing.T) {
	scn := testScenario()
	o, err := NewOptimizer(OptimizerConfig{
		Scenario:  scn,
		Classes:   testClasses(),
		Streaming: true,
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	sp := o.Stream()
	if sp == nil {
		t.Fatal("Stream() nil with Streaming enabled")
	}
	truth, err := NewClassProfilerTruth(t)
	if err != nil {
		t.Fatalf("truth: %v", err)
	}
	for day := 0; day < 2; day++ {
		sched := o.Schedule()
		usage := truth(sched)
		for i := 0; i < scn.Periods; i++ {
			for j, class := range testClasses() {
				if err := o.Measurement().Record(fmt.Sprintf("u%d", j), class, usage[i][j]); err != nil {
					t.Fatalf("Record: %v", err)
				}
			}
			if _, err := o.ClosePeriod(); err != nil {
				t.Fatalf("day %d period %d: ClosePeriod: %v", day, i, err)
			}
		}
	}
	if sp.Days() != 2 {
		t.Fatalf("stream days = %d, want 2", sp.Days())
	}
	betas, ok := sp.Betas()
	if !ok {
		t.Fatal("no streaming estimate after two days of period closes")
	}
	if len(betas) != 3 {
		t.Fatalf("betas len %d", len(betas))
	}
	// Refinement ran this period, so staleness is zero right after close.
	if sp.StalePeriods() != 0 {
		t.Errorf("stale periods %d right after ClosePeriod, want 0", sp.StalePeriods())
	}
}

// TestOptimizerConcurrentCut is the satellite race regression: traffic
// recording, period closes and belief/schedule readers run concurrently
// (under -race in CI) and every period close must remain one atomic cut —
// the streaming fold consumes exactly the rollover totals of its own
// critical section, never a torn mix.
func TestOptimizerConcurrentCut(t *testing.T) {
	scn := testScenario()
	o, err := NewOptimizer(OptimizerConfig{
		Scenario:  scn,
		Classes:   testClasses(),
		Streaming: true,
		Shards:    8,
	})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			classes := testClasses()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := fmt.Sprintf("u%d-%d", g, i%13)
				if err := o.Measurement().Record(u, classes[i%3], 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = o.Schedule()
			_ = o.CurrentReward()
			if betas, ok := o.Stream().Betas(); ok && len(betas) != 3 {
				t.Error("torn betas read")
				return
			}
			_ = o.Stream().StalePeriods()
		}
	}()
	for p := 0; p < 2*scn.Periods; p++ {
		if _, err := o.ClosePeriod(); err != nil {
			t.Fatalf("ClosePeriod %d: %v", p, err)
		}
	}
	close(stop)
	wg.Wait()
	if o.Stream().Days() != 2 {
		t.Errorf("stream days = %d, want 2", o.Stream().Days())
	}
}

// TestControllerStreamLoop drives the per-period streaming control loop
// against the truth model: the belief must leave the flat prior, recover
// the class ordering, and the reports must show per-period replanning.
func TestControllerStreamLoop(t *testing.T) {
	cfg := controllerConfig()
	cfg.Streaming = true
	cfg.StreamWindow = 3
	cfg.MinObservations = 2
	c, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if c.Stream() == nil {
		t.Fatal("Stream() nil with Streaming enabled")
	}
	m, err := core.NewStaticModel(testScenario())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	var replans int
	var last *PeriodReport
	for day := 0; day < 4; day++ {
		sched, err := c.PlanDay()
		if err != nil {
			t.Fatalf("PlanDay: %v", err)
		}
		cur := append([]float64(nil), sched...)
		for i := range cur {
			usage := m.UsageByType(cur)
			last, err = c.ObservePeriod(i, cur[i], usage[i])
			if err != nil {
				t.Fatalf("day %d period %d: %v", day, i, err)
			}
			if last.Period != i {
				t.Fatalf("report period %d, want %d", last.Period, i)
			}
			if last.DayClosed != (i == len(cur)-1) {
				t.Fatalf("day closed at period %d", i)
			}
			if last.Replanned {
				replans++
				copy(cur[i+1:], last.Rewards[i+1:])
			}
		}
	}
	if c.Days() != 4 {
		t.Errorf("days = %d, want 4", c.Days())
	}
	if replans == 0 {
		t.Error("streaming loop never replanned")
	}
	if last.Trace == nil {
		t.Error("period report missing trace")
	}
	betas := c.Betas()
	if !(betas[0] > betas[1] && betas[1] > betas[2]) {
		t.Errorf("patience ordering not recovered: %v", betas)
	}
	// Streaming updated the belief away from the flat 2.5 prior.
	moved := false
	for _, b := range betas {
		if b != 2.5 {
			moved = true
		}
	}
	if !moved {
		t.Error("belief never left the prior")
	}
}

// TestControllerStreamRequiresConfig: period observation without
// Streaming is rejected.
func TestControllerStreamRequiresConfig(t *testing.T) {
	c, err := NewController(controllerConfig())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if _, err := c.ObservePeriod(0, 0.5, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
	if _, err := c.RunStreamDay(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("RunStreamDay: err = %v, want ErrBadInput", err)
	}
}

// TestControllerConcurrentReaders: belief readers race the streaming
// loop (run under -race in CI) — the day/period cut is one critical
// section, so reads see either the pre- or post-cut belief.
func TestControllerConcurrentReaders(t *testing.T) {
	cfg := controllerConfig()
	cfg.Streaming = true
	cfg.MinObservations = 1
	c, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	m, err := core.NewStaticModel(testScenario())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if betas := c.Betas(); len(betas) != 3 {
					t.Error("torn betas read")
					return
				}
				_ = c.Days()
			}
		}()
	}
	react := func(period int, reward float64) ([]float64, error) {
		sched := make([]float64, len(cfg.Demand))
		for i := range sched {
			sched[i] = reward
		}
		return m.UsageByType(sched)[period], nil
	}
	for day := 0; day < 2; day++ {
		if _, err := c.RunStreamDay(react); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStreamProfilerInstrumented: the metric families the README quotes
// are really exported.
func TestStreamProfilerInstrumented(t *testing.T) {
	scn := testScenario()
	truth, err := NewClassProfilerTruth(t)
	if err != nil {
		t.Fatalf("truth: %v", err)
	}
	sp, err := NewStreamProfiler(scn.Demand, scn.NormReward(), StreamConfig{Window: 2})
	if err != nil {
		t.Fatalf("NewStreamProfiler: %v", err)
	}
	reg := obs.NewRegistry()
	sp.Instrument(reg)
	for d := 0; d < 2; d++ {
		rewards := streamDayRewards(scn.Periods, d)
		usage := truth(rewards)
		for i := 0; i < scn.Periods; i++ {
			if _, err := sp.FoldPeriod(i, rewards[i], usage[i]); err != nil {
				t.Fatalf("fold: %v", err)
			}
		}
		if _, err := sp.Refine(); err != nil {
			t.Fatalf("refine: %v", err)
		}
	}
	if _, err := sp.Divergence(); err != nil {
		t.Fatalf("Divergence: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"stream_folds_total",
		"stream_days_total",
		"stream_refines_total",
		"stream_stale_periods",
		"stream_window_days",
		"stream_sketch_skew_mb",
		"stream_batch_divergence",
		"stream_beta",
		"stream_live_delta_mb",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metric %q missing from exposition", want)
		}
	}
}
