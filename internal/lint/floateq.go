package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point operands outside
// _test.go files. Solver convergence checks written as `cost == prev`
// terminate (or fail to) on rounding noise; the fix is a tolerance
// (math.Abs(a-b) <= eps, or the package's helper).
//
// Three well-defined idioms are exempt:
//
//   - comparison against an exact-zero constant, the universal "unset
//     option" sentinel (Scenario.MaxRewardNorm == 0);
//   - comparison of an expression with itself (`x != x`), the NaN test;
//   - comparison of two constants, which is exact by definition.
//
// Anything else takes //lint:allow floateq <reason> — used sparingly,
// e.g. inside a tolerance helper itself.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flags exact floating-point equality comparisons outside tests",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xtv, xok := pass.TypesInfo.Types[be.X]
			ytv, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xtv.Type) && !isFloat(ytv.Type) {
				return true
			}
			if isExactZero(xtv) || isExactZero(ytv) {
				return true
			}
			if xtv.Value != nil && ytv.Value != nil {
				return true // constant folding is exact
			}
			if exprString(unparen(be.X)) == exprString(unparen(be.Y)) && sameSyntax(be.X, be.Y) {
				return true // x != x is the NaN idiom
			}
			pass.Reportf(be.OpPos, "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or //lint:allow floateq <reason>", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// isExactZero reports whether tv is a constant that is exactly zero.
func isExactZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	return constant.Sign(v) == 0
}

// sameSyntax guards the NaN-idiom exemption: both sides must be simple
// access paths (identifiers, selectors, index expressions) so that
// `f() != f()` — which may legitimately differ — is still flagged.
func sameSyntax(x, y ast.Expr) bool {
	return simplePath(unparen(x)) && simplePath(unparen(y))
}

func simplePath(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return simplePath(e.X)
	case *ast.IndexExpr:
		return simplePath(e.X) && simplePath(e.Index)
	case *ast.BasicLit:
		return true
	}
	return false
}
