package lint

import (
	"go/ast"
	"go/types"
)

// DeepCopyTypes is structclone's registry: the fully qualified types
// whose values may only be duplicated through their Clone method once
// outside the defining package. To enroll a new type, add its
// "<pkgpath>.<Name>" here and give it a Clone method next to the struct
// definition (DESIGN.md §8).
var DeepCopyTypes = []string{
	"tdp/internal/core.Scenario",
	"tdp/internal/core.CostFunc",
	"tdp/internal/linalg.Matrix",
}

// Structclone flags the three ways a designated deep-copy type gets
// duplicated lossily outside its home package:
//
//   - dereference copies (`cp := *s`): every slice/map field of the copy
//     aliases the original;
//   - composite literals whose elements read fields off an existing
//     value of the same type (`&T{A: s.A, B: s.B}`): a field added to T
//     later is silently zero in the copy — the PR 1 cloneScenario bug
//     that dropped MaxRewardNorm and NoWrap;
//   - value conversions/assignments are reported through the same
//     dereference rule, since `*s` is how a pointer-held value escapes.
//
// The fix in every case is the type's own Clone method, which lives next
// to the struct definition so new fields cannot be missed.
var Structclone = &Analyzer{
	Name: "structclone",
	Doc:  "flags out-of-package copies of designated deep-copy types (use Clone instead)",
	Run:  runStructclone,
}

func runStructclone(pass *Pass) error {
	registry := make(map[string]bool, len(DeepCopyTypes))
	for _, t := range DeepCopyTypes {
		registry[t] = true
	}
	// isDeepCopy reports whether t (after stripping pointers) is a
	// registered deep-copy type defined outside this package, returning
	// its display name.
	isDeepCopy := func(t types.Type) (string, bool) {
		for {
			ptr, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
			return "", false // home package may copy freely (Clone lives there)
		}
		key := obj.Pkg().Path() + "." + obj.Name()
		if !registry[key] {
			return "", false
		}
		return obj.Pkg().Name() + "." + obj.Name(), true
	}

	for _, f := range pass.Files {
		// Dereferences that are access paths or store targets, not value
		// copies: (*s).F, (*m)[i], and `*s = ...` on the left of an
		// assignment.
		notACopy := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				notACopy[unparen(n.X)] = true
			case *ast.IndexExpr:
				notACopy[unparen(n.X)] = true
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					notACopy[unparen(lhs)] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				if notACopy[ast.Expr(n)] {
					return true
				}
				// Dereference in value position: `cp := *s`, `f(*s)`,
				// `return *s`. Skip type expressions (*T in signatures)
				// and field accesses ((*s).F never reaches here as a
				// bare StarExpr operand type lookup below).
				tv, ok := pass.TypesInfo.Types[n]
				if !ok || tv.IsType() {
					return true
				}
				name, ok := isDeepCopy(pass.TypesInfo.Types[n.X].Type)
				if !ok {
					return true
				}
				pass.Reportf(n.Pos(), "dereference copy of %s shares its slice and map fields with the original; use %s.Clone()", name, name)
				return true

			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok {
					return true
				}
				name, ok := isDeepCopy(tv.Type)
				if !ok {
					return true
				}
				if src := copiedFrom(pass, n, tv.Type); src != "" {
					pass.Reportf(n.Pos(), "field-list copy of %s from %s can silently drop fields added to %s later; use %s.Clone()", name, src, name, name)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// copiedFrom reports the expression an existing value of typ is being
// field-copied from inside lit, or "" if the literal looks like fresh
// construction. A literal is a copy when at least one element reads a
// field off a value of the same (possibly pointered) type — e.g.
// Scenario{Periods: s.Periods} or CostFunc{Breaks: clone(s.Cost.Breaks)}.
func copiedFrom(pass *Pass, lit *ast.CompositeLit, typ types.Type) string {
	target := typeName(typ)
	var src string
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		ast.Inspect(val, func(n ast.Node) bool {
			if src != "" {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := pass.TypesInfo.Types[sel.X]
			if !ok {
				return true
			}
			if typeName(base.Type) == target && target != "" {
				// Reading a field off another value of the same type.
				if selIsField(pass, sel) {
					src = exprString(sel.X)
				}
			}
			return true
		})
		if src != "" {
			return src
		}
	}
	return ""
}

// typeName returns "pkgpath.Name" for a (possibly pointered) named
// type, or "".
func typeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// selIsField reports whether sel selects a struct field (not a method).
func selIsField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	return s.Kind() == types.FieldVal
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders a simple expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "value"
}
