package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFixture type-checks the fixture package at importPath inside a
// GOPATH-style tree rooted at srcRoot (testdata/src), resolving
// intra-fixture imports from the tree and the rest from the standard
// library. Each call pays for a fresh loader — including a fresh
// source-mode stdlib importer; harnesses running many analyzers over
// many fixtures should hold one FixtureLoader instead.
func LoadFixture(srcRoot, importPath string) (*Unit, error) {
	return newFixtureLoader(srcRoot).load(importPath)
}

// A FixtureLoader is a reusable fixture type-checker: loaded packages
// AND the source-importer's std-library work are cached across Load
// calls, so a suite running nine analyzers over a dozen fixtures
// type-checks each package (and sync, sort, fmt, …) once instead of
// once per analyzer. Analyzers never mutate a Unit, so sharing the
// result is safe; Load itself is not safe for concurrent use — guard
// it if tests run in parallel.
type FixtureLoader struct {
	l *fixtureLoader
}

// NewFixtureLoader returns a loader for the GOPATH-style tree at
// srcRoot (conventionally testdata/src).
func NewFixtureLoader(srcRoot string) *FixtureLoader {
	return &FixtureLoader{l: newFixtureLoader(srcRoot)}
}

// Load type-checks (or returns the cached) fixture package.
func (fl *FixtureLoader) Load(importPath string) (*Unit, error) {
	return fl.l.load(importPath)
}

// fixtureLoader type-checks a GOPATH-style tree of fixture packages
// (testdata/src/<importpath>/*.go), resolving intra-fixture imports
// from the tree and everything else from the standard library's source
// via go/importer's "source" mode — no export data or network needed.
// It exists for the analysistest harness; real-repo analysis runs under
// the go command's vet protocol (unitchecker.go).
type fixtureLoader struct {
	root   string // the src directory
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Unit
	stack  []string // cycle detection
}

func newFixtureLoader(srcRoot string) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		root:   srcRoot,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*Unit),
	}
}

// load parses and type-checks the fixture package at importPath
// (relative to the src root).
func (l *fixtureLoader) load(importPath string) (*Unit, error) {
	if u, ok := l.loaded[importPath]; ok {
		return u, nil
	}
	for _, p := range l.stack {
		if p == importPath {
			return nil, fmt.Errorf("import cycle through %s", importPath)
		}
	}
	l.stack = append(l.stack, importPath)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
			u, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return u.Pkg, nil
		}
		return l.std.Import(path)
	})
	tc := &types.Config{Importer: imp}
	info := NewInfo()
	pkg, err := tc.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	u := &Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.loaded[importPath] = u
	return u, nil
}
