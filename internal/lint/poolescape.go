package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Poolescape enforces the workspace-pooling contract the PR 5 evaluation
// kernels and the PR 6 ingest delta buffers live on: a value obtained
// from a sync.Pool (or from a function annotated //tubelint:pooled) is
// scratch on loan. It must not outlive the borrowing function — storing
// it to a field or global, sending it on a channel, capturing it in a
// goroutine or escaping closure, or returning it hands a buffer to code
// that will race the pool's next Get — and every borrow must be paid
// back: each Get needs a matching Put (or release closure call) on every
// return path, or the pool silently degrades to an allocator.
//
// Functions annotated //tubelint:pooled are accessors by design: they
// may return the borrowed value, and their callers inherit the contract
// (the call site is a source, exactly like a literal pool.Get). The Put
// analysis is source-order per return path, not a CFG proof: a return
// after a Get with no Put between them on any textual path is flagged;
// a deferred Put (or deferred release closure) satisfies every path.
// Release recognition: (*sync.Pool).Put, any call whose callee name
// contains "put", "release", or "free" taking the tainted value (or its
// handle) as an argument, and calls of a tainted func value (the
// `s, put := getScratch(n); defer put()` idiom).
var Poolescape = &Analyzer{
	Name: "poolescape",
	Doc:  "flags pooled values that escape (field/global store, channel send, goroutine/closure capture, return) or lack a Put on a return path",
	Run:  runPoolescape,
}

func runPoolescape(pass *Pass) error {
	pooledFuncs := collectPooledFuncs(pass, true)

	funcBodies(pass, func(fd *ast.FuncDecl) {
		fdIsPooled := hasMarker(nil, markerPooled, func() ast.Node { return fd }, fd.Doc)

		// Sources: sync.Pool Get calls and calls to annotated functions.
		source := func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			if isMethodCallOn(pass, call, "sync", "Pool", "Get") {
				return true
			}
			if obj := calleeObject(pass, call); obj != nil && pooledFuncs[obj] {
				return true
			}
			return false
		}

		taint := newTaint(pass, fd.Body, source)

		// Collect the per-function event stream in source order: borrow
		// sites, releases, and returns. Closure bodies are excluded — a
		// deferred closure's Put is found separately below.
		var (
			gets    []token.Pos
			puts    []token.Pos
			returns []*ast.ReturnStmt
		)
		deferredPut := false

		isRelease := func(call *ast.CallExpr) bool {
			if isMethodCallOn(pass, call, "sync", "Pool", "Put") {
				for _, a := range call.Args {
					if taint.Tainted(a) {
						return true
					}
				}
				return false
			}
			// Calling a tainted func value releases (the paired put
			// closure returned by a pooled accessor).
			if taint.Tainted(call.Fun) {
				return true
			}
			name := ""
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			lower := strings.ToLower(name)
			if !strings.Contains(lower, "put") && !strings.Contains(lower, "release") && !strings.Contains(lower, "free") {
				return false
			}
			for _, a := range call.Args {
				if taint.Tainted(a) {
					return true
				}
			}
			return false
		}

		walkShallow(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if source(n) {
					gets = append(gets, n.Pos())
				}
				if isRelease(n) {
					puts = append(puts, n.Pos())
				}

			case *ast.DeferStmt:
				// A deferred Put — direct or inside the deferred closure —
				// releases on every path, panic included.
				ast.Inspect(n.Call, func(d ast.Node) bool {
					if call, ok := d.(*ast.CallExpr); ok && isRelease(call) {
						deferredPut = true
					}
					return true
				})
				if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(d ast.Node) bool {
						if call, ok := d.(*ast.CallExpr); ok && isRelease(call) {
							deferredPut = true
						}
						return true
					})
				}
				return false

			case *ast.ReturnStmt:
				returns = append(returns, n)
				for _, res := range n.Results {
					if taint.Tainted(res) && !fdIsPooled {
						pass.Reportf(res.Pos(), "%s returns a pooled value; the caller's copy races the pool's next Get — copy it out, or annotate the function //tubelint:pooled to pass the contract on", fd.Name.Name)
					}
				}

			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := ast.Expr(nil)
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil || !taint.Tainted(rhs) {
						continue
					}
					switch taint.escapeRoot(lhs) {
					case "field":
						pass.Reportf(lhs.Pos(), "pooled value stored to a field in %s; it outlives the borrow and races the pool's next Get — copy it, or keep the reference local", fd.Name.Name)
					case "global":
						pass.Reportf(lhs.Pos(), "pooled value stored to a global in %s; it outlives the borrow and races the pool's next Get — copy it, or keep the reference local", fd.Name.Name)
					}
				}

			case *ast.SendStmt:
				if taint.Tainted(n.Value) {
					pass.Reportf(n.Value.Pos(), "pooled value sent on a channel in %s; the receiver races the pool's next Get — send a copy", fd.Name.Name)
				}

			case *ast.GoStmt:
				if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok && taint.capturesTainted(lit) {
					pass.Reportf(n.Pos(), "goroutine captures a pooled value in %s; it outlives the borrowing call — copy what it needs before go", fd.Name.Name)
				}
				for _, a := range n.Call.Args {
					if taint.Tainted(a) {
						pass.Reportf(a.Pos(), "pooled value passed to a goroutine in %s; it outlives the borrowing call — pass a copy", fd.Name.Name)
					}
				}
			}
			return true
		})

		// Escaping closures: a FuncLit that captures a pooled value is
		// fine when invoked on the borrowing goroutine (immediately,
		// deferred, assigned to a local and handed to a synchronous
		// callee — the dominant eval-closure idiom), an escape when it
		// leaves the call stack: returned, stored to a field or global,
		// or sent on a channel.
		reportEscapingClosures(pass, fd, taint, fdIsPooled)

		// Put matching. Pooled accessors hand the contract to their
		// callers; everyone else must release every borrow.
		if fdIsPooled || len(gets) == 0 || deferredPut {
			return
		}
		if len(puts) == 0 {
			pass.Reportf(gets[0], "pooled value obtained in %s is never returned to the pool (no Put on any path) — the pool degrades to an allocator", fd.Name.Name)
			return
		}
		for _, g := range gets {
			for _, ret := range returns {
				if ret.Pos() < g {
					continue
				}
				ok := false
				for _, p := range puts {
					if p > g && p <= ret.Pos() {
						ok = true
						break
					}
				}
				if !ok {
					pass.Reportf(ret.Pos(), "return path in %s leaks a pooled value obtained at line %d (no Put between Get and this return) — release before returning, or defer the Put", fd.Name.Name, pass.Fset.Position(g).Line)
				}
			}
		}
	})
	return nil
}

// reportEscapingClosures flags function literals that capture pooled
// values in positions that outlive the call stack: returned, stored to
// a field or global, sent on a channel, or passed into a go statement.
// A literal invoked immediately, deferred, or bound to a local and
// handed to a synchronous callee runs on the borrowing goroutine before
// the enclosing function's release discipline completes, so it stays
// legal (intra-procedurally we assume callees do not retain closure
// arguments past the call; DESIGN.md §14 records the assumption).
// Pooled accessors are exempt: their returned release closure is how
// the contract travels to the caller.
func reportEscapingClosures(pass *Pass, fd *ast.FuncDecl, taint *taintTracker, fdIsPooled bool) {
	capturing := func(e ast.Expr) (*ast.FuncLit, bool) {
		lit, ok := unparen(e).(*ast.FuncLit)
		if !ok {
			return nil, false
		}
		return lit, taint.capturesTainted(lit)
	}
	walkShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if fdIsPooled {
				return true
			}
			for _, res := range n.Results {
				if lit, bad := capturing(res); bad {
					pass.Reportf(lit.Pos(), "%s returns a closure capturing a pooled value; the capture outlives the borrow — copy what it needs first, or annotate the accessor //tubelint:pooled", fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, bad := capturing(rhs)
				if !bad || i >= len(n.Lhs) {
					continue
				}
				if root := taint.escapeRoot(n.Lhs[i]); root != "" {
					pass.Reportf(lit.Pos(), "closure capturing a pooled value is stored to a %s in %s; the capture outlives the borrow — copy what it needs first", root, fd.Name.Name)
				}
			}
		case *ast.SendStmt:
			if lit, bad := capturing(n.Value); bad {
				pass.Reportf(lit.Pos(), "closure capturing a pooled value is sent on a channel in %s; the receiver outlives the borrow — send a copy of the data instead", fd.Name.Name)
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if lit, bad := capturing(a); bad {
					pass.Reportf(lit.Pos(), "closure capturing a pooled value is passed to a goroutine in %s; it outlives the borrowing call — copy what it needs before go", fd.Name.Name)
				}
			}
		}
		return true
	})
}
