package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// Locksplit flags the lost-update pattern fixed in PR 2's ingestion
// rework: an exported method that acquires the same mutex twice, reading
// `// guarded by <mu>` state under the first hold and writing guarded
// state under the second. Between the two critical sections another
// goroutine can mutate the state, so the read snapshot and the write
// disagree — exactly how the original Measurement.Reset dropped
// concurrent Records between "read the totals" and "clear the map".
//
// The analysis is a source-order AST heuristic, not a path-sensitive
// proof: Lock/Unlock calls on a receiver's annotated mutex partition the
// method into critical sections (calls to sibling methods that
// themselves acquire the mutex count as one section, so composing two
// locking methods is caught too), and a guarded read in one section
// followed by a guarded write in a later one is reported. Methods whose
// lock/unlock structure the heuristic cannot balance are skipped rather
// than guessed at.
var Locksplit = &Analyzer{
	Name: "locksplit",
	Doc:  "flags split critical sections: guarded state read under one mutex hold and written under a second",
	Run:  runLocksplit,
}

// lockEvent kinds, in the order they are replayed.
const (
	evAcquire = iota
	evRelease
	evDeferRelease
	evRead
	evWrite
)

type lockEvent struct {
	kind  int
	pos   token.Pos
	field string // read/write: the guarded field; acquire/release: the mutex
	via   string // non-empty when synthesized from a sibling-method call
}

// methodSummary is the one-level call model: whether a method directly
// acquires a mutex and which guarded fields it touches.
type methodSummary struct {
	acquires map[string]bool // mutex field → acquired somewhere in body
	reads    map[string]bool // guarded field → read
	writes   map[string]bool // guarded field → written
}

func runLocksplit(pass *Pass) error {
	structs := collectStructs(pass, true)

	// Group methods by receiver type.
	type method struct {
		decl *ast.FuncDecl
		recv string
	}
	methods := make(map[string][]method)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			typ, recv := receiverTypeName(fd)
			if typ == "" || recv == "" {
				continue
			}
			if si := structs[typ]; si == nil || !si.anyGuarded() {
				continue
			}
			methods[typ] = append(methods[typ], method{decl: fd, recv: recv})
		}
	}

	for typ, ms := range methods {
		si := structs[typ]
		// First pass: direct summaries for sibling-call expansion.
		summaries := make(map[string]*methodSummary, len(ms))
		for _, m := range ms {
			summaries[m.decl.Name.Name] = summarize(pass, si, m.decl, m.recv)
		}
		// Second pass: replay each exported method's event stream.
		for _, m := range ms {
			if !m.decl.Name.IsExported() {
				continue
			}
			events := collectEvents(pass, si, m.decl, m.recv, summaries)
			checkSplit(pass, m.decl, si, events)
		}
	}
	return nil
}

// summarize records which mutexes a method directly acquires and which
// guarded fields it directly touches.
func summarize(pass *Pass, si *structInfo, fd *ast.FuncDecl, recv string) *methodSummary {
	sum := &methodSummary{
		acquires: make(map[string]bool),
		reads:    make(map[string]bool),
		writes:   make(map[string]bool),
	}
	for _, ev := range collectEvents(pass, si, fd, recv, nil) {
		switch ev.kind {
		case evAcquire:
			sum.acquires[ev.field] = true
		case evRead:
			sum.reads[ev.field] = true
		case evWrite:
			sum.writes[ev.field] = true
		}
	}
	return sum
}

// collectEvents walks fd's body and returns the mutex and guarded-state
// events in source order. When summaries is non-nil, calls to sibling
// methods that acquire a mutex are expanded into a synthetic
// acquire/read/write/release group.
func collectEvents(pass *Pass, si *structInfo, fd *ast.FuncDecl, recv string, summaries map[string]*methodSummary) []lockEvent {
	var events []lockEvent

	// recvField returns the field name when e is recv.<field>.
	recvField := func(e ast.Expr) string {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if !ok || id.Name != recv {
			return ""
		}
		return sel.Sel.Name
	}

	// writeTarget records lvalue positions: recv.f = ..., recv.f[k] = ...,
	// recv.f++ — the guarded field is written (or its contents are).
	markWrite := func(e ast.Expr, pos token.Pos) {
		e = unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = unparen(ix.X)
		}
		if f := recvField(e); f != "" && si.guardedBy(f) != "" {
			events = append(events, lockEvent{kind: evWrite, pos: pos, field: f})
		}
	}

	lvalues := make(map[ast.Node]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs, lhs.Pos())
				lvalues[unparen(lhs)] = true
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					lvalues[unparen(ix.X)] = true
				}
			}
		case *ast.IncDecStmt:
			markWrite(n.X, n.Pos())
			lvalues[unparen(n.X)] = true

		case *ast.DeferStmt:
			// Any Unlock reachable from a defer releases at return.
			ast.Inspect(n.Call, func(d ast.Node) bool {
				call, ok := d.(*ast.CallExpr)
				if !ok {
					return true
				}
				if mu, rel := mutexCall(recvField, si, call); mu != "" && rel {
					events = append(events, lockEvent{kind: evDeferRelease, pos: n.Pos(), field: mu})
				}
				return true
			})
			// Skip normal traversal of the deferred call so its Unlock
			// is not also recorded as an immediate release.
			return false

		case *ast.CallExpr:
			if mu, rel := mutexCall(recvField, si, n); mu != "" {
				kind := evAcquire
				if rel {
					kind = evRelease
				}
				events = append(events, lockEvent{kind: kind, pos: n.Pos(), field: mu})
				return true
			}
			// Sibling method call: recv.Method(...).
			if summaries != nil {
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
						if sum := summaries[sel.Sel.Name]; sum != nil && len(sum.acquires) > 0 {
							events = append(events, expandCall(n.Pos(), sel.Sel.Name, sum)...)
							return true
						}
					}
				}
			}

		case *ast.SelectorExpr:
			if lvalues[ast.Node(n)] {
				return true // already recorded as a write
			}
			if f := recvField(n); f != "" && si.guardedBy(f) != "" {
				events = append(events, lockEvent{kind: evRead, pos: n.Pos(), field: f})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// expandCall synthesizes the event group for a call to a sibling method
// known to acquire mutexes: one critical section containing the
// method's direct guarded reads and writes.
func expandCall(pos token.Pos, name string, sum *methodSummary) []lockEvent {
	var out []lockEvent
	for mu := range sum.acquires {
		out = append(out, lockEvent{kind: evAcquire, pos: pos, field: mu, via: name})
	}
	for f := range sum.reads {
		out = append(out, lockEvent{kind: evRead, pos: pos, field: f, via: name})
	}
	for f := range sum.writes {
		out = append(out, lockEvent{kind: evWrite, pos: pos, field: f, via: name})
	}
	for mu := range sum.acquires {
		out = append(out, lockEvent{kind: evRelease, pos: pos, field: mu, via: name})
	}
	return out
}

// mutexCall reports whether call is <recv>.<mu>.Lock/RLock (release
// false) or Unlock/RUnlock (release true) on one of si's mutex fields.
func mutexCall(recvField func(ast.Expr) string, si *structInfo, call *ast.CallExpr) (mu string, release bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		release = false
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false
	}
	f := recvField(sel.X)
	if f == "" || !si.mutexes[f] {
		return "", false
	}
	return f, release
}

// checkSplit replays the event stream per mutex, partitions it into
// critical sections, and reports a guarded read in one section followed
// by a guarded write in a later one.
func checkSplit(pass *Pass, fd *ast.FuncDecl, si *structInfo, events []lockEvent) {
	for mu, guardedSet := range si.guarded {
		type section struct {
			readField  string
			writeField string
			writePos   token.Pos
			startPos   token.Pos
		}
		var sections []section
		depth := 0
		deferred := false
		balanced := true
		cur := section{}
		inSection := func() bool { return depth > 0 || deferred }
		for _, ev := range events {
			switch ev.kind {
			case evAcquire:
				if ev.field != mu {
					continue
				}
				if deferred {
					// Re-acquiring a mutex already released-at-return
					// would deadlock; the structure is beyond this
					// heuristic.
					balanced = false
				}
				if depth == 0 {
					cur = section{startPos: ev.pos}
				}
				depth++
			case evRelease:
				if ev.field != mu {
					continue
				}
				if depth == 0 {
					balanced = false
					continue
				}
				depth--
				if depth == 0 {
					sections = append(sections, cur)
				}
			case evDeferRelease:
				if ev.field != mu {
					continue
				}
				deferred = true
			case evRead:
				if inSection() && guardedSet[ev.field] && cur.readField == "" {
					cur.readField = ev.field
				}
			case evWrite:
				if inSection() && guardedSet[ev.field] && cur.writeField == "" {
					cur.writeField = ev.field
					cur.writePos = ev.pos
				}
			}
			if !balanced {
				break
			}
		}
		if !balanced {
			continue
		}
		if inSection() {
			sections = append(sections, cur)
		}
		// A read in section i and a write in section j > i is the race.
		readAt := -1
		readField := ""
		for i, s := range sections {
			if readAt >= 0 && s.writeField != "" {
				pass.Reportf(s.writePos, "%s releases %s after reading %s and re-acquires it to write %s; state can change in the gap (split critical section) — merge into one hold", fd.Name.Name, mu, readField, s.writeField)
				break
			}
			if readAt < 0 && s.readField != "" {
				readAt = i
				readField = s.readField
			}
		}
	}
}
