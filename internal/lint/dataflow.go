package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Dataflow-lite: a shared intra-procedural def-use engine for the
// concurrency-contract analyzers (poolescape, cowmut, errwrapped,
// guardorder). It deliberately stops far short of SSA: taint is a
// per-function fixpoint over assignment chains (flow-insensitive — a
// variable once bound to a source value stays tainted even if later
// rebound), because every invariant it backs is "this value must never
// reach that sink inside one function", and the pooled/COW values the
// repo actually passes around live for a handful of statements. The
// one-level call expansion mirrors locksplit's: annotated or summarized
// callees act as sources/acquires at their call site, nothing deeper.

// taintTracker computes which local objects of one function may alias a
// value produced by a source expression, and answers aliasing queries
// about arbitrary expressions in the function body.
type taintTracker struct {
	pass *Pass
	// source reports whether an expression directly produces a tracked
	// value (a sync.Pool.Get call, an atomic.Pointer.Load call, a read
	// of a //tubelint:cow field, ...).
	source func(e ast.Expr) bool
	// tainted holds the local objects bound (possibly transitively) to a
	// source value.
	tainted map[types.Object]bool
}

// newTaint builds the def-use closure for fn's body: any object assigned
// from a source expression — or from an expression that dereferences,
// indexes, slices, asserts, or selects from a tainted object — joins the
// set. The loop iterates to a fixpoint so chains like a := src();
// b := a[i]; c := b.f resolve regardless of statement order.
func newTaint(pass *Pass, body *ast.BlockStmt, source func(e ast.Expr) bool) *taintTracker {
	t := &taintTracker{pass: pass, source: source, tainted: make(map[types.Object]bool)}
	for {
		before := len(t.tainted)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				t.bindAssign(n)
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if t.Tainted(v) {
						for _, name := range n.Names {
							t.add(name)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && t.Tainted(n.X) {
					if id, ok := unparen(n.Value).(*ast.Ident); ok {
						t.add(id)
					}
				}
			}
			return true
		})
		if len(t.tainted) == before {
			return t
		}
	}
}

// bindAssign propagates taint through one assignment or short variable
// declaration, including the multi-value form v, h := source().
func (t *taintTracker) bindAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if t.Tainted(n.Rhs[i]) {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					t.add(id)
				}
			}
		}
		return
	}
	// Multi-value RHS (call, type assertion, map index): a tainted RHS
	// taints every LHS — for a pooled getter returning (buf, handle),
	// both must be tracked.
	if len(n.Rhs) == 1 && t.Tainted(n.Rhs[0]) {
		for _, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				t.add(id)
			}
		}
	}
}

func (t *taintTracker) add(id *ast.Ident) {
	obj := t.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = t.pass.TypesInfo.Uses[id]
	}
	if obj != nil {
		t.tainted[obj] = true
	}
}

// Tainted reports whether e may evaluate to (or alias the backing store
// of) a source value.
func (t *taintTracker) Tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = unparen(e)
	if t.source != nil && t.source(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = t.pass.TypesInfo.Defs[e]
		}
		return obj != nil && t.tainted[obj]
	case *ast.SelectorExpr:
		return t.Tainted(e.X)
	case *ast.IndexExpr:
		return t.Tainted(e.X)
	case *ast.SliceExpr:
		return t.Tainted(e.X)
	case *ast.StarExpr:
		return t.Tainted(e.X)
	case *ast.TypeAssertExpr:
		return t.Tainted(e.X)
	case *ast.UnaryExpr:
		return t.Tainted(e.X)
	case *ast.CallExpr:
		// A conversion of a tainted value stays tainted; real calls are
		// only tainted when the source predicate says so (handled above).
		if len(e.Args) == 1 {
			if tv, ok := t.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return t.Tainted(e.Args[0])
			}
		}
		return false
	}
	return false
}

// TaintedObjects returns the raw object set (for closure-capture scans).
func (t *taintTracker) TaintedObjects() map[types.Object]bool { return t.tainted }

// capturesTainted reports whether the function literal's body references
// any tainted object of the enclosing function.
func (t *taintTracker) capturesTainted(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil && t.tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// escapeRoot walks an assignment target to its base and classifies where
// a store lands: "" for a plain local (no escape), "field" for a store
// through a selector on non-tainted state, "global" for a package-level
// variable. Stores into storage the tracker already taints (wiring one
// pooled buffer into its own pooled workspace) do not escape.
func (t *taintTracker) escapeRoot(lhs ast.Expr) string {
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = unparen(x.X)
			continue
		case *ast.StarExpr:
			e = unparen(x.X)
			continue
		case *ast.SelectorExpr:
			if t.Tainted(x.X) {
				return ""
			}
			// Selection on a package: the target is a global.
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := t.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return "global"
				}
			}
			return "field"
		case *ast.Ident:
			if obj := t.pass.TypesInfo.Uses[x]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == t.pass.Pkg.Scope() {
					return "global"
				}
			}
			return ""
		default:
			return ""
		}
	}
}

// funcBodies yields every declared function in the pass with a body,
// skipping test files. The callback receives the declaration so analyzers
// can consult receiver, name, and doc comments.
func funcBodies(pass *Pass, fn func(fd *ast.FuncDecl)) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// walkShallow traverses stmts of a function body without descending into
// nested function literals, so per-function event streams (returns, Put
// calls, sends) are not polluted by closure bodies.
func walkShallow(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// namedTypeOf resolves an expression's static type to a named type
// declared in the package under analysis, unwrapping pointers and
// generic instantiations. It returns the type name, or "".
func namedTypeOf(pass *Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	return namedTypeName(pass.Pkg, tv.Type)
}

func namedTypeName(pkg *types.Package, t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	named = named.Origin()
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() != pkg {
		return ""
	}
	return obj.Name()
}

// isMethodCallOn reports whether call invokes a method named one of
// names on a receiver whose type is declared in pkgPath (e.g. "sync" /
// "sync/atomic"), resolving through go/types so local wrappers with the
// same method name do not match.
func isMethodCallOn(pass *Pass, call *ast.CallExpr, pkgPath, typeName string, names ...string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// calleeObject resolves the called function or method to its
// types.Object (nil for builtins, func values, and interface methods
// without a concrete declaration in this package's type info).
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// pkgLastElement returns the final slash-separated element of the
// package path ("tdp/internal/tube" → "tube").
func pkgLastElement(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
