package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Errwrapped pins the sentinel-error contract PR 6's wrapping audit
// established across the serving planes: every public entry point of
// tube, ingest, estimate, cluster, and wire classifies its failures
// under a package sentinel (ErrBadInput, ErrBadReport, ErrCorrupt, …)
// so callers dispatch with errors.Is instead of string matching. The
// audit was pinned only by tests; this analyzer pins the source: an
// exported function or method in those packages that returns a freshly
// constructed error — errors.New, or fmt.Errorf without a %w verb —
// breaks the chain, because nothing errors.Is-reachable sits below it.
//
// Pass-through returns (err from a callee), bare sentinel returns, and
// fmt.Errorf carrying %w are all legal: intra-procedurally the %w chain
// is assumed to reach a sentinel (the callee wrapped, or the wrapped
// value is one). Construction through a single local is traced by the
// def-use engine (`err := fmt.Errorf("..."); return err`).
var Errwrapped = &Analyzer{
	Name: "errwrapped",
	Doc:  "flags exported functions in the serving packages returning constructed errors that do not wrap a package sentinel with %w",
	Run:  runErrwrapped,
}

// errwrappedPackages are the serving planes under the contract, matched
// against the final element of the package path. scfg and mechanism
// joined with PR 9: their sentinels (ErrBadConfig, ErrBadMechanism) are
// the dispatch surface for tubesim -check and registry selection.
var errwrappedPackages = map[string]bool{
	"tube":      true,
	"ingest":    true,
	"estimate":  true,
	"cluster":   true,
	"wire":      true,
	"scfg":      true,
	"mechanism": true,
}

func runErrwrapped(pass *Pass) error {
	if !errwrappedPackages[pkgLastElement(pass.Pkg)] {
		return nil
	}

	funcBodies(pass, func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		if typ, _ := receiverTypeName(fd); typ != "" && !ast.IsExported(typ) {
			return // method on an unexported type: not part of the package API
		}
		if !returnsError(pass, fd) {
			return
		}

		// One-level def-use: locals assigned a bare construction. The
		// map holds the offending call so the diagnostic lands on the
		// return, where the fix goes.
		bare := make(map[types.Object]*ast.CallExpr)
		walkShallow(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if call := bareConstruction(pass, asg.Rhs[i]); call != nil {
					bare[obj] = call
				} else {
					delete(bare, obj) // rebound to something legal
				}
			}
			return true
		})

		walkShallow(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if !isErrorExpr(pass, res) {
					continue
				}
				res := unparen(res)
				var offending *ast.CallExpr
				if call := bareConstruction(pass, res); call != nil {
					offending = call
				} else if id, ok := res.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						offending = bare[obj]
					}
				}
				if offending != nil {
					pass.Reportf(res.Pos(), "exported %s returns a constructed error with no %%w to a package sentinel; errors.Is callers cannot classify it — wrap ErrBadInput/ErrCorrupt/… (or a wrapped callee error) with fmt.Errorf(...%%w...)", fd.Name.Name)
				}
			}
			return true
		})
	})
	return nil
}

// bareConstruction returns the call when e constructs an error that
// cannot reach a sentinel: errors.New(...), or fmt.Errorf whose constant
// format string has no %w verb. Errorf with a non-constant format is
// given the benefit of the doubt.
func bareConstruction(pass *Pass, e ast.Expr) *ast.CallExpr {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	switch {
	case obj.Pkg().Path() == "errors" && obj.Name() == "New":
		return call
	case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
		if len(call.Args) == 0 {
			return nil
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return nil // dynamic format: assume the caller knows
		}
		if strings.Contains(constant.StringVal(tv.Value), "%w") {
			return nil
		}
		return call
	}
	return nil
}

// returnsError reports whether fd's signature includes an error result.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[res.Type]; ok {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

// isErrorExpr reports whether the expression's static type is error.
func isErrorExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
