// Package aliasret holds aliasret's cases: exported methods on
// annotated types must not return internal slice/map state by
// reference, because the caller's alias outlives the method (and, for
// mutex-guarded fields, the critical section).
package aliasret

import "sync"

// Store is opted in via the type marker.
//
//tubelint:noalias
type Store struct {
	names  []string
	scores map[string]float64
}

// Names returns the field directly: the classic leak.
func (s *Store) Names() []string {
	return s.names // want "Names returns internal field names without copying"
}

// Scores leaks through a trivial local alias.
func (s *Store) Scores() map[string]float64 {
	m := s.scores
	return m // want "Scores returns internal field scores without copying"
}

// NamesCopy is the fixed shape: copy before returning.
func (s *Store) NamesCopy() []string {
	return append([]string(nil), s.names...)
}

// Count returns a scalar; nothing to alias.
func (s *Store) Count() int {
	return len(s.names)
}

// peek is unexported: internal callers are trusted with aliases.
func (s *Store) peek() []string {
	return s.names
}

// AllowedView documents an intentional shared view.
func (s *Store) AllowedView() []string {
	//lint:allow aliasret read-only hot path, caller contract forbids mutation
	return s.names
}

// Gauge opts in implicitly through its guarded field: returning the
// slice hands out state that mu no longer protects.
type Gauge struct {
	mu      sync.Mutex
	samples []float64 // guarded by mu
}

// Samples leaks the guarded slice.
func (g *Gauge) Samples() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.samples // want `Samples returns internal field samples without copying; callers can mutate Gauge state through the alias \(and the alias outlives the mu critical section\)`
}

// Snapshot is the fixed shape.
func (g *Gauge) Snapshot() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]float64(nil), g.samples...)
}

// Plain is unannotated and unguarded: not in scope.
type Plain struct {
	data []int
}

// Data on an unannotated type is the author's business.
func (p *Plain) Data() []int {
	return p.data
}

var _ = (*Store)(nil).peek
