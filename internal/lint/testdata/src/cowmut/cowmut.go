// Package cowmut holds cowmut's cases, built around a faithful
// reconstruction of the PR 6 subscriber registry (a copy-on-write
// slice published through atomic.Pointer) and the PR 7 price-snapshot
// table, plus the mutation shapes the analyzer must refuse: in-place
// element writes, appends into the shared backing array, and the
// builtin/sort mutators aimed at a loaded snapshot.
package cowmut

import (
	"sort"
	"sync/atomic"
)

// registry reconstructs the PR 6 delta-subscriber registry.
type registry struct {
	subs atomic.Pointer[[]chan int]
}

// addInPlace is the historical defect shape: writing through the loaded
// snapshot that concurrent readers hold lock-free.
func (r *registry) addInPlace(c chan int) {
	p := r.subs.Load()
	(*p)[0] = c // want "write through a copy-on-write value"
}

// addCOW is the fix: mutate a fresh copy, Store that.
func (r *registry) addCOW(c chan int) {
	cur := r.subs.Load()
	next := make([]chan int, 0, 8)
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, c)
	r.subs.Store(&next)
}

// appendShared grows into the published backing array: capacity
// permitting, the write lands in memory readers are iterating.
func (r *registry) appendShared(c chan int) {
	p := r.subs.Load()
	s := *p
	_ = append(s, c) // want "append onto a copy-on-write slice"
}

// snapshotCopy reads out of the snapshot — copy with the loaded value
// as the source is exactly the sanctioned direction.
func (r *registry) snapshotCopy() []chan int {
	p := r.subs.Load()
	if p == nil {
		return nil
	}
	out := make([]chan int, len(*p))
	copy(out, *p)
	return out
}

// prices reconstructs the PR 7 snapshot table: rows is handed to
// readers without a lock and is frozen from the moment it is published.
type prices struct {
	rows []float64 //tubelint:cow
	gen  int
}

func (t *prices) bumpInPlace(i int) {
	t.rows[i]++ // want "write through a copy-on-write value"
}

func (t *prices) zeroInPlace() {
	clear(t.rows) // want "clear into a copy-on-write value"
}

func (t *prices) overwrite(src []float64) {
	copy(t.rows, src) // want "copy into a copy-on-write value"
}

func (t *prices) sortInPlace() {
	sort.Float64s(t.rows) // want "sort.Float64s over a copy-on-write value"
}

// refresh is the legal publish: build a fresh slice, then rebind the
// field — replacing the snapshot is fine, mutating it is not.
func (t *prices) refresh(src []float64) {
	next := make([]float64, len(src))
	copy(next, src)
	t.rows = next
	t.gen++
}

// counterbox/metrics is the repo's metrics idiom: the fields behind the
// published pointer are internally synchronized, so method calls on the
// loaded value stay legal.
type counterbox struct{ n atomic.Int64 }

type metrics struct {
	box atomic.Pointer[counterbox]
}

func (m *metrics) inc() {
	if b := m.box.Load(); b != nil {
		b.n.Add(1)
	}
}

// scratchMutate documents a sanctioned in-place write (construction
// phase, before the value is published).
func (t *prices) scratchMutate() {
	t.rows[0] = 0 //lint:allow cowmut table is private until the constructor publishes it
}
