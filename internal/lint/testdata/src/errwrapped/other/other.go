// Package other sits outside the serving planes (its import path does
// not end in tube/ingest/estimate/cluster/wire), so the sentinel
// contract does not apply and nothing here may be flagged.
package other

import "fmt"

// Fail constructs freely: the contract is scoped, not global.
func Fail() error {
	return fmt.Errorf("not under the contract")
}
