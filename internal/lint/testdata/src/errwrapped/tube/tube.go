// Package tube reconstructs the PR 6/7 GUI-client error paths that the
// errwrapped audit fixed: exported entry points of the serving planes
// returning freshly constructed errors with no %w chain to a package
// sentinel, so errors.Is callers were reduced to string matching. The
// fixture's import path ends in "tube", putting it under the contract.
package tube

import (
	"errors"
	"fmt"
)

// ErrRemote is the package sentinel the contract wraps toward.
var ErrRemote = errors.New("tube: remote request failed")

// Client stands in for the GUI HTTP client.
type Client struct{ pulls int }

// PullPrice is the historical defect: a status error constructed
// inline, classifiable only by string matching.
func (c *Client) PullPrice(status int) error {
	if status != 200 {
		return fmt.Errorf("pull price: status %d", status) // want "returns a constructed error with no %w"
	}
	c.pulls++
	return nil
}

// PullPriceWrapped is the fixed form: the sentinel rides the %w chain.
func (c *Client) PullPriceWrapped(status int) error {
	if status != 200 {
		return fmt.Errorf("%w: pull price: status %d", ErrRemote, status)
	}
	c.pulls++
	return nil
}

// Configure constructs through a local; the def-use trace still lands
// the diagnostic on the return, where the fix goes.
func Configure(addr string) error {
	if addr == "" {
		err := errors.New("empty address")
		return err // want "returns a constructed error with no %w"
	}
	return nil
}

// Rebind legalizes itself before returning: the bare construction is
// overwritten by a wrapped one.
func Rebind(status int) error {
	err := errors.New("transient")
	err = fmt.Errorf("%w: status %d", ErrRemote, status)
	return err
}

// Validate returns the sentinel itself — the shortest legal chain.
func Validate(n int) error {
	if n < 0 {
		return ErrRemote
	}
	return nil
}

// Format has a dynamic format string and gets the benefit of the doubt.
func Format(f string) error {
	return fmt.Errorf(f)
}

// helper is unexported: not part of the package API, free to construct.
func helper() error { return errors.New("internal detail") }

// conn is unexported, so its exported-looking method is still internal.
type conn struct{ open bool }

func (c *conn) Dial() error {
	if c.open {
		return nil
	}
	return errors.New("not open")
}

// touch keeps the unexported cases referenced.
func touch(c *conn) error {
	if err := helper(); err != nil {
		_ = c.Dial()
	}
	return nil
}
