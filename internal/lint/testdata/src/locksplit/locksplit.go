// Package locksplit holds locksplit's cases, built around a faithful
// reconstruction of the PR 2 Measurement.Reset race: totals read under
// one hold of mu, the map cleared under a second, losing any Record
// that lands in the gap.
package locksplit

import "sync"

// Meter reconstructs the pre-PR 2 measurement engine.
type Meter struct {
	mu      sync.Mutex
	classes []string           // immutable after construction
	totals  []float64          // guarded by mu
	byUser  map[string]float64 // guarded by mu
	n       int                // guarded by mu
}

// Record is the single-critical-section true negative.
func (m *Meter) Record(user string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byUser[user] += v
	m.totals[0] += v
	m.n++
}

// Reset reconstructs the historical bug: snapshot under one hold, clear
// under a second. A Record between the two acquisitions is counted in
// byUser but missing from the returned totals — the lost update.
func (m *Meter) Reset() []float64 {
	m.mu.Lock()
	out := append([]float64(nil), m.totals...)
	m.mu.Unlock()
	m.mu.Lock()
	m.byUser = make(map[string]float64) // want "Reset releases mu after reading totals and re-acquires it to write byUser"
	m.totals = make([]float64, len(m.totals))
	m.mu.Unlock()
	return out
}

// Totals locks once to read; fine on its own, but see ComposedReset.
func (m *Meter) Totals() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.totals...)
}

// clear locks once to write; fine on its own, but see ComposedReset.
func (m *Meter) clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byUser = make(map[string]float64)
}

// ComposedReset is the same race spelled as two locking sibling calls —
// the shape the original Reset actually had.
func (m *Meter) ComposedReset() []float64 {
	out := m.Totals()
	m.clear() // want "ComposedReset releases mu after reading totals and re-acquires it to write byUser"
	return out
}

// Rollover is the fixed shape: snapshot and clear in one critical
// section.
func (m *Meter) Rollover() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]float64(nil), m.totals...)
	m.byUser = make(map[string]float64)
	m.totals = make([]float64, len(m.totals))
	return out
}

// ReadTwice re-acquires but only reads; no lost update, no report.
func (m *Meter) ReadTwice() (int, float64) {
	m.mu.Lock()
	n := m.n
	m.mu.Unlock()
	m.mu.Lock()
	t := m.totals[0]
	m.mu.Unlock()
	return n, t
}

// AllowedSplit documents an accepted stale-read-then-write.
func (m *Meter) AllowedSplit() []float64 {
	m.mu.Lock()
	out := append([]float64(nil), m.totals...)
	m.mu.Unlock()
	m.mu.Lock()
	//lint:allow locksplit monotonic gauge, stale snapshot acceptable here
	m.n = 0
	m.mu.Unlock()
	return out
}

// Broken carries a typo'd annotation so it cannot silently disable
// enforcement.
type Broken struct {
	mu sync.Mutex
	// guarded by mux
	data []int // want "has no mutex field mux"
}
