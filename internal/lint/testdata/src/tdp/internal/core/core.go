// Package core is a fixture stand-in for the real tdp/internal/core:
// just enough of Scenario and CostFunc for structclone's registry
// ("tdp/internal/core.Scenario", "tdp/internal/core.CostFunc") to bind.
package core

// CostFunc mirrors the piecewise-linear cost structure.
type CostFunc struct {
	Breaks []float64
	Slopes []float64
}

// Scenario mirrors the pricing problem instance. NoWrap plays the role
// of the scalar option the PR 1 field-list copy silently dropped.
type Scenario struct {
	Periods int
	Demand  [][]float64
	Betas   []float64
	Cost    CostFunc
	NoWrap  bool
}

// Clone deep-copies the scenario; in-package copies are exempt because
// this is where the copy logic is maintained.
func (s *Scenario) Clone() *Scenario {
	cp := *s
	cp.Betas = append([]float64(nil), s.Betas...)
	cp.Cost = CostFunc{
		Breaks: append([]float64(nil), s.Cost.Breaks...),
		Slopes: append([]float64(nil), s.Cost.Slopes...),
	}
	cp.Demand = make([][]float64, len(s.Demand))
	for i, row := range s.Demand {
		cp.Demand[i] = append([]float64(nil), row...)
	}
	return &cp
}
