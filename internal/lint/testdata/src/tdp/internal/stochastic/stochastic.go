// Package stochastic is a fixture stand-in living under one of
// globalrand's deterministic import paths, so global math/rand use here
// must be flagged while seeded local generators stay legal.
package stochastic

import (
	"math/rand"
	mrand2 "math/rand/v2"
)

// GlobalDraw uses the process-global generator: irreproducible.
func GlobalDraw() float64 {
	return rand.Float64() // want "uses the process-global source"
}

// GlobalShuffle is the same violation through another top-level func.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "uses the process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// GlobalV2 catches the math/rand/v2 spelling too.
func GlobalV2() uint64 {
	return mrand2.Uint64() // want "uses the process-global source"
}

// SeededDraw threads an explicit generator: reproducible, legal.
func SeededDraw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// NewRNG may call the constructors; only the top-level draws are banned.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// AllowedGlobal documents a sanctioned escape hatch.
func AllowedGlobal() float64 {
	//lint:allow globalrand jitter for backoff only, never in results
	return rand.Float64()
}
