// Package structclone holds structclone's true-positive and
// true-negative cases, including a faithful reconstruction of the PR 1
// cloneScenario bug: an out-of-package field-list copy of core.Scenario
// that silently drops NoWrap.
package structclone

import "tdp/internal/core"

// cloneScenario reconstructs the historical bug: every field listed by
// hand, so the NoWrap option added later is silently false in the copy.
func cloneScenario(s *core.Scenario) *core.Scenario {
	cp := &core.Scenario{ // want "field-list copy of core.Scenario from s"
		Periods: s.Periods,
		Betas:   append([]float64(nil), s.Betas...),
		Cost: core.CostFunc{ // want "field-list copy of core.CostFunc from s.Cost"
			Breaks: append([]float64(nil), s.Cost.Breaks...),
			Slopes: append([]float64(nil), s.Cost.Slopes...),
		},
	}
	cp.Demand = make([][]float64, len(s.Demand))
	for i, row := range s.Demand {
		cp.Demand[i] = append([]float64(nil), row...)
	}
	return cp
}

// derefCopy is the other lossy shape: all slice fields alias the
// original.
func derefCopy(s *core.Scenario) core.Scenario {
	cp := *s // want "dereference copy of core.Scenario"
	return cp
}

// goodClone uses the type's own Clone: fields added later carry over.
func goodClone(s *core.Scenario) *core.Scenario {
	return s.Clone()
}

// freshConstruction builds a new scenario from scratch; composite
// literals that do not read fields off another Scenario are fine.
func freshConstruction(demand [][]float64) *core.Scenario {
	return &core.Scenario{
		Periods: len(demand),
		Demand:  demand,
		Betas:   []float64{1, 2},
		Cost:    core.CostFunc{Breaks: []float64{0}, Slopes: []float64{1}},
	}
}

// fieldAccess dereferences only to reach a field, which copies nothing.
func fieldAccess(s *core.Scenario) int {
	return (*s).Periods
}

// allowedCopy documents an intentional shallow copy.
func allowedCopy(s *core.Scenario) core.Scenario {
	//lint:allow structclone read-only view, never outlives the call
	return *s
}

var _ = cloneScenario
var _ = derefCopy
var _ = goodClone
var _ = freshConstruction
var _ = fieldAccess
var _ = allowedCopy
