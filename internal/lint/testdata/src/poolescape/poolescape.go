// Package poolescape holds poolescape's cases, built around faithful
// reconstructions of the PR 5 evaluation-kernel workspace pool (the
// wsPool.get accessor and the solver's eval closure) and the PR 6
// ingest delta-buffer pool, plus the escape shapes the analyzer must
// refuse: field/global stores, channel sends, goroutine captures, and
// return paths that skip the Put.
package poolescape

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getNoAnnot reconstructs the PR 5 accessor before it carried the
// contract marker: it hands out the borrow with no annotation, so the
// analyzer sees an unreleased Get and an escaping return.
func getNoAnnot() *[]byte {
	b := bufPool.Get().(*[]byte) // want "never returned to the pool"
	return b                     // want "returns a pooled value"
}

// getAnnot is the fixed form: the marker passes the contract on.
//
//tubelint:pooled
func getAnnot() *[]byte {
	return bufPool.Get().(*[]byte)
}

// useOK is the canonical borrow: the call site of a pooled accessor is
// a source, and the deferred Put releases on every path.
func useOK() int {
	b := getAnnot()
	defer bufPool.Put(b)
	return len(*b)
}

// earlyReturnLeak takes the Put only on the slow path; the quick return
// leaks the borrow and the pool degrades to an allocator.
func earlyReturnLeak(quick bool) int {
	b := bufPool.Get().(*[]byte)
	if quick {
		return 0 // want "leaks a pooled value"
	}
	bufPool.Put(b)
	return 1
}

type holder struct{ buf *[]byte }

var leaked *[]byte

// storeField parks the borrow in longer-lived state: the field outlives
// the borrowing call and races the pool's next Get.
func storeField(h *holder) {
	b := bufPool.Get().(*[]byte)
	h.buf = b // want "stored to a field"
	bufPool.Put(b)
}

func storeGlobal() {
	b := bufPool.Get().(*[]byte)
	leaked = b // want "stored to a global"
	bufPool.Put(b)
}

func sendChan(ch chan *[]byte) {
	b := bufPool.Get().(*[]byte)
	ch <- b // want "sent on a channel"
	bufPool.Put(b)
}

func goCapture(done chan struct{}) {
	b := bufPool.Get().(*[]byte)
	go func() { // want "goroutine captures a pooled value"
		_ = len(*b)
		close(done)
	}()
	bufPool.Put(b)
}

func goArg(sink func(*[]byte)) {
	b := bufPool.Get().(*[]byte)
	go sink(b) // want "passed to a goroutine"
	bufPool.Put(b)
}

// borrowNoContract returns the release closure without the marker: the
// borrow itself stays unreleased here and the capture escapes.
func borrowNoContract() func() {
	b := bufPool.Get().(*[]byte)       // want "never returned to the pool"
	return func() { bufPool.Put(b) }   // want "returns a closure capturing a pooled value"
}

// borrow is the PR 6 getScratch idiom done right: annotated accessor
// returning the value plus its paired release closure.
//
//tubelint:pooled
func borrow() ([]byte, func()) {
	bp := bufPool.Get().(*[]byte)
	return *bp, func() { bufPool.Put(bp) }
}

// gradientLike consumes the release-closure contract: both results of
// the pooled accessor are tracked, and deferring the put closure
// releases on every path.
func gradientLike() float64 {
	s, put := borrow()
	defer put()
	return float64(len(s))
}

// evalClosureOK reconstructs the PR 5 solver shape: the eval closure
// captures the workspace but only travels down the call stack into a
// synchronous minimizer, under a deferred Put. Legal.
func evalClosureOK(minimize func(func(float64) float64) float64) float64 {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	eval := func(t float64) float64 { return t + float64(len(*b)) }
	return minimize(eval)
}

// allowedHandoff documents a deliberate ownership transfer.
func allowedHandoff(h *holder) {
	b := bufPool.Get().(*[]byte) //lint:allow poolescape holder assumes ownership and releases in Close
	//lint:allow poolescape ownership transfers to the holder by design
	h.buf = b
}
