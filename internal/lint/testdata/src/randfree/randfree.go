// Package randfree sits outside globalrand's deterministic import
// paths: global math/rand here is allowed (e.g. load-generator jitter).
package randfree

import "math/rand"

// Jitter may use the global generator; this package is not in scope.
func Jitter() float64 {
	return rand.Float64()
}
