// Package floateq holds floateq's cases: exact float comparison flagged
// outside tests, with the zero-sentinel, NaN-idiom, const-const, and
// //lint:allow exemptions all exercised.
package floateq

// Converged is the solver-termination antipattern floateq exists for.
func Converged(cost, prev float64) bool {
	return cost == prev // want "exact floating-point == comparison"
}

// Changed is the same bug spelled with !=.
func Changed(a, b float64) bool {
	return a != b // want "exact floating-point != comparison"
}

// MixedInt still compares as float: the untyped int converts.
func MixedInt(x float64) bool {
	return x == 3 // want "exact floating-point == comparison"
}

// FuncResult must be flagged even though both sides print identically:
// the NaN exemption is for access paths, not calls.
func FuncResult(f func() float64) bool {
	return f() == f() // want "exact floating-point == comparison"
}

// ZeroSentinel compares against exact zero, the "option unset" idiom.
func ZeroSentinel(maxNorm float64) bool {
	return maxNorm == 0
}

type opts struct{ eps float64 }

// ZeroSentinelField is the same idiom through a selector.
func ZeroSentinelField(o opts) bool {
	return 0.0 != o.eps
}

// IsNaN is the self-comparison idiom.
func IsNaN(x float64) bool {
	return x != x
}

// IsNaNField applies to selectors and indexes too.
func IsNaNField(o opts, xs []float64) bool {
	return o.eps != o.eps || xs[0] != xs[0]
}

// Consts fold exactly at compile time.
func Consts() bool {
	const half = 0.5
	return half == 0.25*2
}

// Ints are not floats; integer equality is exact.
func Ints(a, b int) bool {
	return a == b
}

// SameBits documents a sanctioned exact comparison with a mandatory
// reason; the allow suppresses the report on the next line.
func SameBits(a, b float64) bool {
	//lint:allow floateq bit-identity check on a deliberately copied value
	return a == b
}
