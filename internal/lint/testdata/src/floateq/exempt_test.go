// Test files are exempt wholesale: asserting exact expected values is
// the point of a numerical test. Nothing here may be reported.
package floateq

func exactAssert(got, want float64) bool {
	return got == want
}

func exactTable(got []float64, want float64) bool {
	return got[0] != want
}
