// Package guardorder holds guardorder's cases, reconstructing the PR 6
// close-period coupling: the optimizer holds its own mutex across the
// billing-ledger fold and the streaming-estimator refine, so every
// critical section it enters nests other package mutexes. One inverted
// nesting anywhere and two period closes deadlock each other.
package guardorder

import "sync"

// ledger stands in for the billing ledger.
type ledger struct {
	mu  sync.Mutex
	tot float64
}

// stream stands in for the streaming estimator.
type stream struct {
	mu sync.Mutex
	n  int
}

// opt stands in for the optimizer that coordinates both.
type opt struct {
	mu sync.Mutex
	l  *ledger
	s  *stream
}

// closeAB is the forward direction: opt.mu, then ledger.mu.
func (o *opt) closeAB() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.l.mu.Lock() // want "acquires ledger.mu while holding opt.mu"
	o.l.tot = 0
	o.l.mu.Unlock()
}

// foldBA is the inversion: ledger.mu, then opt.mu. Interleaved with
// closeAB this deadlocks.
func (l *ledger) foldBA(o *opt) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o.mu.Lock() // want "acquires opt.mu while holding ledger.mu"
	o.mu.Unlock()
}

// fold locks its own receiver; callers inherit the acquire through the
// one-level expansion.
func (s *stream) fold() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// closeVia nests stream.mu only transitively, through the fold call.
func (o *opt) closeVia() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.s.fold() // want `acquires stream.mu while holding opt.mu \(via fold\)`
}

// replanBad inverts the closeVia order directly.
func (s *stream) replanBad(o *opt) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o.mu.Lock() // want "acquires opt.mu while holding stream.mu"
	o.mu.Unlock()
}

// closeConsistent repeats closeAB's direction: consistent nesting adds
// no new hazard and no new report.
func (o *opt) closeConsistent() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.l.mu.Lock()
	o.l.tot++
	o.l.mu.Unlock()
}

// sequential holds the two mutexes one after the other, never nested:
// release-before-acquire imposes no order.
func (o *opt) sequential() {
	o.l.mu.Lock()
	o.l.tot = 0
	o.l.mu.Unlock()
	o.s.mu.Lock()
	o.s.n = 0
	o.s.mu.Unlock()
}
