package lint

import (
	"go/ast"
	"go/types"
)

// Aliasret flags exported methods that hand out internal slice or map
// state by reference — the multistart Result.X bug class, where a
// returned buffer aliased by the engine was mutated by a later restart.
// It applies to types opted in with a `//tubelint:noalias` comment on
// the type declaration, and automatically to any type with
// `// guarded by <mu>` fields (returning guarded state is doubly wrong:
// the alias outlives the critical section, so callers race with the
// engine as well as corrupt it).
//
// Only directly returned fields (`return s.buf`) and fields returned
// through a single trivial local (`x := s.buf; ...; return x`) are
// detected; copies made with append([]T(nil), s.buf...) or an explicit
// loop pass. Intentional exposure takes //lint:allow aliasret <reason>.
var Aliasret = &Analyzer{
	Name: "aliasret",
	Doc:  "flags exported methods returning internal slice/map fields without copying",
	Run:  runAliasret,
}

func runAliasret(pass *Pass) error {
	structs := collectStructs(pass, false)

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			typ, recv := receiverTypeName(fd)
			if typ == "" || recv == "" {
				continue
			}
			si := structs[typ]
			if si == nil || (!si.noalias && !si.anyGuarded()) {
				continue
			}
			checkAliasingReturns(pass, fd, si, recv)
		}
	}
	return nil
}

func checkAliasingReturns(pass *Pass, fd *ast.FuncDecl, si *structInfo, recv string) {
	// aliasLocals tracks trivial locals assigned straight from a
	// receiver field: `buf := s.buf; return buf`.
	aliasLocals := make(map[types.Object]string)

	fieldOf := func(e ast.Expr) string {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if !ok || id.Name != recv {
			return ""
		}
		if !selIsField(pass, sel) {
			return ""
		}
		return sel.Sel.Name
	}

	// refSemantics reports whether returning a value of type t aliases
	// backing storage: slices, maps, and pointers to them.
	refSemantics := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if fld := fieldOf(n.Rhs[i]); fld != "" && refSemantics(n.Rhs[i]) {
					aliasLocals[obj] = fld
				} else {
					delete(aliasLocals, obj) // reassigned to something else
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				res = unparen(res)
				fld := fieldOf(res)
				if fld == "" {
					if id, ok := res.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							fld = aliasLocals[obj]
						}
					}
				}
				if fld == "" || !refSemantics(res) {
					continue
				}
				detail := ""
				if mu := si.guardedBy(fld); mu != "" {
					detail = " (and the alias outlives the " + mu + " critical section)"
				}
				pass.Reportf(res.Pos(), "%s returns internal field %s without copying; callers can mutate %s state through the alias%s — return a copy", fd.Name.Name, fld, si.name, detail)
			}
		}
		return true
	})
}
