package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPkgs lists the import paths (and their subtrees) where
// bit-identical output at any -jobs count is a tested contract, so the
// process-global math/rand source — shared, lock-serialized, and
// schedule-dependent — is forbidden. Code there must thread an explicit
// *rand.Rand seeded per task (see optimize.MultistartJobs).
var DeterministicPkgs = []string{
	"tdp/internal/core",
	"tdp/internal/optimize",
	"tdp/internal/stochastic",
	"tdp/internal/experiments",
}

// randConstructors are the math/rand (and v2) package-level functions
// that build explicit sources rather than consuming the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"NewZipf":    true, // takes an explicit *Rand
}

// Globalrand forbids the global math/rand source in the deterministic
// packages: any reference to a package-level function of math/rand or
// math/rand/v2 other than the explicit-source constructors.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbids the global math/rand source in determinism-contract packages",
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) error {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			// Tests may use the global source for irrelevant fuzz input;
			// the determinism contract covers shipped code paths.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand have a receiver; only package-level
			// functions consume the global source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "rand.%s uses the process-global source; %s has a bit-identical-at-any-jobs contract — thread an explicit *rand.Rand seeded per task", fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}

func deterministicPkg(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
