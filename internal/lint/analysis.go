// Package lint is a self-contained static-analysis suite that
// mechanically enforces this repository's hard-won invariants: deep-copy
// discipline for Scenario-like types (structclone), single-critical-
// section locking (locksplit), no aliasing returns of guarded state
// (aliasret), no global math/rand in determinism-contract packages
// (globalrand), and no exact float equality outside tests (floateq).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library only
// (go/ast, go/types), because the build environment vendors no external
// modules. cmd/tubelint packages the suite both as a standalone checker
// and as a `go vet -vettool` unitchecker (see unitchecker.go).
//
// Suppression grammar (DESIGN.md §8): a comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line, or the line above it, suppresses that analyzer's
// diagnostics for the line. The reason is mandatory: bare allows are
// themselves reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked package
// under analysis, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	allow       *allowIndex
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos unless an in-scope //lint:allow
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.allow != nil && p.allow.allows(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the findings reported so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// Unit is one package ready for analysis: the shared file set, syntax,
// and type information. It is produced by the loaders in load.go and
// unitchecker.go.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies each analyzer to the unit and returns all diagnostics in
// source order. Analyzer errors (not findings) abort the run.
func (u *Unit) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := buildAllowIndex(u.Fset, u.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			allow:     allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		out = append(out, pass.Diagnostics()...)
	}
	out = append(out, allow.malformed...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// allowRe matches the suppression comment. Group 1 is the analyzer
// name, group 2 the (required) reason.
var allowRe = regexp.MustCompile(`^//lint:allow\s+(\w+)(?:\s+(.*))?$`)

// allowIndex maps (file, line) to the analyzers suppressed there. A
// comment suppresses its own line and, when it is the only thing on its
// line, the line that follows it.
type allowIndex struct {
	byLine    map[string]map[int]map[string]bool // file → line → analyzer set
	malformed []Diagnostic
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//lint:allow") {
						idx.malformed = append(idx.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "malformed //lint:allow comment: want //lint:allow <analyzer> <reason>",
							Analyzer: "lintallow",
						})
					}
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:allow %s needs a reason", m[1]),
						Analyzer: "lintallow",
					})
					continue
				}
				// A typo'd analyzer name would suppress nothing, silently:
				// the finding it meant to cover stays live while the
				// author believes it handled. Validate against the full
				// registry, not the enabled subset, so -<name>=false runs
				// do not start reporting long-standing allows.
				if ByName(m[1]) == nil && m[1] != "lintallow" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)", m[1], analyzerNames()),
						Analyzer: "lintallow",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				idx.add(pos.Filename, pos.Line, m[1])
				// A standalone comment line also covers the next line.
				idx.add(pos.Filename, pos.Line+1, m[1])
			}
		}
	}
	return idx
}

func (idx *allowIndex) add(file string, line int, analyzer string) {
	lines := idx.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		idx.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

func (idx *allowIndex) allows(analyzer string, pos token.Position) bool {
	return idx.byLine[pos.Filename][pos.Line][analyzer]
}

// isTestFile reports whether pos is inside a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
