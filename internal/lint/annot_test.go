package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// passFor type-checks one source file into a Pass for the given
// analyzer (internal-package twin of lint_test's runOnSource).
func passFor(t *testing.T, src string, a *Analyzer) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{Analyzer: a, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

func group(texts ...string) *ast.CommentGroup {
	g := &ast.CommentGroup{}
	for _, txt := range texts {
		g.List = append(g.List, &ast.Comment{Text: txt})
	}
	return g
}

func TestMarkersInGrammar(t *testing.T) {
	cases := []struct {
		name   string
		groups []*ast.CommentGroup
		want   []string
	}{
		{"single", []*ast.CommentGroup{group("//tubelint:pooled")}, []string{"pooled"}},
		{"multi comma list", []*ast.CommentGroup{group("//tubelint:pooled,cow")}, []string{"pooled", "cow"}},
		{"trailing prose", []*ast.CommentGroup{group("//tubelint:cow frozen after publish")}, []string{"cow"}},
		{"several groups", []*ast.CommentGroup{group("//tubelint:noalias"), group("//tubelint:cow")}, []string{"noalias", "cow"}},
		{"nil group skipped", []*ast.CommentGroup{nil, group("//tubelint:cow")}, []string{"cow"}},
		{"prose mention is not an annotation", []*ast.CommentGroup{group("// see //tubelint:pooled for the contract")}, nil},
		{"plain comment", []*ast.CommentGroup{group("// guarded by mu")}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := markersIn(c.groups...); !reflect.DeepEqual(got, c.want) {
				t.Errorf("markersIn = %v, want %v", got, c.want)
			}
		})
	}
}

func TestPooledMarkerOnFuncDoc(t *testing.T) {
	src := `package p

// getBuf hands out scratch.
//
//tubelint:pooled
func getBuf() []byte { return nil }

// plain has no marker.
func plain() []byte { return nil }

// prose mentions //tubelint:pooled but does not start with it.
func mentioned() []byte { return nil }
`
	pass := passFor(t, src, Poolescape)
	pooled := collectPooledFuncs(pass, true)
	names := make(map[string]bool)
	for obj := range pooled {
		names[obj.Name()] = true
	}
	if !names["getBuf"] || names["plain"] || names["mentioned"] {
		t.Errorf("pooled funcs = %v, want exactly getBuf", names)
	}
	if diags := pass.Diagnostics(); len(diags) != 0 {
		t.Errorf("well-formed markers reported: %v", diags)
	}
}

func TestCowMarkerPlacements(t *testing.T) {
	// Both placements must bind: a doc comment above the field and a
	// trailing comment on the field's own line.
	src := `package p

type snap struct {
	//tubelint:cow
	docAnnotated []int

	trailing []int //tubelint:cow

	plain []int
}
`
	pass := passFor(t, src, Cowmut)
	structs := collectStructs(pass, false)
	si := structs["snap"]
	if si == nil {
		t.Fatal("struct snap not collected")
	}
	if !si.cow["docAnnotated"] || !si.cow["trailing"] || si.cow["plain"] {
		t.Errorf("cow fields = %v, want docAnnotated and trailing only", si.cow)
	}
}

func TestUnknownMarkerReported(t *testing.T) {
	src := `package p

//tubelint:poold
func oops() {}
`
	pass := passFor(t, src, Poolescape)
	collectPooledFuncs(pass, true)
	diags := pass.Diagnostics()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown //tubelint: marker "poold"`) {
		t.Errorf("unknown marker not reported; got %v", diags)
	}
}

func TestMultiAnnotationLineBindsAllMarkers(t *testing.T) {
	// One comment carrying several markers applies each of them: the
	// type is opted into aliasret AND its single field list is not
	// affected. (noalias is the only type-level marker today; the comma
	// grammar is exercised through hasMarker on both names.)
	src := `package p

//tubelint:noalias,cow
type both struct{ xs []int }
`
	pass := passFor(t, src, Locksplit)
	gd := pass.Files[0].Decls[0].(*ast.GenDecl)
	if !hasMarker(nil, markerNoalias, func() ast.Node { return gd }, gd.Doc) {
		t.Error("noalias not parsed from the comma list")
	}
	if !hasMarker(nil, markerCow, func() ast.Node { return gd }, gd.Doc) {
		t.Error("cow not parsed from the comma list")
	}
	if hasMarker(nil, markerPooled, func() ast.Node { return gd }, gd.Doc) {
		t.Error("pooled reported present but absent from the list")
	}
}
