package lint

import (
	"go/ast"
	"go/types"
)

// Cowmut enforces the copy-on-write discipline behind every
// atomic.Pointer in the streaming and cluster planes (the PR 6
// subscriber registry, the PR 7 ring and price-snapshot views): a value
// reached through atomic.Pointer.Load — or through a field annotated
// //tubelint:cow — is an immutable published snapshot. Readers hold it
// lock-free, so writing through it (element or field assignment,
// append into its backing array, copy/clear/sort over it) is a data
// race with every concurrent reader even when the writer holds the
// registry's update mutex: mutate a fresh copy and Store that instead.
//
// Taint follows the shared dataflow-lite def-use engine: anything
// assigned from a Load (dereferences, slices, and fields included) is
// read-only. Known mutators are the builtins append/copy/clear (with
// the loaded value as destination) and the sort package's in-place
// sorts. Calling a method on a loaded value is not flagged — internally
// synchronized fields (counters, gauges) behind a published pointer are
// the repo's metrics idiom.
var Cowmut = &Analyzer{
	Name: "cowmut",
	Doc:  "flags mutations of values loaded from atomic.Pointer or //tubelint:cow fields: copy-on-write snapshots are read-only after Load",
	Run:  runCowmut,
}

func runCowmut(pass *Pass) error {
	structs := collectStructs(pass, false)

	// cowField reports whether sel reads a field annotated
	// //tubelint:cow, resolved through the selection's receiver type so
	// same-named fields on other structs do not match.
	cowField := func(sel *ast.SelectorExpr) bool {
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return false
		}
		tn := namedTypeName(pass.Pkg, selection.Recv())
		if tn == "" {
			return false
		}
		si := structs[tn]
		return si != nil && si.cow[sel.Sel.Name]
	}

	funcBodies(pass, func(fd *ast.FuncDecl) {
		source := func(e ast.Expr) bool {
			switch e := e.(type) {
			case *ast.CallExpr:
				return isMethodCallOn(pass, e, "sync/atomic", "Pointer", "Load")
			case *ast.SelectorExpr:
				return cowField(e)
			}
			return false
		}
		taint := newTaint(pass, fd.Body, source)
		if len(taint.TaintedObjects()) == 0 {
			// Still scan: direct writes like p.Load().f = x need no local.
			hasDirect := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && source(e) {
					hasDirect = true
					return false
				}
				return true
			})
			if !hasDirect {
				return
			}
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if root := cowWriteRoot(taint, lhs); root != nil {
						pass.Reportf(lhs.Pos(), "write through a copy-on-write value in %s; concurrent readers hold this snapshot lock-free — mutate a fresh copy and Store it", fd.Name.Name)
					}
				}
			case *ast.IncDecStmt:
				if root := cowWriteRoot(taint, n.X); root != nil {
					pass.Reportf(n.Pos(), "write through a copy-on-write value in %s; concurrent readers hold this snapshot lock-free — mutate a fresh copy and Store it", fd.Name.Name)
				}
			case *ast.CallExpr:
				reportCowMutatorCall(pass, fd, taint, n)
			}
			return true
		})
	})
	return nil
}

// cowWriteRoot reports whether an assignment target writes *through* a
// tainted value — an index, dereference, or field rooted at one — as
// opposed to rebinding a tainted local (legal: the local now aliases
// something else). It returns the offending root expression, or nil.
func cowWriteRoot(taint *taintTracker, lhs ast.Expr) ast.Expr {
	e := unparen(lhs)
	switch x := e.(type) {
	case *ast.IndexExpr:
		if taint.Tainted(x.X) {
			return x.X
		}
	case *ast.StarExpr:
		if taint.Tainted(x.X) {
			return x.X
		}
	case *ast.SelectorExpr:
		if taint.Tainted(x.X) {
			return x.X
		}
	}
	return nil
}

// reportCowMutatorCall flags the known mutators applied to a
// copy-on-write value: append growing into its backing array, copy or
// clear with it as destination, and the sort package's in-place sorts.
func reportCowMutatorCall(pass *Pass, fd *ast.FuncDecl, taint *taintTracker, call *ast.CallExpr) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				if len(call.Args) > 0 && taint.Tainted(call.Args[0]) {
					pass.Reportf(call.Pos(), "append onto a copy-on-write slice in %s may write into the shared backing array — build a fresh slice (make+copy) and Store it", fd.Name.Name)
				}
			case "copy", "clear":
				if len(call.Args) > 0 && taint.Tainted(call.Args[0]) {
					pass.Reportf(call.Pos(), "%s into a copy-on-write value in %s races every concurrent reader — mutate a fresh copy and Store it", obj.Name(), fd.Name.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return
		}
		for _, a := range call.Args {
			if taint.Tainted(a) {
				pass.Reportf(call.Pos(), "sort.%s over a copy-on-write value in %s reorders the shared snapshot in place — sort a fresh copy and Store it", fun.Sel.Name, fd.Name.Name)
				return
			}
		}
	}
}
