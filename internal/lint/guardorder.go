package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Guardorder derives a package-level lock-acquisition order from the
// nestings the code actually exhibits and flags any mutex pair acquired
// in both orders — the classic AB/BA deadlock. It matters since PR 6/7
// put multi-lock holds on the hot path: Optimizer.ClosePeriod holds its
// own mutex across the billing fold and the streaming refine, and
// Controller.ObservePeriod holds its mutex across the fold/refine/replan
// cut, so each of those critical sections transitively acquires other
// annotated mutexes. One inverted nesting anywhere in the package and
// two period closes can deadlock each other.
//
// Mutexes are identified as Type.field for every sync.Mutex/RWMutex
// field of a package struct (the same model the `// guarded by` grammar
// rests on). Nesting is observed two ways, in source order per
// function: a direct x.mu.Lock() while another mutex is held, and — the
// locksplit-style one-level call expansion — a call to a package
// method whose body acquires its receiver's mutex, treated as a
// transient acquire/release at the call site. Read locks count: an
// RLock/Lock inversion deadlocks just as hard under writer priority.
var Guardorder = &Analyzer{
	Name: "guardorder",
	Doc:  "flags mutex pairs acquired in both orders across the package (AB/BA deadlock hazard), via observed nestings and one-level call expansion",
	Run:  runGuardorder,
}

// lockEdge records "to acquired while from was held" at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string // function exhibiting the nesting
	via      string // non-empty when the inner acquire came from a callee
}

func runGuardorder(pass *Pass) error {
	structs := collectStructs(pass, false)

	// Phase 1: per-method summaries — which Type.field mutexes a method
	// acquires directly (no expansion, mirroring locksplit's one level).
	acquiresOf := make(map[string]map[string]bool) // "Type.Method" → mutex keys
	funcBodies(pass, func(fd *ast.FuncDecl) {
		typ, _ := receiverTypeName(fd)
		if typ == "" {
			return
		}
		keys := make(map[string]bool)
		walkShallow(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, rel, ok := mutexKeyCall(pass, structs, call); ok && !rel {
					keys[key] = true
				}
			}
			return true
		})
		if len(keys) > 0 {
			acquiresOf[typ+"."+fd.Name.Name] = keys
		}
	})

	// Phase 2: replay each function's event stream, collecting edges.
	var edges []lockEdge
	funcBodies(pass, func(fd *ast.FuncDecl) {
		held := make(map[string]int) // mutex key → hold depth
		heldOrder := func() []string {
			var out []string
			for k, n := range held {
				if n > 0 {
					out = append(out, k)
				}
			}
			sort.Strings(out)
			return out
		}
		walkShallow(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// Deferred Unlocks release at return; for order purposes
				// the mutex simply stays held for the rest of the stream,
				// which is exactly the hazard window.
				return false
			case *ast.CallExpr:
				if key, rel, ok := mutexKeyCall(pass, structs, n); ok {
					if rel {
						if held[key] > 0 {
							held[key]--
						}
						return true
					}
					for _, h := range heldOrder() {
						if h != key {
							edges = append(edges, lockEdge{from: h, to: key, pos: n.Pos(), fn: fd.Name.Name})
						}
					}
					held[key]++
					return true
				}
				// One-level expansion: a package method that locks its
				// receiver is a transient acquire at the call site.
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
					if tn := namedTypeOf(pass, sel.X); tn != "" {
						if keys := acquiresOf[tn+"."+sel.Sel.Name]; keys != nil {
							var inner []string
							for k := range keys {
								inner = append(inner, k)
							}
							sort.Strings(inner)
							for _, h := range heldOrder() {
								for _, k := range inner {
									if h != k {
										edges = append(edges, lockEdge{from: h, to: k, pos: n.Pos(), fn: fd.Name.Name, via: sel.Sel.Name})
									}
								}
							}
						}
					}
				}
			}
			return true
		})
	})

	// Phase 3: pairwise inversion check. First edge per direction wins
	// the report position; each inverted pair is reported once per
	// direction so both sites surface.
	first := make(map[[2]string]lockEdge)
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e
		}
	}
	var keys [][2]string
	for k := range first {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		inv, ok := first[[2]string{k[1], k[0]}]
		if !ok {
			continue
		}
		e := first[k]
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via %s)", e.via)
		}
		pass.Reportf(e.pos, "%s acquires %s while holding %s%s, but %s acquires them in the opposite order (line %d): AB/BA deadlock hazard — pick one package-wide order",
			e.fn, e.to, e.from, via, inv.fn, pass.Fset.Position(inv.pos).Line)
	}
	return nil
}

// mutexKeyCall resolves call as <expr>.<muField>.Lock/RLock (release
// false) or Unlock/RUnlock (release true) where <expr>'s named type is a
// package struct with that mutex field, returning the "Type.field" key.
func mutexKeyCall(pass *Pass, structs map[string]*structInfo, call *ast.CallExpr) (key string, release, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		release = false
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	muSel, isSel := unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	tn := namedTypeOf(pass, muSel.X)
	if tn == "" {
		return "", false, false
	}
	si := structs[tn]
	if si == nil || !si.mutexes[muSel.Sel.Name] {
		return "", false, false
	}
	return tn + "." + muSel.Sel.Name, release, true
}
