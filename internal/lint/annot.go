package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedRe matches the field annotation `// guarded by <mutexfield>`,
// anywhere in the field's doc or trailing comment.
var guardedRe = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// tubelintRe matches a //tubelint:<markers> annotation comment. markers
// is a comma-separated list of lowercase marker names; prose may follow
// after the list. Like //go: directives, the marker must start the
// comment — a mid-comment mention ("see //tubelint:pooled") is prose,
// not an annotation, so documentation about the grammar cannot
// annotate its own declarations.
var tubelintRe = regexp.MustCompile(`^//tubelint:([a-z]+(?:,[a-z]+)*)`)

// Markers understood by the suite. Unknown markers are reported by
// collectStructs/collectPooledFuncs so typos cannot silently disable
// enforcement.
const (
	markerNoalias = "noalias" // type: aliasret opts the type in
	markerPooled  = "pooled"  // func: results are pool-backed (poolescape source)
	markerCow     = "cow"     // field: copy-on-write, read-only after load (cowmut source)
)

var knownMarkers = map[string]bool{
	markerNoalias: true,
	markerPooled:  true,
	markerCow:     true,
}

// markersIn collects every //tubelint: marker present in the comment
// groups, in the order encountered. Nil groups are skipped, so callers
// can pass doc and trailing comments unconditionally.
func markersIn(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := tubelintRe.FindStringSubmatch(c.Text); m != nil {
				out = append(out, strings.Split(m[1], ",")...)
			}
		}
	}
	return out
}

// hasMarker reports whether the comment groups carry the marker, and
// reports unknown marker names through pass (once per occurrence) when
// pass is non-nil.
func hasMarker(pass *Pass, marker string, pos func() ast.Node, groups ...*ast.CommentGroup) bool {
	found := false
	for _, m := range markersIn(groups...) {
		if m == marker {
			found = true
		}
		if pass != nil && !knownMarkers[m] {
			pass.Reportf(pos().Pos(), "unknown //tubelint: marker %q (known: cow, noalias, pooled)", m)
		}
	}
	return found
}

// collectPooledFuncs returns the declared functions and methods whose
// doc carries //tubelint:pooled, keyed by their types.Object: their
// results come from a sync.Pool and obey the poolescape contract.
// Marker-typo reporting runs only when report is true (poolescape
// reports; other analyzers share the structs walk, which reports there).
func collectPooledFuncs(pass *Pass, report bool) map[types.Object]bool {
	out := make(map[types.Object]bool)
	var rp *Pass
	if report {
		rp = pass
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasMarker(rp, markerPooled, func() ast.Node { return fd }, fd.Doc) {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// structInfo is the annotation-derived model of one struct type in the
// package under analysis.
type structInfo struct {
	name    string          // type name
	mutexes map[string]bool // fields of type sync.Mutex / sync.RWMutex / pointers thereto
	// guarded maps mutex field name → set of fields annotated
	// `// guarded by <mutex>`.
	guarded map[string]map[string]bool
	noalias bool            // type carries //tubelint:noalias
	cow     map[string]bool // fields annotated //tubelint:cow (read-only after load)
}

// guardedBy returns the mutex that guards field, or "".
func (si *structInfo) guardedBy(field string) string {
	for mu, set := range si.guarded {
		if set[field] {
			return mu
		}
	}
	return ""
}

// anyGuarded reports whether any field carries a guard annotation.
func (si *structInfo) anyGuarded() bool {
	for _, set := range si.guarded {
		if len(set) > 0 {
			return true
		}
	}
	return false
}

// collectStructs walks the package's type declarations and extracts
// mutex fields, `// guarded by` annotations, and //tubelint:noalias
// markers. When report is true, annotations naming a non-mutex or
// unknown field are reported through pass so typos cannot silently
// disable enforcement (only locksplit reports, so shared use by
// aliasret does not duplicate diagnostics).
func collectStructs(pass *Pass, report bool) map[string]*structInfo {
	out := make(map[string]*structInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				si := &structInfo{
					name:    ts.Name.Name,
					mutexes: make(map[string]bool),
					guarded: make(map[string]map[string]bool),
					cow:     make(map[string]bool),
				}
				// Type-level markers may sit on the TypeSpec or, for a
				// single-spec declaration, on the GenDecl.
				var rp *Pass
				if report {
					rp = pass
				}
				si.noalias = hasMarker(rp, markerNoalias, func() ast.Node { return ts }, gd.Doc, ts.Doc, ts.Comment)
				// First pass: find the mutex fields.
				for _, fld := range st.Fields.List {
					if !isMutexField(pass, fld) {
						continue
					}
					for _, name := range fld.Names {
						si.mutexes[name.Name] = true
					}
				}
				// Second pass: bind guarded and cow annotations.
				for _, fld := range st.Fields.List {
					fld := fld
					if hasMarker(rp, markerCow, func() ast.Node { return fld }, fld.Doc, fld.Comment) {
						for _, name := range fld.Names {
							si.cow[name.Name] = true
						}
					}
					mu := guardAnnotation(fld)
					if mu == "" {
						continue
					}
					if !si.mutexes[mu] {
						if report {
							pass.Reportf(fld.Pos(), "field annotated `guarded by %s`, but %s has no mutex field %s", mu, si.name, mu)
						}
						continue
					}
					if si.guarded[mu] == nil {
						si.guarded[mu] = make(map[string]bool)
					}
					for _, name := range fld.Names {
						si.guarded[mu][name.Name] = true
					}
				}
				out[si.name] = si
			}
		}
	}
	return out
}

// guardAnnotation returns the mutex name from a field's
// `// guarded by <mu>` doc or line comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, doc := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// isMutexField reports whether the field's type is sync.Mutex,
// sync.RWMutex, or a pointer to either.
func isMutexField(pass *Pass, fld *ast.Field) bool {
	tv, ok := pass.TypesInfo.Types[fld.Type]
	if !ok {
		return false
	}
	return isMutexType(tv.Type)
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverTypeName returns the name of the method receiver's base type
// and the receiver identifier, or "" when fd is not a method or the
// receiver is anonymous.
func receiverTypeName(fd *ast.FuncDecl) (typ, recv string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	r := fd.Recv.List[0]
	t := r.Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	// Generic receivers (T[P]) unwrap to the identifier.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(r.Names) == 1 {
		return id.Name, r.Names[0].Name
	}
	return id.Name, ""
}
