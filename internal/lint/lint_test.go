package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"tdp/internal/lint"
	"tdp/internal/lint/linttest"
)

// The fixture suites: each fails if its analyzer is disabled or broken,
// because every `// want` expectation must be matched by a diagnostic.

func TestStructclone(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Structclone, "structclone")
}

func TestLocksplit(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Locksplit, "locksplit")
}

func TestAliasret(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Aliasret, "aliasret")
}

func TestGlobalrand(t *testing.T) {
	// The stochastic fixture lives under a deterministic import path and
	// must be flagged; randfree sits outside them and must stay silent.
	linttest.Run(t, "testdata/src", lint.Globalrand, "tdp/internal/stochastic", "randfree")
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Floateq, "floateq")
}

func TestPoolescape(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Poolescape, "poolescape")
}

func TestCowmut(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Cowmut, "cowmut")
}

func TestErrwrapped(t *testing.T) {
	// The contract keys off the import path's last element: the tube
	// fixture is under it, the other fixture must stay silent.
	linttest.Run(t, "testdata/src", lint.Errwrapped, "errwrapped/tube", "errwrapped/other")
}

func TestGuardorder(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Guardorder, "guardorder")
}

// runOnSource type-checks one synthetic file and runs a single analyzer
// over it, for grammar-level tests that don't warrant a fixture tree.
func runOnSource(t *testing.T, src string, a *lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := lint.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	u := &lint.Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	diags, err := u.Run([]*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestAllowReasonMandatory(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	//lint:allow floateq
	return a == b
}
`
	diags := runOnSource(t, src, lint.Floateq)
	var sawBare, sawFloateq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintallow":
			if strings.Contains(d.Message, "needs a reason") {
				sawBare = true
			}
		case "floateq":
			sawFloateq = true
		}
	}
	if !sawBare {
		t.Errorf("reason-less //lint:allow not reported; got %v", diags)
	}
	if !sawFloateq {
		t.Errorf("reason-less //lint:allow suppressed the diagnostic anyway; got %v", diags)
	}
}

func TestAllowUnknownAnalyzerReported(t *testing.T) {
	// A typo'd analyzer name suppresses nothing silently; the index must
	// say so, and the intended diagnostic must still fire.
	src := `package p

func f(a, b float64) bool {
	return a == b //lint:allow floateqq misspelled on purpose
}
`
	diags := runOnSource(t, src, lint.Floateq)
	var sawUnknown, sawFloateq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintallow":
			if strings.Contains(d.Message, `unknown analyzer "floateqq"`) {
				sawUnknown = true
			}
		case "floateq":
			sawFloateq = true
		}
	}
	if !sawUnknown {
		t.Errorf("typo'd //lint:allow analyzer name not reported; got %v", diags)
	}
	if !sawFloateq {
		t.Errorf("typo'd //lint:allow suppressed the diagnostic anyway; got %v", diags)
	}
}

func TestAllowOnSameLine(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	return a == b //lint:allow floateq documented exact comparison
}
`
	if diags := runOnSource(t, src, lint.Floateq); len(diags) != 0 {
		t.Errorf("trailing //lint:allow with reason should suppress; got %v", diags)
	}
}

func TestSuiteRegistersAllNine(t *testing.T) {
	want := []string{
		"structclone", "locksplit", "aliasret", "globalrand", "floateq",
		"poolescape", "cowmut", "errwrapped", "guardorder",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Doc == "" || got[i].Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", name)
		}
		if lint.ByName(name) != got[i] {
			t.Errorf("ByName(%q) does not resolve to the registered analyzer", name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) should be nil")
	}
}
