package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdp/internal/lint"
)

// writeUnitFixture lays out a one-file, import-free package plus a
// hand-built vet.cfg for it — the minimal honest instance of the go
// vet driver protocol (no export data needed when nothing is imported).
// The source carries one floateq violation so runs produce exactly one
// finding.
func writeUnitFixture(t *testing.T) (cfgPath, goFile, vetx string) {
	t.Helper()
	dir := t.TempDir()
	goFile = filepath.Join(dir, "p.go")
	src := `package p

func equalish(a, b float64) bool {
	return a == b
}
`
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	vetx = filepath.Join(dir, "p.vetx")
	cfg := lint.VetConfig{
		ID:         "p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "p",
		GoFiles:    []string{goFile},
		ImportMap:  map[string]string{},
		VetxOutput: vetx,
		GoVersion:  "go1.22",
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal cfg: %v", err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatalf("writing cfg: %v", err)
	}
	return cfgPath, goFile, vetx
}

func TestUnitcheckerTextFindings(t *testing.T) {
	cfgPath, goFile, vetx := writeUnitFixture(t)
	var out bytes.Buffer
	code := lint.RunUnitchecker(cfgPath, lint.Analyzers(), &out)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (findings present)\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly one finding line, got %d:\n%s", len(lines), out.String())
	}
	f, ok := lint.ParseFinding(lines[0])
	if !ok {
		t.Fatalf("finding line %q does not parse back", lines[0])
	}
	if f.Analyzer != "floateq" || f.File != goFile || f.Line != 4 {
		t.Errorf("parsed finding %+v, want floateq at %s:4", f, goFile)
	}
	// The facts file must exist even though tubelint records no facts:
	// the go command caches on its presence.
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestUnitcheckerJSONFindings(t *testing.T) {
	cfgPath, goFile, _ := writeUnitFixture(t)
	var out bytes.Buffer
	code := lint.RunUnitcheckerJSON(cfgPath, lint.Analyzers(), &out)
	if code != 2 {
		t.Fatalf("exit code %d, want 2\n%s", code, out.String())
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var recs []lint.Finding
	for dec.More() {
		var f lint.Finding
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("output is not NDJSON Finding records: %v\n%s", err, out.String())
		}
		recs = append(recs, f)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 JSON finding, got %d", len(recs))
	}
	if recs[0].Analyzer != "floateq" || recs[0].File != goFile || recs[0].Line != 4 || recs[0].Col == 0 {
		t.Errorf("JSON finding %+v, want floateq at %s:4 with a column", recs[0], goFile)
	}
}

func TestUnitcheckerMalformedCfg(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := lint.RunUnitchecker(bad, lint.Analyzers(), &out); code != 1 {
		t.Errorf("malformed cfg: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "parsing") {
		t.Errorf("malformed cfg produced no parse diagnostic: %q", out.String())
	}
	if code := lint.RunUnitchecker(filepath.Join(dir, "missing.cfg"), lint.Analyzers(), &out); code != 1 {
		t.Errorf("missing cfg: exit %d, want 1", code)
	}
}

func TestUnitcheckerCleanPackageExitsZero(t *testing.T) {
	cfgPath, goFile, _ := writeUnitFixture(t)
	clean := `package p

func sum(a, b float64) float64 { return a + b }
`
	if err := os.WriteFile(goFile, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := lint.RunUnitchecker(cfgPath, lint.Analyzers(), &out); code != 0 {
		t.Errorf("clean package: exit %d, want 0\n%s", code, out.String())
	}
}

func TestParseFindingRejectsOtherLines(t *testing.T) {
	for _, line := range []string{
		"",
		"# tdp/internal/core",
		"tubelint: running go vet: exit status 1",
		"a.go:12: missing column (floateq)",
		"a.go:12:3: no analyzer suffix",
	} {
		if _, ok := lint.ParseFinding(line); ok {
			t.Errorf("ParseFinding(%q) = ok, want reject", line)
		}
	}
	f, ok := lint.ParseFinding("/x/a.go:12:3: exact comparison of floats (floateq)")
	if !ok || f.File != "/x/a.go" || f.Line != 12 || f.Col != 3 || f.Analyzer != "floateq" {
		t.Errorf("ParseFinding round-trip failed: %+v ok=%v", f, ok)
	}
}
