// Package linttest is a miniature analysistest: it runs one analyzer
// over GOPATH-style fixture packages under testdata/src and checks the
// reported diagnostics against `// want "regex"` comments in the
// fixture source, in both directions — every diagnostic must be
// expected, and every expectation must fire. A fixture therefore fails
// the test if its analyzer is disabled or broken.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tdp/internal/lint"
)

// Fixture loads are shared across every Run call in the process: one
// loader per source root, so the nine-analyzer suite type-checks each
// fixture package (and the stdlib behind it) once, not once per
// analyzer. The mutex also serializes Load for parallel subtests.
var (
	loaderMu sync.Mutex
	loaders  = map[string]*lint.FixtureLoader{}
)

func loadShared(srcRoot, pkg string) (*lint.Unit, error) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	fl := loaders[srcRoot]
	if fl == nil {
		fl = lint.NewFixtureLoader(srcRoot)
		loaders[srcRoot] = fl
	}
	return fl.Load(pkg)
}

// wantRe extracts the comment payload after "// want".
var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes each fixture package with a and compares diagnostics to
// the fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			t.Helper()
			unit, err := loadShared(srcRoot, pkg)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", pkg, err)
			}
			diags, err := unit.Run([]*lint.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
			}

			expects := collectWants(t, unit)

			for _, d := range diags {
				pos := unit.Fset.Position(d.Pos)
				found := false
				for _, e := range expects {
					if e.matched || e.file != pos.Filename || e.line != pos.Line {
						continue
					}
					if e.pattern.MatchString(d.Message) {
						e.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
				}
			}
			for _, e := range expects {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
				}
			}
		})
	}
}

// collectWants parses `// want "p1" "p2"` comments from every file in
// the unit. Each quoted string is one expected diagnostic on that line.
func collectWants(t *testing.T, unit *lint.Unit) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b c"`.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		// Find the end of this Go string literal.
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 2
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i + 1
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		unq, err := strconv.Unquote(s[:end])
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end:])
	}
	return out, nil
}
