package lint_test

import (
	"testing"

	"tdp/internal/lint"
)

// The two shapes of a nine-analyzer suite run over one fixture: the
// historical per-analyzer reload (each Run call paid a fresh loader,
// re-type-checking the package and the stdlib behind it nine times)
// versus one shared FixtureLoader (type-check once, analyze nine
// times). The delta is the cost satellite work in PR 8 removed from
// every linttest suite run.

func BenchmarkFixtureLoadPerAnalyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for range lint.Analyzers() {
			if _, err := lint.LoadFixture("testdata/src", "floateq"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFixtureLoadShared(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fl := lint.NewFixtureLoader("testdata/src")
		for range lint.Analyzers() {
			if _, err := fl.Load("floateq"); err != nil {
				b.Fatal(err)
			}
		}
	}
}
