package lint

// Analyzers returns the full tubelint suite in reporting order. Every
// analyzer registered here is run by cmd/tubelint in both standalone
// and `go vet -vettool` modes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Structclone,
		Locksplit,
		Aliasret,
		Globalrand,
		Floateq,
		Poolescape,
		Cowmut,
		Errwrapped,
		Guardorder,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// analyzerNames returns the registered names, comma-separated, for
// diagnostics about the //lint:allow grammar.
func analyzerNames() string {
	names := ""
	for i, a := range Analyzers() {
		if i > 0 {
			names += ", "
		}
		names += a.Name
	}
	return names
}
