package lint

// Analyzers returns the full tubelint suite in reporting order. Every
// analyzer registered here is run by cmd/tubelint in both standalone
// and `go vet -vettool` modes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Structclone,
		Locksplit,
		Aliasret,
		Globalrand,
		Floateq,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
