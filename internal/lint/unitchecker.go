package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol with the
// standard library only (the x/tools unitchecker is not vendored). The
// go command invokes the tool once per package as
//
//	tubelint <flags> <objdir>/vet.cfg
//
// where vet.cfg is the JSON below (mirrors cmd/go/internal/work's
// vetConfig). The tool type-checks the package against the export data
// the build recorded in PackageFile, runs the analyzers, prints
// findings to stderr as file:line:col: message, writes the (empty —
// tubelint uses no cross-package facts) facts file to VetxOutput, and
// exits nonzero when anything was reported.

// VetConfig is the per-package configuration written by the go command.
type VetConfig struct {
	ID            string
	Compiler      string
	Dir           string
	ImportPath    string
	GoFiles       []string
	NonGoFiles    []string
	IgnoredFiles  []string
	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// A Finding is one diagnostic in the machine-readable -json output:
// newline-delimited JSON records, one per finding, stable field names.
// The CI lint job turns these into GitHub Actions annotations.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// findingRe parses the text form a unitchecker child process prints:
// path:line:col: message (analyzer). The standalone driver uses it to
// recover structured records from `go vet` stderr.
var findingRe = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*) \((\w+)\)$`)

// ParseFinding recovers a Finding from one line of unitchecker text
// output, reporting ok=false for lines in any other shape (package
// banners, driver errors), which stream through untouched.
func ParseFinding(line string) (Finding, bool) {
	m := findingRe.FindStringSubmatch(line)
	if m == nil {
		return Finding{}, false
	}
	l, err1 := strconv.Atoi(m[2])
	c, err2 := strconv.Atoi(m[3])
	if err1 != nil || err2 != nil {
		return Finding{}, false
	}
	return Finding{File: m[1], Line: l, Col: c, Message: m[4], Analyzer: m[5]}, true
}

// RunUnitchecker executes the vet protocol for one vet.cfg file and
// returns the process exit code. Diagnostics go to w as
// file:line:col: message (analyzer) text lines.
func RunUnitchecker(cfgFile string, analyzers []*Analyzer, w io.Writer) int {
	return runUnitchecker(cfgFile, analyzers, w, false)
}

// RunUnitcheckerJSON is RunUnitchecker with -json output: diagnostics
// are emitted as newline-delimited Finding records instead of text.
func RunUnitcheckerJSON(cfgFile string, analyzers []*Analyzer, w io.Writer) int {
	return runUnitchecker(cfgFile, analyzers, w, true)
}

func runUnitchecker(cfgFile string, analyzers []*Analyzer, w io.Writer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "tubelint: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "tubelint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	unit, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go's hack for packages that vet cannot type-check but
			// the compiler can (issue 18395): report success silently.
			writeVetx(&cfg)
			return 0
		}
		fmt.Fprintf(w, "tubelint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := unit.Run(analyzers)
	if err != nil {
		fmt.Fprintf(w, "tubelint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Facts must be written even on success so the go command can cache
	// the (empty) result for dependency vet runs.
	writeVetx(&cfg)

	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		if jsonOut {
			pos := unit.Fset.Position(d.Pos)
			rec, err := json.Marshal(Finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			if err == nil {
				fmt.Fprintf(w, "%s\n", rec)
			}
			continue
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", unit.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

func writeVetx(cfg *VetConfig) {
	if cfg.VetxOutput != "" {
		os.WriteFile(cfg.VetxOutput, []byte{}, 0666)
	}
}

// typecheckUnit parses cfg.GoFiles and type-checks them against the
// export data recorded in cfg.PackageFile.
func typecheckUnit(cfg *VetConfig) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, post-ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	goVersion := cfg.GoVersion
	if !strings.HasPrefix(goVersion, "go1") {
		goVersion = "" // unknown scheme; let go/types use its default
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
