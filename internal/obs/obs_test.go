package obs

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewCounter().Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", nil)
	b := r.Counter("x_total", "other help ignored", nil)
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	l1 := r.Counter("y_total", "", Labels{"h": "a"})
	l2 := r.Counter("y_total", "", Labels{"h": "b"})
	if l1 == l2 {
		t.Fatal("different labels returned the same counter")
	}
	if l1 != r.Counter("y_total", "", Labels{"h": "a"}) {
		t.Fatal("label lookup not stable")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m_total", "", nil)
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("0bad name", "", nil)
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("gf", "", nil, func() float64 { return 1 })
	r.GaugeFunc("gf", "", nil, func() float64 { return 2 })
	snap := r.capture()
	if len(snap) != 1 || len(snap[0].members) != 1 {
		t.Fatalf("unexpected capture shape: %+v", snap)
	}
	if got := snap[0].members[0].gf.value(); got != 2 {
		t.Fatalf("gauge func = %v, want 2 (last registration wins)", got)
	}
}

// TestCounterShardedVsSerial is the sharded-counter equivalence
// property test (mirroring the ingest engine's equivalence tests): for
// any interleaving of concurrent Adds across any stripe count, the
// merged Value equals the serial sum.
func TestCounterShardedVsSerial(t *testing.T) {
	const (
		workers = 8
		perW    = 1000
	)
	for _, nstripes := range []int{1, 2, 8, 64} {
		c := newCounterStripes(nstripes)
		var ref int64
		for w := 0; w < workers; w++ {
			for i := 0; i < perW; i++ {
				ref += int64(w*perW+i) % 7
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					c.Add(int64(w*perW+i) % 7)
				}
			}(w)
		}
		wg.Wait()
		if got := c.Value(); got != ref {
			t.Fatalf("stripes=%d: merged value %d, want serial sum %d", nstripes, got, ref)
		}
	}
}

// TestHistogramShardedVsSerial: concurrent striped observations must
// merge to exactly the single-stripe (serial-equivalent) bucket counts.
func TestHistogramShardedVsSerial(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	vals := make([]float64, 4000)
	for i := range vals {
		vals[i] = float64(i%11) * 0.9
	}
	serial := newHistogramStripes(bounds, 1)
	for _, v := range vals {
		serial.Observe(v)
	}
	for _, nstripes := range []int{2, 8, 32} {
		h := newHistogramStripes(bounds, nstripes)
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(vals); i += workers {
					h.Observe(vals[i])
				}
			}(w)
		}
		wg.Wait()
		got, want := h.Snapshot(), serial.Snapshot()
		if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("stripes=%d: count/min/max = %d/%v/%v, want %d/%v/%v",
				nstripes, got.Count, got.Min, got.Max, want.Count, want.Min, want.Max)
		}
		for j := range got.Counts {
			if got.Counts[j] != want.Counts[j] {
				t.Fatalf("stripes=%d: bucket %d = %d, want %d",
					nstripes, j, got.Counts[j], want.Counts[j])
			}
		}
	}
}

// TestConcurrentWritesVsScrape exercises the race the -race build
// checks: hot-path Inc/Observe racing a /metrics-style scrape.
func TestConcurrentWritesVsScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scrape_reports_total", "reports", nil)
	h := r.Histogram("scrape_seconds", "latency", nil, ExpBuckets(1e-6, 2, 16))
	r.GaugeFunc("scrape_depth", "", nil, func() float64 { return float64(c.Value()) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sink discardWriter
		if err := r.WritePrometheus(&sink); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	// A final quiescent scrape must agree with the merged values.
	if c.Value() != h.Count() {
		t.Fatalf("counter %d != histogram count %d after quiesce", c.Value(), h.Count())
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
