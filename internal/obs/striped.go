package obs

import "sync/atomic"

// fcell is one float accumulator stripe, padded like the counter cells so
// adjacent stripes never share a cache line.
type fcell struct {
	bits atomic.Uint64 // Float64bits of the stripe's partial sum
	_    [56]byte
}

// FloatAdder is a cache-line-striped float64 accumulator: the floating
// point sibling of Counter, built on the same stripe machinery as the
// histograms (stripes sized from GOMAXPROCS, per-thread random stripe
// pick). Add is lock-free — one CAS loop on a stripe that is rarely
// contended — which makes the adder suitable for hot ingestion paths
// that accumulate volumes (MB) rather than event counts: the streaming
// profiling engine's per-period window sketch is a matrix of these.
//
// The zero value is NOT usable; construct via NewFloatAdder.
type FloatAdder struct {
	cells []fcell // immutable slice header; cells are internally atomic
	mask  uint64
}

// NewFloatAdder builds a striped float accumulator.
func NewFloatAdder() *FloatAdder {
	n := stripes()
	return &FloatAdder{cells: make([]fcell, n), mask: uint64(n - 1)}
}

// newFloatAdderStripes builds an adder with an explicit stripe count
// (power of two) for the sharded-vs-serial property tests.
func newFloatAdderStripes(n int) *FloatAdder {
	return &FloatAdder{cells: make([]fcell, n), mask: uint64(n - 1)}
}

// Add accumulates v. NaN contributions are dropped (one poisoned report
// must not destroy a whole window cell).
func (a *FloatAdder) Add(v float64) {
	if v != v { // NaN check without math.IsNaN's call overhead
		return
	}
	i := uint64(0)
	if a.mask != 0 {
		i = stripeIdx(a.mask)
	}
	c := &a.cells[i].bits
	for {
		old := c.Load()
		if c.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			return
		}
	}
}

// Value merges the stripes in index order and returns the total. A read
// concurrent with writers is a valid cut per stripe: every completed Add
// is in exactly one stripe sum.
func (a *FloatAdder) Value() float64 {
	var s float64
	for i := range a.cells {
		s += floatFrom(a.cells[i].bits.Load())
	}
	return s
}

// Swap returns the accumulated total and resets the adder toward zero.
// Each stripe is swapped atomically, but the stripes are swapped one
// after another: an Add racing Swap lands entirely in the returned total
// or entirely in the next one, never split or lost, though two
// concurrent Swaps may interleave their cuts. Period-close paths that
// need one global cut should quiesce writers first (the tube optimizer
// folds the authoritative rollover totals instead, and uses Swap only
// for the advisory live sketch).
func (a *FloatAdder) Swap() float64 {
	var s float64
	zero := floatBits(0)
	for i := range a.cells {
		s += floatFrom(a.cells[i].bits.Swap(zero))
	}
	return s
}
