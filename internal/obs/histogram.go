package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// floatBits and floatFrom convert between float64 values and the uint64
// payload the atomics carry.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// DefBuckets is the default bucket layout: 32 powers of two from 1µs,
// spanning ~1µs to ~4300s. It covers both request latencies in seconds
// and solver iteration counts without configuration.
var DefBuckets = ExpBuckets(1e-6, 2, 32)

// ExpBuckets returns n bucket upper bounds growing geometrically from
// start by factor: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket upper bounds in arithmetic progression
// from start with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram is a streaming log-bucketed histogram. Observe is lock-free:
// one binary search over the immutable bounds plus a single atomic add
// in a randomly chosen stripe, with a rare CAS to track the global
// min/max. Counts are exact; Sum (and therefore the mean and quantiles)
// is approximated from bucket midpoints clamped to the observed
// [Min, Max] — the standard trade for a fixed-memory streaming sketch
// (DESIGN.md §10 quantifies the error: within one bucket width).
type Histogram struct {
	bounds []float64 // immutable after construction, sorted ascending
	// stripes[i] holds len(bounds)+1 bucket cells (last = +Inf overflow);
	// each stripe is a separate allocation so concurrent writers touch
	// different cache lines.
	stripes [][]atomic.Int64
	mask    uint64
	minBits atomic.Uint64 // Float64bits of the smallest observation (init +Inf)
	maxBits atomic.Uint64 // Float64bits of the largest observation (init -Inf)
}

// NewHistogram builds a standalone histogram with the given bucket
// upper bounds (nil → DefBuckets). Bounds are deduplicated, sorted, and
// copied; an implicit +Inf overflow bucket is always present.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	// Drop duplicates and non-finite bounds (+Inf is implicit). Exact
	// bit equality is the right duplicate test here (floateq-safe too).
	out := b[:0]
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if len(out) > 0 && math.Float64bits(v) == math.Float64bits(out[len(out)-1]) {
			continue
		}
		out = append(out, v)
	}
	b = out
	if len(b) == 0 {
		panic("obs: histogram needs at least one finite bucket bound")
	}
	n := stripes()
	h := &Histogram{bounds: b, mask: uint64(n - 1)}
	h.stripes = make([][]atomic.Int64, n)
	for i := range h.stripes {
		h.stripes[i] = make([]atomic.Int64, len(b)+1)
	}
	h.minBits.Store(floatBits(math.Inf(1)))
	h.maxBits.Store(floatBits(math.Inf(-1)))
	return h
}

// newHistogramStripes builds a histogram with an explicit stripe count
// (power of two) for the sharded-vs-serial property tests.
func newHistogramStripes(bounds []float64, n int) *Histogram {
	h := NewHistogram(bounds)
	h.mask = uint64(n - 1)
	h.stripes = make([][]atomic.Int64, n)
	for i := range h.stripes {
		h.stripes[i] = make([]atomic.Int64, len(h.bounds)+1)
	}
	return h
}

// Observe records one value. NaN observations are dropped (they have no
// bucket and would poison min/max).
func (h *Histogram) Observe(v float64) {
	if v != v { // NaN check without math.IsNaN's call overhead
		return
	}
	// First bound ≥ v, by hand-inlined binary search (sort.SearchFloat64s
	// costs a closure call per probe).
	bounds := h.bounds
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := uint64(0)
	if h.mask != 0 {
		i = stripeIdx(h.mask)
	}
	h.stripes[i][lo].Add(1)
	h.updateMin(v)
	h.updateMax(v)
}

// updateMin lowers the global minimum to v if needed. The load-compare
// fast path is loop-free so the compiler inlines it into Observe; the
// CAS retry loop (casMin) only runs on a new record value, which is
// rare after warm-up.
func (h *Histogram) updateMin(v float64) {
	if old := h.minBits.Load(); floatFrom(old) > v {
		h.casMin(old, v)
	}
}

func (h *Histogram) casMin(old uint64, v float64) {
	for !h.minBits.CompareAndSwap(old, floatBits(v)) {
		old = h.minBits.Load()
		if floatFrom(old) <= v {
			return
		}
	}
}

func (h *Histogram) updateMax(v float64) {
	if old := h.maxBits.Load(); floatFrom(old) < v {
		h.casMax(old, v)
	}
}

func (h *Histogram) casMax(old uint64, v float64) {
	for !h.maxBits.CompareAndSwap(old, floatBits(v)) {
		old = h.maxBits.Load()
		if floatFrom(old) >= v {
			return
		}
	}
}

// Snapshot is a merged point-in-time view of a histogram.
type Snapshot struct {
	Count  int64     // total observations
	Sum    float64   // approximate sum (bucket representatives, clamped to [Min, Max])
	Min    float64   // smallest observation; 0 when Count == 0
	Max    float64   // largest observation; 0 when Count == 0
	Bounds []float64 // bucket upper bounds (without the +Inf overflow)
	Counts []int64   // per-bucket counts, len(Bounds)+1 (last = overflow)
}

// Snapshot merges the stripes in index order into an exact per-bucket
// count vector. A snapshot taken concurrently with writers is a valid
// cut: every completed Observe is in exactly one bucket cell.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for _, st := range h.stripes {
		for j := range st {
			s.Counts[j] += st[j].Load()
		}
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	if s.Count == 0 {
		return s
	}
	s.Min = floatFrom(h.minBits.Load())
	s.Max = floatFrom(h.maxBits.Load())
	// Approximate the sum from bucket representatives: the midpoint of
	// each bucket's [lower, upper] range intersected with [Min, Max].
	for j, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := s.bucketRange(j)
		s.Sum += float64(c) * (lo + hi) / 2
	}
	return s
}

// bucketRange returns bucket j's effective [lower, upper] range, clamped
// to the observed [Min, Max] so open-ended buckets (below the first
// bound, above the last) contribute finite representatives.
func (s Snapshot) bucketRange(j int) (lo, hi float64) {
	if j == 0 {
		lo = s.Min
	} else {
		lo = s.Bounds[j-1]
	}
	if j == len(s.Bounds) {
		hi = s.Max
	} else {
		hi = s.Bounds[j]
	}
	if lo < s.Min {
		lo = s.Min
	}
	if hi > s.Max {
		hi = s.Max
	}
	if lo > hi { // all mass of this bucket sits outside [Min, Max]
		lo = hi
	}
	return lo, hi
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the rank. Edge behavior: Count == 0 → 0,
// q ≤ 0 → Min, q ≥ 1 → Max, a single observation → that observation.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 || s.Count == 1 {
		if s.Count == 1 && q < 1 {
			return s.Min
		}
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for j, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := s.bucketRange(j)
			// Position of the rank inside this bucket, interpolated
			// uniformly across the bucket's c observations.
			frac := float64(rank-cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return s.Max // unreachable: ranks are ≤ Count
}

// Mean returns the approximate mean observation.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile is shorthand for Snapshot().Quantile(q); callers taking
// several quantiles should snapshot once.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.Snapshot().Count }
