// Package obs is the observability substrate for the TUBE stack: a
// registry of named counters, gauges, and log-bucketed streaming
// histograms with Prometheus text-format exposition, plus a lightweight
// span API for tracing the daily control loop (optimize → publish →
// ingest → estimate, the paper's Fig. 1 cycle).
//
// The package is built for the same regime as internal/ingest: many
// goroutines hammering the write path (every usage report increments
// counters and observes latencies) while reads are rare (a /metrics
// scrape or a period close). The design mirrors the ingestion engine's
// answer:
//
//   - Hot-path writes are striped. A Counter is a set of cache-line
//     padded cells; Inc picks a cell with a cheap per-call random index
//     (math/rand/v2's lock-free runtime source) so concurrent
//     increments land on different cache lines instead of serializing
//     on one contended word. A Histogram stripes whole bucket arrays
//     the same way. On GOMAXPROCS=1 the stripe count collapses to one
//     and Inc is a bare atomic add.
//   - Reads are merge-on-read. Value/Snapshot walk the stripes in index
//     order and sum; bucket counts are exact, and the merge order is
//     fixed so snapshots are deterministic for a given set of
//     observations.
//   - Registration is get-or-create. Asking twice for the same
//     (name, labels) returns the same metric, so instrumented packages
//     can bind lazily without coordinating initialization order.
//
// Metric naming follows the Prometheus convention used throughout the
// repo: <subsystem>_<noun>[_<unit>][_total], e.g. ingest_reports_total,
// tube_http_request_seconds, optimize_solve_iterations (DESIGN.md §10).
package obs

import (
	"fmt"
	mrand "math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the registry's metric families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// Labels attaches constant dimensions to a metric at registration time
// (e.g. {"handler": "price"}). Label sets are part of the metric's
// identity: the same name with different labels is a different series
// of the same family.
type Labels map[string]string

// family groups every series registered under one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	members []*series      // registration order; accessed only under the owning Registry's mu
	byKey   map[string]int // label key → index; accessed only under the owning Registry's mu
}

// series is one registered (name, labels) pair and its backing metric.
type series struct {
	labels string // rendered `k="v",...` fragment, sorted by key; "" when unlabeled
	c      *Counter
	g      *Gauge
	gf     *gaugeFunc
	h      *Histogram
}

// Registry is a namespace of metrics. Registration is get-or-create and
// safe for concurrent use; the hot-path metric types it hands out are
// internally synchronized and never touch the registry lock again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
	order    []string           // guarded by mu: family registration order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry that package-level
// instrumentation (solver metrics, controller metrics) binds to.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Servers serve it alongside
// their own registry so in-process subsystems that have no handle on a
// server (the optimize package, a Controller) still show up on
// GET /metrics.
func Default() *Registry { return defaultRegistry }

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelKey renders a label set as a sorted, escaped `k="v",...`
// fragment, the canonical identity of a series within its family.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabelName(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the family and the series slot
// for (name, labels), checking kind consistency. Callers hold r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels) (*family, *series, bool) {
	fam, ok := r.families[name]
	if !ok {
		if !validName(name) {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
		fam = &family{name: name, help: help, kind: kind, byKey: make(map[string]int)}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != kind {
		// gauge and gaugeFunc expose the same family type but are
		// different implementations; mixing them under one name would
		// make the scrape ambiguous, so it is a programmer error too.
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.kind, kind))
	}
	key := labelKey(labels)
	if i, ok := fam.byKey[key]; ok {
		return fam, fam.members[i], true
	}
	s := &series{labels: key}
	fam.byKey[key] = len(fam.members)
	fam.members = append(fam.members, s)
	return fam, s, false
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Counters are monotonically non-decreasing.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindCounter, labels)
	if !existed {
		s.c = NewCounter()
	}
	return s.c
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindGauge, labels)
	if !existed {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (e.g. the depth of an ingest shard, read under its own lock).
// Re-registering the same (name, labels) replaces the callback — the
// newest owner of the name wins, which is what a restarted engine wants.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if fn == nil {
		panic("obs: nil GaugeFunc callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindGaugeFunc, labels)
	if !existed {
		s.gf = &gaugeFunc{}
	}
	s.gf.set(fn)
}

// Histogram returns the histogram registered under (name, labels),
// creating it on first use with the given bucket upper bounds (nil →
// DefBuckets). The bucket layout of an existing histogram is kept;
// later registrations only retrieve it.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindHistogram, labels)
	if !existed {
		s.h = NewHistogram(buckets)
	}
	return s.h
}

// stripes returns the number of write stripes for hot-path metrics: a
// power of two sized from GOMAXPROCS (1 when single-threaded, so the
// striping indirection vanishes exactly when it cannot help).
func stripes() int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return 1
	}
	p := 1
	for p < 4*n && p < 256 {
		p <<= 1
	}
	return p
}

// stripeIdx picks a stripe with the runtime's lock-free per-thread RNG.
// Random assignment keeps two goroutines that run concurrently on
// different Ps off the same cache line with probability 1−1/stripes.
func stripeIdx(mask uint64) uint64 {
	return mrand.Uint64() & mask
}

// cell is one counter stripe, padded so adjacent cells never share a
// cache line.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically non-decreasing striped counter. The zero
// value is NOT usable; construct via NewCounter or Registry.Counter.
type Counter struct {
	cells []cell // immutable slice header; cells are internally atomic
	mask  uint64
}

// NewCounter builds an unregistered counter (Registry.Counter is the
// usual path; standalone counters suit tests and ad-hoc tooling).
func NewCounter() *Counter {
	n := stripes()
	return &Counter{cells: make([]cell, n), mask: uint64(n - 1)}
}

// newCounterStripes builds a counter with an explicit stripe count
// (power of two) — the property tests pin it independently of
// GOMAXPROCS.
func newCounterStripes(n int) *Counter {
	return &Counter{cells: make([]cell, n), mask: uint64(n - 1)}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (d must be ≥ 0; counters are monotonic).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("obs: counter decremented")
	}
	i := uint64(0)
	if c.mask != 0 {
		i = stripeIdx(c.mask)
	}
	c.cells[i].n.Add(d)
}

// Value merges the stripes in index order and returns the total.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.cells {
		s += c.cells[i].n.Load()
	}
	return s
}

// Gauge is a settable float64 metric (current period, last congestion
// cost, …). Gauges are not striped: they are written once per period,
// not once per report.
type Gauge struct {
	bits atomic.Uint64 // Float64bits of the current value
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds d to the value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFrom(g.bits.Load()) }

// gaugeFunc holds a scrape-time callback behind its own lock so
// GaugeFunc re-registration cannot race a concurrent scrape.
type gaugeFunc struct {
	mu sync.Mutex
	fn func() float64 // guarded by mu
}

func (g *gaugeFunc) set(fn func() float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fn = fn
}

func (g *gaugeFunc) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	return fn()
}
