package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat checks the exposition output line-by-line
// against the text format rules: HELP before TYPE, cumulative buckets,
// a +Inf bucket, _sum and _count, sorted label rendering.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests served", Labels{"handler": "price"}).Add(3)
	r.Counter("reqs_total", "requests served", Labels{"handler": "usage"}).Add(5)
	r.Gauge("period", "current period", nil).Set(7)
	r.GaugeFunc("depth", "shard depth", Labels{"shard": "0"}, func() float64 { return 2 })
	h := r.Histogram("lat_seconds", "latency", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP reqs_total requests served\n",
		"# TYPE reqs_total counter\n",
		`reqs_total{handler="price"} 3` + "\n",
		`reqs_total{handler="usage"} 5` + "\n",
		"# TYPE period gauge\n",
		"period 7\n",
		`depth{shard="0"} 2` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name{...} value` with a parseable
	// float value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("sample line %q is not `series value`", line)
		}
	}
}

func TestWritePrometheusAllDedup(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("shared_total", "", nil).Add(1)
	b.Counter("shared_total", "", nil).Add(100)
	b.Counter("only_b_total", "", nil).Add(2)

	var sb strings.Builder
	if err := WritePrometheusAll(&sb, a, b, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "shared_total 1\n") {
		t.Errorf("first registry should win for shared_total:\n%s", out)
	}
	if strings.Contains(out, "shared_total 100") {
		t.Errorf("duplicate family leaked from second registry:\n%s", out)
	}
	if !strings.Contains(out, "only_b_total 2\n") {
		t.Errorf("second registry's unique family missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"v": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{v="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong, want %s in:\n%s", want, sb.String())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for in, want := range map[float64]string{
		1.5: "1.5", 0: "0",
	} {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
