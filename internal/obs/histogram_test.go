package obs

import (
	"math"
	"testing"
)

func approxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestQuantileEdgeCases covers the corners the old tubeload
// nearest-rank code never exercised: empty, single observation, q=0,
// q=1, and all mass in one bucket.
func TestQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := NewHistogram([]float64{1, 2}).Snapshot()
		for _, q := range []float64{0, 0.5, 1} {
			if got := s.Quantile(q); got != 0 {
				t.Fatalf("Quantile(%v) on empty = %v, want 0", q, got)
			}
		}
		if s.Mean() != 0 {
			t.Fatalf("Mean on empty = %v, want 0", s.Mean())
		}
	})

	t.Run("single observation", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 4})
		h.Observe(1.5)
		s := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 1} {
			if got := s.Quantile(q); got != 1.5 {
				t.Fatalf("Quantile(%v) with one obs = %v, want the observation 1.5", q, got)
			}
		}
	})

	t.Run("q=0 and q=1 are min and max", func(t *testing.T) {
		h := NewHistogram(ExpBuckets(0.001, 2, 20))
		for _, v := range []float64{0.5, 3, 0.02, 7, 1} {
			h.Observe(v)
		}
		s := h.Snapshot()
		if got := s.Quantile(0); got != 0.02 {
			t.Fatalf("Quantile(0) = %v, want min 0.02", got)
		}
		if got := s.Quantile(1); got != 7.0 {
			t.Fatalf("Quantile(1) = %v, want max 7", got)
		}
		if got := s.Quantile(-0.5); got != 0.02 {
			t.Fatalf("Quantile(-0.5) = %v, want clamp to min", got)
		}
		if got := s.Quantile(1.5); got != 7.0 {
			t.Fatalf("Quantile(1.5) = %v, want clamp to max", got)
		}
	})

	t.Run("single bucket holds all mass", func(t *testing.T) {
		h := NewHistogram([]float64{10, 20, 30})
		for i := 0; i < 100; i++ {
			h.Observe(15) // all in the (10, 20] bucket
		}
		s := h.Snapshot()
		// With Min = Max = 15 the interpolation range collapses: every
		// quantile must be exactly 15, not a bucket-midpoint guess.
		for _, q := range []float64{0, 0.1, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != 15.0 {
				t.Fatalf("Quantile(%v) = %v, want 15", q, got)
			}
		}
		if got := s.Mean(); got != 15.0 {
			t.Fatalf("Mean = %v, want 15", got)
		}
	})
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations uniform over (0, 100]; bucket width 10. The
	// interpolated median must land near 50 — within one bucket width.
	h := NewHistogram(LinearBuckets(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); !approxEq(got, 50, 10) {
		t.Fatalf("median = %v, want 50±10", got)
	}
	if got := s.Quantile(0.9); !approxEq(got, 90, 10) {
		t.Fatalf("p90 = %v, want 90±10", got)
	}
	if got := s.Mean(); !approxEq(got, 50.5, 5) {
		t.Fatalf("mean = %v, want 50.5±5", got)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=2: {1.5, 2}; le=4: {3, 4}; +Inf: {5, 100}.
	want := []int64{2, 2, 2, 2}
	for j, w := range want {
		if s.Counts[j] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", j, s.Counts[j], w, s.Counts)
		}
	}
	if s.Count != 8 || s.Min != 0.5 || s.Max != 100.0 {
		t.Fatalf("count/min/max = %d/%v/%v, want 8/0.5/100", s.Count, s.Min, s.Max)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 (NaN dropped)", got)
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2, 2, math.Inf(1), 1})
	s := h.Snapshot()
	want := []float64{1, 2, 4}
	if len(s.Bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, want)
	}
	for i := range want {
		if s.Bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", s.Bounds, want)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 4) did not panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

func TestSnapshotIsACopy(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	s := h.Snapshot()
	s.Bounds[0] = 99
	s.Counts[0] = 99
	s2 := h.Snapshot()
	if s2.Bounds[0] != 1.0 || s2.Counts[0] != 1 {
		t.Fatal("mutating a Snapshot leaked into the histogram")
	}
}
