package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// famView is a registry family captured under the registry lock: metric
// pointers only, so the (possibly lock-taking) GaugeFunc callbacks and
// histogram merges run after the registry lock is released.
type famView struct {
	name    string
	help    string
	kind    metricKind
	members []seriesView
}

type seriesView struct {
	labels string
	c      *Counter
	g      *Gauge
	gf     *gaugeFunc
	h      *Histogram
}

// capture snapshots the registry's family/series structure.
func (r *Registry) capture() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]famView, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fv := famView{name: f.name, help: f.help, kind: f.kind}
		for _, s := range f.members {
			fv.members = append(fv.members, seriesView{
				labels: s.labels, c: s.c, g: s.g, gf: s.gf, h: s.h,
			})
		}
		out = append(out, fv)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per sample,
// histograms as cumulative le-labeled buckets with _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writeFamilies(w, r.capture())
}

// WritePrometheusAll renders several registries as one exposition. When
// two registries define the same family name, the first registry wins
// and later duplicates are skipped (a scrape must not repeat a family).
// Servers use this to merge their per-server registry with Default().
func WritePrometheusAll(w io.Writer, regs ...*Registry) error {
	var all []famView
	seen := make(map[string]bool)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, fv := range r.capture() {
			if seen[fv.name] {
				continue
			}
			seen[fv.name] = true
			all = append(all, fv)
		}
	}
	return writeFamilies(w, all)
}

func writeFamilies(w io.Writer, fams []famView) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.members {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.labels, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", s.labels, "", s.g.Value())
			case kindGaugeFunc:
				writeSample(bw, f.name, "", s.labels, "", s.gf.value())
			case kindHistogram:
				writeHistogram(bw, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series, _sum and _count.
func writeHistogram(bw *bufio.Writer, name, labels string, snap Snapshot) {
	var cum int64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		writeSample(bw, name, "_bucket", labels, `le="`+formatFloat(b)+`"`, float64(cum))
	}
	cum += snap.Counts[len(snap.Bounds)]
	writeSample(bw, name, "_bucket", labels, `le="+Inf"`, float64(cum))
	writeSample(bw, name, "_sum", labels, "", snap.Sum)
	writeSample(bw, name, "_count", labels, "", float64(snap.Count))
}

// writeSample writes one `name{labels} value` line. extra is an extra
// label fragment (the histogram le label) appended after labels.
func writeSample(bw *bufio.Writer, name, suffix, labels, extra string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: shortest round-trip decimal, with
// the exposition format's spellings for the non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
