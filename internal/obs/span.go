package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of the control loop. Spans form a tree:
// StartSpan under a context that already carries a span attaches the
// new span as a child, so one Controller.RunDay yields a nested trace
// of optimize → publish → ingest → estimate.
//
// A span is safe for concurrent use: parallel stages of the loop may
// start children under the same parent while the parent is live.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // guarded by mu: zero until End
	children []*Span   // guarded by mu
}

// timeNow is swapped out by tests for deterministic traces.
var timeNow = time.Now

type spanCtxKey struct{}

// StartSpan begins a span named name. If ctx already carries a span the
// new one is attached as its child; either way the returned context
// carries the new span for further nesting. StartSpan(context.TODO(), …)
// starts a root.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: timeNow()}
	if parent := SpanFromContext(ctx); parent != nil {
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.children = append(s.children, c)
}

// End closes the span and returns its duration. End is idempotent:
// the first call fixes the end time, later calls return the same
// duration.
func (s *Span) End() time.Duration {
	now := timeNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = now
	}
	return s.end.Sub(s.start)
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Duration returns the elapsed time: end−start once ended, time since
// start while the span is live.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return timeNow().Sub(s.start)
	}
	return end.Sub(s.start)
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Children returns a copy of the child spans in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Render writes the span tree as an indented text trace:
//
//	controller.run_day             1.8ms
//	  optimize.plan                1.2ms
//	  usage.react                  0.4ms
//	  profile.observe              0.2ms
func (s *Span) Render() string {
	var sb strings.Builder
	s.render(&sb, 0)
	return sb.String()
}

func (s *Span) render(sb *strings.Builder, depth int) {
	fmt.Fprintf(sb, "%s%-*s %s\n",
		strings.Repeat("  ", depth), 32-2*depth, s.name, s.Duration())
	for _, c := range s.Children() {
		c.render(sb, depth+1)
	}
}
