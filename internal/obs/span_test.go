package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fakeClock advances by a fixed step on every reading, giving spans
// deterministic durations.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestSpanTree(t *testing.T) {
	old := timeNow
	timeNow = fakeClock(time.Millisecond)
	defer func() { timeNow = old }()

	ctx, root := StartSpan(context.Background(), "controller.run_day")
	cctx, plan := StartSpan(ctx, "optimize.plan")
	if SpanFromContext(cctx) != plan {
		t.Fatal("child context does not carry the child span")
	}
	plan.End()
	_, react := StartSpan(ctx, "usage.react")
	react.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "optimize.plan" || kids[1].Name() != "usage.react" {
		t.Fatalf("children = %v", kids)
	}
	if plan.Duration() <= 0 {
		t.Fatalf("plan duration = %v, want > 0", plan.Duration())
	}
	if !root.Ended() {
		t.Fatal("root not ended")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	old := timeNow
	timeNow = fakeClock(time.Millisecond)
	defer func() { timeNow = old }()

	_, s := StartSpan(context.Background(), "x")
	d1 := s.End()
	d2 := s.End()
	if d1 != d2 {
		t.Fatalf("End not idempotent: %v then %v", d1, d2)
	}
}

func TestSpanRootWithoutParent(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Fatalf("empty context carries span %v", s)
	}
	_, s := StartSpan(context.Background(), "root")
	if s.Name() != "root" || len(s.Children()) != 0 {
		t.Fatalf("unexpected root: %v", s)
	}
}

func TestSpanRender(t *testing.T) {
	old := timeNow
	timeNow = fakeClock(time.Millisecond)
	defer func() { timeNow = old }()

	ctx, root := StartSpan(context.Background(), "day")
	_, c := StartSpan(ctx, "plan")
	c.End()
	root.End()

	out := root.Render()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render = %q, want 2 lines", out)
	}
	if !strings.HasPrefix(lines[0], "day") || !strings.HasPrefix(lines[1], "  plan") {
		t.Fatalf("render = %q", out)
	}
}

func TestSpanChildrenIsACopy(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "r")
	StartSpan(ctx, "c1")
	kids := root.Children()
	kids[0] = nil
	if root.Children()[0] == nil {
		t.Fatal("mutating Children() result leaked into the span")
	}
}
