package obs

import (
	"math"
	"sync"
	"testing"
)

func TestFloatAdderSerial(t *testing.T) {
	a := NewFloatAdder()
	var want float64
	for i := 0; i < 1000; i++ {
		v := 0.25 * float64(i%7)
		a.Add(v)
		want += v
	}
	if got := a.Value(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Value = %v, want %v", got, want)
	}
	if got := a.Swap(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Swap = %v, want %v", got, want)
	}
	if got := a.Value(); got != 0 {
		t.Fatalf("Value after Swap = %v, want 0", got)
	}
}

func TestFloatAdderNaNDropped(t *testing.T) {
	a := NewFloatAdder()
	a.Add(1.5)
	a.Add(math.NaN())
	a.Add(2.5)
	if got := a.Value(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Value = %v, want 4 (NaN dropped)", got)
	}
}

// TestFloatAdderStripesEquivalent pins the sharded adder to a 1-stripe
// serial reference: integer-valued contributions make every stripe split
// exact, so the totals must match bit for bit.
func TestFloatAdderStripesEquivalent(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		a := newFloatAdderStripes(n)
		var want float64
		for i := 0; i < 500; i++ {
			v := float64(i % 13)
			a.Add(v)
			want += v
		}
		if got := a.Value(); got != want {
			t.Fatalf("stripes=%d: Value = %v, want %v", n, got, want)
		}
	}
}

// TestFloatAdderConcurrent hammers one adder from many goroutines; the
// CAS loop must not lose updates (integer values keep sums exact).
func TestFloatAdderConcurrent(t *testing.T) {
	a := NewFloatAdder()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := a.Value(); got != workers*perWorker {
		t.Fatalf("Value = %v, want %v", got, workers*perWorker)
	}
}

// TestFloatAdderSwapNoLoss checks that a Swap racing writers neither
// loses nor duplicates contributions: the sum of all swapped cuts plus
// the residue equals everything added.
func TestFloatAdderSwapNoLoss(t *testing.T) {
	a := NewFloatAdder()
	const workers, perWorker = 4, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	var swapped float64
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			swapped += a.Swap()
		}
	}()
	wg.Wait()
	<-done
	if total := swapped + a.Value(); total != workers*perWorker {
		t.Fatalf("swapped+residue = %v, want %v", total, workers*perWorker)
	}
}

func BenchmarkFloatAdderAdd(b *testing.B) {
	a := NewFloatAdder()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a.Add(1.5)
		}
	})
	_ = a.Value()
}
