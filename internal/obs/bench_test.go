package obs

import (
	"sync/atomic"
	"testing"
)

// The acceptance bar for the subsystem: Counter.Inc and
// Histogram.Observe must stay within 2× of a bare atomic.Int64 add on
// the ingest hot path. Run the three benchmarks together:
//
//	go test ./internal/obs -bench 'BareAtomic|CounterInc|HistogramObserve' -benchtime=2s

func BenchmarkBareAtomicInc(b *testing.B) {
	var n atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Add(1)
	}
	sinkInt64 = n.Load()
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	sinkInt64 = c.Value()
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-5)
	}
	sinkInt64 = h.Count()
}

func BenchmarkBareAtomicIncParallel(b *testing.B) {
	var n atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Add(1)
		}
	})
	sinkInt64 = n.Load()
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	sinkInt64 = c.Value()
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			h.Observe(float64(i&1023) * 1e-5)
			i++
		}
	})
	sinkInt64 = h.Count()
}

func BenchmarkSnapshot(b *testing.B) {
	h := NewHistogram(DefBuckets)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%997) * 1e-5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt64 = h.Snapshot().Count
	}
}

var sinkInt64 int64
