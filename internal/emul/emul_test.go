package emul

import (
	"errors"
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	def := DefaultConfig()
	if err := def.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"periods", func(c *Config) { c.Periods = 1 }},
		{"period seconds", func(c *Config) { c.PeriodSeconds = 0 }},
		{"link", func(c *Config) { c.LinkMBps = 0 }},
		{"no users", func(c *Config) { c.Users = nil }},
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"dup class", func(c *Config) { c.Classes = append(c.Classes, c.Classes[0]) }},
		{"bad size", func(c *Config) { c.Classes[0].MeanSizeMB = 0 }},
		{"missing beta", func(c *Config) { delete(c.Users[0].Beta, "web") }},
		{"shape len", func(c *Config) { c.DemandShape = []float64{1} }},
		{"rewards len", func(c *Config) { c.Rewards = []float64{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestExpectedDemandDeclines(t *testing.T) {
	cfg := DefaultConfig()
	d := cfg.ExpectedDemand()
	if len(d) != 12 {
		t.Fatalf("%d periods", len(d))
	}
	tot := func(i int) float64 {
		var s float64
		for _, v := range d[i] {
			s += v
		}
		return s
	}
	// Fig. 11 shape: first period busiest, last quietest.
	if !(tot(0) > tot(6) && tot(6) > tot(11)) {
		t.Errorf("demand not declining: %v %v %v", tot(0), tot(6), tot(11))
	}
	// Video dominates volume.
	if !(d[0][2] > d[0][1] && d[0][1] > d[0][0]) {
		t.Errorf("class volumes out of order: %v", d[0])
	}
}

func TestComputeRewardsShape(t *testing.T) {
	cfg := DefaultConfig()
	rewards, err := cfg.ComputeRewards()
	if err != nil {
		t.Fatalf("ComputeRewards: %v", err)
	}
	if len(rewards) != 12 {
		t.Fatalf("%d rewards", len(rewards))
	}
	// Early (over-capacity) periods earn no deferral reward; some later
	// (under-capacity) period does.
	var late float64
	for _, r := range rewards[6:] {
		late += r
	}
	if late <= 0 {
		t.Errorf("no rewards in the quiet half: %v", rewards)
	}
	for i, r := range rewards {
		if r < 0 || r > cfg.CostSlope {
			t.Errorf("reward[%d] = %v outside [0, slope]", i, r)
		}
	}
}

func TestRunTIPBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rewards = make([]float64, cfg.Periods) // TIP: no rewards
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Nothing moves under TIP.
	for _, u := range cfg.Users {
		if moved := res.TotalMoved(u.Name); moved != 0 {
			t.Errorf("user %s moved %v MB under TIP", u.Name, moved)
		}
	}
	// Both users receive traffic, declining over the hour in offered load.
	for _, u := range cfg.Users {
		served := res.ServedByUserPeriod[u.Name]
		var total float64
		for _, v := range served {
			total += v
		}
		if total <= 0 {
			t.Errorf("user %s served nothing", u.Name)
		}
	}
	if res.BackgroundServed <= 0 {
		t.Error("no background traffic delivered")
	}
}

// TestRunPaperExperiment is the Fig. 12 reproduction: with optimized
// rewards the patient user (group 2) defers substantial volume with
// video ≫ ftp > web, while the impatient user (group 1) moves far less.
func TestRunPaperExperiment(t *testing.T) {
	tip, tdp, err := RunComparison(DefaultConfig())
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	if tip.TotalMoved("user1") != 0 || tip.TotalMoved("user2") != 0 {
		t.Fatal("TIP run moved traffic")
	}
	m1, m2 := tdp.TotalMoved("user1"), tdp.TotalMoved("user2")
	if m2 <= 0 {
		t.Fatal("patient user moved nothing under TDP")
	}
	if m1 >= m2/4 {
		t.Errorf("impatient user moved %v MB, patient %v MB — want a clear gap", m1, m2)
	}
	// Per-class ordering for the patient user (paper: 143 web / 708 ftp /
	// 8461 MB video).
	mc := tdp.MovedByUserClass["user2"]
	if !(mc["video"] > mc["ftp"] && mc["ftp"] > mc["web"]) {
		t.Errorf("moved volumes out of order: web %v, ftp %v, video %v",
			mc["web"], mc["ftp"], mc["video"])
	}
	// Deferral pushes offered load from the busy start toward the end.
	early := func(r *Result, u string) float64 {
		var s float64
		for _, v := range r.OfferedByUserPeriod[u][:4] {
			s += v
		}
		return s
	}
	if early(tdp, "user2") >= early(tip, "user2") {
		t.Errorf("TDP did not reduce user2's early offered load: %v vs %v",
			early(tdp, "user2"), early(tip, "user2"))
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(a.TotalMoved("user2")-b.TotalMoved("user2")) > 1e-9 {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.TotalMoved("user2") == c.TotalMoved("user2") {
		t.Error("different seeds produced identical moved volume (suspicious)")
	}
}

func TestRunHorizonLimitedDeferral(t *testing.T) {
	// All deferral targets must stay within the experiment.
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, u := range cfg.Users {
		if got := len(res.OfferedByUserPeriod[u.Name]); got != cfg.Periods {
			t.Errorf("user %s offered load has %d periods", u.Name, got)
		}
	}
}
