package emul

import (
	"fmt"
	"math/rand"

	"math"
	"tdp/internal/netsim"
	"tdp/internal/stochastic"
	"tdp/internal/waiting"
)

// Result is the outcome of one experiment run.
type Result struct {
	// ServedByUserPeriod[user][i] is the volume (MB) delivered to the
	// user during period i — the Fig. 11/12 traffic curves.
	ServedByUserPeriod map[string][]float64
	// MovedByUserClass[user][class] is the volume (MB) TDP deferred out
	// of its original period — the paper's headline per-class numbers.
	MovedByUserClass map[string]map[string]float64
	// OfferedByUserPeriod[user][i] is the volume that *started* in period
	// i after deferral decisions (offered load).
	OfferedByUserPeriod map[string][]float64
	// OfferedByClassPeriod[class][i] is the offered load per traffic
	// class, summed over users — what the TUBE measurement engine
	// accounts per class.
	OfferedByClassPeriod map[string][]float64
	// OfferedByUserClassPeriod[user][class][i] is the full accounting
	// breakdown the measurement engine keeps per subscriber.
	OfferedByUserClassPeriod map[string]map[string][]float64
	// BackgroundServed is the background volume delivered.
	BackgroundServed float64
	// Rewards is the schedule the run used.
	Rewards []float64
}

// TotalMoved sums the deferred volume for one user.
func (r *Result) TotalMoved(user string) float64 {
	var s float64
	for _, v := range r.MovedByUserClass[user] {
		s += v
	}
	return s
}

// Run executes the experiment under the configured (or computed) rewards.
// With Rewards all zero it produces the TIP baseline of Fig. 11.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rewards := cfg.Rewards
	if rewards == nil {
		var err error
		rewards, err = cfg.ComputeRewards()
		if err != nil {
			return nil, fmt.Errorf("compute rewards: %w", err)
		}
	}
	maxReward := cfg.CostSlope
	if maxReward <= 0 {
		maxReward = 3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sim := netsim.NewSim()
	link, err := netsim.NewPSLink(sim, cfg.LinkMBps)
	if err != nil {
		return nil, err
	}
	rtts := stochastic.BackgroundDelays()

	// User-side behavior uses the *raw* willingness p/(t+1)^β as the
	// deferral probability (scaled by 1/P so it is a probability). The
	// ISP-side optimizer works with the paper's normalized waiting
	// functions, under which every patience type defers the same total
	// fraction p/P and β only shifts *when*; real users are magnitude-
	// sensitive — an impatient user facing a modest reward "never defers"
	// (§VI-C) — so the emulation keeps the normalization an ISP modeling
	// device, exactly the estimation-error regime §IV anticipates.
	type userClass struct{ user, class string }
	betas := make(map[userClass]float64, len(cfg.Users)*len(cfg.Classes))
	for _, u := range cfg.Users {
		for _, cl := range cfg.Classes {
			if u.Beta[cl.Name] < 0 {
				return nil, fmt.Errorf("user %s class %s: negative patience: %w",
					u.Name, cl.Name, ErrBadConfig)
			}
			betas[userClass{u.Name, cl.Name}] = u.Beta[cl.Name]
		}
	}
	rawWill := func(beta, reward float64, dt int) float64 {
		if reward <= 0 || dt < 1 {
			return 0
		}
		return reward / (maxReward * math.Pow(float64(dt+1), beta))
	}
	// Normalized behavior: per-(user, class) §II waiting functions.
	var normWfs map[userClass]waiting.PowerLaw
	if cfg.Behavior == Normalized {
		normWfs = make(map[userClass]waiting.PowerLaw, len(betas))
		for uc, beta := range betas {
			w, werr := waiting.NewPowerLaw(beta, cfg.Periods, maxReward)
			if werr != nil {
				return nil, fmt.Errorf("user %s class %s: %w", uc.user, uc.class, werr)
			}
			normWfs[uc] = w
		}
	}
	deferProb := func(uc userClass, reward float64, dt int) float64 {
		if cfg.Behavior == Normalized {
			return normWfs[uc].Value(reward, dt)
		}
		return rawWill(betas[uc], reward, dt)
	}

	res := &Result{
		ServedByUserPeriod:   make(map[string][]float64, len(cfg.Users)),
		OfferedByUserPeriod:  make(map[string][]float64, len(cfg.Users)),
		OfferedByClassPeriod: make(map[string][]float64, len(cfg.Classes)),
		MovedByUserClass:     make(map[string]map[string]float64, len(cfg.Users)),
		Rewards:              append([]float64(nil), rewards...),
	}
	for _, u := range cfg.Users {
		res.ServedByUserPeriod[u.Name] = make([]float64, cfg.Periods)
		res.OfferedByUserPeriod[u.Name] = make([]float64, cfg.Periods)
		res.MovedByUserClass[u.Name] = make(map[string]float64, len(cfg.Classes))
	}
	for _, cl := range cfg.Classes {
		res.OfferedByClassPeriod[cl.Name] = make([]float64, cfg.Periods)
	}
	res.OfferedByUserClassPeriod = make(map[string]map[string][]float64, len(cfg.Users))
	for _, u := range cfg.Users {
		res.OfferedByUserClassPeriod[u.Name] = make(map[string][]float64, len(cfg.Classes))
		for _, cl := range cfg.Classes {
			res.OfferedByUserClassPeriod[u.Name][cl.Name] = make([]float64, cfg.Periods)
		}
	}

	shape := cfg.shape()
	flowID := 0
	startFlow := func(user, class string, size, at float64) error {
		flowID++
		weight := 100 / rtts.Draw(rng) // TCP-like: throughput ∝ 1/RTT
		f := &netsim.Flow{
			ID:     flowID,
			Class:  class,
			User:   user,
			Size:   size,
			Weight: weight,
		}
		id := flowID
		return sim.At(at, func() {
			// Start errors are structurally impossible here (unique IDs,
			// positive sizes); guard anyway to avoid silent loss.
			if err := link.Start(f, nil); err != nil {
				panic(fmt.Sprintf("emul: start flow %d: %v", id, err))
			}
		})
	}

	// Generate user sessions period by period, deciding deferrals with
	// the probabilistic waiting-function sampling: a session originally
	// in period i defers by dt with probability w(p_{i+dt}, dt), else
	// stays (the aggregate of these choices is exactly the §II model).
	for i := 0; i < cfg.Periods; i++ {
		for _, u := range cfg.Users {
			for _, cl := range cfg.Classes {
				mean := cl.MeanSessionsPerPeriod * shape[i]
				count, err := stochastic.Poisson(rng, mean)
				if err != nil {
					return nil, err
				}
				for s := 0; s < count; s++ {
					size, err := stochastic.Exponential(rng, cl.MeanSizeMB)
					if err != nil {
						return nil, err
					}
					uc := userClass{u.Name, cl.Name}
					target := i
					// Sample the deferral distribution (horizon-limited:
					// the experiment ends after Periods). Cumulative
					// probabilities above 1 are truncated — the session
					// then surely defers to one of the earlier targets.
					roll := rng.Float64()
					acc := 0.0
					maxDt := cfg.Periods - 1 - i
					if cfg.CyclicDeferral {
						maxDt = cfg.Periods - 1
					}
					for dt := 1; dt <= maxDt; dt++ {
						k := (i + dt) % cfg.Periods
						acc += deferProb(uc, rewards[k], dt)
						if roll < acc {
							target = k
							break
						}
					}
					offset := rng.Float64() * cfg.PeriodSeconds
					at := float64(target)*cfg.PeriodSeconds + offset
					if err := startFlow(u.Name, cl.Name, size, at); err != nil {
						return nil, err
					}
					res.OfferedByUserPeriod[u.Name][target] += size
					res.OfferedByClassPeriod[cl.Name][target] += size
					res.OfferedByUserClassPeriod[u.Name][cl.Name][target] += size
					if target != i {
						res.MovedByUserClass[u.Name][cl.Name] += size
					}
				}
			}
		}
	}

	// Background fluctuation over the whole horizon.
	horizon := float64(cfg.Periods) * cfg.PeriodSeconds
	bgTimes, err := stochastic.PoissonProcess(rng, cfg.BackgroundFlowsPerSecond, horizon)
	if err != nil {
		return nil, err
	}
	for _, t := range bgTimes {
		size, err := stochastic.Exponential(rng, cfg.BackgroundMeanMB)
		if err != nil {
			return nil, err
		}
		if err := startFlow("", "background", size, t); err != nil {
			return nil, err
		}
	}

	// Sample per-user served volume at each period boundary.
	prev := make(map[string]float64, len(cfg.Users))
	for i := 1; i <= cfg.Periods; i++ {
		i := i
		if err := sim.At(float64(i)*cfg.PeriodSeconds, func() {
			link.Sync()
			for _, u := range cfg.Users {
				cur := link.ServedByUser[u.Name]
				res.ServedByUserPeriod[u.Name][i-1] = cur - prev[u.Name]
				prev[u.Name] = cur
			}
		}); err != nil {
			return nil, err
		}
	}

	sim.Run(horizon)
	link.Sync()
	res.BackgroundServed = link.ServedByClass["background"]
	return res, nil
}

// RunComparison executes the TIP baseline (zero rewards) and the TDP run
// with the same seed and returns both — the paper's Fig. 11 vs Fig. 12.
func RunComparison(cfg Config) (tip, tdp *Result, err error) {
	tipCfg := cfg
	tipCfg.Rewards = make([]float64, cfg.Periods)
	tip, err = Run(tipCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("tip run: %w", err)
	}
	tdp, err = Run(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("tdp run: %w", err)
	}
	return tip, tdp, nil
}
