// Package emul reproduces the paper's §VI-C proof-of-concept testbed
// (Figs. 10–12): two user groups with different patience sharing a
// 10 MBps bottleneck with fluctuating background traffic, a TUBE
// optimizer publishing per-period rewards, and per-class accounting of
// how much traffic time-dependent pricing moves.
//
// The physical testbed (Linux hosts, IPtables, 120-packet droptail buffer)
// is replaced by the flow-level simulator in internal/netsim; background
// flows get TCP-like weights ∝ 1/RTT with RTTs drawn from the empirical
// distribution in internal/stochastic (paper footnote 7).
package emul

import (
	"errors"
	"fmt"

	"tdp/internal/core"
)

// ErrBadConfig is returned for invalid experiment configurations.
var ErrBadConfig = errors.New("emul: invalid configuration")

// ClassSpec describes one traffic class a user generates.
type ClassSpec struct {
	// Name tags the class (e.g. "web").
	Name string
	// MeanSessionsPerPeriod is the Poisson mean of session arrivals per
	// user per period, before demand shaping.
	MeanSessionsPerPeriod float64
	// MeanSizeMB is the exponential mean session size.
	MeanSizeMB float64
}

// UserSpec describes one user group member.
type UserSpec struct {
	// Name tags the user.
	Name string
	// Beta maps class name → patience index. Larger = less patient.
	Beta map[string]float64
}

// Config describes the experiment.
type Config struct {
	// Periods and PeriodSeconds define the experiment horizon (the paper
	// uses one hour; 12 five-minute periods by default).
	Periods       int
	PeriodSeconds float64
	// LinkMBps is the bottleneck capacity (paper: 10 MBps).
	LinkMBps float64
	// Classes and Users define the workload.
	Classes []ClassSpec
	Users   []UserSpec
	// DemandShape scales each period's session arrivals (len == Periods).
	// Nil defaults to the paper's Fig. 11 pattern: high at the beginning
	// of the hour, low at the end.
	DemandShape []float64
	// BackgroundFlowsPerSecond and BackgroundMeanMB drive the background
	// fluctuation at the bottleneck.
	BackgroundFlowsPerSecond float64
	BackgroundMeanMB         float64
	// Rewards is the published per-period reward schedule in $0.10.
	// Nil computes it with the static model from the expected demand.
	Rewards []float64
	// CostSlope is the marginal over-capacity cost used when computing
	// rewards (default 3, as in §V-A).
	CostSlope float64
	// Behavior selects how emulated users decide deferrals (see the
	// Behavior type). The zero value is RawWillingness.
	Behavior Behavior
	// CyclicDeferral lets sessions defer across the experiment boundary
	// into the (same-day) wrapped period — the steady-state reading where
	// the day repeats, matching the §II formulation's mod-n deferral
	// times. Off (default), deferral is horizon-limited: the Fig. 11/12
	// hour genuinely ends.
	CyclicDeferral bool
	// Seed drives all randomness.
	Seed int64
}

// Behavior is the user-side decision model.
type Behavior int

// Available behaviors.
const (
	// RawWillingness (default) has sessions defer with probability
	// p/(P·(t+1)^β) — magnitude-sensitive, so an impatient user facing a
	// modest reward "never defers", reproducing the §VI-C testbed claims.
	RawWillingness Behavior = iota
	// Normalized has sessions follow the §II normalized waiting
	// functions exactly: every patience class defers the same total
	// fraction p/P and β only shifts *when*. Under this behavior the
	// ISP's profiling model is well-specified, so the Fig. 1 loop can
	// recover the true per-class patience.
	Normalized
)

// DefaultConfig returns the paper-shaped experiment: two users (group 1
// impatient, group 2 patient), three classes (web, ftp, streaming video
// with video ≫ ftp > web in volume), 10 MBps bottleneck, one hour in
// twelve 5-minute periods, and background fluctuation.
func DefaultConfig() Config {
	return Config{
		Periods:       12,
		PeriodSeconds: 300,
		LinkMBps:      10,
		Classes: []ClassSpec{
			{Name: "web", MeanSessionsPerPeriod: 15, MeanSizeMB: 2},
			{Name: "ftp", MeanSessionsPerPeriod: 4, MeanSizeMB: 40},
			{Name: "video", MeanSessionsPerPeriod: 2, MeanSizeMB: 400},
		},
		Users: []UserSpec{
			{Name: "user1", Beta: map[string]float64{"web": 5, "ftp": 5, "video": 4.5}},
			{Name: "user2", Beta: map[string]float64{"web": 2, "ftp": 0.7, "video": 0.3}},
		},
		BackgroundFlowsPerSecond: 0.2,
		BackgroundMeanMB:         5,
		CostSlope:                3,
		Seed:                     1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Periods < 2 || c.PeriodSeconds <= 0 || c.LinkMBps <= 0 {
		return fmt.Errorf("periods %d, period %vs, link %v MBps: %w",
			c.Periods, c.PeriodSeconds, c.LinkMBps, ErrBadConfig)
	}
	if len(c.Classes) == 0 || len(c.Users) == 0 {
		return fmt.Errorf("need classes and users: %w", ErrBadConfig)
	}
	seen := map[string]bool{}
	for _, cl := range c.Classes {
		if cl.Name == "" || seen[cl.Name] {
			return fmt.Errorf("class %q empty or duplicate: %w", cl.Name, ErrBadConfig)
		}
		seen[cl.Name] = true
		if cl.MeanSessionsPerPeriod < 0 || cl.MeanSizeMB <= 0 {
			return fmt.Errorf("class %q parameters: %w", cl.Name, ErrBadConfig)
		}
	}
	for _, u := range c.Users {
		if u.Name == "" {
			return fmt.Errorf("unnamed user: %w", ErrBadConfig)
		}
		for _, cl := range c.Classes {
			if b, ok := u.Beta[cl.Name]; !ok || b < 0 {
				return fmt.Errorf("user %q patience for class %q: %w", u.Name, cl.Name, ErrBadConfig)
			}
		}
	}
	if c.DemandShape != nil && len(c.DemandShape) != c.Periods {
		return fmt.Errorf("demand shape has %d periods, want %d: %w",
			len(c.DemandShape), c.Periods, ErrBadConfig)
	}
	if c.Rewards != nil && len(c.Rewards) != c.Periods {
		return fmt.Errorf("rewards have %d periods, want %d: %w",
			len(c.Rewards), c.Periods, ErrBadConfig)
	}
	return nil
}

// shape returns the demand multiplier per period.
func (c *Config) shape() []float64 {
	if c.DemandShape != nil {
		return c.DemandShape
	}
	// Fig. 11: traffic high at the beginning of the hour, lower at the end.
	out := make([]float64, c.Periods)
	for i := range out {
		out[i] = 1.6 - 1.2*float64(i)/float64(c.Periods-1)
	}
	return out
}

// ExpectedDemand returns the expected MB of demand per period per class
// (summed over users).
func (c *Config) ExpectedDemand() [][]float64 {
	shape := c.shape()
	out := make([][]float64, c.Periods)
	for i := range out {
		out[i] = make([]float64, len(c.Classes))
		for j, cl := range c.Classes {
			out[i][j] = shape[i] * cl.MeanSessionsPerPeriod * cl.MeanSizeMB * float64(len(c.Users))
		}
	}
	return out
}

// ComputeRewards builds the published schedule from the expected demand
// with the §II static model: demand in MB/period, capacity = link capacity
// per period.
func (c *Config) ComputeRewards() ([]float64, error) {
	slope := c.CostSlope
	if slope <= 0 {
		slope = 3
	}
	// One β per class: average over users (the optimizer sees aggregates).
	betas := make([]float64, len(c.Classes))
	for j, cl := range c.Classes {
		var s float64
		for _, u := range c.Users {
			s += u.Beta[cl.Name]
		}
		betas[j] = s / float64(len(c.Users))
	}
	// The ISP targets 80% of physical capacity (§V-A); the cushion also
	// absorbs background traffic.
	capPerPeriod := 0.8 * c.LinkMBps * c.PeriodSeconds
	capacity := make([]float64, c.Periods)
	for i := range capacity {
		capacity[i] = capPerPeriod
	}
	scn := &core.Scenario{
		Periods:       c.Periods,
		Demand:        c.ExpectedDemand(),
		Betas:         betas,
		Capacity:      capacity,
		Cost:          core.LinearCost(slope),
		PeriodSeconds: c.PeriodSeconds,
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, err
	}
	pr, err := model.Solve()
	if err != nil {
		return nil, err
	}
	return pr.Rewards, nil
}
