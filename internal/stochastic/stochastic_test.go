package stochastic

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 4, 30} {
		const trials = 20000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			k, err := Poisson(rng, lambda)
			if err != nil {
				t.Fatalf("Poisson: %v", err)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		if math.Abs(mean-lambda) > 0.1*lambda+0.1 {
			t.Errorf("λ=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.2*lambda+0.2 {
			t.Errorf("λ=%v: variance %v", lambda, variance)
		}
	}
}

func TestPoissonLargeLambdaApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const lambda = 1000
	const trials = 5000
	var sum float64
	for i := 0; i < trials; i++ {
		k, err := Poisson(rng, lambda)
		if err != nil {
			t.Fatalf("Poisson: %v", err)
		}
		if k < 0 {
			t.Fatal("negative count")
		}
		sum += float64(k)
	}
	if mean := sum / trials; math.Abs(mean-lambda) > 5 {
		t.Errorf("mean %v, want ≈1000", mean)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if k, err := Poisson(rng, 0); err != nil || k != 0 {
		t.Errorf("Poisson(0) = (%d, %v), want (0, nil)", k, err)
	}
	if _, err := Poisson(rng, -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative λ: err = %v, want ErrBadParam", err)
	}
	if _, err := Poisson(rng, math.NaN()); !errors.Is(err, ErrBadParam) {
		t.Errorf("NaN λ: err = %v, want ErrBadParam", err)
	}
	if _, err := Poisson(rng, math.Inf(1)); !errors.Is(err, ErrBadParam) {
		t.Errorf("Inf λ: err = %v, want ErrBadParam", err)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const mean = 7.5
	const trials = 30000
	var sum float64
	for i := 0; i < trials; i++ {
		x, err := Exponential(rng, mean)
		if err != nil {
			t.Fatalf("Exponential: %v", err)
		}
		if x < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += x
	}
	if got := sum / trials; math.Abs(got-mean) > 0.15 {
		t.Errorf("sample mean %v, want ≈%v", got, mean)
	}
	if _, err := Exponential(rng, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero mean: err = %v, want ErrBadParam", err)
	}
}

func TestPoissonProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	times, err := PoissonProcess(rng, 10, 100)
	if err != nil {
		t.Fatalf("PoissonProcess: %v", err)
	}
	// Expect ≈1000 arrivals; loose bound.
	if len(times) < 800 || len(times) > 1200 {
		t.Errorf("%d arrivals, want ≈1000", len(times))
	}
	prev := -1.0
	for _, x := range times {
		if x < prev {
			t.Fatal("arrival times not sorted")
		}
		if x < 0 || x >= 100 {
			t.Fatalf("arrival %v outside [0,100)", x)
		}
		prev = x
	}
	empty, err := PoissonProcess(rng, 0, 100)
	if err != nil || len(empty) != 0 {
		t.Errorf("rate 0: (%v, %v), want empty", empty, err)
	}
	if _, err := PoissonProcess(rng, -1, 10); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative rate: err = %v, want ErrBadParam", err)
	}
}

func TestEmpirical(t *testing.T) {
	if _, err := NewEmpirical(nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("empty: err = %v, want ErrBadParam", err)
	}
	if _, err := NewEmpirical([]float64{1, math.NaN()}); !errors.Is(err, ErrBadParam) {
		t.Errorf("NaN: err = %v, want ErrBadParam", err)
	}
	e, err := NewEmpirical([]float64{3, 1, 2})
	if err != nil {
		t.Fatalf("NewEmpirical: %v", err)
	}
	if q, _ := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q, _ := e.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v, want 3", q)
	}
	if q, _ := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
	if _, err := e.Quantile(1.5); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad q: err = %v, want ErrBadParam", err)
	}
	// Draws stay within [min, max].
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		if d := e.Draw(rng); d < 1 || d > 3 {
			t.Fatalf("draw %v outside [1,3]", d)
		}
	}
}

func TestBackgroundDelays(t *testing.T) {
	e := BackgroundDelays()
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const trials = 10000
	for i := 0; i < trials; i++ {
		d := e.Draw(rng)
		if d < AikatRTTMilliseconds[0] || d > AikatRTTMilliseconds[len(AikatRTTMilliseconds)-1] {
			t.Fatalf("delay %v outside data range", d)
		}
		sum += d
	}
	// The distribution is right-skewed: mean above median.
	med, _ := e.Quantile(0.5)
	if mean := sum / trials; mean <= med {
		t.Errorf("mean %v not above median %v for skewed RTTs", mean, med)
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	samples := []float64{5, 1, 3}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatalf("NewEmpirical: %v", err)
	}
	samples[0] = 999
	if q, _ := e.Quantile(1); q != 5 {
		t.Errorf("mutation leaked into distribution: max = %v", q)
	}
}
