// Package stochastic provides the random primitives the dynamic model and
// the TUBE testbed emulation draw on: Poisson arrival processes,
// exponential session sizes, and an empirical distribution for background
// per-flow delays (the paper's §VI testbed generates background traffic
// from an empirical Internet measurement distribution).
//
// All generators take an explicit *rand.Rand so every simulation in this
// repository is reproducible from a seed.
package stochastic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrBadParam is returned for invalid distribution parameters.
var ErrBadParam = errors.New("stochastic: invalid parameter")

// Poisson draws a Poisson(λ) count. For small λ it uses Knuth's product
// method; for large λ a normal approximation with continuity correction
// keeps it O(1).
func Poisson(rng *rand.Rand, lambda float64) (int, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("lambda %v: %w", lambda, ErrBadParam)
	}
	if lambda == 0 {
		return 0, nil
	}
	if lambda > 500 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k, nil
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > limit {
		k++
		p *= rng.Float64()
	}
	return k - 1, nil
}

// Exponential draws an Exp(mean) variate (mean > 0).
func Exponential(rng *rand.Rand, mean float64) (float64, error) {
	if mean <= 0 || math.IsNaN(mean) {
		return 0, fmt.Errorf("mean %v: %w", mean, ErrBadParam)
	}
	return rng.ExpFloat64() * mean, nil
}

// PoissonProcess generates the arrival times of a Poisson process with the
// given rate on [0, horizon), sorted ascending.
func PoissonProcess(rng *rand.Rand, rate, horizon float64) ([]float64, error) {
	if rate < 0 || horizon < 0 || math.IsNaN(rate) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("rate %v horizon %v: %w", rate, horizon, ErrBadParam)
	}
	var times []float64
	t := 0.0
	for {
		if rate == 0 {
			break
		}
		t += rng.ExpFloat64() / rate
		if t >= horizon {
			break
		}
		times = append(times, t)
	}
	return times, nil
}

// Empirical is a distribution resampled from observed values, used for the
// background-traffic per-flow delays (paper footnote 7: delays assigned
// from an empirical Internet measurement distribution).
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from samples.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("no samples: %w", ErrBadParam)
	}
	s := append([]float64(nil), samples...)
	for _, v := range s {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("NaN sample: %w", ErrBadParam)
		}
	}
	sort.Float64s(s)
	return &Empirical{sorted: s}, nil
}

// Draw samples the distribution with linear interpolation between order
// statistics (a smoothed bootstrap).
func (e *Empirical) Draw(rng *rand.Rand) float64 {
	u := rng.Float64() * float64(len(e.sorted)-1)
	lo := int(u)
	if lo >= len(e.sorted)-1 {
		return e.sorted[len(e.sorted)-1]
	}
	frac := u - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Quantile returns the q-th quantile (q in [0,1]) by interpolation.
func (e *Empirical) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("quantile %v: %w", q, ErrBadParam)
	}
	u := q * float64(len(e.sorted)-1)
	lo := int(u)
	if lo >= len(e.sorted)-1 {
		return e.sorted[len(e.sorted)-1], nil
	}
	frac := u - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac, nil
}

// AikatRTTMilliseconds is a compact summary of the round-trip-time
// distribution reported by Aikat et al., "Variability in TCP Round-Trip
// Times" (IMC 2003) — the study the paper's testbed takes its background
// per-flow delays from. Values are representative RTT milliseconds across
// deciles of their measured flows.
var AikatRTTMilliseconds = []float64{
	9, 15, 22, 31, 42, 55, 74, 102, 151, 240, 420,
}

// BackgroundDelays returns the empirical RTT distribution used for
// background flows in the TUBE testbed.
func BackgroundDelays() *Empirical {
	e, err := NewEmpirical(AikatRTTMilliseconds)
	if err != nil {
		// The static data above is known-good; this is unreachable.
		panic(err)
	}
	return e
}
