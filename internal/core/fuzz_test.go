package core

import (
	"math"
	"testing"
)

// FuzzCostFuncInvariants checks f's structural invariants on arbitrary
// inputs: non-negativity, monotonicity, convexity of the smoothed form,
// and the softplus upper bound.
func FuzzCostFuncInvariants(f *testing.F) {
	f.Add(3.0, 0.0, 1.0, 5.0, 0.01)
	f.Add(1.0, 2.0, 0.5, -3.0, 0.5)
	f.Add(0.1, 10.0, 0.1, 100.0, 1.0)
	f.Fuzz(func(t *testing.T, slope1, break2, slope2, x, mu float64) {
		if !finite(slope1) || !finite(break2) || !finite(slope2) || !finite(x) || !finite(mu) {
			t.Skip()
		}
		slope1 = math.Abs(math.Mod(slope1, 100))
		slope2 = math.Abs(math.Mod(slope2, 100))
		if slope1 == 0 {
			slope1 = 1
		}
		break2 = math.Abs(math.Mod(break2, 1000))
		x = math.Mod(x, 1e6)
		mu = math.Abs(math.Mod(mu, 10))
		cf := CostFunc{Breaks: []float64{0, break2}, Slopes: []float64{slope1, slope2}}
		if err := cf.Validate(); err != nil {
			t.Skip()
		}
		v := cf.Value(x)
		if v < 0 {
			t.Fatalf("Value(%v) = %v < 0", x, v)
		}
		if x <= 0 && v != 0 {
			t.Fatalf("Value(%v) = %v, want 0 for x ≤ 0", x, v)
		}
		// Monotone: f(x+1) ≥ f(x).
		if cf.Value(x+1) < v-1e-9 {
			t.Fatalf("not increasing at %v", x)
		}
		// Smooth upper-bounds exact with bounded gap.
		s := cf.Smooth(x, mu)
		if s < v-1e-9*(1+math.Abs(v)) {
			t.Fatalf("Smooth(%v,%v) = %v below exact %v", x, mu, s, v)
		}
		if gap := s - v; gap > mu*math.Ln2*cf.MaxSlope()+1e-6*(1+math.Abs(v)) {
			t.Fatalf("smoothing gap %v exceeds bound", gap)
		}
		// Derivative bounded by MaxSlope.
		if d := cf.Deriv(x); d < 0 || d > cf.MaxSlope()+1e-12 {
			t.Fatalf("Deriv(%v) = %v outside [0, %v]", x, d, cf.MaxSlope())
		}
	})
}

// FuzzStaticCostAtTotal checks usage conservation and cost non-negativity
// for arbitrary (clamped) reward vectors on the 12-period scenario.
func FuzzStaticCostAtTotal(f *testing.F) {
	f.Add(0.1, 0.9, 1.4, 0.0)
	f.Add(1.5, 1.5, 1.5, 1.5)
	sm, err := NewStaticModel(paper12())
	if err != nil {
		f.Fatal(err)
	}
	var totalDemand float64
	for _, x := range sm.totals {
		totalDemand += x
	}
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		p := make([]float64, 12)
		seed := []float64{a, b, c, d}
		for i := range p {
			v := seed[i%4]
			if !finite(v) {
				t.Skip()
			}
			p[i] = math.Abs(math.Mod(v, sm.MaxReward()))
		}
		cost := sm.CostAt(p)
		if cost < 0 || math.IsNaN(cost) {
			t.Fatalf("CostAt = %v", cost)
		}
		x := sm.UsageAt(p)
		var s float64
		for _, xi := range x {
			if xi < -1e-9 {
				t.Fatalf("negative usage %v", xi)
			}
			s += xi
		}
		if math.Abs(s-totalDemand) > 1e-6 {
			t.Fatalf("usage total %v, demand %v", s, totalDemand)
		}
	})
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
